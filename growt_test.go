package growt_test

import (
	"sync"
	"testing"

	growt "repro"
)

func TestPublicAPISmoke(t *testing.T) {
	for _, opts := range []growt.Options{
		{},
		{Strategy: growt.USGrow},
		{Strategy: growt.PAGrow},
		{Strategy: growt.PSGrow},
		{TSX: true},
		{Bounded: true, Expected: 10000},
		{Bounded: true, Expected: 10000, TSX: true},
	} {
		m := growt.NewMap(opts)
		h := m.Handle()
		for k := uint64(1); k <= 5000; k++ {
			if !h.Insert(k, k*2) {
				t.Fatalf("%+v: insert %d", opts, k)
			}
		}
		for k := uint64(1); k <= 5000; k++ {
			if v, ok := h.Find(k); !ok || v != k*2 {
				t.Fatalf("%+v: find %d", opts, k)
			}
		}
		if n, ok := growt.ApproxSize(m); ok && (n < 4000 || n > 6000) {
			t.Fatalf("%+v: approx size %d", opts, n)
		}
		seen := 0
		growt.Range(m, func(k, v uint64) bool { seen++; return true })
		if seen != 5000 {
			t.Fatalf("%+v: range saw %d", opts, seen)
		}
		growt.Close(m)
	}
}

func TestPublicAggregation(t *testing.T) {
	m := growt.NewMap(growt.Options{Strategy: growt.USGrow})
	defer growt.Close(m)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := m.Handle()
			for j := 0; j < 10000; j++ {
				h.InsertOrUpdate(uint64(j%100)+1, 1, growt.AddFn)
			}
		}()
	}
	wg.Wait()
	h := m.Handle()
	var sum uint64
	for k := uint64(1); k <= 100; k++ {
		v, _ := h.Find(k)
		sum += v
	}
	if sum != 40000 {
		t.Fatalf("sum %d", sum)
	}
}

func TestPublicFullKeyMap(t *testing.T) {
	m := growt.NewFullKeyMap(func() growt.WordMap {
		return growt.NewMap(growt.Options{})
	})
	h := m.Handle()
	for _, k := range []uint64{0, 1, ^uint64(0), 1 << 63, growt.MaxKey} {
		if !h.Insert(k, 7) {
			t.Fatalf("insert %#x", k)
		}
		if v, ok := h.Find(k); !ok || v != 7 {
			t.Fatalf("find %#x", k)
		}
	}
	m.Close()
}

func TestPublicStringMap(t *testing.T) {
	m := growt.NewStringMap(100)
	h := m.Handle()
	if !h.Insert("alpha", 1) {
		t.Fatal("insert")
	}
	if v, ok := h.Find("alpha"); !ok || v != 1 {
		t.Fatal("find")
	}
}
