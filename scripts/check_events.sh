#!/bin/sh
# scripts/check_events.sh <events.json> — validate a /debug/events
# drain from growd's -debug listener (the flight recorder's recent
# window). Three gates, all blocking:
#
#   1. Well-formed JSON: the body must parse as an array of event
#      objects (python3's json module when available, else a shape
#      check on the envelope and record fields).
#   2. Exec events: the request path must have recorded exec_start /
#      exec_end lifecycle events — the smoke's growload burst ran
#      thousands of ops, so an empty exec stream means the recorder is
#      disconnected from the server.
#   3. Migration phase events: the 20000-key prefill outgrows the
#      default table, so the window (or at least the slower smoke
#      traffic after it) must carry migration phase transitions —
#      any of mig_arm/mig_adopt/mig_copy_slice/mig_drain/mig_flip.
set -eu

f=${1:?usage: check_events.sh <events.json>}

fail() { echo "FAIL: $*" >&2; exit 1; }

echo "==> well-formed JSON: $f"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$f" <<'EOF'
import json, sys
with open(sys.argv[1]) as fh:
    evs = json.load(fh)
if not isinstance(evs, list):
    raise SystemExit("FAIL: /debug/events body is not a JSON array")
for e in evs:
    for field in ("ts_nanos", "kind", "a0", "a1", "a2"):
        if field not in e:
            raise SystemExit(f"FAIL: event missing {field!r}: {e}")
print(f"    {len(evs)} events, all records carry ts_nanos/kind/a0/a1/a2")
EOF
else
  # Envelope + record-shape check without a JSON parser: array
  # brackets and the mandatory fields on every record.
  head -c1 "$f" | grep -q '\[' || fail "body does not start with ["
  grep -q '"ts_nanos"' "$f" || fail "no ts_nanos fields in body"
  grep -q '"kind"' "$f" || fail "no kind fields in body"
fi

echo "==> exec lifecycle events present"
grep -q '"kind":"exec_start"' "$f" || fail "no exec_start events in window"
grep -q '"kind":"exec_end"' "$f"   || fail "no exec_end events in window"

echo "==> migration phase events present"
grep -Eq '"kind":"mig_(arm|adopt|copy_slice|drain|flip)"' "$f" ||
  fail "no migration phase events in window (prefill should have grown the table)"

execs=$(grep -o '"kind":"exec_end"' "$f" | wc -l | tr -d ' ')
migs=$(grep -Eo '"kind":"mig_[a-z_]*"' "$f" | wc -l | tr -d ' ')
echo "OK: $execs exec_end events, $migs migration phase events"
