#!/bin/sh
# scripts/lint.sh — the exact static-analysis sequence CI's lint job
# runs, invocable locally. Three gates, all blocking:
#
#   1. growvet: the repository's own six analyzers (cell protocol,
#      flow-sensitive handle release, CAS re-read discipline, status
#      exhaustiveness, hot-path allocation budget, wire-contract
#      pairing — see docs/ANALYSIS.md)
#   2. staticcheck at the pinned version (selection in staticcheck.conf)
#   3. govulncheck at the pinned version
#
# Environment knobs:
#   GROWVET=<path>       where to place/find the growvet binary
#                        (default bin/growvet)
#   GROWVET_PREBUILT=1   trust an existing $GROWVET instead of
#                        rebuilding — CI sets this on a source-keyed
#                        cache hit; leave unset locally
#   GROWVET_ONLY=1       skip staticcheck/govulncheck (offline use:
#                        both install from the module proxy)
set -eu

cd "$(dirname "$0")/.."

GROWVET="${GROWVET:-bin/growvet}"
STATICCHECK_VERSION="${STATICCHECK_VERSION:-2024.1.1}"
GOVULNCHECK_VERSION="${GOVULNCHECK_VERSION:-v1.1.3}"

if [ -x "$GROWVET" ] && [ "${GROWVET_PREBUILT:-}" = "1" ]; then
    echo "==> growvet: reusing prebuilt $GROWVET"
else
    echo "==> build growvet -> $GROWVET"
    go build -o "$GROWVET" ./cmd/growvet
fi

echo "==> growvet (cell protocol / handles / cell re-read / wire pairing / hot paths)"
go vet -vettool="$GROWVET" ./...

if [ "${GROWVET_ONLY:-}" = "1" ]; then
    echo "==> GROWVET_ONLY=1: skipping staticcheck and govulncheck"
    exit 0
fi

echo "==> staticcheck ($STATICCHECK_VERSION)"
go install "honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION"
staticcheck ./...

echo "==> govulncheck ($GOVULNCHECK_VERSION)"
go install "golang.org/x/vuln/cmd/govulncheck@$GOVULNCHECK_VERSION"
govulncheck ./...
