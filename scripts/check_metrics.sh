#!/bin/sh
# scripts/check_metrics.sh <metrics.txt> — validate a /metrics scrape
# from growd's -debug listener. Three gates, all blocking:
#
#   1. Prometheus text format 0.0.4 line parse: every non-comment,
#      non-blank line must be `name{labels} value` (or bare
#      `name value`) with a numeric value.
#   2. Family presence: the per-opcode exec latency and the
#      migration-pause histograms must be declared with `# TYPE ...
#      histogram`, and each must have _bucket/_sum/_count samples.
#   3. Liveness: the scrape must show at least one completed migration
#      (the smoke's prefill outgrows the default table capacity), with
#      a nonzero wall-time histogram count to match.
#
# The parser is plain awk so CI needs no Prometheus tooling.
set -eu

f=${1:?usage: check_metrics.sh <metrics.txt>}

echo "==> parse: $f"
awk '
  /^#/ { next }                 # comment/TYPE/HELP lines
  /^[[:space:]]*$/ { next }
  {
    # name{label="v",...} value   |   name value
    if ($0 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$/) {
      printf "unparseable line %d: %s\n", NR, $0
      bad = 1
    }
  }
  END { exit bad }
' "$f"

fail() { echo "FAIL: $*" >&2; exit 1; }

echo "==> families"
for fam in growd_op_nanos growt_migration_wall_nanos; do
  grep -q "^# TYPE $fam histogram$" "$f" || fail "missing '# TYPE $fam histogram'"
  grep -q "^${fam}_bucket{" "$f"         || fail "$fam has no _bucket samples"
  grep -q "^${fam}_count" "$f"           || fail "$fam has no _count sample"
  grep -q "^${fam}_sum" "$f"             || fail "$fam has no _sum sample"
done
# Cumulative histograms must end at +Inf.
grep -q 'growd_op_nanos_bucket{[^}]*le="+Inf"}' "$f" || fail "growd_op_nanos lacks a +Inf bucket"

echo "==> migrations happened"
migs=$(awk '/^growt_migrations_total\{/ { s += $2 } END { print s+0 }' "$f")
[ "$migs" -gt 0 ] || fail "no completed migrations in scrape (growt_migrations_total = $migs)"
wallc=$(awk '$1 == "growt_migration_wall_nanos_count" { print $2+0 }' "$f")
[ "${wallc:-0}" -gt 0 ] || fail "migration wall histogram empty (count = ${wallc:-0})"

echo "OK: $migs migrations, wall-histogram count $wallc"
