package growt

import "time"

// config is the resolved functional-option state consumed by New.
type config struct {
	strategy Strategy
	capacity uint64
	bounded  bool
	expected uint64
	tsx      bool
	// hasher holds a user-supplied func(K) uint64; it is stored as any
	// because Option is deliberately non-generic (so option values can be
	// built, stored, and passed around without naming K), and re-typed
	// inside New[K, V] with a descriptive panic on mismatch.
	hasher any
	// Cache-layer settings (WithTTL, WithMaxEntries, WithSweepInterval).
	// New itself ignores them — they configure the internal/cache facade,
	// which shares this option vocabulary so one option list describes a
	// whole cache-over-map stack (see ResolveCacheSettings).
	cache CacheSettings
}

// defaultInitialCapacity is the starting cell count of growing tables
// (the paper's growing benchmarks start at 4096).
const defaultInitialCapacity = 4096

// defaultStringExpected sizes string-keyed maps when neither WithBounded
// nor WithCapacity is given. The §5.7 complex-key table is bounded, so a
// default bound must exist; 1<<16 keeps the untuned footprint at ~2 MiB.
const defaultStringExpected = 1 << 16

// Option configures a typed map built by New.
type Option func(*config)

// WithStrategy picks the growing variant (§7); default UAGrow, the
// paper's headline configuration. Ignored by bounded and string-keyed
// maps, which have no migration machinery.
func WithStrategy(s Strategy) Option {
	return func(c *config) { c.strategy = s }
}

// WithCapacity sets the initial cell count of growing tables (rounded up
// to a power of two by the core). For string-keyed maps — which are
// bounded, §5.7 — it is the expected element count instead.
func WithCapacity(cells uint64) Option {
	return func(c *config) { c.capacity = cells }
}

// WithBounded disables growing: the word core becomes a folklore table
// (§4) with capacity 2×expected, the paper's sizing rule. Inserting
// beyond the bound panics, exactly like the low-level table.
func WithBounded(expected uint64) Option {
	return func(c *config) {
		c.bounded = true
		c.expected = expected
	}
}

// WithTSX routes write operations through emulated restricted memory
// transactions (§6). Word-keyed maps only; string-keyed and generic-key
// maps ignore it for their non-word state.
func WithTSX() Option {
	return func(c *config) { c.tsx = true }
}

// CacheSettings is the resolved state of the cache-layer options. The
// plain map built by New has no expiry machinery — these settings are
// consumed by the cache facade (internal/cache, served by growd's
// -default-ttl/-max-entries flags), which accepts the same Option list
// as New and forwards the table-shaping options to it.
type CacheSettings struct {
	// TTL is the default time-to-live applied to entries stored without
	// an explicit deadline. Zero means entries are immortal unless given
	// a per-entry TTL.
	TTL time.Duration
	// MaxEntries bounds the cache's live element count; once the
	// (approximate) size exceeds it, writes evict sampled
	// least-recently-accessed entries. Zero means unbounded.
	MaxEntries uint64
	// SweepInterval is the tick of the background expiry sweeper. Zero
	// picks the cache's default; negative disables proactive sweeping
	// (expiry is then enforced lazily on read only).
	SweepInterval time.Duration
	// MaxBytes bounds the cache's approximate backing memory. The cache
	// divides it by the map's static per-entry byte estimate
	// (Map.EntryBytes) and enforces the resulting entry budget exactly
	// like MaxEntries; when both are set the tighter budget wins. Zero
	// means unbounded.
	MaxBytes uint64
}

// WithTTL sets the default time-to-live for cache entries stored without
// an explicit per-entry deadline. Consumed by the cache layer; the plain
// typed map ignores it.
func WithTTL(d time.Duration) Option {
	return func(c *config) { c.cache.TTL = d }
}

// WithMaxEntries bounds the cache's live element count: beyond it,
// writes evict sampled least-recently-accessed entries until the
// (approximate) size is back under budget. Consumed by the cache layer;
// the plain typed map ignores it.
func WithMaxEntries(n uint64) Option {
	return func(c *config) { c.cache.MaxEntries = n }
}

// WithMaxBytes bounds the cache's approximate backing memory. The
// budget is converted to an entry budget with the typed map's static
// per-entry cost estimate (cell words plus codec arena knowledge, see
// Map.EntryBytes); combined with WithMaxEntries the tighter budget
// wins. Consumed by the cache layer; the plain typed map ignores it.
func WithMaxBytes(n uint64) Option {
	return func(c *config) { c.cache.MaxBytes = n }
}

// WithSweepInterval sets the tick of the cache's background expiry
// sweeper (0 = cache default, negative = lazy expiry only). Consumed by
// the cache layer; the plain typed map ignores it.
func WithSweepInterval(d time.Duration) Option {
	return func(c *config) { c.cache.SweepInterval = d }
}

// ResolveCacheSettings applies opts and returns the cache-layer subset.
// It is how the cache facade reads its own options out of the shared
// Option vocabulary before forwarding the full list to New (which
// ignores the cache subset).
func ResolveCacheSettings(opts ...Option) CacheSettings {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return c.cache
}

// WithHasher supplies the 64-bit hash used by maps whose keys take the
// generic route (anything that is not a built-in integer, bool, or
// string type). K must equal the map's key type or New panics. The
// facade is collision-correct — equal hashes are resolved by comparing
// stored keys — so the hasher only affects performance, never results.
func WithHasher[K comparable](h func(K) uint64) Option {
	return func(c *config) { c.hasher = h }
}
