package growt

// config is the resolved functional-option state consumed by New.
type config struct {
	strategy Strategy
	capacity uint64
	bounded  bool
	expected uint64
	tsx      bool
	// hasher holds a user-supplied func(K) uint64; it is stored as any
	// because Option is deliberately non-generic (so option values can be
	// built, stored, and passed around without naming K), and re-typed
	// inside New[K, V] with a descriptive panic on mismatch.
	hasher any
}

// defaultInitialCapacity is the starting cell count of growing tables
// (the paper's growing benchmarks start at 4096).
const defaultInitialCapacity = 4096

// defaultStringExpected sizes string-keyed maps when neither WithBounded
// nor WithCapacity is given. The §5.7 complex-key table is bounded, so a
// default bound must exist; 1<<16 keeps the untuned footprint at ~2 MiB.
const defaultStringExpected = 1 << 16

// Option configures a typed map built by New.
type Option func(*config)

// WithStrategy picks the growing variant (§7); default UAGrow, the
// paper's headline configuration. Ignored by bounded and string-keyed
// maps, which have no migration machinery.
func WithStrategy(s Strategy) Option {
	return func(c *config) { c.strategy = s }
}

// WithCapacity sets the initial cell count of growing tables (rounded up
// to a power of two by the core). For string-keyed maps — which are
// bounded, §5.7 — it is the expected element count instead.
func WithCapacity(cells uint64) Option {
	return func(c *config) { c.capacity = cells }
}

// WithBounded disables growing: the word core becomes a folklore table
// (§4) with capacity 2×expected, the paper's sizing rule. Inserting
// beyond the bound panics, exactly like the low-level table.
func WithBounded(expected uint64) Option {
	return func(c *config) {
		c.bounded = true
		c.expected = expected
	}
}

// WithTSX routes write operations through emulated restricted memory
// transactions (§6). Word-keyed maps only; string-keyed and generic-key
// maps ignore it for their non-word state.
func WithTSX() Option {
	return func(c *config) { c.tsx = true }
}

// WithHasher supplies the 64-bit hash used by maps whose keys take the
// generic route (anything that is not a built-in integer, bool, or
// string type). K must equal the map's key type or New panics. The
// facade is collision-correct — equal hashes are resolved by comparing
// stored keys — so the hasher only affects performance, never results.
func WithHasher[K comparable](h func(K) uint64) Option {
	return func(c *config) { c.hasher = h }
}
