package growt

import (
	"fmt"
	"hash/maphash"
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/hashfn"
)

// This file is the codec layer of the typed facade: it maps arbitrary Go
// key and value types onto the 63-bit-key / 62-bit-value word domain of
// the core tables (§5.6/§5.7 "generalization to complex types").
//
// Keys of built-in integer or bool type convert bijectively to uint64 and
// ride the full-key wrapper (§5.6), so the entire value range of the Go
// type is legal. Values of built-in integer or bool type are stored
// directly when they fit 61 bits and escape into an indirection arena
// otherwise; all other value types always live in the arena, with the
// word cell holding the slot reference. The arenas are append-only —
// slots orphaned by overwrites or deletes are reclaimed only when the map
// itself is collected, mirroring the paper's decision (§5.7) to defer
// complex-type space reclamation to cleanup phases.

// directValMax is the largest value word stored inline; larger encodings
// carry escapeBit plus an arena slot reference. Both fit the core's
// 62-bit value domain.
const (
	directValMax = uint64(1)<<61 - 1
	escapeBit    = uint64(1) << 61
)

// wordKeyCodec returns the bijection between K and uint64 for built-in
// integer and bool key types. ok reports whether K takes the word route;
// strings and all other comparable types are handled elsewhere.
//
// The pointer puns are exact: each case fixes K's dynamic type, so &k
// really addresses a value of the punned type.
func wordKeyCodec[K comparable]() (enc func(K) uint64, dec func(uint64) K, ok bool) {
	var zk K
	switch any(zk).(type) {
	case uint64:
		return func(k K) uint64 { return *(*uint64)(unsafe.Pointer(&k)) },
			func(w uint64) K { return *(*K)(unsafe.Pointer(&w)) }, true
	case int64:
		return func(k K) uint64 { return uint64(*(*int64)(unsafe.Pointer(&k))) },
			func(w uint64) K { v := int64(w); return *(*K)(unsafe.Pointer(&v)) }, true
	case int:
		return func(k K) uint64 { return uint64(*(*int)(unsafe.Pointer(&k))) },
			func(w uint64) K { v := int(w); return *(*K)(unsafe.Pointer(&v)) }, true
	case uint:
		return func(k K) uint64 { return uint64(*(*uint)(unsafe.Pointer(&k))) },
			func(w uint64) K { v := uint(w); return *(*K)(unsafe.Pointer(&v)) }, true
	case uintptr:
		return func(k K) uint64 { return uint64(*(*uintptr)(unsafe.Pointer(&k))) },
			func(w uint64) K { v := uintptr(w); return *(*K)(unsafe.Pointer(&v)) }, true
	case uint32:
		return func(k K) uint64 { return uint64(*(*uint32)(unsafe.Pointer(&k))) },
			func(w uint64) K { v := uint32(w); return *(*K)(unsafe.Pointer(&v)) }, true
	case int32:
		return func(k K) uint64 { return uint64(uint32(*(*int32)(unsafe.Pointer(&k)))) },
			func(w uint64) K { v := int32(uint32(w)); return *(*K)(unsafe.Pointer(&v)) }, true
	case uint16:
		return func(k K) uint64 { return uint64(*(*uint16)(unsafe.Pointer(&k))) },
			func(w uint64) K { v := uint16(w); return *(*K)(unsafe.Pointer(&v)) }, true
	case int16:
		return func(k K) uint64 { return uint64(uint16(*(*int16)(unsafe.Pointer(&k)))) },
			func(w uint64) K { v := int16(uint16(w)); return *(*K)(unsafe.Pointer(&v)) }, true
	case uint8:
		return func(k K) uint64 { return uint64(*(*uint8)(unsafe.Pointer(&k))) },
			func(w uint64) K { v := uint8(w); return *(*K)(unsafe.Pointer(&v)) }, true
	case int8:
		return func(k K) uint64 { return uint64(uint8(*(*int8)(unsafe.Pointer(&k)))) },
			func(w uint64) K { v := int8(uint8(w)); return *(*K)(unsafe.Pointer(&v)) }, true
	case bool:
		return func(k K) uint64 {
				if *(*bool)(unsafe.Pointer(&k)) {
					return 1
				}
				return 0
			},
			func(w uint64) K { v := w != 0; return *(*K)(unsafe.Pointer(&v)) }, true
	}
	return nil, nil, false
}

// isStringKey reports whether K is exactly the built-in string type (the
// §5.7 route). Named string types take the generic route, which needs no
// per-type conversion.
func isStringKey[K comparable]() bool {
	var zk K
	_, ok := any(zk).(string)
	return ok
}

// asString / fromString convert between K and string inside the string
// backend, where K's dynamic type is known to be string.
func asString[K comparable](k K) string   { return *(*string)(unsafe.Pointer(&k)) }
func fromString[K comparable](s string) K { return *(*K)(unsafe.Pointer(&s)) }

// slotArena is the append-only indirection store for values that do not
// fit a word. Slot indices are reserved with an atomic bump, so
// concurrent writers only contend on the page-extension lock once per
// slotPageSize allocations. Pages are fixed-size so a published slot's
// address never moves; the page directory is replaced copy-on-write so
// readers index a consistent snapshot without any lock.
const slotPageSize = 512

type slotArena[V any] struct {
	mu    sync.Mutex // page extension only
	n     atomic.Uint64
	pages atomic.Pointer[[]*[slotPageSize]V]
}

// alloc stores v and returns its slot reference. Safe for concurrent use;
// the reference must be published through an atomic (the word cell) so
// readers observe the slot write.
func (a *slotArena[V]) alloc(v V) uint64 {
	idx := a.n.Add(1) - 1
	page := idx / slotPageSize
	for {
		var pages []*[slotPageSize]V
		if p := a.pages.Load(); p != nil {
			pages = *p
		}
		if page < uint64(len(pages)) {
			pages[page][idx%slotPageSize] = v
			return idx
		}
		a.extend(page)
	}
}

// extend grows the page directory to cover page (copy-on-write, under
// the extension lock).
func (a *slotArena[V]) extend(page uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var cur []*[slotPageSize]V
	if p := a.pages.Load(); p != nil {
		cur = *p
	}
	if page < uint64(len(cur)) {
		return // another writer extended past us
	}
	next := make([]*[slotPageSize]V, page+1)
	copy(next, cur)
	for i := len(cur); i < len(next); i++ {
		next[i] = new([slotPageSize]V)
	}
	a.pages.Store(&next)
}

// get returns the value stored in slot idx. Slots are immutable once
// published.
func (a *slotArena[V]) get(idx uint64) V {
	pages := *a.pages.Load()
	return pages[idx/slotPageSize][idx%slotPageSize]
}

// valCodec encodes values of type V into the core's 62-bit word domain
// and back. tryEnc is the allocation-free attempt: it succeeds exactly
// when enc would store inline, letting callers avoid orphaning an arena
// slot on operations that may not end up storing the operand.
//
// slotBytes is the codec's static estimate of arena bytes per stored
// value: zero for codecs that store (typically) inline, sizeof(V) for
// arena-only wide values. WithMaxBytes converts its byte budget into an
// entry budget with it.
type valCodec[V any] struct {
	enc       func(V) uint64
	dec       func(uint64) V
	tryEnc    func(V) (uint64, bool)
	slotBytes uint64
}

// inlineCodec wraps an always-inline bijection (narrow integers, bool):
// tryEnc never fails.
func inlineCodec[V any](enc func(V) uint64, dec func(uint64) V) *valCodec[V] {
	return &valCodec[V]{
		enc: enc, dec: dec,
		tryEnc: func(v V) (uint64, bool) { return enc(v), true },
	}
}

// newValCodec builds the value codec for V: narrow integers and bool are
// always inline, 64-bit integers are inline with an arena escape for
// magnitudes ≥ 2^61 (including all negatives), and every other type is
// arena-only.
func newValCodec[V any]() *valCodec[V] {
	var zv V
	switch any(zv).(type) {
	case uint32:
		return inlineCodec[V](
			func(v V) uint64 { return uint64(*(*uint32)(unsafe.Pointer(&v))) },
			func(w uint64) V { v := uint32(w); return *(*V)(unsafe.Pointer(&v)) })
	case int32:
		return inlineCodec[V](
			func(v V) uint64 { return uint64(uint32(*(*int32)(unsafe.Pointer(&v)))) },
			func(w uint64) V { v := int32(uint32(w)); return *(*V)(unsafe.Pointer(&v)) })
	case uint16:
		return inlineCodec[V](
			func(v V) uint64 { return uint64(*(*uint16)(unsafe.Pointer(&v))) },
			func(w uint64) V { v := uint16(w); return *(*V)(unsafe.Pointer(&v)) })
	case int16:
		return inlineCodec[V](
			func(v V) uint64 { return uint64(uint16(*(*int16)(unsafe.Pointer(&v)))) },
			func(w uint64) V { v := int16(uint16(w)); return *(*V)(unsafe.Pointer(&v)) })
	case uint8:
		return inlineCodec[V](
			func(v V) uint64 { return uint64(*(*uint8)(unsafe.Pointer(&v))) },
			func(w uint64) V { v := uint8(w); return *(*V)(unsafe.Pointer(&v)) })
	case int8:
		return inlineCodec[V](
			func(v V) uint64 { return uint64(uint8(*(*int8)(unsafe.Pointer(&v)))) },
			func(w uint64) V { v := int8(uint8(w)); return *(*V)(unsafe.Pointer(&v)) })
	case bool:
		return inlineCodec[V](
			func(v V) uint64 {
				if *(*bool)(unsafe.Pointer(&v)) {
					return 1
				}
				return 0
			},
			func(w uint64) V { v := w != 0; return *(*V)(unsafe.Pointer(&v)) })
	case uint64:
		return escapingCodec[V](func(v V) uint64 { return *(*uint64)(unsafe.Pointer(&v)) },
			func(w uint64) V { return *(*V)(unsafe.Pointer(&w)) })
	case int64:
		return escapingCodec[V](func(v V) uint64 { return uint64(*(*int64)(unsafe.Pointer(&v))) },
			func(w uint64) V { v := int64(w); return *(*V)(unsafe.Pointer(&v)) })
	case int:
		return escapingCodec[V](func(v V) uint64 { return uint64(*(*int)(unsafe.Pointer(&v))) },
			func(w uint64) V { v := int(w); return *(*V)(unsafe.Pointer(&v)) })
	case uint:
		return escapingCodec[V](func(v V) uint64 { return uint64(*(*uint)(unsafe.Pointer(&v))) },
			func(w uint64) V { v := uint(w); return *(*V)(unsafe.Pointer(&v)) })
	case uintptr:
		return escapingCodec[V](func(v V) uint64 { return uint64(*(*uintptr)(unsafe.Pointer(&v))) },
			func(w uint64) V { v := uintptr(w); return *(*V)(unsafe.Pointer(&v)) })
	}
	// Wide values: every value lives in the arena, the word is the slot.
	ar := &slotArena[V]{}
	return &valCodec[V]{
		enc:       func(v V) uint64 { return ar.alloc(v) },
		dec:       func(w uint64) V { return ar.get(w) },
		tryEnc:    func(V) (uint64, bool) { return 0, false },
		slotBytes: uint64(unsafe.Sizeof(zv)),
	}
}

// escapingCodec wraps a 64-bit integer bijection with the inline/arena
// split: words ≤ directValMax store inline, everything else (large
// magnitudes, negatives) escapes to a slot.
func escapingCodec[V any](toWord func(V) uint64, fromWord func(uint64) V) *valCodec[V] {
	ar := &slotArena[V]{}
	return &valCodec[V]{
		enc: func(v V) uint64 {
			if w := toWord(v); w <= directValMax {
				return w
			}
			return escapeBit | ar.alloc(v)
		},
		dec: func(w uint64) V {
			if w <= directValMax {
				return fromWord(w)
			}
			return ar.get(w &^ escapeBit)
		},
		tryEnc: func(v V) (uint64, bool) {
			w := toWord(v)
			return w, w <= directValMax
		},
	}
}

// defaultHasher builds the 64-bit hash for generic-route keys. Floats get
// a dedicated unsafe fast path; everything else is canonicalized by a
// reflect walk into a seeded maphash. The walk respects ==-equality
// (±0.0 hash alike, pointers/channels hash by identity), so two keys
// that compare equal always hash equal. Collisions between distinct
// keys are resolved by comparing stored keys, so hash quality affects
// only speed — supply WithHasher for hot generic-keyed maps.
func defaultHasher[K comparable]() func(K) uint64 {
	var zk K
	switch any(zk).(type) {
	case float64:
		return func(k K) uint64 {
			f := *(*float64)(unsafe.Pointer(&k))
			if f == 0 {
				f = 0 // collapse -0 onto +0: they compare equal
			}
			return hashfn.Hash64(math.Float64bits(f))
		}
	case float32:
		return func(k K) uint64 {
			f := *(*float32)(unsafe.Pointer(&k))
			if f == 0 {
				f = 0
			}
			return hashfn.Hash64(uint64(math.Float32bits(f)))
		}
	}
	seed := maphash.MakeSeed()
	return func(k K) uint64 {
		var h maphash.Hash
		h.SetSeed(seed)
		hashReflect(&h, reflect.ValueOf(&k).Elem())
		return h.Sum64()
	}
}

// hashReflect canonicalizes v into h, covering every comparable kind —
// including interface kinds, which satisfy the comparable constraint as
// type arguments since Go 1.20 (==-equal interfaces have the same
// dynamic type and equal dynamic values, so both are hashed). The kind
// accessors below do not require exported struct fields.
func hashReflect(h *maphash.Hash, v reflect.Value) {
	var buf [8]byte
	le := func(u uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(u >> (8 * i))
		}
		h.Write(buf[:])
	}
	switch v.Kind() {
	case reflect.Bool:
		if v.Bool() {
			h.WriteByte(1)
		} else {
			h.WriteByte(0)
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		le(uint64(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		le(v.Uint())
	case reflect.Float32, reflect.Float64:
		f := v.Float()
		if f == 0 {
			f = 0 // ±0 compare equal, must hash equal
		}
		le(math.Float64bits(f))
	case reflect.Complex64, reflect.Complex128:
		c := v.Complex()
		re, im := real(c), imag(c)
		if re == 0 {
			re = 0
		}
		if im == 0 {
			im = 0
		}
		le(math.Float64bits(re))
		le(math.Float64bits(im))
	case reflect.String:
		s := v.String()
		le(uint64(len(s))) // length prefix: no cross-field ambiguity
		h.WriteString(s)
	case reflect.Pointer, reflect.Chan, reflect.UnsafePointer:
		le(uint64(v.Pointer())) // identity, matching == semantics
	case reflect.Interface:
		e := v.Elem()
		if !e.IsValid() {
			le(0) // nil interface
			return
		}
		// Interface equality is dynamic type + dynamic value; hash both.
		// (An incomparable dynamic value would make == panic anyway,
		// exactly like a built-in map.)
		s := e.Type().String()
		le(uint64(len(s)))
		h.WriteString(s)
		hashReflect(h, e)
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			hashReflect(h, v.Field(i))
		}
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			hashReflect(h, v.Index(i))
		}
	default:
		// Unreachable for strictly comparable K; keep a deterministic
		// fallback rather than panicking inside a hash.
		fmt.Fprintf(h, "%v", v)
	}
}
