// Package growt is a Go implementation of the concurrent hash tables of
//
//	Maier, Sanders, Dementiev: "Concurrent Hash Tables: Fast and
//	General?(!)", PPoPP 2016 (full version arXiv:1601.04017).
//
// It provides the bounded lock-free linear-probing "folklore" table (§4
// of the paper), the four adaptively growing variants uaGrow / usGrow /
// paGrow / psGrow built on scalable cluster migration (§5, §7), the
// transaction-assisted tsxfolklore variants (§6, emulated HTM), the full
// 64-bit key-space wrapper (§5.6), and a complex-key string map (§5.7).
//
// # Quick start
//
// The primary API is the typed facade: New builds a Map[K, V] for any
// comparable key type and any value type, routing to the right core
// automatically (integer keys → §5.6 full-key word tables, string keys
// → the §5.7 string table, everything else → a hash-to-64-bit codec):
//
//	m := growt.New[uint64, uint64]()        // uaGrow, growing
//	h := m.Handle()                         // one handle per goroutine
//	h.Insert(42, 1)
//	h.InsertOrUpdate(42, 1, growt.Add)      // atomic aggregation
//	v, ok := h.Find(42)
//	h.Delete(42)
//
// Handles (§5.1) are goroutine-private: create one per goroutine, never
// share them. The Map itself is freely shareable, and also offers
// handle-free sync.Map-shaped methods (Load / Store / LoadOrStore /
// Compute / Delete) backed by an internal handle pool:
//
//	counts := growt.New[string, int]()
//	counts.Compute("gopher", 1, growt.Add)
//	n, ok := counts.Load("gopher")
//
// Configuration is by functional options: WithStrategy picks the growing
// variant (§7), WithBounded freezes capacity (§4 folklore), WithTSX uses
// emulated memory transactions (§6), WithHasher supplies the hash for
// generic key types.
//
// # The word-sized layer
//
// The typed facade is a veneer; the paper's tables themselves speak
// 63-bit nonzero keys and 62-bit values (the spare bits drive the cell
// protocol). That layer stays public for benchmarks and embedders:
// NewMap/Options build a WordMap, NewFullKeyMap restores the full 64-bit
// key space (§5.6), NewStringMap is the raw string table (§5.7), and the
// Close/ApproxSize/Range helpers probe optional capabilities by type
// assertion.
package growt

import (
	"repro/internal/core"
	"repro/internal/stringmap"
	"repro/internal/tables"
)

// UpdateFn computes a new value from the current value and the operand.
type UpdateFn = tables.UpdateFn

// WordHandle is a goroutine-private accessor of a word-sized table
// (§5.1). The typed facade's analogue is Handle[K, V].
type WordHandle = tables.Handle

// WordMap is a shared word-sized concurrent hash table — the low-level
// layer beneath Map[K, V].
type WordMap = tables.Interface

// Cursor is a resumable iteration position for RangeFrom: a
// generation-tagged slot index. The zero Cursor starts from the
// beginning; a cursor whose generation was retired by a migration
// restarts cleanly (re-visits possible, no stable key skipped).
type Cursor = tables.Cursor

// CursorRanger is the optional capability of word-sized tables whose
// iteration can resume from a Cursor.
type CursorRanger = tables.CursorRanger

// AddFn adds the operand to the stored value (atomic aggregation).
var AddFn = tables.AddFn

// Overwrite replaces the stored value with the operand.
var Overwrite = tables.Overwrite

// Strategy selects a growing variant (§7).
type Strategy = core.Strategy

// The four growing strategies: {user-thread, pool} recruitment ×
// {asynchronous marking, synchronized} consistency.
const (
	UAGrow = core.UA
	USGrow = core.US
	PAGrow = core.PA
	PSGrow = core.PS
)

const (
	// MaxKey is the largest key of the word-sized tables.
	MaxKey = core.MaxKey
	// MaxValue is the largest value of the word-sized tables.
	MaxValue = core.MaxValue
)

// Options configures NewMap.
type Options struct {
	// Strategy picks the growing variant; default UAGrow (the paper's
	// headline configuration).
	Strategy Strategy
	// InitialCapacity is the starting cell count; default 4096 (the
	// paper's growing benchmarks start there). Rounded up to a power of
	// two.
	InitialCapacity uint64
	// Bounded disables growing: the table is a folklore table with
	// capacity 2×Expected (§4). Expected must then be set.
	Bounded bool
	// Expected is the expected number of elements for bounded tables.
	Expected uint64
	// TSX routes write operations through emulated restricted memory
	// transactions (§6).
	TSX bool
}

// NewMap builds a word-sized concurrent hash table per opts.
func NewMap(opts Options) WordMap {
	if opts.Bounded {
		n := opts.Expected
		if n == 0 {
			n = 1 << 20
		}
		if opts.TSX {
			return core.NewTSXFolklore(n)
		}
		return core.NewFolklore(n)
	}
	capacity := opts.InitialCapacity
	if capacity == 0 {
		capacity = defaultInitialCapacity
	}
	if opts.TSX {
		return core.NewGrowTSX(opts.Strategy, capacity)
	}
	return core.NewGrow(opts.Strategy, capacity)
}

// NewFolklore builds the bounded folklore table of §4 sized for expected
// elements (capacity 2×expected, the paper's rule).
func NewFolklore(expected uint64) *core.Folklore { return core.NewFolklore(expected) }

// NewGrow builds a growing table with the given strategy (§5, §7).
func NewGrow(s Strategy, initialCapacity uint64) *core.Grow {
	return core.NewGrow(s, initialCapacity)
}

// NewFullKeyMap wraps tables built by mk into a map accepting the entire
// 64-bit key space (§5.6 two-subtable construction).
func NewFullKeyMap(mk func() WordMap) *core.FullKeys { return core.NewFullKeys(mk) }

// StringMap is the complex-key table of §5.7 (string keys, arena
// storage, signature-accelerated probing).
type StringMap = stringmap.Map

// NewStringMap builds a bounded string-keyed map sized for expected
// elements.
func NewStringMap(expected uint64) *StringMap { return stringmap.New(expected) }

// Close releases background resources if the map owns any (the dedicated
// migration pools of paGrow/psGrow). Safe to call on any WordMap.
func Close(m WordMap) {
	if c, ok := m.(tables.Closer); ok {
		c.Close()
	}
}

// ApproxSize returns the map's size estimate (§5.2) if it supports one.
func ApproxSize(m WordMap) (uint64, bool) {
	if s, ok := m.(tables.Sizer); ok {
		return s.ApproxSize(), true
	}
	return 0, false
}

// Range iterates the map if it supports iteration (quiescent use only).
func Range(m WordMap, f func(k, v uint64) bool) bool {
	if r, ok := m.(tables.Ranger); ok {
		r.Range(f)
		return true
	}
	return false
}

// RangeFrom resumes iteration at cur if the map supports resumable
// cursors (quiescent use only). ok is false when it does not; next and
// wrapped follow CursorRanger semantics.
func RangeFrom(m WordMap, cur Cursor, f func(k, v uint64) bool) (next Cursor, wrapped, ok bool) {
	if r, isCR := m.(tables.CursorRanger); isCR {
		next, wrapped = r.RangeFrom(cur, f)
		return next, wrapped, true
	}
	return Cursor{}, false, false
}
