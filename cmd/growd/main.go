// Command growd serves a typed concurrent map over TCP with the
// pipelined binary protocol of internal/server (docs/PROTOCOL.md):
// GET/SET/DEL/CAS/INCR/SIZE, the cache opcodes SETEX/EXPIRE/TTL, the
// batch opcodes MGET/MSET, plus an in-protocol PING that doubles as the
// health check. The table configuration mirrors the library's
// functional options, so the served map is the same engine the
// benchmarks measure; the cache flags turn the same binary into a
// bounded TTL cache (internal/cache) without any global lock.
//
//	growd                                  # uaGrow table on :7420
//	growd -addr :9000 -strategy usGrow
//	growd -capacity 1048576 -tsx
//	growd -default-ttl 30s -max-entries 1000000   # bounded cache mode
//	growd -debug :8420                     # debug HTTP: /metrics, /debug/vars, /debug/pprof, /debug/events
//	growd -log-format json -slow-op 500us  # structured logs, tighter slow-op capture
//
// The -debug listener is the observability surface: Prometheus text at
// /metrics (the process-wide obs registry — per-opcode latency
// histograms, migration-pause tracing, cache counters, plus the
// runtime/metrics bridge's GC-pause and sched-latency gauges; see
// docs/OBSERVABILITY.md), expvar at /debug/vars, net/http/pprof at
// /debug/pprof, and the flight recorder's recent event window as JSON
// at /debug/events. The same registry is served in-protocol by the
// STATS opcode and the slow-op log by SLOWLOG, so clients can scrape
// without any HTTP listener at all.
//
// Logs go through log/slog, component-tagged; -log-format picks the
// text (default) or JSON handler. SIGQUIT dumps the flight-recorder
// window and the slow-op log to stderr without exiting — the classic
// "what is it doing right now" signal. growd drains gracefully on
// SIGINT/SIGTERM: the listener closes immediately, live sessions get
// -drain to finish their pipelines, then stragglers are force-closed.
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	_ "net/http/pprof" // profiling handlers on the -debug listener
	"os"
	"os/signal"
	"syscall"
	"time"

	growt "repro"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", server.DefaultAddr, "listen address")
		strategy  = flag.String("strategy", "uaGrow", "growing strategy: uaGrow, usGrow, paGrow, psGrow")
		capacity  = flag.Uint64("capacity", 0, "initial cell count (0 = library default)")
		tsx       = flag.Bool("tsx", false, "route writes through emulated restricted transactions")
		debug     = flag.String("debug", "", "optional HTTP address exposing /metrics, /debug/vars, /debug/pprof, /debug/events")
		drain     = flag.Duration("drain", 5*time.Second, "graceful shutdown budget before force-closing sessions")
		maxFrame  = flag.Uint("maxframe", server.DefaultMaxFrame, "per-frame byte cap")
		logFormat = flag.String("log-format", "text", "log handler: text or json")
		slowOp    = flag.Duration("slow-op", 0, "slow-op log latency threshold (0 = server default 1ms, negative = disabled)")

		defaultTTL = flag.Duration("default-ttl", 0, "TTL applied to SET/MSET entries (0 = immortal; SETEX always wins)")
		maxEntries = flag.Uint64("max-entries", 0, "entry budget; beyond it writes evict sampled-LRU entries (0 = unbounded)")
		maxBytes   = flag.Uint64("max-bytes", 0, "approximate memory budget, converted to an entry budget via the map's per-entry cost; tighter of -max-entries/-max-bytes wins (0 = unbounded)")
		sweepEvery = flag.Duration("sweep-interval", 0, "background expiry sweep tick (0 = default 1s, negative = lazy expiry only)")
	)
	flag.Parse()

	logger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "growd: %v\n", err)
		os.Exit(1)
	}
	slog.SetDefault(logger)
	log := logger.With("component", "growd")

	if *maxFrame == 0 || *maxFrame > math.MaxUint32 {
		log.Error("-maxframe out of range", "max", uint(math.MaxUint32))
		os.Exit(1)
	}

	opts, err := tableOptions(*strategy, *capacity, *tsx)
	if err != nil {
		log.Error("bad table flags", "err", err)
		os.Exit(1)
	}
	opts = append(opts,
		growt.WithTTL(*defaultTTL),
		growt.WithMaxEntries(*maxEntries),
		growt.WithMaxBytes(*maxBytes),
		growt.WithSweepInterval(*sweepEvery),
	)
	st := server.NewStore(opts...)
	defer st.Close()
	// obs.Default is where the core (migration pauses) and cache layers
	// already register; handing it to the server puts the per-opcode
	// series in the same registry, so one scrape — /metrics or the
	// STATS opcode — sees the whole stack. The runtime bridge joins the
	// same registry: every scrape also refreshes GC-pause,
	// sched-latency, and heap gauges, so a tail spike can be attributed
	// to the collector instead of the table when that is the truth.
	obs.RegisterRuntimeMetrics(obs.Default)
	srv := server.New(st, server.Options{
		MaxFrame:        uint32(*maxFrame),
		Obs:             obs.Default,
		SlowOpThreshold: *slowOp,
	})

	// Counters — including the cache layer's hits/misses/expired/evicted
	// — ride expvar so any scraper of /debug/vars sees them next to the
	// runtime's memstats.
	expvar.Publish("growd", expvar.Func(func() any { return srv.Stats() }))
	expvar.Publish("growd.size", expvar.Func(func() any { return st.C.Len() }))
	if *debug != "" {
		dlog := logger.With("component", "debug-http")
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := obs.Default.WritePrometheus(w); err != nil {
				dlog.Warn("/metrics write failed", "err", err)
			}
		})
		// The flight recorder's recent window, time-merged across
		// shards, as a JSON array of {ts_nanos, kind, a0, a1, a2}.
		http.HandleFunc("/debug/events", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := trace.WriteJSON(w, trace.Default.Drain()); err != nil {
				dlog.Warn("/debug/events write failed", "err", err)
			}
		})
		// The slow-op log, same body the SLOWLOG opcode returns.
		http.HandleFunc("/debug/slowlog", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := json.NewEncoder(w).Encode(srv.SlowOps()); err != nil {
				dlog.Warn("/debug/slowlog write failed", "err", err)
			}
		})
		go func() {
			if err := http.ListenAndServe(*debug, nil); err != nil {
				dlog.Error("debug server failed", "addr", *debug, "err", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}

	// SIGQUIT dumps the recorder window and slow-op log to stderr and
	// keeps serving — Go's own SIGQUIT goroutine-dump behavior is
	// disabled for the notified signal, which is the point: the
	// flight-recorder view is the useful "what is it doing" answer.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		qlog := logger.With("component", "dump")
		for range quit {
			evs := trace.Default.Drain()
			qlog.Info("SIGQUIT event dump", "events", len(evs))
			if err := trace.WriteJSON(os.Stderr, evs); err != nil {
				qlog.Warn("event dump failed", "err", err)
			}
			slow := srv.SlowOps()
			qlog.Info("SIGQUIT slowlog dump", "entries", len(slow))
			if err := json.NewEncoder(os.Stderr).Encode(slow); err != nil {
				qlog.Warn("slowlog dump failed", "err", err)
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		s := <-sig
		log.Info("draining", "signal", s.String(), "budget", *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Warn("shutdown incomplete", "err", err)
		}
	}()

	serveLog := log.With("strategy", *strategy, "addr", ln.Addr().String())
	if *defaultTTL > 0 || *maxEntries > 0 || *maxBytes > 0 {
		serveLog = serveLog.With(
			"default_ttl", *defaultTTL,
			"max_entries", *maxEntries,
			"max_bytes", *maxBytes,
		)
	}
	serveLog.Info("serving")
	if err := srv.Serve(ln); err != nil {
		log.Error("serve failed", "err", err)
		os.Exit(1)
	}
	// Serve returns nil only on the Shutdown path; wait for the drain to
	// actually finish (the listener closing is its first step, not its
	// last) so in-flight pipelines get their responses before exit.
	<-shutdownDone
	log.Info("bye", "ops_served", srv.Stats().Ops)
}

// newLogger builds the process logger per -log-format. Both handlers
// write to stderr so the data path owns stdout.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (text, json)", format)
	}
}

// tableOptions maps the flags onto the library's functional options.
func tableOptions(strategy string, capacity uint64, tsx bool) ([]growt.Option, error) {
	var opts []growt.Option
	switch strategy {
	case "uaGrow":
		opts = append(opts, growt.WithStrategy(growt.UAGrow))
	case "usGrow":
		opts = append(opts, growt.WithStrategy(growt.USGrow))
	case "paGrow":
		opts = append(opts, growt.WithStrategy(growt.PAGrow))
	case "psGrow":
		opts = append(opts, growt.WithStrategy(growt.PSGrow))
	default:
		return nil, fmt.Errorf("unknown strategy %q (uaGrow, usGrow, paGrow, psGrow)", strategy)
	}
	if capacity > 0 {
		opts = append(opts, growt.WithCapacity(capacity))
	}
	if tsx {
		opts = append(opts, growt.WithTSX())
	}
	return opts, nil
}
