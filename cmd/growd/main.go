// Command growd serves a typed concurrent map over TCP with the
// pipelined binary protocol of internal/server (docs/PROTOCOL.md):
// GET/SET/DEL/CAS/INCR/SIZE, the cache opcodes SETEX/EXPIRE/TTL, the
// batch opcodes MGET/MSET, plus an in-protocol PING that doubles as the
// health check. The table configuration mirrors the library's
// functional options, so the served map is the same engine the
// benchmarks measure; the cache flags turn the same binary into a
// bounded TTL cache (internal/cache) without any global lock.
//
//	growd                                  # uaGrow table on :7420
//	growd -addr :9000 -strategy usGrow
//	growd -capacity 1048576 -tsx
//	growd -default-ttl 30s -max-entries 1000000   # bounded cache mode
//	growd -debug :8420                     # debug HTTP: /metrics, /debug/vars, /debug/pprof
//
// The -debug listener is the observability surface: Prometheus text at
// /metrics (the process-wide obs registry — per-opcode latency
// histograms, migration-pause tracing, cache counters; see
// docs/OBSERVABILITY.md), expvar at /debug/vars, and net/http/pprof at
// /debug/pprof. The same registry is served in-protocol by the STATS
// opcode, so clients can scrape without any HTTP listener at all.
//
// growd drains gracefully on SIGINT/SIGTERM: the listener closes
// immediately, live sessions get -drain to finish their pipelines, then
// stragglers are force-closed.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	_ "net/http/pprof" // profiling handlers on the -debug listener
	"os"
	"os/signal"
	"syscall"
	"time"

	growt "repro"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", server.DefaultAddr, "listen address")
		strategy = flag.String("strategy", "uaGrow", "growing strategy: uaGrow, usGrow, paGrow, psGrow")
		capacity = flag.Uint64("capacity", 0, "initial cell count (0 = library default)")
		tsx      = flag.Bool("tsx", false, "route writes through emulated restricted transactions")
		debug    = flag.String("debug", "", "optional HTTP address exposing expvar counters at /debug/vars")
		drain    = flag.Duration("drain", 5*time.Second, "graceful shutdown budget before force-closing sessions")
		maxFrame = flag.Uint("maxframe", server.DefaultMaxFrame, "per-frame byte cap")

		defaultTTL = flag.Duration("default-ttl", 0, "TTL applied to SET/MSET entries (0 = immortal; SETEX always wins)")
		maxEntries = flag.Uint64("max-entries", 0, "entry budget; beyond it writes evict sampled-LRU entries (0 = unbounded)")
		maxBytes   = flag.Uint64("max-bytes", 0, "approximate memory budget, converted to an entry budget via the map's per-entry cost; tighter of -max-entries/-max-bytes wins (0 = unbounded)")
		sweepEvery = flag.Duration("sweep-interval", 0, "background expiry sweep tick (0 = default 1s, negative = lazy expiry only)")
	)
	flag.Parse()
	if *maxFrame == 0 || *maxFrame > math.MaxUint32 {
		log.Fatalf("growd: -maxframe must be 1..%d", uint(math.MaxUint32))
	}

	opts, err := tableOptions(*strategy, *capacity, *tsx)
	if err != nil {
		log.Fatalf("growd: %v", err)
	}
	opts = append(opts,
		growt.WithTTL(*defaultTTL),
		growt.WithMaxEntries(*maxEntries),
		growt.WithMaxBytes(*maxBytes),
		growt.WithSweepInterval(*sweepEvery),
	)
	st := server.NewStore(opts...)
	defer st.Close()
	// obs.Default is where the core (migration pauses) and cache layers
	// already register; handing it to the server puts the per-opcode
	// series in the same registry, so one scrape — /metrics or the
	// STATS opcode — sees the whole stack.
	srv := server.New(st, server.Options{MaxFrame: uint32(*maxFrame), Obs: obs.Default})

	// Counters — including the cache layer's hits/misses/expired/evicted
	// — ride expvar so any scraper of /debug/vars sees them next to the
	// runtime's memstats.
	expvar.Publish("growd", expvar.Func(func() any { return srv.Stats() }))
	expvar.Publish("growd.size", expvar.Func(func() any { return st.C.Len() }))
	if *debug != "" {
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := obs.Default.WritePrometheus(w); err != nil {
				log.Printf("growd: /metrics: %v", err)
			}
		})
		go func() {
			if err := http.ListenAndServe(*debug, nil); err != nil {
				log.Printf("growd: debug server: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("growd: %v", err)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		s := <-sig
		log.Printf("growd: %v: draining (budget %v)", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("growd: shutdown: %v", err)
		}
	}()

	cacheMode := ""
	if *defaultTTL > 0 || *maxEntries > 0 || *maxBytes > 0 {
		cacheMode = fmt.Sprintf(" (cache: default-ttl %v, max-entries %d, max-bytes %d)",
			*defaultTTL, *maxEntries, *maxBytes)
	}
	log.Printf("growd: serving %s table on %s%s", *strategy, ln.Addr(), cacheMode)
	if err := srv.Serve(ln); err != nil {
		log.Fatalf("growd: %v", err)
	}
	// Serve returns nil only on the Shutdown path; wait for the drain to
	// actually finish (the listener closing is its first step, not its
	// last) so in-flight pipelines get their responses before exit.
	<-shutdownDone
	log.Printf("growd: bye (%d ops served)", srv.Stats().Ops)
}

// tableOptions maps the flags onto the library's functional options.
func tableOptions(strategy string, capacity uint64, tsx bool) ([]growt.Option, error) {
	var opts []growt.Option
	switch strategy {
	case "uaGrow":
		opts = append(opts, growt.WithStrategy(growt.UAGrow))
	case "usGrow":
		opts = append(opts, growt.WithStrategy(growt.USGrow))
	case "paGrow":
		opts = append(opts, growt.WithStrategy(growt.PAGrow))
	case "psGrow":
		opts = append(opts, growt.WithStrategy(growt.PSGrow))
	default:
		return nil, fmt.Errorf("unknown strategy %q (uaGrow, usGrow, paGrow, psGrow)", strategy)
	}
	if capacity > 0 {
		opts = append(opts, growt.WithCapacity(capacity))
	}
	if tsx {
		opts = append(opts, growt.WithTSX())
	}
	return opts, nil
}
