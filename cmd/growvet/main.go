// Command growvet is the repository's custom vet tool: six analyzers
// that turn the cell protocol's state-machine invariants, the handle
// pool's release discipline, the CAS retry loops' re-read obligation,
// the wire contract's dispatch/encode/decode pairing, and the hot
// paths' zero-allocation budget into build-time errors.
//
// Run it through cmd/go, which feeds it one package at a time:
//
//	go build -o /tmp/growvet ./cmd/growvet
//	go vet -vettool=/tmp/growvet ./...
//
// See docs/ANALYSIS.md for what each analyzer enforces and the
// //growt: directives that drive them.
package main

import (
	"repro/internal/analysis/atomiccell"
	"repro/internal/analysis/cellreread"
	"repro/internal/analysis/handleleak"
	"repro/internal/analysis/hotpathalloc"
	"repro/internal/analysis/statusswitch"
	"repro/internal/analysis/unit"
	"repro/internal/analysis/wirepair"
)

func main() {
	unit.Main(
		atomiccell.Analyzer,
		cellreread.Analyzer,
		handleleak.Analyzer,
		statusswitch.Analyzer,
		hotpathalloc.Analyzer,
		wirepair.Analyzer,
	)
}
