// Command growload drives a growd server (cmd/growd) with a skewed
// GET/SET mix through the pipelined client and reports end-to-end
// serving throughput and latency percentiles. Two admission modes:
//
//   - closed loop (default): -conns × -depth workers each keep exactly
//     one request outstanding, so admission is completion-paced — the
//     classic throughput probe;
//   - open loop (-rate N): requests are admitted on a fixed schedule of
//     N ops/s regardless of completions, and each latency is measured
//     from the *scheduled* admission time, so queueing delay under
//     overload is charged to the server — the serving-tail probe.
//
// Key skew is the paper's Zipf generator (internal/zipfgen); the mix is
// -writep percent SETs against GETs on an 8-byte key universe of
// -keys, prefilled before timing starts.
//
// With -ttl the run becomes an expiring workload: -ttlp percent of the
// writes are SETEX with that TTL, entries die under the load, and the
// summary (and the BENCH record) reports the observed GET hit-rate —
// the cache-serving probe against a growd running -default-ttl /
// -max-entries.
//
// Every run (unless -stats=false) scrapes the server's obs registry
// over the STATS opcode before and after the measured window and
// subtracts the snapshots, so the summary and the BENCH record carry
// the server's own view of that exact window: per-opcode exec latency
// percentiles, migration counts and pause histograms, and sweeper
// progress — figures a client-side histogram cannot see.
//
//	growload -addr 127.0.0.1:7420 -conns 4 -depth 16 -duration 5s
//	growload -rate 50000 -skew 1.05 -writep 20 -json BENCH_service.json
//	growload -ttl 500ms -writep 30 -json BENCH_cache.json
//
// With -json the run is recorded as a service-kind record in the
// versioned BENCH report schema (internal/bench/report), so
// `growbench -compare` gates serving performance exactly like the
// fig-experiments.
package main

import (
	"encoding/binary"
	stderrors "errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench/lathist"
	"repro/internal/bench/report"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/zipfgen"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1"+server.DefaultAddr, "growd address")
		conns    = flag.Int("conns", 4, "pooled connections")
		depth    = flag.Int("depth", 16, "closed-loop workers per connection (the pipeline depth)")
		rate     = flag.Float64("rate", 0, "open-loop admission rate in ops/s (0 = closed loop)")
		duration = flag.Duration("duration", 5*time.Second, "measured run length")
		keys     = flag.Uint64("keys", 100000, "key universe size")
		skew     = flag.Float64("skew", 0.99, "Zipf exponent over the key universe")
		writep   = flag.Int("writep", 10, "percent of operations that are SETs")
		valsize  = flag.Int("valsize", 32, "SET value size in bytes")
		ttl      = flag.Duration("ttl", 0, "expiring-workload mode: TTL carried by SETEX writes (0 = plain SETs)")
		ttlp     = flag.Int("ttlp", 100, "percent of writes issued as SETEX when -ttl is set")
		prefill  = flag.Bool("prefill", true, "SET every key once before timing starts")
		dialwait = flag.Duration("dialwait", 10*time.Second, "keep retrying the initial connect until this deadline")
		stats    = flag.Bool("stats", true, "scrape server-side STATS snapshots around the measured window")
		jsonOut  = flag.String("json", "", "write a service-kind BENCH report to this path")
		exp      = flag.String("exp", "svc-mixed", "experiment id recorded in the report")
		table    = flag.String("table", "growd", "table label recorded in the report")
	)
	flag.Parse()
	// Summary lines stay human-readable on stdout; errors and warnings
	// go through slog on stderr like growd's.
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, nil)).With("component", "growload"))
	if *writep < 0 || *writep > 100 {
		fatal(fmt.Errorf("-writep must be 0..100"))
	}
	if *ttlp < 0 || *ttlp > 100 {
		fatal(fmt.Errorf("-ttlp must be 0..100"))
	}
	if *keys < 1 {
		fatal(fmt.Errorf("-keys must be >= 1"))
	}
	if *conns < 1 || *depth < 1 {
		// Zero workers would "measure" nothing, exit 0, and could poison
		// a recorded baseline with an all-zero record.
		fatal(fmt.Errorf("-conns and -depth must be >= 1"))
	}

	cl, err := client.Dial(*addr, client.WithConns(*conns), client.WithDialWait(*dialwait))
	if err != nil {
		fatal(fmt.Errorf("dial %s: %w", *addr, err))
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		fatal(fmt.Errorf("ping: %w", err))
	}

	val := make([]byte, *valsize)
	r := rng.NewSplitMix64(0x9E3779B97F4A7C15)
	for i := range val {
		val[i] = byte(r.Uint64())
	}

	if *prefill {
		if err := doPrefill(cl, *keys, val); err != nil {
			fatal(fmt.Errorf("prefill: %w", err))
		}
	}

	// Server-side window bracketing: one STATS scrape after the prefill
	// (so prefill traffic is excluded) and one after the run; their
	// difference is the server's exact view of the measured window.
	var before obs.Snapshot
	statsOK := false
	if *stats {
		if s, err := cl.Stats(); err != nil {
			slog.Warn("STATS scrape failed; continuing without server-side stats", "err", err)
		} else {
			before, statsOK = s, true
		}
	}

	run := runner{
		cl: cl, keys: *keys, skew: *skew,
		writep: *writep, val: val,
		ttl: *ttl, ttlp: *ttlp,
	}
	var res runResult
	if *rate > 0 {
		res = run.openLoop(*rate, *duration)
	} else {
		res = run.closedLoop(*conns**depth, *duration)
	}

	var win obs.Snapshot
	if statsOK {
		if s, err := cl.Stats(); err != nil {
			slog.Warn("STATS scrape failed; continuing without server-side stats", "err", err)
			statsOK = false
		} else {
			win = s.Sub(before)
		}
	}
	// The slow-op log rides the same scrape policy as STATS: pulled
	// after the measured window so the entries are the window's own
	// slow requests (the ring holds the most recent slowLogSlots only).
	var slowOps []server.SlowEntry
	if *stats {
		if es, err := cl.SlowLog(); err != nil {
			slog.Warn("SLOWLOG scrape failed; continuing without slow-op log", "err", err)
		} else {
			slowOps = es
		}
	}

	mode := "closed"
	if *rate > 0 {
		mode = fmt.Sprintf("open@%g/s", *rate)
	}
	// The recorded experiment id carries every workload-defining knob:
	// the comparator matches records by (exp, table, threads, param), so
	// two growload runs may only gate against each other when they ran
	// the same workload — a different write mix, TTL regime, or
	// admission mode must be a different key, not a silent
	// apples-to-oranges verdict.
	ttlTag := ""
	if *ttl > 0 {
		ttlTag = fmt.Sprintf(",ttl%v@%d%%", *ttl, *ttlp)
	}
	recExp := fmt.Sprintf("%s[wp%d,v%d,k%d,d%d,%s%s]",
		*exp, *writep, *valsize, *keys, *depth, mode, ttlTag)
	mops := float64(res.completed) / res.seconds / 1e6
	fmt.Printf("growload: %s loop, %d conns: %d ops in %.2fs = %.3f MOps/s (%d errors)\n",
		mode, *conns, res.completed, res.seconds, mops, res.errors)
	extra := fmt.Sprintf("ops=%d conns=%d", res.completed, *conns)
	if gets := res.hits + res.misses; gets > 0 {
		rate := float64(res.hits) / float64(gets)
		fmt.Printf("hit-rate: %.4f (%d hits, %d misses)\n", rate, res.hits, res.misses)
		extra += fmt.Sprintf(" hit_rate=%.4f", rate)
	}
	fmt.Printf("latency: p50 %v  p95 %v  p99 %v  mean %v\n",
		res.hist.Quantile(0.50), res.hist.Quantile(0.95), res.hist.Quantile(0.99), res.hist.Mean())
	extraMap := serverWindow(win, statsOK)
	if len(slowOps) > 0 {
		if extraMap == nil {
			extraMap = make(map[string]float64)
		}
		var maxLat uint64
		for _, e := range slowOps {
			if e.LatencyNanos > maxLat {
				maxLat = e.LatencyNanos
			}
		}
		extraMap["slow_ops"] = float64(len(slowOps))
		extraMap["slow_op_max_us"] = nsf(maxLat)
		last := slowOps[len(slowOps)-1]
		fmt.Printf("server: %d slow ops logged, slowest %v; latest: %s gen=%d qdepth=%d\n",
			len(slowOps), time.Duration(maxLat), last.Op, last.Generation, last.QueueDepth)
	}

	if *jsonOut != "" {
		rec := report.Record{
			Kind:      report.KindService,
			Exp:       recExp,
			Table:     *table,
			Threads:   *conns * *depth,
			Param:     *skew,
			ParamName: "skew",
			MOps:      mops,
			Seconds:   res.seconds,
			// One measured window; the comparator's median falls back to it.
			SampleSecs: []float64{res.seconds},
			Extra:      extra,
			ExtraMap:   extraMap,
			P50us:      us(res.hist.Quantile(0.50)),
			P95us:      us(res.hist.Quantile(0.95)),
			P99us:      us(res.hist.Quantile(0.99)),
			MeanUs:     us(res.hist.Mean()),
		}
		// N records the configured key universe — a true config knob, so
		// same-workload runs compare without config-divergence warnings;
		// the measured op count lives in the record's Extra.
		rep := report.NewFromRecords(report.RunConfig{
			N:       *keys,
			Threads: []int{*conns * *depth},
			Skews:   []float64{*skew},
			WPs:     []int{*writep},
			Repeat:  1,
		}, []report.Record{rec}, "growload "+strings.Join(os.Args[1:], " "))
		if err := rep.Save(*jsonOut); err != nil {
			fatal(err)
		}
		slog.Info("wrote service record", "path", *jsonOut)
	}
	if res.errors > 0 {
		os.Exit(1)
	}
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// nsf converts an obs nanosecond figure to microseconds for the record.
func nsf(ns uint64) float64 { return float64(ns) / 1e3 }

// serverWindow prints the server-side view of the measured window and
// returns its machine-readable form for the BENCH record's ExtraMap.
// Series names mirror docs/OBSERVABILITY.md; a series the server did
// not register simply reads as zero and is left out of the map.
func serverWindow(win obs.Snapshot, ok bool) map[string]float64 {
	if !ok {
		return nil
	}
	em := map[string]float64{
		"srv_ops": float64(win.Counter("growd_ops_total")),
	}
	fmt.Printf("server: %d ops executed in-window\n", win.Counter("growd_ops_total"))

	// Per-opcode exec latency: the server's view of the same requests
	// the client-side histogram timed (minus the network and queueing).
	for _, op := range []string{"get", "set", "setex", "mget", "mset"} {
		h := win.Hist(`growd_op_nanos{op="` + op + `"}`)
		if h.Count == 0 {
			continue
		}
		em["srv_"+op+"_p99_us"] = nsf(h.Quantile(0.99))
		fmt.Printf("server: %s exec p50 %v p99 %v max %v (%d ops)\n", op,
			time.Duration(h.Quantile(0.50)), time.Duration(h.Quantile(0.99)),
			time.Duration(h.Max), h.Count)
	}

	// Migration-pause tracing: how many generations flipped under the
	// load, how long the copies ran, and what the enslaved user
	// operations paid — the §8 growth-pause tail, measured in situ.
	migs := win.Counter(`growt_migrations_total{trigger="grow"}`) +
		win.Counter(`growt_migrations_total{trigger="shrink"}`) +
		win.Counter(`growt_migrations_total{trigger="cleanup"}`)
	// The count itself is always honest (zero means zero); the derived
	// figures — cells copied, wall/assist percentiles — are only
	// recorded and printed when migrations actually completed in the
	// window. A 0-valued p99 in the record reads like a measurement of
	// instant migrations, which is exactly the wrong conclusion.
	em["migrations"] = float64(migs)
	if migs > 0 {
		wall := win.Hist("growt_migration_wall_nanos")
		assist := win.Hist("growt_migration_assist_nanos")
		em["mig_cells_copied"] = float64(win.Counter("growt_migration_cells_copied_total"))
		// Sub keeps the cumulative Max (a max cannot be windowed); it is
		// still an upper bound for every in-window migration.
		if wall.Count > 0 {
			em["mig_wall_max_us"] = nsf(wall.Max)
		}
		em["mig_assist_p99_us"] = nsf(assist.Quantile(0.99))
		em["mig_assist_count"] = float64(assist.Count)
		fmt.Printf("server: %d migrations (%d cells copied), wall p99 %v max %v; assist p99 %v over %d assisted ops\n",
			migs, win.Counter("growt_migration_cells_copied_total"),
			time.Duration(wall.Quantile(0.99)), time.Duration(wall.Max),
			time.Duration(assist.Quantile(0.99)), assist.Count)
	}

	// Sweeper progress (expiring workloads; zero otherwise).
	em["sweep_visited"] = float64(win.Counter("growt_cache_sweep_visited_total"))
	em["sweep_removed"] = float64(win.Counter("growt_cache_sweep_removed_total"))
	if v := win.Counter("growt_cache_sweep_visited_total"); v > 0 {
		fmt.Printf("server: sweeper visited %d, removed %d in-window\n",
			v, win.Counter("growt_cache_sweep_removed_total"))
	}
	return em
}

// doPrefill SETs every key once through the pipeline (async, so the
// prefill runs at pipelined throughput, not round-trip pace).
func doPrefill(cl *client.Client, keys uint64, val []byte) error {
	var wg sync.WaitGroup
	var errs atomic.Uint64
	sem := make(chan struct{}, 4096) // bound outstanding prefill requests
	for k := uint64(1); k <= keys; k++ {
		wg.Add(1)
		sem <- struct{}{}
		cl.SetAsync(keyBytes(k), val, func(r client.Resp) {
			if r.Err != nil || r.Status != server.StatusOK {
				errs.Add(1)
			}
			<-sem
			wg.Done()
		})
	}
	wg.Wait()
	if n := errs.Load(); n > 0 {
		return fmt.Errorf("%d of %d prefill SETs failed", n, keys)
	}
	return nil
}

// keyBytes is the 8-byte big-endian wire key for a universe index.
func keyBytes(k uint64) []byte {
	return binary.BigEndian.AppendUint64(nil, k)
}

type runner struct {
	cl     *client.Client
	keys   uint64
	skew   float64
	writep int
	val    []byte
	ttl    time.Duration // > 0: expiring workload (SETEX writes)
	ttlp   int           // percent of writes carrying the TTL
}

type runResult struct {
	completed uint64
	errors    uint64
	hits      uint64 // GETs answered OK
	misses    uint64 // GETs answered NOT_FOUND (expired or never set)
	seconds   float64
	hist      *lathist.H
}

// closedLoop runs workers synchronous request loops until the deadline.
// Latency is measured around each round trip.
func (r *runner) closedLoop(workers int, d time.Duration) runResult {
	hist := &lathist.H{}
	var completed, errors, hits, misses atomic.Uint64
	var stop atomic.Bool
	var wg sync.WaitGroup
	start := time.Now()
	time.AfterFunc(d, func() { stop.Store(true) })
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			z := zipfgen.New(r.keys, r.skew, rng.NewSplitMix64(uint64(w)*0x9E3779B9+1))
			mix := rng.NewSplitMix64(uint64(w) + 0xD1B54A32D192ED03)
			for !stop.Load() {
				key := keyBytes(z.Next())
				isWrite := int(mix.Uint64()%100) < r.writep
				withTTL := isWrite && r.ttl > 0 && int(mix.Uint64()%100) < r.ttlp
				t0 := time.Now()
				var err error
				var found bool
				switch {
				case withTTL:
					err = r.cl.SetEx(key, r.val, r.ttl)
				case isWrite:
					err = r.cl.Set(key, r.val)
				default:
					_, found, err = r.cl.Get(key)
				}
				hist.Record(time.Since(t0))
				if err != nil {
					errors.Add(1)
					if stderrors.Is(err, client.ErrClosed) {
						// The connection is gone for good: spinning would
						// count millions of instant failures and drown the
						// latency histogram in 1µs error samples.
						return
					}
					continue
				}
				if !isWrite {
					if found {
						hits.Add(1)
					} else {
						misses.Add(1)
					}
				}
				completed.Add(1)
			}
		}(w)
	}
	wg.Wait()
	return runResult{
		completed: completed.Load(),
		errors:    errors.Load(),
		hits:      hits.Load(),
		misses:    misses.Load(),
		seconds:   time.Since(start).Seconds(),
		hist:      hist,
	}
}

// openLoop admits requests on the fixed schedule start + i/rate and
// measures each latency from its scheduled admission time, so requests
// that queue behind a slow server accrue their waiting time (the
// coordinated-omission-free measurement).
func (r *runner) openLoop(rate float64, d time.Duration) runResult {
	hist := &lathist.H{}
	var completed, errors, hits, misses atomic.Uint64
	var issued uint64
	var wg sync.WaitGroup
	z := zipfgen.New(r.keys, r.skew, rng.NewSplitMix64(1))
	mix := rng.NewSplitMix64(0xD1B54A32D192ED03)
	interval := time.Duration(float64(time.Second) / rate)

	start := time.Now()
	deadline := start.Add(d)
	for {
		now := time.Now()
		if !now.Before(deadline) {
			break
		}
		// Admit everything the schedule owes us up to now.
		for {
			sched := start.Add(time.Duration(issued) * interval)
			if sched.After(now) || !sched.Before(deadline) {
				break
			}
			key := keyBytes(z.Next())
			isWrite := int(mix.Uint64()%100) < r.writep
			withTTL := isWrite && r.ttl > 0 && int(mix.Uint64()%100) < r.ttlp
			wg.Add(1)
			cb := func(resp client.Resp) {
				hist.Record(time.Since(sched))
				switch {
				case resp.Err != nil || (resp.Status != server.StatusOK && resp.Status != server.StatusNotFound):
					errors.Add(1)
				default:
					if !isWrite {
						if resp.Status == server.StatusOK {
							hits.Add(1)
						} else {
							misses.Add(1)
						}
					}
					completed.Add(1)
				}
				wg.Done()
			}
			switch {
			case withTTL:
				r.cl.SetExAsync(key, r.val, r.ttl, cb)
			case isWrite:
				r.cl.SetAsync(key, r.val, cb)
			default:
				r.cl.GetAsync(key, cb)
			}
			issued++
		}
		time.Sleep(200 * time.Microsecond)
	}
	wg.Wait() // drain the tail; its latency is part of the story
	return runResult{
		completed: completed.Load(),
		errors:    errors.Load(),
		hits:      hits.Load(),
		misses:    misses.Load(),
		seconds:   time.Since(start).Seconds(),
		hist:      hist,
	}
}

func fatal(err error) {
	slog.Error("fatal", "err", err)
	os.Exit(1)
}
