// Command growbench regenerates the tables and figures of the paper's
// evaluation (§8). Each experiment id corresponds to one figure/table;
// see DESIGN.md's per-experiment index.
//
// Usage:
//
//	growbench -exp fig2a                  # one experiment
//	growbench -exp fig2a,fig3a,fig7a     # a comma-separated list
//	growbench -exp all -n 1000000        # the whole evaluation
//	growbench -exp fig4a -s 0.75,1.25    # restrict the skew sweep
//	growbench -exp fig2b -tables uaGrow,usGrow -threads 1,4,8
//	growbench -exp table1                # the functionality matrix
//
// Machine-readable reports and the perf-regression gate:
//
//	growbench -exp fig2a -json out.json              # write a BENCH report
//	growbench -compare out.json -exp fig2a           # re-run, gate on regressions
//	growbench -compare base.json -with cur.json      # compare two files, no run
//
// -compare exits with status 3 when any matched data point is slower
// than the baseline beyond -tolerance (median-of-repeats on both
// sides). -slowdown scales measured times and exists to validate the
// gate end to end: `-compare base.json -exp fig2a -slowdown 2` must
// fail.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/bench/report"
	"repro/internal/tables"

	_ "repro/internal/baselines" // register all competitor tables
	_ "repro/internal/core"      // register the paper's tables
)

func main() {
	var (
		exp       = flag.String("exp", "", "comma-separated experiment ids (fig2a..fig11b, table1, all)")
		n         = flag.Uint64("n", 1<<20, "operations per measurement (paper: 1e8)")
		threads   = flag.String("threads", "", "comma-separated goroutine counts")
		tabs      = flag.String("tables", "", "comma-separated table filter")
		skews     = flag.String("s", "", "comma-separated Zipf exponents")
		wps       = flag.String("wp", "", "comma-separated write percentages")
		repeat    = flag.Int("repeat", 3, "runs per data point (comparisons use the median; raw samples kept for -json)")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		jsonOut   = flag.String("json", "", "write results as a versioned BENCH report to this path")
		compareTo = flag.String("compare", "", "baseline BENCH_*.json to gate against (exit 3 on regression)")
		with      = flag.String("with", "", "with -compare: gate this report file instead of running experiments")
		tolerance = flag.Float64("tolerance", report.DefaultTolerance,
			"fractional MOps drop allowed before -compare fails")
		slowdown = flag.Float64("slowdown", 1,
			"debug: scale measured seconds by this factor (validates the -compare gate)")
	)
	flag.Parse()

	if *list {
		for _, id := range bench.Order {
			fmt.Println(id)
		}
		return
	}

	// File-vs-file mode: no experiments run at all.
	if *with != "" {
		if *compareTo == "" {
			fatal(fmt.Errorf("-with requires -compare <baseline.json>"))
		}
		if *exp != "" || *jsonOut != "" {
			fatal(fmt.Errorf("-with compares two existing reports; -exp/-json do not apply"))
		}
		gate(*compareTo, *with, *tolerance)
		return
	}

	if *exp == "" {
		fmt.Fprintln(os.Stderr, "growbench: -exp is required (try -list)")
		os.Exit(2)
	}
	// Validate every experiment id up front, before any runner allocates
	// its key arrays: a typo in the second id of a list must not cost a
	// full key-generation pass on the first.
	ids := parseExps(*exp)

	cfg := &bench.Config{N: *n, Repeat: *repeat, Out: os.Stdout}
	var err error
	if cfg.Threads, err = parseInts(*threads); err != nil {
		fatal(err)
	}
	if cfg.Skews, err = parseFloats(*skews); err != nil {
		fatal(err)
	}
	if cfg.WPs, err = parseInts(*wps); err != nil {
		fatal(err)
	}
	if *tabs != "" {
		cfg.Tables = strings.Split(*tabs, ",")
		// Fail on typos now, with the registered-name list, rather than
		// mid-run from deep inside an experiment.
		for _, name := range cfg.Tables {
			if _, ok := tables.Lookup(name); !ok {
				fatal(fmt.Errorf("unknown table %q (registered: %s)",
					name, strings.Join(tables.Names(), ", ")))
			}
		}
	}

	var results []bench.Result
	for _, id := range ids {
		results = append(results, bench.Experiments[id](cfg)...)
	}
	if *slowdown != 1 {
		if *slowdown <= 0 {
			fatal(fmt.Errorf("-slowdown must be positive"))
		}
		applySlowdown(results, *slowdown)
	}

	var rep *report.Report
	if *jsonOut != "" || *compareTo != "" {
		rep = report.New(cfg, results, "growbench "+strings.Join(os.Args[1:], " "))
	}
	if *jsonOut != "" {
		if err := rep.Save(*jsonOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "growbench: wrote %d records to %s\n", len(rep.Results), *jsonOut)
	}
	if *compareTo != "" {
		base, err := report.Load(*compareTo)
		if err != nil {
			fatal(err)
		}
		exitCompare(base, rep, *tolerance)
	}
}

// parseExps splits and validates the -exp list; "all" expands to the
// canonical order.
func parseExps(s string) []string {
	var ids []string
	for _, part := range strings.Split(s, ",") {
		id := strings.TrimSpace(part)
		if id == "" {
			continue
		}
		if id == "all" {
			ids = append(ids, bench.Order...)
			continue
		}
		if _, ok := bench.Experiments[id]; !ok {
			fatal(fmt.Errorf("unknown experiment %q (try -list)", id))
		}
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		fatal(fmt.Errorf("-exp lists no experiments"))
	}
	return ids
}

// applySlowdown scales every measurement as if the run were factor×
// slower, including the raw samples, so a seeded regression flows
// through the median-based comparator exactly like a real one.
func applySlowdown(results []bench.Result, factor float64) {
	for i := range results {
		results[i].Seconds *= factor
		results[i].MOps /= factor
		for j := range results[i].Samples {
			results[i].Samples[j] *= factor
		}
	}
}

// gate compares two report files and exits with the gate status.
func gate(basePath, curPath string, tolerance float64) {
	base, err := report.Load(basePath)
	if err != nil {
		fatal(err)
	}
	cur, err := report.Load(curPath)
	if err != nil {
		fatal(err)
	}
	exitCompare(base, cur, tolerance)
}

// exitCompare prints the verdict table and exits 3 if the gate fails.
func exitCompare(base, cur *report.Report, tolerance float64) {
	cmp := report.Compare(base, cur, tolerance)
	fmt.Printf("\n== compare against baseline (%s) ==\n", base.Command)
	cmp.Format(os.Stdout)
	switch {
	case cmp.Matched == 0:
		fmt.Fprintln(os.Stderr, "growbench: no data points matched the baseline — nothing was gated")
		os.Exit(3)
	case !cmp.OK():
		fmt.Fprintf(os.Stderr, "growbench: %d regression(s) beyond ±%.0f%% tolerance\n",
			cmp.Regressions, cmp.Tolerance*100)
		os.Exit(3)
	}
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "growbench:", err)
	os.Exit(1)
}
