// Command growbench regenerates the tables and figures of the paper's
// evaluation (§8). Each experiment id corresponds to one figure/table;
// see DESIGN.md's per-experiment index.
//
// Usage:
//
//	growbench -exp fig2a                  # one experiment
//	growbench -exp all -n 1000000        # the whole evaluation
//	growbench -exp fig4a -s 0.75,1.25    # restrict the skew sweep
//	growbench -exp fig2b -tables uaGrow,usGrow -threads 1,4,8
//	growbench -exp table1                # the functionality matrix
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/tables"

	_ "repro/internal/baselines" // register all competitor tables
	_ "repro/internal/core"      // register the paper's tables
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (fig2a..fig11b, table1, all)")
		n       = flag.Uint64("n", 1<<20, "operations per measurement (paper: 1e8)")
		threads = flag.String("threads", "", "comma-separated goroutine counts")
		tabs    = flag.String("tables", "", "comma-separated table filter")
		skews   = flag.String("s", "", "comma-separated Zipf exponents")
		wps     = flag.String("wp", "", "comma-separated write percentages")
		repeat  = flag.Int("repeat", 3, "runs per data point (averaged)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range bench.Order {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "growbench: -exp is required (try -list)")
		os.Exit(2)
	}

	cfg := &bench.Config{N: *n, Repeat: *repeat, Out: os.Stdout}
	var err error
	if cfg.Threads, err = parseInts(*threads); err != nil {
		fatal(err)
	}
	if cfg.Skews, err = parseFloats(*skews); err != nil {
		fatal(err)
	}
	if cfg.WPs, err = parseInts(*wps); err != nil {
		fatal(err)
	}
	if *tabs != "" {
		cfg.Tables = strings.Split(*tabs, ",")
		// Fail on typos now, with the registered-name list, rather than
		// mid-run from deep inside an experiment.
		for _, name := range cfg.Tables {
			if _, ok := tables.Lookup(name); !ok {
				fatal(fmt.Errorf("unknown table %q (registered: %s)",
					name, strings.Join(tables.Names(), ", ")))
			}
		}
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.Order
	}
	for _, id := range ids {
		runner, ok := bench.Experiments[id]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q (try -list)", id))
		}
		runner(cfg)
	}
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "growbench:", err)
	os.Exit(1)
}
