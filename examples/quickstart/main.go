// Quickstart: the public API in two minutes — build a typed growing
// table with growt.New, give each goroutine a handle (§5.1 of the
// paper), and use the four modification primitives of §4. The handle-free
// sync.Map-shaped methods are shown at the end.
package main

import (
	"fmt"
	"sync"

	growt "repro"
)

func main() {
	// A growing table (uaGrow, the paper's headline variant). It starts
	// tiny and doubles itself via scalable cluster migration as needed.
	// Integer keys route through the §5.6 full-key wrapper, so the whole
	// uint64 range is legal — including 0, unlike the word-sized layer.
	m := growt.New[uint64, uint64]()
	defer m.Close()

	var wg sync.WaitGroup
	for worker := 0; worker < 4; worker++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			h := m.Handle() // one handle per goroutine — never share
			for k := uint64(1); k <= 10_000; k++ {
				// Insert: exactly one goroutine wins each key.
				h.Insert(k, id)
				// InsertOrUpdate with an update function: atomic
				// aggregation without read-modify-write races.
				h.InsertOrUpdate(k+1_000_000, 1, growt.Add)
			}
		}(uint64(worker))
	}
	wg.Wait()

	h := m.Handle()
	if v, ok := h.Find(42); ok {
		fmt.Printf("key 42 was inserted first by worker %d\n", v)
	}
	v, _ := h.Find(1_000_042)
	fmt.Printf("counter 1000042 aggregated to %d (want 4)\n", v)

	fmt.Printf("approximate size: %d (exact: 20000)\n", m.ApproxSize())

	// Update with a caller-supplied function — the paper's novel update
	// interface (§4): new = up(current, d).
	h.Update(42, 100, func(cur, d uint64) uint64 { return cur*1000 + d })
	v, _ = h.Find(42)
	fmt.Printf("key 42 after functional update: %d\n", v)

	// Deletion tombstones the cell; the next migration reclaims it (§5.4).
	h.Delete(42)
	if _, ok := h.Find(42); !ok {
		fmt.Println("key 42 deleted")
	}

	// Handle-free convenience methods — a recycled handle per call, a
	// drop-in sync.Map shape. Works for any key/value types; here a
	// string-keyed map over the §5.7 complex-key table (bounded — size
	// real ones with growt.WithBounded).
	langs := growt.New[string, string]()
	langs.Store("go", "gopher")
	langs.Store("rust", "crab")
	if mascot, ok := langs.Load("go"); ok {
		fmt.Printf("mascot: %s\n", mascot)
	}
	langs.Range(func(k, v string) bool {
		fmt.Printf("  %s → %s\n", k, v)
		return true
	})
}
