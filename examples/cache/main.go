// Caching: the canonical "many scenarios" workload of the ROADMAP north
// star. This example wraps the typed map in the internal/cache facade —
// per-entry TTL plus a bounded-memory sampled-LRU budget — and runs a
// skewed read-through workload against a slow "origin" (a simulated
// backend lookup). The cache layer adds no locks: expiry tombstoning
// and eviction are element-wise CompareAndDelete races on the same core
// the paper benchmarks.
//
// Watch three things in the output:
//
//   - the hit-rate climbing as the hot keys settle into the cache;
//   - the entry count holding at the budget while the key universe is
//     10× larger (sampled LRU keeps the hot set, evicts the cold tail);
//   - expired counts ticking up as TTLs lapse and the sweeper collects.
//
// The same facade — same options, same semantics — is what `growd
// -default-ttl -max-entries` serves over TCP (docs/PROTOCOL.md).
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	growt "repro"
	"repro/internal/cache"
	"repro/internal/rng"
	"repro/internal/zipfgen"
)

const (
	universe   = 50_000 // distinct keys the workload touches
	budget     = 5_000  // cache entry budget (10× smaller than the universe)
	ttl        = time.Second
	workers    = 4
	runFor     = 2 * time.Second
	originCost = 50 * time.Microsecond // simulated backend latency per miss
)

// origin is the slow backend a miss falls through to.
func origin(k uint64) string {
	time.Sleep(originCost)
	return fmt.Sprintf("origin-value-%d", k)
}

func main() {
	c := cache.New[uint64, string](
		growt.WithTTL(ttl),
		growt.WithMaxEntries(budget),
		growt.WithSweepInterval(50*time.Millisecond),
	)
	defer c.Close()

	var originCalls atomic.Uint64
	var stop atomic.Bool
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			z := zipfgen.New(universe, 0.99, rng.NewSplitMix64(uint64(w)+1))
			for !stop.Load() {
				k := z.Next()
				if _, ok := c.Get(k); ok {
					continue // served from cache
				}
				// Read-through: fetch from the origin and publish under
				// the default TTL. Racing fillers of the same key both
				// store; last write wins — both hold the same origin
				// value, so the race is benign.
				originCalls.Add(1)
				c.Set(k, origin(k))
			}
		}(w)
	}

	for time.Since(start) < runFor {
		time.Sleep(400 * time.Millisecond)
		st := c.Stats()
		total := st.Hits + st.Misses
		fmt.Printf("t=%-5v entries %5d/%d  hit-rate %.3f  expired %d  evicted %d\n",
			time.Since(start).Round(100*time.Millisecond), c.Len(), budget,
			float64(st.Hits)/float64(max(total, 1)), st.Expired, st.Evicted)
	}
	stop.Store(true)
	wg.Wait()

	st := c.Stats()
	fmt.Printf("\n%d requests: %.1f%% served from cache, %d origin fetches\n",
		st.Hits+st.Misses, 100*float64(st.Hits)/float64(max(st.Hits+st.Misses, 1)),
		originCalls.Load())
	if c.Len() > budget+16 {
		fmt.Println("BUG: entry budget not held")
	}
}
