// Aggregation: the paper's motivating database use case (§1) — a
// SELECT ... COUNT ... GROUP BY over a skewed key column, implemented as
// concurrent insert-or-increment. Compares a growing growt table against
// a mutex-protected map on the same workload and prints the top groups.
//
// The word-count flavor of the same pattern runs a string-keyed
// growt.Map, which routes through the complex-key table of §5.7.
package main

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	growt "repro"
	"repro/internal/rng"
	"repro/internal/zipfgen"
)

const (
	rows     = 2_000_000
	universe = 100_000
	workers  = 4
)

func main() {
	// Pre-generate the skewed "column" (Zipf s=1.1, like real-world
	// group-by columns — §8.3 motivates Zipf for natural data).
	keys := make([]uint64, rows)
	z := zipfgen.New(universe, 1.1, rng.NewSplitMix64(42))
	for i := range keys {
		keys[i] = z.Next()
	}

	m := growt.New[uint64, uint64](growt.WithStrategy(growt.USGrow)) // fetch-and-add variant
	defer m.Close()
	start := time.Now()
	var wg sync.WaitGroup
	chunk := rows / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(lo int) {
			defer wg.Done()
			h := m.Handle()
			for _, k := range keys[lo : lo+chunk] {
				h.InsertOrUpdate(k, 1, growt.Add)
			}
		}(w * chunk)
	}
	wg.Wait()
	growtTime := time.Since(start)

	// The same aggregation with the classic locked map.
	locked := map[uint64]uint64{}
	var mu sync.Mutex
	start = time.Now()
	wg = sync.WaitGroup{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(lo int) {
			defer wg.Done()
			for _, k := range keys[lo : lo+chunk] {
				mu.Lock()
				locked[k]++
				mu.Unlock()
			}
		}(w * chunk)
	}
	wg.Wait()
	lockedTime := time.Since(start)

	// Report the top-5 groups and cross-check the two engines.
	type group struct{ k, count uint64 }
	var top []group
	m.Range(func(k, v uint64) bool { top = append(top, group{k, v}); return true })
	sort.Slice(top, func(i, j int) bool { return top[i].count > top[j].count })
	fmt.Println("top groups (key: count):")
	for i := 0; i < 5 && i < len(top); i++ {
		fmt.Printf("  %6d: %d\n", top[i].k, top[i].count)
		if locked[top[i].k] != top[i].count {
			panic("engines disagree")
		}
	}
	fmt.Printf("growt (usGrow): %v   mutex map: %v   (%.1fx)\n",
		growtTime, lockedTime, float64(lockedTime)/float64(growtTime))

	wordCount()
}

// wordCount aggregates string keys; growt.New routes them to the §5.7
// complex-key table. The handle-free Compute method keeps the worker
// loop down to one line.
func wordCount() {
	text := strings.Repeat("the quick brown fox jumps over the lazy dog the fox ", 2000)
	words := strings.Fields(text)
	m := growt.New[string, uint64](growt.WithBounded(1000))
	var wg sync.WaitGroup
	chunk := len(words) / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(lo int) {
			defer wg.Done()
			h := m.Handle()
			for _, word := range words[lo : lo+chunk] {
				h.InsertOrUpdate(word, 1, growt.Add)
			}
		}(w * chunk)
	}
	wg.Wait()
	the, _ := m.Load("the")
	fox, _ := m.Load("fox")
	fmt.Printf("word count over the string table: the=%d fox=%d (distinct words: %d)\n",
		the, fox, m.ApproxSize())
}
