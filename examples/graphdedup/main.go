// Graph deduplication: the paper's §1 motivates hash tables for "storing
// the edge set of a sparse graph in order to support edge queries" and
// for duplicate removal while exploring implicitly defined graphs. This
// example runs a parallel BFS over an implicit De-Bruijn-style graph,
// using a growing growt table as the visited set: exactly one worker
// wins Insert for each node, so the table double-acts as dedup filter
// and parent map.
//
// The typed facade routes uint64 keys through the §5.6 full-key wrapper,
// so node id 0 is a legal key — the word-sized layer's "+1 to dodge the
// reserved empty key" dance is gone.
package main

import (
	"fmt"
	"sync"
	"time"

	growt "repro"
)

const (
	nodeBits = 20 // 2^20-node implicit graph
	workers  = 4
	root     = uint64(1)
)

// succ enumerates an implicit graph: each node has out-degree 3 (a
// De-Bruijn shift plus two mixers), so most nodes are reachable many
// times — heavy duplicate pressure on the visited set.
func succ(v uint64) [3]uint64 {
	mask := uint64(1)<<nodeBits - 1
	return [3]uint64{
		(v<<1 | v>>(nodeBits-1)) & mask,
		(v*2862933555777941757 + 3037000493) & mask,
		(v ^ v>>7 ^ 0x55) & mask,
	}
}

func main() {
	visited := growt.New[uint64, uint64]() // node → BFS parent; grows with the frontier
	defer visited.Close()

	start := time.Now()
	frontier := []uint64{root}
	visited.Store(root, root) // the root is its own parent
	var discovered uint64 = 1
	level := 0
	for len(frontier) > 0 {
		next := make([][]uint64, workers)
		var wg sync.WaitGroup
		chunk := (len(frontier) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			if lo >= len(frontier) {
				break
			}
			hi := lo + chunk
			if hi > len(frontier) {
				hi = len(frontier)
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				h := visited.Handle()
				for _, v := range frontier[lo:hi] {
					for _, s := range succ(v) {
						// Insert wins exactly once per node: the winner
						// records the parent and owns the expansion.
						if h.Insert(s, v) {
							next[w] = append(next[w], s)
						}
					}
				}
			}(w, lo, hi)
		}
		wg.Wait()
		frontier = frontier[:0]
		for _, part := range next {
			frontier = append(frontier, part...)
			discovered += uint64(len(part))
		}
		level++
	}
	elapsed := time.Since(start)

	fmt.Printf("explored %d nodes (approx size %d) in %d BFS levels, %v\n",
		discovered, visited.ApproxSize(), level, elapsed)

	// Edge query phase: the visited set answers parent lookups wait-free.
	h := visited.Handle()
	hits := 0
	for v := uint64(0); v < 1000; v++ {
		if _, ok := h.Find(v); ok {
			hits++
		}
	}
	fmt.Printf("%d of the first 1000 node ids were reached\n", hits)

	// Walk a parent chain back to the root as a consistency check.
	cur := frontierSample(h)
	steps := 0
	for cur != root && steps < 1_000_000 {
		parent, ok := h.Find(cur)
		if !ok {
			panic("broken parent chain")
		}
		cur = parent
		steps++
	}
	fmt.Printf("parent chain reached the BFS root in %d steps\n", steps)
}

// frontierSample returns some stored node key.
func frontierSample(h *growt.Handle[uint64, uint64]) uint64 {
	for v := uint64(12345); ; v++ {
		if _, ok := h.Find(v); ok {
			return v
		}
	}
}
