// Serving the table: start a growd-style server in-process, connect
// the pipelined client, and run the protocol end to end — GET/SET,
// optimistic concurrency with CAS, atomic counters with INCR, and a
// deep async pipeline. The standalone binaries (cmd/growd and
// cmd/growload) wrap exactly these pieces; the wire format is
// docs/PROTOCOL.md.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/server"
	"repro/internal/server/client"
)

func main() {
	// The served table is a typed growing map (internal/server.Store
	// routes byte-string keys through the generic growing backend, so
	// there is no fixed capacity to outgrow).
	st := server.NewStore()
	defer st.Close()
	srv := server.New(st, server.Options{})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()
	fmt.Println("serving on", addr)

	// A pooled, pipelined client: safe for any number of goroutines;
	// concurrent calls share connections instead of waiting in line.
	cl, err := client.Dial(addr, client.WithConns(2))
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	// PING is the health check.
	if err := cl.Ping(); err != nil {
		log.Fatal(err)
	}

	// Plain KV.
	cl.Set([]byte("greeting"), []byte("hello, growd"))
	v, ok, _ := cl.Get([]byte("greeting"))
	fmt.Printf("GET greeting = %q (found=%v)\n", v, ok)

	// Optimistic concurrency: CAS succeeds only from the current value.
	swapped, _, _ := cl.CAS([]byte("greeting"), []byte("hello, growd"), []byte("hello, CAS"))
	fmt.Println("CAS with right old value:", swapped)
	swapped, _, _ = cl.CAS([]byte("greeting"), []byte("stale"), []byte("never"))
	fmt.Println("CAS with stale old value:", swapped)

	// Atomic counters: INCR never loses increments, even over the wire.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				if _, err := cl.Incr([]byte("hits"), 1); err != nil {
					log.Fatal(err)
				}
			}
		}()
	}
	wg.Wait()
	hits, _ := cl.Incr([]byte("hits"), 0)
	fmt.Println("hits after 4x250 concurrent INCRs:", hits) // 1000

	// Pipelining: a burst of async SETs goes out in coalesced batches —
	// one flush carries many frames — and callbacks fire as responses
	// stream back in order.
	start := time.Now()
	const burst = 5000
	wg.Add(burst)
	for i := 0; i < burst; i++ {
		key := fmt.Appendf(nil, "item-%04d", i)
		cl.SetAsync(key, []byte("x"), func(r client.Resp) {
			if r.Err != nil {
				log.Fatal(r.Err)
			}
			wg.Done()
		})
	}
	wg.Wait()
	fmt.Printf("pipelined %d SETs in %v\n", burst, time.Since(start).Round(time.Millisecond))

	n, _ := cl.Size()
	fmt.Println("approximate size:", n)

	// Graceful shutdown: drain live sessions, then stop.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	cl.Close()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained cleanly")
}
