// Memoization: the paper's §1/§2 cite lock-free parallel dynamic
// programming (Stivala et al. [36]) — threads share a memo table of
// already-solved subproblems. This example solves a two-parameter
// recurrence (a weighted Delannoy-style path count, mod 2^61) with
// several racing top-down solvers sharing one growt table: whoever solves
// a subproblem first publishes it; everyone else reuses it.
//
// The memo key is the subproblem coordinate pair itself — a struct key,
// taking the typed facade's generic hash-codec route — so no manual bit
// packing is needed. WithHasher supplies a fast coordinate mix (the
// default fingerprint hasher would work too, just slower).
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	growt "repro"
)

const (
	dim     = 340 // (dim × dim) subproblem grid
	modulus = uint64(1)<<61 - 1
	workers = 4
)

// cell is a subproblem coordinate — used directly as the map key.
type cell struct{ x, y int32 }

// hashCell mixes the two coordinates; collisions would be handled by the
// facade's key-comparing chains, so this only needs to be fast.
func hashCell(c cell) uint64 {
	z := uint64(uint32(c.x))<<32 | uint64(uint32(c.y))
	z ^= z >> 33
	z *= 0xff51afd7ed558ccd
	z ^= z >> 33
	return z
}

// solver computes f(x,y) = f(x-1,y) + f(x,y-1) + f(x-1,y-1)·x mod m with
// memoization. A per-goroutine explicit stack avoids goroutine-stack
// overflows at large dims.
type solver struct {
	h      *growt.Handle[cell, uint64]
	misses *atomic.Uint64
}

func (s *solver) solve(x, y int32) uint64 {
	stack := []cell{{x, y}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		if f.x == 0 || f.y == 0 {
			s.h.Insert(f, 1)
			stack = stack[:len(stack)-1]
			continue
		}
		a, okA := s.h.Find(cell{f.x - 1, f.y})
		b, okB := s.h.Find(cell{f.x, f.y - 1})
		c, okC := s.h.Find(cell{f.x - 1, f.y - 1})
		if !okA {
			stack = append(stack, cell{f.x - 1, f.y})
		}
		if !okB {
			stack = append(stack, cell{f.x, f.y - 1})
		}
		if !okC {
			stack = append(stack, cell{f.x - 1, f.y - 1})
		}
		if okA && okB && okC {
			v := (a + b + c%modulus*uint64(f.x)) % modulus
			// Insert (not update): first solver wins, result is immutable.
			if !s.h.Insert(f, v) {
				s.misses.Add(1)
			}
			stack = stack[:len(stack)-1]
		}
	}
	v, _ := s.h.Find(cell{x, y})
	return v
}

func main() {
	memo := growt.New[cell, uint64](growt.WithHasher(hashCell))
	defer memo.Close()

	var dup atomic.Uint64
	start := time.Now()
	results := make([]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := &solver{h: memo.Handle(), misses: &dup}
			// Workers attack different corners first, converging on the
			// same shared subproblems.
			switch w % 4 {
			case 0:
				results[w] = s.solve(dim, dim)
			case 1:
				s.solve(dim/2, dim)
				results[w] = s.solve(dim, dim)
			case 2:
				s.solve(dim, dim/2)
				results[w] = s.solve(dim, dim)
			default:
				s.solve(dim/2, dim/2)
				results[w] = s.solve(dim, dim)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	for _, r := range results[1:] {
		if r != results[0] {
			panic("solvers disagree — memo table corrupted")
		}
	}
	fmt.Printf("f(%d,%d) = %d\n", dim, dim, results[0])
	fmt.Printf("memo entries = %d (grid %d), duplicate solves %d, %v\n",
		memo.ApproxSize(), (dim+1)*(dim+1), dup.Load(), elapsed)

	// Sequential reference for the final answer.
	ref := sequential(dim, dim)
	if ref != results[0] {
		panic(fmt.Sprintf("parallel %d != sequential %d", results[0], ref))
	}
	fmt.Println("matches the sequential dynamic program ✓")
}

func sequential(X, Y int32) uint64 {
	prev := make([]uint64, Y+1)
	cur := make([]uint64, Y+1)
	for y := int32(0); y <= Y; y++ {
		prev[y] = 1
	}
	for x := int32(1); x <= X; x++ {
		cur[0] = 1
		for y := int32(1); y <= Y; y++ {
			cur[y] = (prev[y] + cur[y-1] + prev[y-1]%modulus*uint64(x)) % modulus
		}
		copy(prev, cur)
	}
	return prev[Y]
}
