package growt_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	growt "repro"
)

// cadConformance drives CompareAndDelete through one typed map
// instantiation: equal value deletes, different value refuses, absent
// key refuses, and a deleted key is re-insertable.
func cadConformance[K comparable, V comparable](t *testing.T, m *growt.Map[K, V],
	key func(i int) K, val func(i int) V) {
	t.Helper()
	defer m.Close()
	h := m.Handle()

	for i := 0; i < 100; i++ {
		if !h.Insert(key(i), val(i)) {
			t.Fatalf("insert %d refused", i)
		}
	}
	// Wrong value: refuse, leave the element.
	for i := 0; i < 100; i++ {
		if h.CompareAndDelete(key(i), val(i+1)) {
			t.Fatalf("CAD %d deleted under a mismatched value", i)
		}
		if v, ok := h.Find(key(i)); !ok || v != val(i) {
			t.Fatalf("CAD mismatch disturbed element %d: %v %v", i, v, ok)
		}
	}
	// Right value: delete exactly once.
	for i := 0; i < 100; i++ {
		if !h.CompareAndDelete(key(i), val(i)) {
			t.Fatalf("CAD %d refused the stored value", i)
		}
		if h.CompareAndDelete(key(i), val(i)) {
			t.Fatalf("CAD %d deleted twice", i)
		}
		if _, ok := h.Find(key(i)); ok {
			t.Fatalf("element %d survived its CAD", i)
		}
	}
	// Absent key, handle-free path, and re-insert after delete.
	if m.CompareAndDelete(key(7), val(7)) {
		t.Fatal("CAD succeeded on an absent key")
	}
	m.Store(key(7), val(8))
	if m.CompareAndDelete(key(7), val(7)) {
		t.Fatal("handle-free CAD deleted under a mismatched value")
	}
	if !m.CompareAndDelete(key(7), val(8)) {
		t.Fatal("handle-free CAD refused the stored value")
	}
}

func TestCompareAndDeleteConformance(t *testing.T) {
	t.Run("word/inline-values", func(t *testing.T) {
		cadConformance(t, growt.New[uint64, uint32](),
			func(i int) uint64 { return uint64(i) * 3 }, // includes key 0
			func(i int) uint32 { return uint32(i) + 1 })
	})
	t.Run("word/arena-values", func(t *testing.T) {
		cadConformance(t, growt.New[int, string](),
			func(i int) int { return i - 50 }, // negatives too
			func(i int) string { return fmt.Sprintf("value-%d", i) })
	})
	t.Run("word/tsx", func(t *testing.T) {
		cadConformance(t, growt.New[uint64, uint32](growt.WithTSX()),
			func(i int) uint64 { return uint64(i) },
			func(i int) uint32 { return uint32(i) + 1 })
	})
	t.Run("word/bounded", func(t *testing.T) {
		cadConformance(t, growt.New[uint64, uint64](growt.WithBounded(4096)),
			func(i int) uint64 { return uint64(i) + 1 },
			func(i int) uint64 { return uint64(i) * 7 })
	})
	t.Run("string-route", func(t *testing.T) {
		cadConformance(t, growt.New[string, string](),
			func(i int) string { return fmt.Sprintf("key-%d", i) },
			func(i int) string { return fmt.Sprintf("value-%d", i) })
	})
	t.Run("generic-route", func(t *testing.T) {
		cadConformance(t, growt.New[point, string](),
			func(i int) point { return point{int32(i), int32(-i)} },
			func(i int) string { return fmt.Sprintf("value-%d", i) })
	})
}

// TestCompareAndDeleteExactlyOnce is the atomicity test: many racing
// CompareAndDeletes of the same ⟨key, value⟩ must succeed exactly once
// per stored generation, across every key route.
func TestCompareAndDeleteExactlyOnce(t *testing.T) {
	run := func(t *testing.T, delete func(round uint64) bool, store func(round uint64)) {
		const rounds, racers = 200, 8
		var succeeded atomic.Uint64
		for r := uint64(0); r < rounds; r++ {
			store(r)
			var wg sync.WaitGroup
			for w := 0; w < racers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if delete(r) {
						succeeded.Add(1)
					}
				}()
			}
			wg.Wait()
		}
		if got := succeeded.Load(); got != rounds {
			t.Fatalf("CAD succeeded %d times over %d generations", got, rounds)
		}
	}
	t.Run("word", func(t *testing.T) {
		m := growt.New[uint64, string]()
		defer m.Close()
		run(t, func(r uint64) bool { return m.CompareAndDelete(r%17, fmt.Sprint(r)) },
			func(r uint64) { m.Store(r%17, fmt.Sprint(r)) })
	})
	t.Run("generic", func(t *testing.T) {
		m := growt.New[point, string]()
		defer m.Close()
		run(t, func(r uint64) bool {
			return m.CompareAndDelete(point{int32(r % 17), 0}, fmt.Sprint(r))
		}, func(r uint64) { m.Store(point{int32(r % 17), 0}, fmt.Sprint(r)) })
	})
	t.Run("string", func(t *testing.T) {
		m := growt.New[string, string]()
		defer m.Close()
		run(t, func(r uint64) bool {
			return m.CompareAndDelete(fmt.Sprint(r%17), fmt.Sprint(r))
		}, func(r uint64) { m.Store(fmt.Sprint(r%17), fmt.Sprint(r)) })
	})
}

// TestCompareAndDeleteVsOverwrite races CAD of a known-stale value
// against an overwrite: whichever order they land in, the element must
// never end up deleted while holding the fresh value — the invariant
// the cache layer's expiry races are built on.
func TestCompareAndDeleteVsOverwrite(t *testing.T) {
	m := growt.New[uint64, string]()
	defer m.Close()
	const rounds = 500
	for r := 0; r < rounds; r++ {
		k := uint64(r % 13)
		m.Store(k, "stale")
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			m.CompareAndDelete(k, "stale")
		}()
		go func() {
			defer wg.Done()
			m.Store(k, "fresh")
		}()
		wg.Wait()
		// Whatever the interleaving, "fresh" must survive: the CAD either
		// removed "stale" before the store (which then re-inserted) or
		// refused after it — it may never remove "fresh".
		if v, ok := m.Load(k); !ok || v != "fresh" {
			t.Fatalf("round %d: surviving value %q (present=%v), want %q", r, v, ok, "fresh")
		}
		// Reset: the key may or may not exist; drop it.
		m.Delete(k)
	}
}
