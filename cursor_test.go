package growt_test

// Cursor conformance: Map.RangeFrom must, on a quiescent map, visit
// every key exactly once across a batched walk — the resume never
// re-visits and never skips a stable key — on all three key routes
// (word, string, generic). Under a concurrent migration the guarantee
// weakens to at-least-once for stable keys (the generation tag restarts
// the retired table's phase), which the forced-migration test pins.

import (
	"fmt"
	"testing"

	growt "repro"
)

// walkBatched drives RangeFrom to completion in batches of batch,
// invoking visit for every element surfaced. It fails the test if the
// walk does not terminate.
func walkBatched[K comparable, V any](t *testing.T, m *growt.Map[K, V], batch int, visit func(K, V)) {
	t.Helper()
	var cur growt.Cursor
	for calls := 0; ; calls++ {
		if calls > 1<<20 {
			t.Fatal("cursor walk did not terminate")
		}
		seen := 0
		next, wrapped := m.RangeFrom(cur, func(k K, v V) bool {
			visit(k, v)
			seen++
			return seen < batch
		})
		if wrapped {
			return
		}
		cur = next
	}
}

// checkExactlyOnce populates m with keys, then walks it with several
// batch sizes asserting each walk surfaces every key exactly once.
func checkExactlyOnce[K comparable](t *testing.T, m *growt.Map[K, uint64], keys map[K]uint64) {
	t.Helper()
	for k, v := range keys {
		m.Store(k, v)
	}
	for _, batch := range []int{1, 3, 64, len(keys) + 1} {
		visits := make(map[K]int, len(keys))
		walkBatched(t, m, batch, func(k K, v uint64) {
			if want, ok := keys[k]; !ok || v != want {
				t.Fatalf("batch %d surfaced unknown or corrupt entry %v=%d", batch, k, v)
			}
			visits[k]++
		})
		for k := range keys {
			switch visits[k] {
			case 0:
				t.Fatalf("batch %d skipped stable key %v", batch, k)
			case 1:
			default:
				t.Fatalf("batch %d re-visited key %v (%d times) on a quiescent map", batch, k, visits[k])
			}
		}
		if len(visits) != len(keys) {
			t.Fatalf("batch %d visited %d keys, want %d", batch, len(visits), len(keys))
		}
	}
}

func TestCursorExactlyOnceWordRoute(t *testing.T) {
	m := growt.New[uint64, uint64]()
	defer m.Close()
	keys := make(map[uint64]uint64)
	for i := uint64(1); i <= 200; i++ {
		keys[i*2654435761] = i
	}
	// The §5.6 special keys live in FullKeys' third walk phase: cover
	// the segment boundaries too.
	keys[0] = 1000
	keys[growt.MaxKey+1] = 1001
	checkExactlyOnce(t, m, keys)
}

func TestCursorExactlyOnceStringRoute(t *testing.T) {
	m := growt.New[string, uint64]()
	defer m.Close()
	keys := make(map[string]uint64)
	for i := uint64(1); i <= 200; i++ {
		keys[fmt.Sprintf("key-%04d", i)] = i
	}
	checkExactlyOnce(t, m, keys)
}

func TestCursorExactlyOnceGenericRoute(t *testing.T) {
	m := growt.New[nodeID, uint64]() // named integer type: the generic route
	defer m.Close()
	keys := make(map[nodeID]uint64)
	for i := uint64(1); i <= 200; i++ {
		keys[nodeID(i*0x9E3779B9)] = i
	}
	checkExactlyOnce(t, m, keys)
}

// TestCursorResumesAcrossMigration takes a cursor mid-walk, forces the
// growing word core through migrations by bulk insertion, then resumes:
// every stable key (present before the walk began, never deleted) must
// be surfaced at least once over the whole walk. Re-visits are legal —
// the migrated table's generation retires the cursor and the phase
// restarts — but a skipped stable key is a lost entry.
func TestCursorResumesAcrossMigration(t *testing.T) {
	m := growt.New[uint64, uint64](growt.WithCapacity(4096))
	defer m.Close()

	const stable = 300
	for i := uint64(1); i <= stable; i++ {
		m.Store(i, i)
	}

	seen := make(map[uint64]bool)
	record := func(k, v uint64) {
		if k <= stable {
			if v != k {
				t.Fatalf("stable key %d surfaced corrupt value %d", k, v)
			}
			seen[k] = true
		}
	}

	// Walk a first slice, then park the cursor.
	n := 0
	cur, wrapped := m.RangeFrom(growt.Cursor{}, func(k, v uint64) bool {
		record(k, v)
		n++
		return n < 25
	})
	if wrapped {
		t.Fatal("setup: first batch already exhausted the walk")
	}

	// Force the core through growth: well past the 4096-cell start.
	h := m.Handle()
	for i := uint64(1_000_000); i < 1_040_000; i++ {
		h.Insert(i, i)
	}

	// Resume against the migrated table until the walk wraps.
	for calls := 0; !wrapped; calls++ {
		if calls > 1<<20 {
			t.Fatal("resumed walk did not terminate")
		}
		n = 0
		cur, wrapped = m.RangeFrom(cur, func(k, v uint64) bool {
			record(k, v)
			n++
			return n < 1024
		})
	}

	for i := uint64(1); i <= stable; i++ {
		if !seen[i] {
			t.Fatalf("stable key %d skipped across the migration resume", i)
		}
	}
}
