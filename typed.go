package growt

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/core"
	"repro/internal/stringmap"
	"repro/internal/tables"
)

// This file is the typed public layer over the paper's word-sized cores:
// one generic Map[K, V] in front of folklore, the four xyGrow variants,
// the §5.6 full-key wrapper, and the §5.7 string map. New routes the key
// type to the right backend:
//
//   - built-in integer and bool keys → the full-key wrapper over the
//     configured word core (§5.6), so the whole value range of the Go
//     type is legal, including 0 and the reserved bit patterns;
//   - string keys → the complex-key string table (§5.7);
//   - every other comparable key → a hash-to-64-bit codec: the word core
//     maps the key's hash to the head of a collision chain of typed
//     entries in an append-only arena. Equality is decided on the stored
//     keys, never on hashes, so any hash function is correct.
//
// Values ride the codec layer in codec.go: inline when they fit the
// word domain, behind an indirection arena otherwise.

// Map is a shared typed concurrent hash table built by New. The zero
// value is not usable.
//
// Two access disciplines are offered. The paper's explicit one (§5.1):
// call Handle once per goroutine and use the handle's methods — fastest,
// no synchronization beyond the table's own. And a handle-free,
// sync.Map-shaped one: Load / Store / LoadOrStore / Compute / Delete on
// the Map itself, which borrow a handle from an internal free list per
// call. The free list is a fixed-capacity channel rather than a
// sync.Pool: core handles register per-handle state with the table
// (busy flags, size counters) that is never deregistered, so handles
// must be recycled, not GC-churned.
type Map[K comparable, V any] struct {
	b       backend[K, V]
	handles chan *Handle[K, V] // free list for the handle-free methods
	created atomic.Int64       // free-list handles made; capped at cap(handles)
	borrows atomic.Uint64      // free-list borrows, for pool-discipline tests
}

// Handle is a goroutine-private accessor to a typed map (§5.1). Create
// one per goroutine with Map.Handle; never share one between goroutines.
type Handle[K comparable, V any] struct {
	h backendHandle[K, V]
}

// backend is the per-key-route engine behind a typed map.
type backend[K comparable, V any] interface {
	newHandle() backendHandle[K, V]
	approxSize() uint64
	// generation is the completed-migration count of the underlying
	// growing core (0 for bounded backends).
	generation() uint64
	close()
	rangeAll(fn func(K, V) bool)
	// rangeFrom resumes rangeAll at cur; tables.CursorRanger semantics
	// (wrapped=true means the walk reached the end and the returned
	// cursor restarts from the beginning).
	rangeFrom(cur tables.Cursor, fn func(K, V) bool) (tables.Cursor, bool)
	// entryBytes is a static estimate of the bytes one stored element
	// costs (cell words plus arena space), for byte-budget sizing.
	entryBytes() uint64
}

// backendHandle mirrors the five primitives of §4 on typed operands,
// plus the atomic load-and-delete and compare-and-swap each backend
// provides natively (a generic emulation via update would re-encode the
// unchanged value on every mismatch, leaking an arena slot per attempt
// for arena-backed values).
type backendHandle[K comparable, V any] interface {
	insert(k K, v V) bool
	update(k K, d V, up func(cur, d V) V) bool
	insertOrUpdate(k K, d V, up func(cur, d V) V) bool
	find(k K) (V, bool)
	del(k K) bool
	loadAndDelete(k K) (V, bool)
	compareAndSwap(k K, old, new V) bool
	compareAndDelete(k K, old V) bool
}

// New builds a typed concurrent hash table. The default is the paper's
// headline configuration — a growing uaGrow core starting at 4096 cells;
// see WithStrategy, WithCapacity, WithBounded, WithTSX, and WithHasher.
//
// One exception to "growing by default": string-keyed maps ride the
// bounded §5.7 complex-key table. They hold at most WithBounded's (or
// WithCapacity's) expected element count — 2^16 if neither is given —
// and panic when full.
//
//	counts := growt.New[string, uint64](growt.WithBounded(1 << 20))
//	edges := growt.New[uint64, uint64](growt.WithStrategy(growt.USGrow))
//	memo := growt.New[Point, Result](growt.WithHasher(hashPoint))
func New[K comparable, V any](opts ...Option) *Map[K, V] {
	c := config{strategy: UAGrow}
	for _, o := range opts {
		o(&c)
	}
	var b backend[K, V]
	switch {
	case isStringKey[K]():
		b = newStringBackend[K, V](&c)
	default:
		if kenc, kdec, ok := wordKeyCodec[K](); ok {
			b = newWordBackend[K, V](&c, kenc, kdec)
		} else {
			b = newGenericBackend[K, V](&c)
		}
	}
	return &Map[K, V]{
		b:       b,
		handles: make(chan *Handle[K, V], 8*runtime.GOMAXPROCS(0)),
	}
}

// Handle returns a new goroutine-private accessor (§5.1).
func (m *Map[K, V]) Handle() *Handle[K, V] {
	return &Handle[K, V]{h: m.b.newHandle()}
}

// Close releases background resources if the map owns any (the dedicated
// migration pools of paGrow/psGrow). Safe on every map.
func (m *Map[K, V]) Close() { m.b.close() }

// ApproxSize estimates the number of live elements (§5.2). String-keyed
// and generic-keyed maps count exactly; word-keyed growing maps return
// the paper's approximate per-handle-counter estimate.
func (m *Map[K, V]) ApproxSize() uint64 { return m.b.approxSize() }

// Generation returns the number of completed migrations (growth,
// shrink, or cleanup) of the underlying growing core — 0 for bounded
// string-keyed maps, which never migrate. Monotone; observability
// layers stamp slow operations with the generation they ran against.
func (m *Map[K, V]) Generation() uint64 { return m.b.generation() }

// Range calls fn for every element until fn returns false. Like every
// Range in this repository it is for quiescent use only: concurrent
// writers may be partially observed.
func (m *Map[K, V]) Range(fn func(k K, v V) bool) { m.b.rangeAll(fn) }

// RangeFrom resumes iteration at cur, calling fn until it returns false
// or the walk reaches the end of the table. It returns the cursor to
// resume from and whether the walk wrapped (reached the end; the
// returned cursor then restarts from the beginning). The zero Cursor
// starts from the beginning. A cursor that outlives a migration
// restarts from position zero of the live generation — a resumed walk
// may re-visit elements but never skips a stable one. Quiescent use
// only, like Range.
func (m *Map[K, V]) RangeFrom(cur Cursor, fn func(k K, v V) bool) (Cursor, bool) {
	return m.b.rangeFrom(cur, fn)
}

// EntryBytes is a static estimate of the backing bytes one stored
// element costs — the cell words plus the codec's arena slot for
// arena-resident values. WithMaxBytes divides its byte budget by this
// estimate to derive an entry budget.
func (m *Map[K, V]) EntryBytes() uint64 { return m.b.entryBytes() }

// PoolBorrows counts how many times the handle-free methods borrowed a
// pooled handle over the map's lifetime. It exists for tests asserting
// pool discipline (a pinned Session performs exactly one borrow, not
// one per operation).
func (m *Map[K, V]) PoolBorrows() uint64 { return m.borrows.Load() }

// Insert stores ⟨k,v⟩ if k is absent. Returns true iff this call
// inserted the element; exactly one of several concurrent inserters of
// the same key succeeds (§4).
func (h *Handle[K, V]) Insert(k K, v V) bool { return h.h.insert(k, v) }

// Update atomically changes the value of k to up(current, d); returns
// false if k is absent (§4's functional update interface).
func (h *Handle[K, V]) Update(k K, d V, up func(cur, d V) V) bool {
	return h.h.update(k, d, up)
}

// InsertOrUpdate inserts ⟨k,d⟩ if absent, else updates like Update.
// Returns true iff an insert was performed.
func (h *Handle[K, V]) InsertOrUpdate(k K, d V, up func(cur, d V) V) bool {
	return h.h.insertOrUpdate(k, d, up)
}

// Find returns a copy of the value stored at k.
func (h *Handle[K, V]) Find(k K) (V, bool) { return h.h.find(k) }

// Delete removes k; returns true iff k was present.
func (h *Handle[K, V]) Delete(k K) bool { return h.h.del(k) }

// LoadAndDelete removes k and returns the value it held (sync.Map
// parity). loaded is false when k was absent. The load and the delete
// are one atomic step: the value returned is exactly the one the delete
// removed, even against concurrent overwrites.
func (h *Handle[K, V]) LoadAndDelete(k K) (value V, loaded bool) {
	return h.h.loadAndDelete(k)
}

// CompareAndSwap replaces the value of k with new iff it is currently
// old (sync.Map parity). Returns false when k is absent or holds a
// different value. Like sync.Map, values are compared with ==, so old
// must be of a comparable dynamic type or CompareAndSwap panics.
func (h *Handle[K, V]) CompareAndSwap(k K, old, new V) bool {
	// Fire the documented uncomparable-value panic here, before any
	// backend lock or TSX stripe transaction is held: a stored value can
	// only panic the closure's == if it shares old's dynamic type, so
	// validating old is sufficient.
	_ = any(old) == any(old)
	return h.h.compareAndSwap(k, old, new)
}

// CompareAndDelete removes k iff its value is currently old (sync.Map
// parity). Returns false when k is absent or holds a different value.
// Like CompareAndSwap, values are compared with ==, so old must be of a
// comparable dynamic type or CompareAndDelete panics. The comparison and
// the removal are one atomic step: the element removed is exactly the
// one whose value compared equal, even against concurrent overwrites —
// the primitive behind the cache layer's expiry and eviction races.
func (h *Handle[K, V]) CompareAndDelete(k K, old V) bool {
	// Documented uncomparable-value panic, fired before any backend work
	// (see CompareAndSwap for why validating old is sufficient).
	_ = any(old) == any(old)
	return h.h.compareAndDelete(k, old)
}

// cadViaWords implements compareAndDelete over a word backend: find the
// current word, refuse if it does not decode to old, then delete exactly
// that word with the core's conditional tombstoning CAS. The successful
// core CAS is the linearization point — at that instant the stored word
// was the one observed to decode equal. A failed CAS (value changed
// underneath) re-reads; arena references are never reused, so an equal
// word always still decodes to the same value (no ABA).
func cadViaWords[V any](vc *valCodec[V], old V, find func() (uint64, bool), cad func(w uint64) bool) bool {
	for {
		w, ok := find()
		if !ok {
			return false
		}
		if any(vc.dec(w)) != any(old) {
			return false
		}
		if cad(w) {
			return true
		}
	}
}

// casViaUpdate implements compareAndSwap over an Update-style word
// backend (the word and string routes). The closure may run several
// times under contention; the backend applies exactly its final
// invocation, so the last verdict is the authoritative one. On mismatch
// the *word* is returned unchanged — never re-encoded — so a refused
// CAS allocates nothing. The new value is encoded at most once per
// call; that one slot leaks only if a transiently-matching attempt is
// finally refused (bounded by one slot per call, like any overwrite).
// Both final conditions are required: the closure's last invocation
// matching is not enough, because the backend reports applied=false
// when its value-CAS lost to a concurrent delete after that
// invocation, and then nothing was written.
func casViaUpdate[V any](vc *valCodec[V], old, new V, update func(func(cur, d uint64) uint64) bool) bool {
	swapped := false
	var newW uint64
	encoded := false
	applied := update(func(cur, _ uint64) uint64 {
		if any(vc.dec(cur)) != any(old) {
			swapped = false
			return cur
		}
		swapped = true
		if !encoded {
			newW = vc.enc(new)
			encoded = true
		}
		return newW
	})
	return applied && swapped
}

// acquire borrows a free-listed handle for one handle-free operation.
// At most cap(m.handles) handles are ever created for the free list —
// beyond that, acquire blocks until one is released. The hard cap
// matters because core handles register per-handle state with the table
// (busy flags, size counters) that has no deregistration path.
//
// Callers must pair the acquire with an immediately deferred release so
// user code running under the handle (hashers, update closures) cannot
// strand it by panicking; growvet's handleleak analyzer enforces the
// shape.
//
//growt:acquires release
func (m *Map[K, V]) acquire() *Handle[K, V] {
	m.borrows.Add(1)
	select {
	case h := <-m.handles:
		return h
	default:
	}
	if m.created.Add(1) <= int64(cap(m.handles)) {
		return m.Handle()
	}
	m.created.Add(-1)
	return <-m.handles
}

// release returns a handle to the free list. The send cannot block:
// handles in circulation never exceed the channel capacity.
func (m *Map[K, V]) release(h *Handle[K, V]) {
	m.handles <- h
}

// withHandle runs fn under a borrowed free-list handle. It is the one
// place that owns pool discipline for the handle-free methods: the
// release is deferred, so a panic in user code running under the handle
// (custom hashers, update closures) cannot strand it.
func withHandle[K comparable, V any](m *Map[K, V], fn func(h *Handle[K, V])) {
	h := m.acquire()
	defer m.release(h)
	fn(h)
}

// Load returns the value stored at k (handle-free).
func (m *Map[K, V]) Load(k K) (v V, ok bool) {
	withHandle(m, func(h *Handle[K, V]) { v, ok = h.Find(k) })
	return
}

// Store sets the value for k, inserting or overwriting (handle-free).
func (m *Map[K, V]) Store(k K, v V) {
	withHandle(m, func(h *Handle[K, V]) { h.InsertOrUpdate(k, v, Replace[V]) })
}

// LoadOrStore returns the existing value for k if present; otherwise it
// stores and returns v. loaded is true if the value was already present.
func (m *Map[K, V]) LoadOrStore(k K, v V) (actual V, loaded bool) {
	withHandle(m, func(h *Handle[K, V]) { actual, loaded = loadOrStore(h, k, v) })
	return
}

// loadOrStore is the find-or-insert loop shared by Map and Session.
func loadOrStore[K comparable, V any](h *Handle[K, V], k K, v V) (V, bool) {
	for {
		if cur, ok := h.Find(k); ok {
			return cur, true
		}
		if h.Insert(k, v) {
			return v, false
		}
	}
}

// Compute inserts ⟨k,d⟩ if absent, else atomically replaces the value
// with up(current, d); true iff an insert happened (handle-free
// InsertOrUpdate).
func (m *Map[K, V]) Compute(k K, d V, up func(cur, d V) V) (inserted bool) {
	withHandle(m, func(h *Handle[K, V]) { inserted = h.InsertOrUpdate(k, d, up) })
	return
}

// Delete removes k (handle-free); true iff k was present.
func (m *Map[K, V]) Delete(k K) (deleted bool) {
	withHandle(m, func(h *Handle[K, V]) { deleted = h.Delete(k) })
	return
}

// LoadAndDelete removes k and returns the value it held (handle-free;
// sync.Map parity). loaded is false when k was absent.
func (m *Map[K, V]) LoadAndDelete(k K) (value V, loaded bool) {
	withHandle(m, func(h *Handle[K, V]) { value, loaded = h.LoadAndDelete(k) })
	return
}

// CompareAndSwap replaces the value of k with new iff it is currently
// old (handle-free; sync.Map parity). Old values are compared with ==
// and must be of a comparable dynamic type, or CompareAndSwap panics.
func (m *Map[K, V]) CompareAndSwap(k K, old, new V) (swapped bool) {
	withHandle(m, func(h *Handle[K, V]) { swapped = h.CompareAndSwap(k, old, new) })
	return
}

// CompareAndDelete removes k iff its value is currently old (handle-free;
// sync.Map parity). Old values are compared with == and must be of a
// comparable dynamic type, or CompareAndDelete panics.
func (m *Map[K, V]) CompareAndDelete(k K, old V) (deleted bool) {
	withHandle(m, func(h *Handle[K, V]) { deleted = h.CompareAndDelete(k, old) })
	return
}

// Update atomically changes the value of k to up(current, d); returns
// false if k is absent (handle-free Update — unlike Compute it never
// inserts).
func (m *Map[K, V]) Update(k K, d V, up func(cur, d V) V) (updated bool) {
	withHandle(m, func(h *Handle[K, V]) { updated = h.Update(k, d, up) })
	return
}

// Session is a pinned-handle view of a Map: it borrows one pooled
// handle at creation and reuses it for every operation until Close,
// eliminating the per-op free-list hop of the handle-free methods.
// Like a Handle, a Session must not be used concurrently — create one
// per goroutine (typically one per connection or worker loop) and
// Close it when done, or the pooled handle stays out of circulation.
// Operations on a closed Session panic.
type Session[K comparable, V any] struct {
	m *Map[K, V]
	h *Handle[K, V]
}

// Session borrows a pooled handle and pins it into a Session view.
// Callers own the release: every path must Close the Session (growvet's
// handleleak analyzer enforces the shape for in-package callers).
//
//growt:acquires Close
//growt:exclusive -- ownership transfer: the borrowed handle is released by Session.Close, not here
func (m *Map[K, V]) Session() *Session[K, V] {
	return &Session[K, V]{m: m, h: m.acquire()}
}

// Close returns the pinned handle to the free list. Close is
// idempotent; the Session is unusable afterwards.
func (s *Session[K, V]) Close() {
	if s.h != nil {
		s.m.release(s.h)
		s.h = nil
	}
}

// handle returns the pinned handle, panicking on use-after-Close.
func (s *Session[K, V]) handle() *Handle[K, V] {
	if s.h == nil {
		panic("growt: use of closed Session")
	}
	return s.h
}

// Load returns the value stored at k (see Map.Load).
func (s *Session[K, V]) Load(k K) (V, bool) { return s.handle().Find(k) }

// Store sets the value for k, inserting or overwriting (see Map.Store).
func (s *Session[K, V]) Store(k K, v V) {
	s.handle().InsertOrUpdate(k, v, Replace[V])
}

// LoadOrStore returns the existing value for k if present; otherwise it
// stores and returns v (see Map.LoadOrStore).
func (s *Session[K, V]) LoadOrStore(k K, v V) (actual V, loaded bool) {
	return loadOrStore(s.handle(), k, v)
}

// Compute inserts ⟨k,d⟩ if absent, else atomically replaces the value
// with up(current, d) (see Map.Compute).
func (s *Session[K, V]) Compute(k K, d V, up func(cur, d V) V) bool {
	return s.handle().InsertOrUpdate(k, d, up)
}

// Delete removes k; true iff k was present (see Map.Delete).
func (s *Session[K, V]) Delete(k K) bool { return s.handle().Delete(k) }

// LoadAndDelete removes k and returns the value it held (see
// Map.LoadAndDelete).
func (s *Session[K, V]) LoadAndDelete(k K) (value V, loaded bool) {
	return s.handle().LoadAndDelete(k)
}

// CompareAndSwap replaces the value of k with new iff it is currently
// old (see Map.CompareAndSwap).
func (s *Session[K, V]) CompareAndSwap(k K, old, new V) bool {
	return s.handle().CompareAndSwap(k, old, new)
}

// CompareAndDelete removes k iff its value is currently old (see
// Map.CompareAndDelete).
func (s *Session[K, V]) CompareAndDelete(k K, old V) bool {
	return s.handle().CompareAndDelete(k, old)
}

// Update atomically changes the value of k to up(current, d) (see
// Map.Update).
func (s *Session[K, V]) Update(k K, d V, up func(cur, d V) V) bool {
	return s.handle().Update(k, d, up)
}

// Number collects the types usable with Add.
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uintptr |
		~float32 | ~float64
}

// Add is the typed update function that adds the operand to the stored
// value — the facade's analogue of AddFn for atomic aggregation.
func Add[V Number](cur, d V) V { return cur + d }

// Replace is the typed update function that overwrites the stored value
// with the operand — the facade's analogue of Overwrite.
func Replace[V any](_, d V) V { return d }

// newWordCore builds the §5.6 full-key wrapper over the word core chosen
// by the options; shared by the integer and generic key routes. Routing
// through NewMap keeps the variant selection and its defaults in exactly
// one place.
func newWordCore(c *config) *core.FullKeys {
	return core.NewFullKeys(func() tables.Interface {
		return NewMap(Options{
			Strategy:        c.strategy,
			InitialCapacity: c.capacity,
			Bounded:         c.bounded,
			Expected:        c.expected,
			TSX:             c.tsx,
		})
	})
}

// hasherFor resolves the generic-route hash function: the WithHasher
// option if given (type-checked against K), else the default.
func hasherFor[K comparable](c *config) func(K) uint64 {
	if c.hasher == nil {
		return defaultHasher[K]()
	}
	h, ok := c.hasher.(func(K) uint64)
	if !ok {
		var zk K
		panic(fmt.Sprintf("growt: WithHasher function is %T, map key type is %T", c.hasher, zk))
	}
	return h
}

// ---------------------------------------------------------------------
// Integer/bool keys: codec over the full-key word core (§5.6).

type wordBackend[K comparable, V any] struct {
	fk   *core.FullKeys
	kenc func(K) uint64
	kdec func(uint64) K
	vc   *valCodec[V]
}

func newWordBackend[K comparable, V any](c *config, kenc func(K) uint64, kdec func(uint64) K) *wordBackend[K, V] {
	return &wordBackend[K, V]{fk: newWordCore(c), kenc: kenc, kdec: kdec, vc: newValCodec[V]()}
}

func (b *wordBackend[K, V]) newHandle() backendHandle[K, V] {
	return &wordHandle[K, V]{b: b, h: b.fk.Handle()}
}
func (b *wordBackend[K, V]) approxSize() uint64 { return b.fk.ApproxSize() }
func (b *wordBackend[K, V]) generation() uint64 { return b.fk.Generation() }
func (b *wordBackend[K, V]) close()             { b.fk.Close() }
func (b *wordBackend[K, V]) rangeAll(fn func(K, V) bool) {
	b.fk.Range(func(k, w uint64) bool { return fn(b.kdec(k), b.vc.dec(w)) })
}
func (b *wordBackend[K, V]) rangeFrom(cur tables.Cursor, fn func(K, V) bool) (tables.Cursor, bool) {
	return b.fk.RangeFrom(cur, func(k, w uint64) bool { return fn(b.kdec(k), b.vc.dec(w)) })
}

// entryBytes: two cell words plus the codec's arena slot estimate.
func (b *wordBackend[K, V]) entryBytes() uint64 { return 16 + b.vc.slotBytes }

type wordHandle[K comparable, V any] struct {
	b *wordBackend[K, V]
	h tables.Handle
}

func (h *wordHandle[K, V]) insert(k K, v V) bool {
	kw := h.b.kenc(k)
	if w, inline := h.b.vc.tryEnc(v); inline {
		return h.h.Insert(kw, w)
	}
	// Arena-bound value: probe first so a refused insert does not orphan
	// a slot (racy probes only cost the orphan, never correctness).
	if _, present := h.h.Find(kw); present {
		return false
	}
	return h.h.Insert(kw, h.b.vc.enc(v))
}

func (h *wordHandle[K, V]) update(k K, d V, up func(cur, d V) V) bool {
	return h.h.Update(h.b.kenc(k), 0, func(cur, _ uint64) uint64 {
		return h.b.vc.enc(up(h.b.vc.dec(cur), d))
	})
}

func (h *wordHandle[K, V]) insertOrUpdate(k K, d V, up func(cur, d V) V) bool {
	kw := h.b.kenc(k)
	wrapped := func(cur, _ uint64) uint64 {
		return h.b.vc.enc(up(h.b.vc.dec(cur), d))
	}
	if w, inline := h.b.vc.tryEnc(d); inline {
		return h.h.InsertOrUpdate(kw, w, wrapped)
	}
	// Arena-bound operand: try the update path first so the steady-state
	// (key present) case never encodes d, which would orphan one slot
	// per call.
	if h.h.Update(kw, 0, wrapped) {
		return false
	}
	return h.h.InsertOrUpdate(kw, h.b.vc.enc(d), wrapped)
}

func (h *wordHandle[K, V]) find(k K) (V, bool) {
	w, ok := h.h.Find(h.b.kenc(k))
	if !ok {
		var zv V
		return zv, false
	}
	return h.b.vc.dec(w), true
}

func (h *wordHandle[K, V]) del(k K) bool { return h.h.Delete(h.b.kenc(k)) }

func (h *wordHandle[K, V]) compareAndSwap(k K, old, new V) bool {
	return casViaUpdate(h.b.vc, old, new, func(up func(cur, d uint64) uint64) bool {
		return h.h.Update(h.b.kenc(k), 0, up)
	})
}

func (h *wordHandle[K, V]) compareAndDelete(k K, old V) bool {
	kw := h.b.kenc(k)
	// Every word core behind the full-key wrapper implements
	// tables.CompareAndDeleter (conditional tombstoning CAS).
	cd := h.h.(tables.CompareAndDeleter)
	return cadViaWords(h.b.vc, old,
		func() (uint64, bool) { return h.h.Find(kw) },
		func(w uint64) bool { return cd.CompareAndDelete(kw, w) })
}

func (h *wordHandle[K, V]) loadAndDelete(k K) (V, bool) {
	// The full-key wrapper behind every word route implements
	// tables.LoadDeleter (its tombstoning CAS observes the value word it
	// clears), so the decoded value is exactly the one removed.
	w, ok := h.h.(tables.LoadDeleter).LoadAndDelete(h.b.kenc(k))
	if !ok {
		var zv V
		return zv, false
	}
	return h.b.vc.dec(w), true
}

// ---------------------------------------------------------------------
// String keys: codec over the complex-key table (§5.7).

type stringBackend[K comparable, V any] struct {
	sm *stringmap.Map
	vc *valCodec[V]
}

func newStringBackend[K comparable, V any](c *config) *stringBackend[K, V] {
	expected := c.expected
	if !c.bounded {
		expected = c.capacity
	}
	if expected == 0 {
		expected = defaultStringExpected
	}
	return &stringBackend[K, V]{sm: stringmap.New(expected), vc: newValCodec[V]()}
}

func (b *stringBackend[K, V]) newHandle() backendHandle[K, V] {
	return &stringHandle[K, V]{b: b, h: b.sm.Handle()}
}
func (b *stringBackend[K, V]) approxSize() uint64 { return b.sm.Size() }
func (b *stringBackend[K, V]) generation() uint64 { return 0 } // bounded: never migrates
func (b *stringBackend[K, V]) close()             {}
func (b *stringBackend[K, V]) rangeAll(fn func(K, V) bool) {
	b.sm.Range(func(s string, w uint64) bool { return fn(fromString[K](s), b.vc.dec(w)) })
}
func (b *stringBackend[K, V]) rangeFrom(cur tables.Cursor, fn func(K, V) bool) (tables.Cursor, bool) {
	return b.sm.RangeFrom(cur, func(s string, w uint64) bool { return fn(fromString[K](s), b.vc.dec(w)) })
}

// entryBytes: two cell words, an arena copy of a typical short key
// (length header plus ~14 bytes), and the value slot estimate.
func (b *stringBackend[K, V]) entryBytes() uint64 { return 16 + 16 + b.vc.slotBytes }

type stringHandle[K comparable, V any] struct {
	b *stringBackend[K, V]
	h *stringmap.Handle
}

func (h *stringHandle[K, V]) insert(k K, v V) bool {
	s := asString(k)
	if w, inline := h.b.vc.tryEnc(v); inline {
		return h.h.Insert(s, w)
	}
	if _, present := h.h.Find(s); present {
		return false
	}
	return h.h.Insert(s, h.b.vc.enc(v))
}

func (h *stringHandle[K, V]) update(k K, d V, up func(cur, d V) V) bool {
	return h.h.Update(asString(k), 0, func(cur, _ uint64) uint64 {
		return h.b.vc.enc(up(h.b.vc.dec(cur), d))
	})
}

func (h *stringHandle[K, V]) insertOrUpdate(k K, d V, up func(cur, d V) V) bool {
	s := asString(k)
	wrapped := func(cur, _ uint64) uint64 {
		return h.b.vc.enc(up(h.b.vc.dec(cur), d))
	}
	if w, inline := h.b.vc.tryEnc(d); inline {
		return h.h.InsertOrUpdate(s, w, wrapped)
	}
	if h.h.Update(s, 0, wrapped) {
		return false
	}
	return h.h.InsertOrUpdate(s, h.b.vc.enc(d), wrapped)
}

func (h *stringHandle[K, V]) find(k K) (V, bool) {
	w, ok := h.h.Find(asString(k))
	if !ok {
		var zv V
		return zv, false
	}
	return h.b.vc.dec(w), true
}

func (h *stringHandle[K, V]) del(k K) bool { return h.h.Delete(asString(k)) }

func (h *stringHandle[K, V]) compareAndSwap(k K, old, new V) bool {
	return casViaUpdate(h.b.vc, old, new, func(up func(cur, d uint64) uint64) bool {
		return h.h.Update(asString(k), 0, up)
	})
}

func (h *stringHandle[K, V]) compareAndDelete(k K, old V) bool {
	s := asString(k)
	return cadViaWords(h.b.vc, old,
		func() (uint64, bool) { return h.h.Find(s) },
		func(w uint64) bool { return h.h.CompareAndDelete(s, w) })
}

func (h *stringHandle[K, V]) loadAndDelete(k K) (V, bool) {
	w, ok := h.h.LoadAndDelete(asString(k))
	if !ok {
		var zv V
		return zv, false
	}
	return h.b.vc.dec(w), true
}

// ---------------------------------------------------------------------
// Generic comparable keys: hash-to-64-bit codec. The word core maps the
// key's hash (through the full-key wrapper, so every hash value is a
// legal word key) to the 1-based arena reference of the head of a
// collision chain; chain entries hold the real key, an atomically
// swappable value pointer (nil = deleted), and the next link. Chains are
// append-only — the word cell for a hash is written once and entries are
// never unlinked, so all mutation is a single CAS on a value pointer or
// a next link.

const entryPageSize = 256

type entry[K comparable, V any] struct {
	key  K
	val  atomic.Pointer[V] // nil = logically deleted
	next atomic.Uint64     // 1-based ref of next chain entry; 0 = end
}

type entryArena[K comparable, V any] struct {
	mu    sync.Mutex // page extension only
	n     atomic.Uint64
	pages atomic.Pointer[[]*[entryPageSize]entry[K, V]]
}

// alloc publishes a new entry holding ⟨k, vp⟩ and returns its 1-based
// reference. Indices are reserved with an atomic bump (the lock is taken
// only to extend the page directory), so concurrent inserters of
// distinct keys do not serialize. The caller must link the reference
// into the word table or a chain (or abandon it by nilling val) for it
// to become/stay meaningful.
func (a *entryArena[K, V]) alloc(k K, vp *V) uint64 {
	idx := a.n.Add(1) - 1
	page := idx / entryPageSize
	for {
		var pages []*[entryPageSize]entry[K, V]
		if p := a.pages.Load(); p != nil {
			pages = *p
		}
		if page < uint64(len(pages)) {
			e := &pages[page][idx%entryPageSize]
			e.key = k
			e.val.Store(vp)
			return idx + 1
		}
		a.extend(page)
	}
}

// extend grows the page directory to cover page (copy-on-write).
func (a *entryArena[K, V]) extend(page uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var cur []*[entryPageSize]entry[K, V]
	if p := a.pages.Load(); p != nil {
		cur = *p
	}
	if page < uint64(len(cur)) {
		return
	}
	next := make([]*[entryPageSize]entry[K, V], page+1)
	copy(next, cur)
	for i := len(cur); i < len(next); i++ {
		next[i] = new([entryPageSize]entry[K, V])
	}
	a.pages.Store(&next)
}

func (a *entryArena[K, V]) get(ref uint64) *entry[K, V] {
	idx := ref - 1
	pages := *a.pages.Load()
	return &pages[idx/entryPageSize][idx%entryPageSize]
}

type genericBackend[K comparable, V any] struct {
	fk   *core.FullKeys
	hash func(K) uint64
	ar   entryArena[K, V]
	size atomic.Int64
	gen  uint64 // process-unique id tagging resumable cursors
}

// genericGen hands every generic backend a process-unique nonzero
// generation id for rangeFrom cursors (0 is reserved for "no cursor").
var genericGen atomic.Uint64

func newGenericBackend[K comparable, V any](c *config) *genericBackend[K, V] {
	return &genericBackend[K, V]{fk: newWordCore(c), hash: hasherFor[K](c), gen: genericGen.Add(1)}
}

func (b *genericBackend[K, V]) newHandle() backendHandle[K, V] {
	return &genericHandle[K, V]{b: b, h: b.fk.Handle()}
}

func (b *genericBackend[K, V]) approxSize() uint64 {
	n := b.size.Load()
	if n < 0 {
		return 0
	}
	return uint64(n)
}

func (b *genericBackend[K, V]) generation() uint64 { return b.fk.Generation() }

func (b *genericBackend[K, V]) close() { b.fk.Close() }

// rangeAll walks the arena directly: every live (non-abandoned,
// non-deleted) entry is exactly one element. Reserved-but-unwritten
// indices (a writer between bump and page extension) are clamped away;
// like every Range here, quiescent use only.
func (b *genericBackend[K, V]) rangeAll(fn func(K, V) bool) {
	n := b.ar.n.Load()
	var pages []*[entryPageSize]entry[K, V]
	if p := b.ar.pages.Load(); p != nil {
		pages = *p
	}
	if avail := uint64(len(pages)) * entryPageSize; n > avail {
		n = avail
	}
	for idx := uint64(0); idx < n; idx++ {
		e := &pages[idx/entryPageSize][idx%entryPageSize]
		if p := e.val.Load(); p != nil {
			if !fn(e.key, *p) {
				return
			}
		}
	}
}

// rangeFrom resumes the arena walk at cur. The arena is append-only, so
// the cursor is a plain entry index; entries appended after the cursor
// was taken are picked up by the next wrapped walk. Quiescent use only.
func (b *genericBackend[K, V]) rangeFrom(cur tables.Cursor, fn func(K, V) bool) (tables.Cursor, bool) {
	pos := uint64(0)
	if cur.Gen == b.gen {
		pos = cur.Pos
	}
	n := b.ar.n.Load()
	var pages []*[entryPageSize]entry[K, V]
	if p := b.ar.pages.Load(); p != nil {
		pages = *p
	}
	if avail := uint64(len(pages)) * entryPageSize; n > avail {
		n = avail
	}
	for idx := pos; idx < n; idx++ {
		e := &pages[idx/entryPageSize][idx%entryPageSize]
		if p := e.val.Load(); p != nil {
			if !fn(e.key, *p) {
				if idx+1 >= n {
					return tables.Cursor{Gen: b.gen}, true
				}
				return tables.Cursor{Gen: b.gen, Pos: idx + 1}, false
			}
		}
	}
	return tables.Cursor{Gen: b.gen}, true
}

// entryBytes: the hash cell words plus one typed chain entry.
func (b *genericBackend[K, V]) entryBytes() uint64 {
	var e entry[K, V]
	return 16 + uint64(unsafe.Sizeof(e))
}

type genericHandle[K comparable, V any] struct {
	b *genericBackend[K, V]
	h tables.Handle
}

// findEntry walks the collision chain for k; nil if no entry carries k.
func (h *genericHandle[K, V]) findEntry(k K) *entry[K, V] {
	head, ok := h.h.Find(h.b.hash(k))
	if !ok {
		return nil
	}
	e := h.b.ar.get(head)
	for {
		if e.key == k {
			return e
		}
		nx := e.next.Load()
		if nx == 0 {
			return nil
		}
		e = h.b.ar.get(nx)
	}
}

// upsert is the shared insert / insert-or-update machinery. With up==nil
// a present key refuses (insert semantics); otherwise it is atomically
// updated. Returns true iff an insert (or tombstone revival) happened.
func (h *genericHandle[K, V]) upsert(k K, d V, up func(cur, d V) V) bool {
	hash := h.b.hash(k)
	dp := &d
	ref := uint64(0) // lazily allocated new entry; 0 = none yet
	published := false
	defer func() {
		// An allocated entry that lost every race must not stay visible
		// to Range: nil its value to abandon it (the slot itself leaks,
		// like all arena space, until the map is collected).
		if ref != 0 && !published {
			h.b.ar.get(ref).val.Store(nil)
		}
	}()
	ensure := func() uint64 {
		if ref == 0 {
			ref = h.b.ar.alloc(k, dp)
		}
		return ref
	}
	for {
		head, ok := h.h.Find(hash)
		if !ok {
			if h.h.Insert(hash, ensure()) {
				published = true
				h.b.size.Add(1)
				return true
			}
			continue // lost the word-cell race; re-find the winner's chain
		}
		e := h.b.ar.get(head)
		for {
			if e.key == k {
				for {
					p := e.val.Load()
					if p == nil {
						// Deleted entry: revive it with d.
						if e.val.CompareAndSwap(nil, dp) {
							h.b.size.Add(1)
							return true
						}
						continue
					}
					if up == nil {
						return false
					}
					nv := up(*p, d)
					if e.val.CompareAndSwap(p, &nv) {
						return false
					}
				}
			}
			nx := e.next.Load()
			if nx == 0 {
				if e.next.CompareAndSwap(0, ensure()) {
					published = true
					h.b.size.Add(1)
					return true
				}
				nx = e.next.Load()
			}
			e = h.b.ar.get(nx)
		}
	}
}

func (h *genericHandle[K, V]) insert(k K, v V) bool { return h.upsert(k, v, nil) }

func (h *genericHandle[K, V]) insertOrUpdate(k K, d V, up func(cur, d V) V) bool {
	return h.upsert(k, d, up)
}

func (h *genericHandle[K, V]) update(k K, d V, up func(cur, d V) V) bool {
	e := h.findEntry(k)
	if e == nil {
		return false
	}
	for {
		p := e.val.Load()
		if p == nil {
			return false
		}
		nv := up(*p, d)
		if e.val.CompareAndSwap(p, &nv) {
			return true
		}
	}
}

func (h *genericHandle[K, V]) find(k K) (V, bool) {
	if e := h.findEntry(k); e != nil {
		if p := e.val.Load(); p != nil {
			return *p, true
		}
	}
	var zv V
	return zv, false
}

func (h *genericHandle[K, V]) del(k K) bool {
	_, ok := h.loadAndDelete(k)
	return ok
}

// compareAndSwap CASes the entry's value pointer directly: a refused
// call performs no write and allocates nothing.
func (h *genericHandle[K, V]) compareAndSwap(k K, old, new V) bool {
	e := h.findEntry(k)
	if e == nil {
		return false
	}
	for {
		p := e.val.Load()
		if p == nil || any(*p) != any(old) {
			return false
		}
		nv := new
		if e.val.CompareAndSwap(p, &nv) {
			return true
		}
	}
}

// compareAndDelete CASes the entry's value pointer to nil iff the
// current value compares equal: verdict and removal are one CAS.
func (h *genericHandle[K, V]) compareAndDelete(k K, old V) bool {
	e := h.findEntry(k)
	if e == nil {
		return false
	}
	for {
		p := e.val.Load()
		if p == nil || any(*p) != any(old) {
			return false
		}
		if e.val.CompareAndSwap(p, nil) {
			h.b.size.Add(-1)
			return true
		}
	}
}

func (h *genericHandle[K, V]) loadAndDelete(k K) (V, bool) {
	e := h.findEntry(k)
	if e == nil {
		var zv V
		return zv, false
	}
	for {
		p := e.val.Load()
		if p == nil {
			var zv V
			return zv, false
		}
		if e.val.CompareAndSwap(p, nil) {
			h.b.size.Add(-1)
			return *p, true
		}
	}
}
