package zipfgen

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestRangeAllS(t *testing.T) {
	src := rng.NewSplitMix64(1)
	for _, s := range []float64{0, 0.25, 0.5, 0.85, 1.0, 1.25, 1.5, 2.0} {
		z := New(1000, s, src)
		for i := 0; i < 20000; i++ {
			k := z.Next()
			if k < 1 || k > 1000 {
				t.Fatalf("s=%f: sample %d out of range", s, k)
			}
		}
	}
}

func TestN1(t *testing.T) {
	z := New(1, 1.0, rng.NewSplitMix64(2))
	for i := 0; i < 100; i++ {
		if z.Next() != 1 {
			t.Fatal("N=1 must always return 1")
		}
	}
}

// TestDistributionMatchesPMF performs a chi-squared-style check: empirical
// frequencies of the first few ranks must match the analytic PMF.
func TestDistributionMatchesPMF(t *testing.T) {
	const n = 1000
	const draws = 400000
	for _, s := range []float64{0.5, 1.0, 1.5} {
		z := New(n, s, rng.NewSplitMix64(uint64(s*100)))
		counts := make(map[uint64]int)
		for i := 0; i < draws; i++ {
			counts[z.Next()]++
		}
		for k := uint64(1); k <= 10; k++ {
			want := z.PMF(k) * draws
			got := float64(counts[k])
			// 5 standard deviations of a binomial.
			tol := 5 * math.Sqrt(want)
			if math.Abs(got-want) > tol+1 {
				t.Errorf("s=%.2f k=%d: got %f want %f (tol %f)", s, k, got, want, tol)
			}
		}
	}
}

// TestSkewMonotonicity: higher s must concentrate more probability mass on
// the most frequent key.
func TestSkewMonotonicity(t *testing.T) {
	const n = 10000
	const draws = 200000
	prev := -1.0
	for _, s := range []float64{0.25, 0.75, 1.25, 2.0} {
		z := New(n, s, rng.NewSplitMix64(7))
		ones := 0
		for i := 0; i < draws; i++ {
			if z.Next() == 1 {
				ones++
			}
		}
		frac := float64(ones) / draws
		if frac <= prev {
			t.Fatalf("P(1) not increasing with s: s=%f frac=%f prev=%f", s, frac, prev)
		}
		prev = frac
	}
}

// TestUniformFallback: s=0 must be (approximately) uniform.
func TestUniformFallback(t *testing.T) {
	const n = 10
	const draws = 100000
	z := New(n, 0, rng.NewSplitMix64(3))
	var counts [n + 1]int
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	expect := float64(draws) / n
	for k := 1; k <= n; k++ {
		if math.Abs(float64(counts[k])-expect) > 5*math.Sqrt(expect) {
			t.Errorf("s=0 bucket %d count %d deviates from %f", k, counts[k], expect)
		}
	}
}

// TestPaperContentionPoint reproduces the paper's observation anchor: for
// s between 0.85 and 0.95 roughly 1–3% of accesses hit the most common
// element when N = 10^8. We verify at a smaller N that P(1) is computed
// consistently between sampler and PMF.
func TestPaperContentionPoint(t *testing.T) {
	const n = 100000
	z := New(n, 0.9, rng.NewSplitMix64(11))
	const draws = 300000
	ones := 0
	for i := 0; i < draws; i++ {
		if z.Next() == 1 {
			ones++
		}
	}
	got := float64(ones) / draws
	want := z.PMF(1)
	if math.Abs(got-want) > 5*math.Sqrt(want/draws)+0.002 {
		t.Fatalf("P(1): sampled %f, analytic %f", got, want)
	}
}

func TestAccessors(t *testing.T) {
	z := New(123, 1.5, rng.NewSplitMix64(1))
	if z.N() != 123 || z.S() != 1.5 {
		t.Fatal("accessors wrong")
	}
}

func TestBadArgsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 1, rng.NewSplitMix64(1)) },
		func() { New(10, -1, rng.NewSplitMix64(1)) },
		func() { New(10, math.NaN(), rng.NewSplitMix64(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkZipfS099(b *testing.B) {
	z := New(1<<26, 0.99, rng.NewSplitMix64(1))
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += z.Next()
	}
	_ = sink
}

func BenchmarkZipfS150(b *testing.B) {
	z := New(1<<26, 1.5, rng.NewSplitMix64(1))
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += z.Next()
	}
	_ = sink
}
