// Package zipfgen samples Zipf-distributed keys for the contention
// benchmarks (§8.3 of the paper): P(k) ∝ 1/k^s over the universe 1..N,
// with the exponent s sweeping 0.25..2.0.
//
// math/rand's Zipf requires s > 1, and a table-driven inverse-CDF over
// N = 10^8 would need Θ(N) memory, so we implement the rejection-inversion
// sampler of Hörmann & Derflinger ("Rejection-inversion to generate
// variates from monotone discrete distributions", 1996), which draws from
// the exact discrete Zipf distribution for any s ≥ 0 and any N in O(1)
// expected time and O(1) memory.
package zipfgen

import "math"

// Source is the uniform-variate source the sampler consumes. Both
// rng.MT19937 and rng.SplitMix64 satisfy it.
type Source interface {
	Float64() float64
}

// Zipf samples from P(k) = k^-s / H(N,s), k ∈ 1..N. Not safe for
// concurrent use; create one per goroutine.
type Zipf struct {
	n   uint64
	s   float64
	src Source

	// Precomputed constants of the rejection-inversion scheme.
	hIntegralX1        float64
	hIntegralNumTerms  float64
	sAbsCutoff         float64
	uniformUpper       float64
	uniformLower       float64
	useUniformFallback bool
}

// New returns a sampler over 1..n with exponent s using src for uniform
// variates. n must be ≥ 1 and s ≥ 0.
func New(n uint64, s float64, src Source) *Zipf {
	if n < 1 {
		panic("zipfgen: n must be >= 1")
	}
	if s < 0 || math.IsNaN(s) {
		panic("zipfgen: s must be >= 0")
	}
	z := &Zipf{n: n, s: s, src: src}
	if s == 0 {
		// Degenerates to the uniform distribution on 1..n; sampled
		// directly (rejection-inversion divides by s in hInverse).
		z.useUniformFallback = true
		return z
	}
	z.hIntegralX1 = z.hIntegral(1.5) - 1.0
	z.hIntegralNumTerms = z.hIntegral(float64(n) + 0.5)
	z.uniformLower = z.hIntegralX1
	z.uniformUpper = z.hIntegralNumTerms
	z.sAbsCutoff = 2 - z.hInverse(z.hIntegral(2.5)-z.h(2))
	return z
}

// N returns the universe size.
func (z *Zipf) N() uint64 { return z.n }

// S returns the exponent.
func (z *Zipf) S() float64 { return z.s }

// h(x) = x^-s, the (unnormalized) density.
func (z *Zipf) h(x float64) float64 {
	return math.Exp(-z.s * math.Log(x))
}

// hIntegral is an antiderivative of h:
//
//	s == 1: log(x)
//	else:   (x^(1-s) - 1) / (1 - s)
//
// written with expm1/log1p-style stability via helper below.
func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2((1-z.s)*logX) * logX
}

// hInverse is the inverse of hIntegral.
func (z *Zipf) hInverse(x float64) float64 {
	t := x * (1 - z.s)
	if t < -1 {
		// Clamp against rounding below the pole (only relevant for
		// s > 1 where hIntegral is bounded above by 1/(s-1)).
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

// helper1(x) = log1p(x)/x, continuous at 0.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x*(0.5-x*(1.0/3.0-x*0.25))
}

// helper2(x) = expm1(x)/x, continuous at 0.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x*0.5*(1+x*(1.0/3.0)*(1+x*0.25))
}

// Next draws one Zipf variate in 1..N.
func (z *Zipf) Next() uint64 {
	if z.useUniformFallback {
		k := uint64(z.src.Float64() * float64(z.n))
		if k >= z.n {
			k = z.n - 1
		}
		return k + 1
	}
	for {
		u := z.uniformUpper + z.src.Float64()*(z.uniformLower-z.uniformUpper)
		// u is uniform in (hIntegral(1.5)-h(1), hIntegral(N+0.5)].
		x := z.hInverse(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > float64(z.n) {
			k = float64(z.n)
		}
		// Accept if k is within the hat's majorized region.
		if k-x <= z.sAbsCutoff || u >= z.hIntegral(k+0.5)-z.h(k) {
			return uint64(k)
		}
	}
}

// PMF returns P(k) for diagnostics and tests; O(N) normalization is
// memoized on first call for small N only (tests use N ≤ 10^5).
func (z *Zipf) PMF(k uint64) float64 {
	if k < 1 || k > z.n {
		return 0
	}
	return math.Pow(float64(k), -z.s) / z.HarmonicN()
}

var harmonicCache = map[[2]uint64]float64{}

// HarmonicN returns the generalized harmonic number H(N,s) by direct
// summation (intended for test-sized N).
func (z *Zipf) HarmonicN() float64 {
	keyBits := math.Float64bits(z.s)
	if v, ok := harmonicCache[[2]uint64{z.n, keyBits}]; ok {
		return v
	}
	sum := 0.0
	for k := uint64(1); k <= z.n; k++ {
		sum += math.Pow(float64(k), -z.s)
	}
	harmonicCache[[2]uint64{z.n, keyBits}] = sum
	return sum
}
