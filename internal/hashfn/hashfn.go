// Package hashfn provides the 64-bit hash functions used by every table in
// this repository.
//
// The paper (§8.3) hashes keys with two CRC32-C (Castagnoli) instructions
// seeded differently, concatenating the two 32-bit results into a 64-bit
// hash; the hardware CRC instruction makes this nearly free. Go's
// hash/crc32 uses the same polynomial (and SSE4.2 acceleration where
// available), so Hash64 reproduces the construction faithfully. A
// SplitMix64-style avalanche finalizer is also provided for tables that
// want stronger diffusion of the low bits (chaining/cuckoo baselines).
package hashfn

import "hash/crc32"

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Seeds for the two CRC passes. Arbitrary odd constants; the paper does
// not publish its seeds, only the two-instruction construction.
const (
	seedHi uint32 = 0x9e3779b9
	seedLo uint32 = 0x85ebca6b
)

// crc32cUint64 computes the CRC32-C of the 8 bytes of x, starting from
// seed, without allocating.
func crc32cUint64(seed uint32, x uint64) uint32 {
	var b [8]byte
	b[0] = byte(x)
	b[1] = byte(x >> 8)
	b[2] = byte(x >> 16)
	b[3] = byte(x >> 24)
	b[4] = byte(x >> 32)
	b[5] = byte(x >> 40)
	b[6] = byte(x >> 48)
	b[7] = byte(x >> 56)
	return crc32.Update(seed, castagnoli, b[:])
}

// Hash64 maps a 64-bit key to a 64-bit pseudorandom hash using two
// independently seeded CRC32-C passes (upper and lower 32 bits), the
// construction from §8.3 of the paper.
func Hash64(key uint64) uint64 {
	hi := crc32cUint64(seedHi, key)
	lo := crc32cUint64(seedLo, key)
	return uint64(hi)<<32 | uint64(lo)
}

// Avalanche applies a SplitMix64/MurmurHash3-style finalizer. It is a
// bijection on 64-bit words with strong low- and high-bit diffusion; used
// by baselines whose index derivation consumes low bits.
func Avalanche(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// HashString maps a string to a 64-bit hash using the same two-pass
// CRC32-C construction over the string bytes; used by the complex-key
// table (§5.7).
func HashString(s string) uint64 {
	hi := crc32.Update(seedHi, castagnoli, []byte(s))
	lo := crc32.Update(seedLo, castagnoli, []byte(s))
	return uint64(hi)<<32 | uint64(lo)
}
