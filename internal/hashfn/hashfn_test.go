package hashfn

import (
	"testing"
	"testing/quick"
)

func TestHash64Deterministic(t *testing.T) {
	for _, k := range []uint64{0, 1, 42, 1 << 63, ^uint64(0)} {
		if Hash64(k) != Hash64(k) {
			t.Fatalf("Hash64 not deterministic for %d", k)
		}
	}
}

func TestHash64HalvesDiffer(t *testing.T) {
	// The two CRC passes use different seeds, so the upper and lower 32
	// bits must not be identical for typical keys.
	same := 0
	for k := uint64(0); k < 1000; k++ {
		h := Hash64(k)
		if uint32(h>>32) == uint32(h) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("upper==lower halves for %d/1000 keys", same)
	}
}

func TestHash64Collisions(t *testing.T) {
	// Sequential keys must produce essentially collision-free 64-bit
	// hashes at this scale.
	seen := make(map[uint64]uint64, 1<<16)
	for k := uint64(0); k < 1<<16; k++ {
		h := Hash64(k)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision: Hash64(%d)==Hash64(%d)==%#x", k, prev, h)
		}
		seen[h] = k
	}
}

// TestHash64HighBitsSpread: tables index with the TOP bits (scaled
// mapping, §5.3.1), so the top byte must be well distributed even for
// sequential keys.
func TestHash64HighBitsSpread(t *testing.T) {
	var buckets [256]int
	const n = 1 << 16
	for k := uint64(0); k < n; k++ {
		buckets[Hash64(k)>>56]++
	}
	expect := float64(n) / 256
	for b, c := range buckets {
		if float64(c) < expect/2 || float64(c) > expect*2 {
			t.Errorf("top-byte bucket %d has %d entries (expect ~%f)", b, c, expect)
		}
	}
}

func TestAvalancheBijective(t *testing.T) {
	// The finalizer is a bijection: no collisions on a sample, and it is
	// invertible in principle. We check injectivity on a window.
	seen := make(map[uint64]bool, 1<<16)
	for k := uint64(0); k < 1<<16; k++ {
		h := Avalanche(k)
		if seen[h] {
			t.Fatalf("avalanche collision at %d", k)
		}
		seen[h] = true
	}
}

func TestAvalancheDiffusion(t *testing.T) {
	// Flipping one input bit should flip ~32 output bits on average.
	f := func(x uint64, bit uint8) bool {
		b := uint(bit) % 64
		d := Avalanche(x) ^ Avalanche(x^(1<<b))
		pop := 0
		for d != 0 {
			pop++
			d &= d - 1
		}
		return pop >= 8 && pop <= 56
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHashString(t *testing.T) {
	if HashString("a") == HashString("b") {
		t.Fatal("trivial string collision")
	}
	if HashString("hello") != HashString("hello") {
		t.Fatal("HashString not deterministic")
	}
	if HashString("") == 0 {
		// CRC of empty input with nonzero seeds is the seed complement;
		// must not be the zero/empty sentinel.
		t.Fatal("empty string hashed to 0")
	}
}

func BenchmarkHash64(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Hash64(uint64(i))
	}
	_ = sink
}

func BenchmarkAvalanche(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Avalanche(uint64(i))
	}
	_ = sink
}
