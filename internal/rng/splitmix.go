package rng

// SplitMix64 is the Steele–Lea–Flood split-mix generator: a tiny, fast,
// full-period generator over 2^64. Used to derive independent seeds for
// per-goroutine MT19937 instances and for cheap randomized decisions in
// the tables themselves (e.g. the randomized counter-flush threshold of
// §5.2, which the paper randomizes between 1 and p to provably reduce
// contention).
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator with the given starting state.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Uint64 returns the next value.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64n returns a uniform value in [0, n); n must be > 0.
func (s *SplitMix64) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	threshold := -n % n
	for {
		v := s.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Float64 returns a uniform value in [0, 1).
func (s *SplitMix64) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}
