// Package rng provides the pseudorandom number generators used for
// workload generation.
//
// The paper (§8.3) precomputes benchmark keys with the Mersenne Twister of
// Matsumoto & Nishimura. MT19937-64 is implemented here from the published
// algorithm (the standard 64-bit variant parameters) and validated against
// the reference output vector in the tests. SplitMix64 is provided as a
// cheap seeding/stream-splitting generator.
package rng

// MT19937-64 parameters (standard 64-bit Mersenne Twister).
const (
	mtN         = 312
	mtM         = 156
	mtMatrixA   = 0xB5026F5AA96619E9
	mtUpperMask = 0xFFFFFFFF80000000
	mtLowerMask = 0x000000007FFFFFFF
)

// MT19937 is a 64-bit Mersenne Twister. It is NOT safe for concurrent use;
// the benchmark harness uses one instance per generator goroutine.
type MT19937 struct {
	state [mtN]uint64
	index int
}

// NewMT19937 returns a generator seeded with seed using the reference
// initialization recurrence.
func NewMT19937(seed uint64) *MT19937 {
	m := &MT19937{}
	m.Seed(seed)
	return m
}

// Seed resets the generator state from a single 64-bit seed.
func (m *MT19937) Seed(seed uint64) {
	m.state[0] = seed
	for i := 1; i < mtN; i++ {
		m.state[i] = 6364136223846793005*(m.state[i-1]^(m.state[i-1]>>62)) + uint64(i)
	}
	m.index = mtN
}

// SeedSlice resets the state from a seed array, as in the reference
// implementation's init_by_array64.
func (m *MT19937) SeedSlice(key []uint64) {
	m.Seed(19650218)
	i, j := 1, 0
	k := len(key)
	if mtN > k {
		k = mtN
	}
	for ; k > 0; k-- {
		m.state[i] = (m.state[i] ^ ((m.state[i-1] ^ (m.state[i-1] >> 62)) * 3935559000370003845)) + key[j] + uint64(j)
		i++
		j++
		if i >= mtN {
			m.state[0] = m.state[mtN-1]
			i = 1
		}
		if j >= len(key) {
			j = 0
		}
	}
	for k = mtN - 1; k > 0; k-- {
		m.state[i] = (m.state[i] ^ ((m.state[i-1] ^ (m.state[i-1] >> 62)) * 2862933555777941757)) - uint64(i)
		i++
		if i >= mtN {
			m.state[0] = m.state[mtN-1]
			i = 1
		}
	}
	m.state[0] = 1 << 63
	m.index = mtN
}

// generate refills the state block.
func (m *MT19937) generate() {
	for i := 0; i < mtN; i++ {
		x := (m.state[i] & mtUpperMask) | (m.state[(i+1)%mtN] & mtLowerMask)
		xa := x >> 1
		if x&1 != 0 {
			xa ^= mtMatrixA
		}
		m.state[i] = m.state[(i+mtM)%mtN] ^ xa
	}
	m.index = 0
}

// Uint64 returns the next 64-bit output.
func (m *MT19937) Uint64() uint64 {
	if m.index >= mtN {
		m.generate()
	}
	x := m.state[m.index]
	m.index++
	x ^= (x >> 29) & 0x5555555555555555
	x ^= (x << 17) & 0x71D67FFFEDA60000
	x ^= (x << 37) & 0xFFF7EEE000000000
	x ^= x >> 43
	return x
}

// Uint64n returns a uniform value in [0, n) using Lemire-style rejection
// to avoid modulo bias. n must be > 0.
func (m *MT19937) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Rejection sampling on the top bits: threshold is the largest
	// multiple of n that fits in 2^64.
	threshold := -n % n // (2^64 - n) mod n == 2^64 mod n
	for {
		v := m.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Float64 returns a uniform value in [0, 1) with 53-bit resolution.
func (m *MT19937) Float64() float64 {
	return float64(m.Uint64()>>11) / (1 << 53)
}
