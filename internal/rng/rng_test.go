package rng

import (
	"math"
	"testing"
	"testing/quick"
)

// TestMT19937ReferenceVector checks the generator against the published
// reference output of mt19937-64: seeding with init_by_array64
// {0x12345, 0x23456, 0x34567, 0x45678} must yield these first outputs.
func TestMT19937ReferenceVector(t *testing.T) {
	m := &MT19937{}
	m.SeedSlice([]uint64{0x12345, 0x23456, 0x34567, 0x45678})
	want := []uint64{
		7266447313870364031,
		4946485549665804864,
		16945909448695747420,
		16394063075524226720,
		4873882236456199058,
	}
	for i, w := range want {
		if g := m.Uint64(); g != w {
			t.Fatalf("output %d: got %d want %d", i, g, w)
		}
	}
}

func TestMT19937Determinism(t *testing.T) {
	a := NewMT19937(42)
	b := NewMT19937(42)
	for i := 0; i < 10000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestMT19937SeedSensitivity(t *testing.T) {
	a := NewMT19937(42)
	b := NewMT19937(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/1000 identical outputs", same)
	}
}

func TestUint64nRange(t *testing.T) {
	m := NewMT19937(1)
	for _, n := range []uint64{1, 2, 3, 7, 100, 1 << 40} {
		for i := 0; i < 1000; i++ {
			if v := m.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniform(t *testing.T) {
	m := NewMT19937(7)
	const n = 10
	const draws = 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[m.Uint64n(n)]++
	}
	expect := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expect) > 5*math.Sqrt(expect) {
			t.Errorf("bucket %d count %d deviates from %f", i, c, expect)
		}
	}
}

func TestUint64nZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n==0")
		}
	}()
	NewMT19937(1).Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	m := NewMT19937(3)
	s := NewSplitMix64(3)
	for i := 0; i < 100000; i++ {
		if f := m.Float64(); f < 0 || f >= 1 {
			t.Fatalf("MT Float64 out of [0,1): %f", f)
		}
		if f := s.Float64(); f < 0 || f >= 1 {
			t.Fatalf("SplitMix Float64 out of [0,1): %f", f)
		}
	}
}

func TestSplitMixKnownValues(t *testing.T) {
	// Reference values from the splitmix64 reference implementation
	// (Vigna), seed 0: first three outputs.
	s := NewSplitMix64(0)
	want := []uint64{
		0xE220A8397B1DCDAF,
		0x6E789E6AA1B965F4,
		0x06C45D188009454F,
	}
	for i, w := range want {
		if g := s.Uint64(); g != w {
			t.Fatalf("splitmix output %d: got %#x want %#x", i, g, w)
		}
	}
}

func TestSplitMixUint64nRange(t *testing.T) {
	s := NewSplitMix64(9)
	f := func(n uint64) bool {
		if n == 0 {
			return true
		}
		return s.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitMixZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n==0")
		}
	}()
	NewSplitMix64(1).Uint64n(0)
}

// TestMT19937BitBalance: each of the 64 output bit positions should be set
// roughly half of the time.
func TestMT19937BitBalance(t *testing.T) {
	m := NewMT19937(99)
	const draws = 1 << 15
	var ones [64]int
	for i := 0; i < draws; i++ {
		v := m.Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<uint(b)) != 0 {
				ones[b]++
			}
		}
	}
	for b, c := range ones {
		frac := float64(c) / draws
		if frac < 0.47 || frac > 0.53 {
			t.Errorf("bit %d set fraction %f", b, frac)
		}
	}
}

func BenchmarkMT19937(b *testing.B) {
	m := NewMT19937(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += m.Uint64()
	}
	_ = sink
}

func BenchmarkSplitMix64(b *testing.B) {
	s := NewSplitMix64(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}
