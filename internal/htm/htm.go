// Package htm emulates restricted hardware memory transactions (Intel
// TSX / RTM, §6 of the paper) on hardware without them.
//
// Substitution note (see DESIGN.md §4): Go exposes no hardware
// transactional memory, so this package reproduces the *control flow* of
// restricted transactions rather than their micro-architecture. A
// transaction over a table cell is an optimistic try-acquire of a striped
// ownership word (a stand-in for exclusive cache-line ownership):
//
//   - TryBegin succeeding        ≙ transaction executing
//   - TryBegin failing           ≙ transaction abort (conflicting owner)
//   - retries exhausted → Begin  ≙ the fall-back path
//
// Inside a transaction, writers may use plain atomic stores instead of
// CAS loops — the same simplification that makes the paper's TSX bodies
// faster than their cmpxchg16b versions. Readers never touch the stripes
// (they remain wait-free), relying on the cell protocol's torn-read
// semantics exactly as in the non-TSX table.
//
// Deviation: the paper's fall-back path uses raw atomic instructions;
// mixing those with an emulated (lock-based) transaction would break
// atomicity, so our fall-back is a bounded-spin blocking acquire of the
// same stripe. Abort statistics are recorded so experiments can report
// abort rates like TSX evaluations do.
package htm

import (
	"runtime"
	"sync/atomic"

	"repro/internal/pad"
)

// Stripes is the number of emulated ownership words.
const Stripes = 1024

// MaxRetries bounds speculative attempts before the fall-back, like the
// retry policy of RTM runtimes.
const MaxRetries = 3

// TxRegion is a set of striped transaction ownership words plus abort
// statistics.
type TxRegion struct {
	stripes [Stripes]pad.Uint64
	commits atomic.Uint64
	aborts  atomic.Uint64
	fbacks  atomic.Uint64
}

// NewTxRegion returns an initialized region.
func NewTxRegion() *TxRegion { return &TxRegion{} }

// stripeOf maps a cell index to its stripe.
func stripeOf(cell uint64) uint64 { return (cell * 0x9E3779B97F4A7C15) >> 54 } // top 10 bits

// Begin opens a transaction covering cell, speculatively first and via
// the blocking fall-back after MaxRetries aborts. Always succeeds; pair
// with End.
func (r *TxRegion) Begin(cell uint64) {
	s := &r.stripes[stripeOf(cell)]
	for attempt := 0; attempt < MaxRetries; attempt++ {
		if s.CompareAndSwap(0, 1) {
			return
		}
		r.aborts.Add(1)
	}
	r.fbacks.Add(1)
	for spins := 0; !s.CompareAndSwap(0, 1); spins++ {
		if spins&63 == 63 {
			runtime.Gosched()
		}
	}
}

// End commits the transaction covering cell.
func (r *TxRegion) End(cell uint64) {
	r.stripes[stripeOf(cell)].Store(0)
	r.commits.Add(1)
}

// Stats returns cumulative commits, aborts and fall-back acquisitions.
func (r *TxRegion) Stats() (commits, aborts, fallbacks uint64) {
	return r.commits.Load(), r.aborts.Load(), r.fbacks.Load()
}
