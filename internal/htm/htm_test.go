package htm

import (
	"sync"
	"testing"
)

func TestBeginEndMutualExclusion(t *testing.T) {
	r := NewTxRegion()
	var counter int // plain int: the stripe must protect it
	var wg sync.WaitGroup
	const goroutines = 8
	const perG = 20000
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				r.Begin(7) // same cell → same stripe
				counter++
				r.End(7)
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*perG {
		t.Fatalf("lost increments: %d != %d", counter, goroutines*perG)
	}
	commits, _, _ := r.Stats()
	if commits != goroutines*perG {
		t.Fatalf("commits %d", commits)
	}
}

func TestAbortsRecordedUnderContention(t *testing.T) {
	r := NewTxRegion()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50000; j++ {
				r.Begin(3)
				r.End(3)
			}
		}()
	}
	wg.Wait()
	_, aborts, fallbacks := r.Stats()
	// On a contended stripe some speculative attempts must have aborted
	// (this is probabilistic but overwhelmingly likely at 200k txns).
	if aborts == 0 && fallbacks == 0 {
		t.Skip("no contention observed (single-core scheduling)")
	}
}

func TestDistinctCellsDistinctStripes(t *testing.T) {
	// Cells mapping to different stripes must not exclude each other:
	// hold one stripe and Begin on a cell of another stripe.
	r := NewTxRegion()
	a, b := uint64(0), uint64(1)
	if stripeOf(a) == stripeOf(b) {
		t.Skip("sample cells share a stripe")
	}
	r.Begin(a)
	done := make(chan struct{})
	go func() {
		r.Begin(b) // must not block on a's stripe
		r.End(b)
		close(done)
	}()
	<-done
	r.End(a)
}

func TestStripeOfRange(t *testing.T) {
	for c := uint64(0); c < 100000; c += 37 {
		if s := stripeOf(c); s >= Stripes {
			t.Fatalf("stripe %d out of range", s)
		}
	}
}
