// Session-shaped acquirers: the tagged function returns an object that
// releases its pooled handle via a method on itself (s.Close()), the
// shape of growt.Map.Session and cache.NewSession. The release name in
// the //growt:acquires tag is the method name, and the post-dominance
// rule is unchanged: every path from the acquire must Close.
package a

type session struct {
	p *pool
	h int
}

// The dual tag mirrors the real Session constructors: acquires
// registers it so callers are checked, exclusive exempts its own body
// (the handle it borrows is deliberately released elsewhere — by
// Close, not here).
//
//growt:acquires Close
//growt:exclusive -- ownership transfer: released by Close, not here
func (p *pool) newSession() *session { return &session{p: p, h: p.acquire()} }

func (s *session) Close() { s.p.ch <- s.h }

func goodSession(p *pool) int {
	s := p.newSession()
	defer s.Close()
	return s.h + 1
}

func goodSessionEveryPath(p *pool, ok bool) {
	s := p.newSession()
	if ok {
		s.Close()
		return
	}
	sink = s.h
	s.Close()
}

// A leaked session pins a pooled handle forever: the early return is a
// vet error exactly like a bare-handle leak.
func sessionEarlyReturnLeak(p *pool, ok bool) {
	s := p.newSession() // want `may leak`
	if ok {
		return
	}
	s.Close()
}

func sessionNever(p *pool) {
	s := p.newSession() // want `may leak`
	sink = s.h
}

func sessionDiscarded(p *pool) {
	p.newSession() // want `captured as`
}

// Deferred Closes pile up when the loop re-enters the acquire.
func sessionDeferInLoop(p *pool) {
	for i := 0; i < 3; i++ {
		s := p.newSession() // want `acquired again`
		defer s.Close()
	}
}
