package a

// Generic acquirers: the tagged declaration is the generic method
// object, while every call site resolves to an instantiation. The
// analyzer must map instantiations back to their origin — the real
// acquirers in the main module (Map[K,V].acquire, Cache[K,V].NewSession)
// are all generic, so without this the discipline only binds fixtures.

type gpool[T any] struct {
	ch chan T
}

//growt:acquires put
//growt:exclusive -- hands the element to the caller; put returns it
func (p *gpool[T]) take() T {
	return <-p.ch
}

func (p *gpool[T]) put(v T) {
	p.ch <- v
}

func goodGeneric(p *gpool[int]) {
	v := p.take()
	defer p.put(v)
	use(v)
}

func genericEarlyReturnLeak(p *gpool[int], bad bool) {
	v := p.take() // want `may leak`
	if bad {
		return
	}
	p.put(v)
}

func genericNever(p *gpool[string]) {
	v := p.take() // want `may leak`
	_ = v
}

func genericDiscarded(p *gpool[int]) {
	p.take() // want `captured as`
}

// A generic session type whose constructor is itself a generic method
// releasing through a method on the handle, mirroring Map.Session /
// Cache.NewSession in the main module.
type gsession[T any] struct {
	p *gpool[T]
	v T
}

//growt:acquires Close
//growt:exclusive -- ownership transfer: released by Close, not here
func (p *gpool[T]) newSession() *gsession[T] {
	return &gsession[T]{p: p, v: p.take()}
}

func (s *gsession[T]) Close() {
	s.p.put(s.v)
}

func goodGenericSession(p *gpool[int]) {
	s := p.newSession()
	defer s.Close()
	use(s.v)
}

func genericSessionLeak(p *gpool[int], bad bool) {
	s := p.newSession() // want `may leak`
	if bad {
		return
	}
	s.Close()
}

func use(v any) {}
