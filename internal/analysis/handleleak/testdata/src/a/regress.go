package a

// Regression fixtures for leaks the PR 6 syntactic analyzer provably
// missed. That version accepted any `defer func() { ... }()` in the
// statement after the acquire as long as release(h) appeared SOMEWHERE
// in the closure body — it never asked whether the closure's own
// control flow could skip it. The flow-sensitive rewrite builds a CFG
// for the deferred closure and demands the release on every one of its
// exit paths.

// The closure returns early when ok, skipping the release: the defer
// is the next statement, release(h) is in the closure, and the handle
// still leaks.
func closureEarlyReturnLeak(p *pool, ok bool) {
	h := p.acquire() // want `may leak`
	defer func() {
		if ok {
			return
		}
		p.release(h)
	}()
	sink = h
}

// Same closure shape with the release hoisted above the early return:
// every closure exit releases, so this is fine.
func closureEarlyReturnFixed(p *pool, ok bool) {
	h := p.acquire()
	defer func() {
		p.release(h)
		if ok {
			return
		}
		sink = h
	}()
	sink = h
}

// Conditional release inside the closure, no release on the other arm.
func closureConditionalLeak(p *pool, ok bool) {
	h := p.acquire() // want `may leak`
	defer func() {
		if ok {
			p.release(h)
		}
	}()
	sink = h
}
