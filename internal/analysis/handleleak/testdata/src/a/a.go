// Package a is the handleleak fixture: the flow-sensitive release
// discipline around a //growt:acquires-tagged pool getter. The rule is
// post-dominance — no path from the acquire may reach the function
// exit without a release — so both defer-based and
// release-on-every-path shapes are accepted, and every leak shape here
// names the path that escapes.
package a

type pool struct{ ch chan int }

//growt:acquires release
func (p *pool) acquire() int { return <-p.ch }

func (p *pool) release(h int) { p.ch <- h }

var sink int

func good(p *pool) int {
	h := p.acquire()
	defer p.release(h)
	return h + 1
}

func goodClosure(p *pool, f func(int)) {
	h := p.acquire()
	defer func() {
		f(h)
		p.release(h)
	}()
	f(h)
}

// The defer no longer has to be the very next statement: straight-line
// work before it still post-dominates the acquire.
func goodDeferLater(p *pool) {
	h := p.acquire()
	sink = h
	defer p.release(h)
}

// Explicit release on every exit path is accepted too.
func goodEveryPath(p *pool, ok bool) {
	h := p.acquire()
	if ok {
		p.release(h)
		return
	}
	sink = h
	p.release(h)
}

// Tail release with no branches in between: nothing can exit early.
// (Only literal panic statements are modeled as exits; a panicking
// callee between acquire and release still wants a defer, but that is
// a style call, not a flow fact.)
func goodTail(p *pool, f func()) {
	h := p.acquire()
	f()
	p.release(h)
}

// Release inside a loop, re-acquire each iteration: fine, the direct
// release runs before control returns to the acquire.
func goodLoop(p *pool) {
	for i := 0; i < 3; i++ {
		h := p.acquire()
		sink = h
		p.release(h)
	}
}

func goodSwitch(p *pool, x int) {
	h := p.acquire()
	switch x {
	case 1:
		p.release(h)
	default:
		sink = h
		p.release(h)
	}
}

func discarded(p *pool) {
	p.acquire() // want `captured as`
}

func blank(p *pool) {
	_ = p.acquire() // want `is discarded`
}

func escapes(p *pool) int {
	return p.acquire() // want `captured as`
}

// The early return leaves without releasing.
func earlyReturnLeak(p *pool, ok bool) {
	h := p.acquire() // want `may leak`
	if ok {
		return
	}
	p.release(h)
}

// One arm panics between acquire and the trailing release.
func panicArmLeak(p *pool, ok bool) {
	h := p.acquire() // want `may leak`
	if ok {
		panic("bad")
	}
	p.release(h)
}

// A branch-local defer covers only its own arm.
func deferOneArm(p *pool, ok bool) {
	h := p.acquire() // want `may leak`
	if ok {
		defer p.release(h)
	}
	sink = h
}

// Releasing a different handle releases nothing.
func wrongHandle(p *pool, g int) {
	h := p.acquire() // want `may leak`
	defer p.release(g)
	sink = h
}

// No release at all.
func never(p *pool) {
	h := p.acquire() // want `may leak`
	sink = h
}

// Deferred releases fire at function exit, so looping over the acquire
// accumulates live handles.
func deferInLoop(p *pool) {
	for i := 0; i < 3; i++ {
		h := p.acquire() // want `acquired again`
		defer p.release(h)
		sink = h
	}
}

//growt:exclusive -- teardown drains the pool single-threaded
func drain(p *pool) {
	h := p.acquire()
	p.release(h)
}
