// Package a is the handleleak fixture: the capture+defer shape around
// a //growt:acquires-tagged pool getter, with every leak shape the
// analyzer names — including the panic-path leak that motivated it.
package a

type pool struct{ ch chan int }

//growt:acquires release
func (p *pool) acquire() int { return <-p.ch }

func (p *pool) release(h int) { p.ch <- h }

var sink int

func good(p *pool) int {
	h := p.acquire()
	defer p.release(h)
	return h + 1
}

func goodClosure(p *pool, f func(int)) {
	h := p.acquire()
	defer func() {
		f(h)
		p.release(h)
	}()
	f(h)
}

func panicPathLeak(p *pool, f func()) {
	h := p.acquire() // want `statement after`
	f()              // a panic here strands h: release never runs
	p.release(h)
}

func discarded(p *pool) {
	p.acquire() // want `captured as`
}

func blank(p *pool) {
	_ = p.acquire() // want `is discarded`
}

func escapes(p *pool) int {
	return p.acquire() // want `captured as`
}

func tail(p *pool) {
	sink = p.acquire() // want `must be followed by`
}

func deferLate(p *pool, ok bool) {
	h := p.acquire() // want `statement after`
	if ok {
		defer p.release(h)
	}
}

func wrongHandle(p *pool, g int) {
	h := p.acquire() // want `statement after`
	defer p.release(g)
	sink = h
}

//growt:exclusive -- teardown drains the pool single-threaded
func drain(p *pool) {
	h := p.acquire()
	p.release(h)
}
