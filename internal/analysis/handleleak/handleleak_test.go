package handleleak_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/handleleak"
)

func TestHandleLeak(t *testing.T) {
	analysistest.Run(t, "testdata", handleleak.Analyzer, "a")
}
