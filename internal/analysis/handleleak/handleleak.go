// Package handleleak enforces the pooled-resource discipline around
// functions tagged //growt:acquires <release>: the value such a
// function returns must be captured into a variable whose release
// post-dominates the acquire — no path from the acquire may reach the
// function exit without releasing the handle. This is the static form
// of the handle-strand bug PR 5 fixed by hand: a leaked handle
// permanently shrinks the pool.
//
// The check is flow-sensitive, built on internal/analysis/flow. Two
// shapes satisfy it:
//
//	h := m.acquire()
//	defer m.release(h)            // covers every exit, including panics
//
//	h := m.acquire()
//	if bad {
//	    m.release(h)              // explicit release on EVERY exit path
//	    return
//	}
//	m.release(h)
//
// A deferred closure counts only if the closure itself releases on all
// of its own exit paths — `defer func() { if ok { return }; m.release(h) }()`
// is a leak, which the earlier syntactic version of this analyzer
// (release "in the very next statement") could not see. Conversely the
// defer no longer has to be the literal next statement: post-dominance
// is the real invariant.
//
// A second rule catches defer-in-loop accumulation: if control can
// return to the acquire before a direct (non-deferred) release runs,
// the deferred releases pile up until function exit and the pool
// drains. `for { h := m.acquire(); defer m.release(h) }` is an error.
//
// Explicit `panic(x)` statements are exit paths too: an arm that
// panics between acquire and a trailing release is reported unless a
// defer covers it.
package handleleak

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/flow"
)

// Analyzer is the handleleak pass.
var Analyzer = &analysis.Analyzer{
	Name: "handleleak",
	Doc: "require the release of every //growt:acquires handle to " +
		"post-dominate the acquire (flow-sensitive)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	acquirers := taggedAcquirers(pass)
	if len(acquirers) == 0 {
		return nil
	}
	parents := analysis.NewParents(pass.Files)
	graphs := make(map[*ast.BlockStmt]*flow.Graph)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// The release function itself (and any //growt:exclusive
			// teardown) may juggle handles freely.
			if _, excl := analysis.FuncDirective(fd, "exclusive"); excl {
				continue
			}
			checkFunc(pass, fd, acquirers, parents, graphs)
		}
	}
	return nil
}

// taggedAcquirers maps each //growt:acquires-tagged function or method
// object in this package to the name of its release function.
func taggedAcquirers(pass *analysis.Pass) map[types.Object]string {
	m := make(map[types.Object]string)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			release, ok := analysis.FuncDirective(fd, "acquires")
			if !ok {
				continue
			}
			release = strings.TrimSpace(release)
			if release == "" {
				pass.Reportf(fd.Pos(), "//growt:acquires needs the release function name: //growt:acquires release")
				continue
			}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				m[obj] = release
			}
		}
	}
	return m
}

// checkFunc walks one function body looking for calls to tagged
// acquirers and validates the flow around each.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, acquirers map[types.Object]string, parents analysis.Parents, graphs map[*ast.BlockStmt]*flow.Graph) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObject(pass, call)
		if obj == nil {
			return true
		}
		release, tagged := acquirers[obj]
		if !tagged {
			return true
		}
		// The acquirer's own body is exempt when recursing is the
		// implementation (not the case today, but cheap to allow).
		if pass.TypesInfo.Defs[fd.Name] == obj {
			return true
		}
		checkAcquireSite(pass, call, release, parents, graphs)
		return true
	})
}

// checkAcquireSite validates one acquire call: its result must be
// captured, and the capture's release must post-dominate it.
func checkAcquireSite(pass *analysis.Pass, call *ast.CallExpr, release string, parents analysis.Parents, graphs map[*ast.BlockStmt]*flow.Graph) {
	report := func(format string, args ...any) {
		pass.Reportf(call.Pos(), format, args...)
	}

	assign, ok := parents[call].(*ast.AssignStmt)
	if !ok || len(assign.Rhs) != 1 || assign.Rhs[0] != ast.Expr(call) || len(assign.Lhs) != 1 {
		report("result of //growt:acquires call must be captured as `h := ...` " +
			"so its release can be checked")
		return
	}
	lhs, ok := assign.Lhs[0].(*ast.Ident)
	if !ok || lhs.Name == "_" {
		report("result of //growt:acquires call is discarded; the %s call can never run", release)
		return
	}
	handleObj := pass.TypesInfo.Defs[lhs]
	if handleObj == nil {
		handleObj = pass.TypesInfo.Uses[lhs] // plain `=` to an existing var
	}
	if handleObj == nil {
		report("cannot resolve the captured handle %s", lhs.Name)
		return
	}

	body := enclosingBody(assign, parents)
	if body == nil {
		return
	}
	g := graphs[body]
	if g == nil {
		g = flow.New(body)
		graphs[body] = g
	}
	b := g.BlockOf(assign)
	if b == nil {
		return
	}
	idx := g.NodeIndex(assign)

	directRelease := func(n ast.Node) bool {
		if _, isDefer := n.(*ast.DeferStmt); isDefer {
			return false
		}
		return containsReleaseCall(pass, n, release, handleObj)
	}
	releases := func(n ast.Node) bool {
		if ds, isDefer := n.(*ast.DeferStmt); isDefer {
			return deferReleases(pass, ds.Call, release, handleObj, graphs)
		}
		return containsReleaseCall(pass, n, release, handleObj)
	}

	if g.ExitAvoiding(b, idx, releases) {
		report("handle %s may leak: a path from this //growt:acquires call reaches "+
			"the function exit without %s(%s); the release must post-dominate the "+
			"acquire (defer it, or release on every exit path)",
			lhs.Name, release, lhs.Name)
		return
	}
	if g.ReachesAvoiding(b, idx, assign, directRelease) {
		report("handle %s is acquired again before %s(%s) runs: deferred releases "+
			"only fire at function exit, so looping over the acquire accumulates handles",
			lhs.Name, release, lhs.Name)
	}
}

// enclosingBody returns the body of the innermost function (literal or
// declaration) containing n.
func enclosingBody(n ast.Node, parents analysis.Parents) *ast.BlockStmt {
	for n != nil {
		switch fn := n.(type) {
		case *ast.FuncLit:
			return fn.Body
		case *ast.FuncDecl:
			return fn.Body
		}
		n = parents[n]
	}
	return nil
}

// deferReleases reports whether the deferred call is guaranteed to
// release handleObj: either directly (defer m.release(h)) or via a
// closure that releases on every one of its own exit paths.
func deferReleases(pass *analysis.Pass, call *ast.CallExpr, release string, handleObj types.Object, graphs map[*ast.BlockStmt]*flow.Graph) bool {
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return isReleaseCall(pass, call, release, handleObj)
	}
	// The closure gets its own flow graph: a conditional release inside
	// it does not cover the exits that skip it.
	g := graphs[lit.Body]
	if g == nil {
		g = flow.New(lit.Body)
		graphs[lit.Body] = g
	}
	rel := func(n ast.Node) bool {
		if _, isDefer := n.(*ast.DeferStmt); isDefer {
			return false // nested defers inside the closure: out of scope
		}
		return containsReleaseCall(pass, n, release, handleObj)
	}
	return !g.ExitAvoiding(g.Entry, -1, rel)
}

// containsReleaseCall reports whether block node n contains a direct
// release call for handleObj, without descending into nested function
// literals (a closure mentioning release is not a release here).
func containsReleaseCall(pass *analysis.Pass, n ast.Node, release string, handleObj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok && isReleaseCall(pass, call, release, handleObj) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isReleaseCall reports whether call is <recv>.release(h) or release(h)
// with h denoting handleObj.
func isReleaseCall(pass *analysis.Pass, call *ast.CallExpr, release string, handleObj types.Object) bool {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	default:
		return false
	}
	if name != release {
		return false
	}
	if handleObj == nil {
		return false
	}
	for _, arg := range call.Args {
		if id, ok := arg.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == handleObj {
			return true
		}
	}
	// A method on the handle itself: defer h.Release().
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == handleObj {
			return true
		}
	}
	return false
}

// calleeObject resolves the object a call invokes, for plain functions
// and methods. Calls on instantiated generic functions and methods are
// mapped back to their generic origin: the declaration carrying the
// //growt:acquires tag is the generic object, while the call site's
// Uses entry is the instantiation — without the normalization every
// tagged generic acquirer (Map[K,V].acquire, Cache[K,V].NewSession)
// would silently escape checking.
func calleeObject(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	}
	if fn, ok := obj.(*types.Func); ok {
		return fn.Origin()
	}
	return obj
}
