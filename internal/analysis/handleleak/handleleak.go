// Package handleleak enforces the pooled-resource discipline around
// functions tagged //growt:acquires <release>: the value such a
// function returns must be captured into a variable and released by a
// defer in the very next statement, so the release dominates every
// exit path — including panics raised by user callbacks (hashers,
// Compute closures). This is the static form of the handle-strand bug
// PR 5 fixed by hand: a panicking closure between acquire() and a
// trailing release() permanently shrinks the handle pool.
//
// Accepted shape:
//
//	h := m.acquire()
//	defer m.release(h)            // or: defer func() { ...; m.release(h); ... }()
//
// Reported shapes:
//
//	h := m.acquire(); work(); m.release(h)   // release does not dominate panic paths
//	m.acquire()                              // result discarded
//	return m.acquire()                       // ownership escapes unchecked
//	h := m.acquire()
//	if ok { defer m.release(h) }             // defer is not the next statement
package handleleak

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the handleleak pass.
var Analyzer = &analysis.Analyzer{
	Name: "handleleak",
	Doc: "require every //growt:acquires call to be followed immediately by " +
		"a dominating defer of its release function",
	Run: run,
}

func run(pass *analysis.Pass) error {
	acquirers := taggedAcquirers(pass)
	if len(acquirers) == 0 {
		return nil
	}
	parents := analysis.NewParents(pass.Files)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// The release function itself (and any //growt:exclusive
			// teardown) may juggle handles freely.
			if _, excl := analysis.FuncDirective(fd, "exclusive"); excl {
				continue
			}
			checkFunc(pass, fd, acquirers, parents)
		}
	}
	return nil
}

// taggedAcquirers maps each //growt:acquires-tagged function or method
// object in this package to the name of its release function.
func taggedAcquirers(pass *analysis.Pass) map[types.Object]string {
	m := make(map[types.Object]string)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			release, ok := analysis.FuncDirective(fd, "acquires")
			if !ok {
				continue
			}
			release = strings.TrimSpace(release)
			if release == "" {
				pass.Reportf(fd.Pos(), "//growt:acquires needs the release function name: //growt:acquires release")
				continue
			}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				m[obj] = release
			}
		}
	}
	return m
}

// checkFunc walks one function body looking for calls to tagged
// acquirers and validates the capture+defer shape around each.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, acquirers map[types.Object]string, parents analysis.Parents) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObject(pass, call)
		if obj == nil {
			return true
		}
		release, tagged := acquirers[obj]
		if !tagged {
			return true
		}
		// The acquirer's own body is exempt when recursing is the
		// implementation (not the case today, but cheap to allow).
		if pass.TypesInfo.Defs[fd.Name] == obj {
			return true
		}
		checkAcquireSite(pass, call, release, parents)
		return true
	})
}

// checkAcquireSite validates one acquire call: it must be the sole RHS
// of a single-variable assignment whose next statement defers the
// release of that variable.
func checkAcquireSite(pass *analysis.Pass, call *ast.CallExpr, release string, parents analysis.Parents) {
	report := func(format string, args ...any) {
		pass.Reportf(call.Pos(), format, args...)
	}

	assign, ok := parents[call].(*ast.AssignStmt)
	if !ok || len(assign.Rhs) != 1 || assign.Rhs[0] != ast.Expr(call) || len(assign.Lhs) != 1 {
		report("result of //growt:acquires call must be captured as `h := ...` " +
			"and released by a defer in the next statement")
		return
	}
	lhs, ok := assign.Lhs[0].(*ast.Ident)
	if !ok || lhs.Name == "_" {
		report("result of //growt:acquires call is discarded; the %s call can never run", release)
		return
	}
	handleObj := pass.TypesInfo.Defs[lhs]
	if handleObj == nil {
		handleObj = pass.TypesInfo.Uses[lhs] // plain `=` to an existing var
	}

	list, idx := stmtContext(assign, parents)
	if list == nil || idx < 0 || idx+1 >= len(list) {
		report("//growt:acquires call must be followed by `defer ... %s(%s)`", release, lhs.Name)
		return
	}
	next, ok := list[idx+1].(*ast.DeferStmt)
	if !ok || !defersRelease(pass, next.Call, release, handleObj) {
		report("statement after //growt:acquires call must be `defer ... %s(%s)` "+
			"so the release dominates panic paths", release, lhs.Name)
	}
}

// stmtContext locates the statement list containing stmt and its index
// within it.
func stmtContext(stmt ast.Stmt, parents analysis.Parents) ([]ast.Stmt, int) {
	var list []ast.Stmt
	switch p := parents[stmt].(type) {
	case *ast.BlockStmt:
		list = p.List
	case *ast.CaseClause:
		list = p.Body
	case *ast.CommClause:
		list = p.Body
	default:
		return nil, -1
	}
	for i, s := range list {
		if s == stmt {
			return list, i
		}
	}
	return nil, -1
}

// defersRelease reports whether the deferred call releases handleObj
// via a function named release — either directly (defer m.release(h))
// or inside a deferred closure that calls release(h) somewhere.
func defersRelease(pass *analysis.Pass, call *ast.CallExpr, release string, handleObj types.Object) bool {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if ok && isReleaseCall(pass, inner, release, handleObj) {
				found = true
				return false
			}
			return true
		})
		return found
	}
	return isReleaseCall(pass, call, release, handleObj)
}

// isReleaseCall reports whether call is <recv>.release(h) or release(h)
// with h denoting handleObj.
func isReleaseCall(pass *analysis.Pass, call *ast.CallExpr, release string, handleObj types.Object) bool {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	default:
		return false
	}
	if name != release {
		return false
	}
	if handleObj == nil {
		return false
	}
	for _, arg := range call.Args {
		if id, ok := arg.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == handleObj {
			return true
		}
	}
	// A method on the handle itself: defer h.Release().
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == handleObj {
			return true
		}
	}
	return false
}

// calleeObject resolves the object a call invokes, for plain functions
// and methods.
func calleeObject(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}
