package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const directiveSrc = `// Package p tests directive parsing.
package p

type t struct {
	//growt:atomic
	cells []uint64
	plain int
	n     uint64 //growt:atomic
	nx    uint64 //growt:atomicx
}

//growt:acquires release
func acquire() int { return 0 }

//growt:exclusive -- construction only
func build() {}

func untagged() {}

//growt:enum status
const (
	sOK int = iota
	sErr
	_
)

// Some prose mentioning growt:enum that is not a directive.
const lone = 1
`

func parseOne(t *testing.T) *ast.File {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", directiveSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFieldDirective(t *testing.T) {
	f := parseOne(t)
	st := f.Decls[0].(*ast.GenDecl).Specs[0].(*ast.TypeSpec).Type.(*ast.StructType)
	got := make(map[string]bool)
	for _, field := range st.Fields.List {
		got[field.Names[0].Name] = FieldDirective(field, "atomic")
	}
	want := map[string]bool{"cells": true, "plain": false, "n": true, "nx": false}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("FieldDirective(%s, atomic) = %v, want %v", name, got[name], w)
		}
	}
}

func TestFuncDirectives(t *testing.T) {
	var acquireFD, buildFD, untaggedFD *ast.FuncDecl
	for _, d := range f(t).Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok {
			continue
		}
		switch fd.Name.Name {
		case "acquire":
			acquireFD = fd
		case "build":
			buildFD = fd
		case "untagged":
			untaggedFD = fd
		}
	}
	if arg, ok := FuncDirective(acquireFD, "acquires"); !ok || arg != "release" {
		t.Errorf("acquires directive = (%q, %v), want (release, true)", arg, ok)
	}
	if arg, ok := FuncDirective(buildFD, "exclusive"); !ok || arg != "" {
		t.Errorf("exclusive directive = (%q, %v): the -- reason must be stripped", arg, ok)
	}
	if _, ok := FuncDirective(untaggedFD, "exclusive"); ok {
		t.Error("untagged function reported a directive")
	}
}

func f(t *testing.T) *ast.File { return parseOne(t) }

func TestEnumGroupsFromFiles(t *testing.T) {
	groups := EnumGroupsFromFiles("p", []*ast.File{parseOne(t)})
	if len(groups) != 1 {
		t.Fatalf("got %d groups, want 1", len(groups))
	}
	g := groups[0]
	if g.PkgPath != "p" || g.Name != "status" {
		t.Errorf("group = %s.%s, want p.status", g.PkgPath, g.Name)
	}
	if len(g.Members) != 2 || g.Members[0] != "sOK" || g.Members[1] != "sErr" {
		t.Errorf("members = %v, want [sOK sErr] (blank dropped)", g.Members)
	}
}

func TestNewParents(t *testing.T) {
	file := parseOne(t)
	parents := NewParents([]*ast.File{file})
	var n int
	ast.Inspect(file, func(node ast.Node) bool {
		if node == nil || node == ast.Node(file) {
			return true
		}
		n++
		if parents[node] == nil {
			t.Errorf("node %T at %v has no parent", node, node.Pos())
		}
		return true
	})
	if n == 0 {
		t.Fatal("walked no nodes")
	}
}
