// Package a is the server side of the wirepair fixture: the enum
// groups and the dispatch role, in good and drifted shapes.
package a

type Op byte

//growt:enum opcode
const (
	OpPing Op = 0x01
	OpGet  Op = 0x02
	OpSet  Op = 0x03
)

type Status byte

//growt:enum wirestatus
const (
	StatusOK  Status = 0x00
	StatusErr Status = 0x01
)

// Every opcode has an explicit case; the default routes genuinely
// unknown bytes.
//
//growt:wire dispatch opcode
func Dispatch(op Op) int {
	switch op {
	case OpPing:
		return 0
	case OpGet:
		return 1
	case OpSet:
		return 2
	default:
		return -1
	}
}

// OpSet silently falls into the unknown-opcode default: exactly the
// drift the analyzer exists to catch.
//
//growt:wire dispatch opcode
func DispatchIncomplete(op Op) int { // want `missing explicit cases for OpSet`
	switch op {
	case OpPing:
		return 0
	case OpGet:
		return 1
	default:
		return -1
	}
}

//growt:wire dispatch nosuch
func DispatchUnknownGroup(op Op) int { // want `unknown //growt:enum group`
	return 0
}

//growt:wire dispatch
func DispatchMalformed(op Op) int { // want `wants .//growt:wire`
	return 0
}

//growt:wire route opcode
func DispatchBadRole(op Op) int { // want `role must be dispatch, encode, or decode`
	return 0
}
