// Package b is the well-paired client side of the wirepair fixture:
// package a's groups arrive as imported facts (the vetx route), the
// decoder cases every status explicitly, and every opcode flows
// through the tagged encoder somewhere in the package.
package b

import "a"

//growt:wire decode wirestatus
func Decode(s a.Status) int {
	switch s {
	case a.StatusOK:
		return 0
	case a.StatusErr:
		return -1
	}
	return -2
}

//growt:wire encode opcode
func send(op a.Op) {}

func Ping() { send(a.OpPing) }

func GetAndSet() {
	send(a.OpGet)
	send(a.OpSet)
}
