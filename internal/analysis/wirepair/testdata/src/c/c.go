// Package c is the drifted client side of the wirepair fixture: a
// decoder hiding a known status behind its default, and an encoder the
// package never feeds one of the opcodes.
package c

import "a"

// StatusErr ends up in the default arm — which is how an unhandled
// status hides.
//
//growt:wire decode wirestatus
func Decode(s a.Status) int { // want `missing explicit cases for StatusErr`
	switch s {
	case a.StatusOK:
		return 0
	default:
		return -1
	}
}

//growt:wire encode opcode
func send(op a.Op) {} // want `no call passing OpSet`

func UsePartial() {
	send(a.OpPing)
	send(a.OpGet)
}
