package wirepair_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/wirepair"
)

func TestWirePair(t *testing.T) {
	analysistest.Run(t, "testdata", wirepair.Analyzer, "a", "b", "c")
}
