// Package wirepair keeps the three legs of the wire contract —
// opcode enum, server dispatch, client encoder/decoder — from
// drifting apart. The enum groups live in internal/server/wire.go
// (//growt:enum opcode, //growt:enum wirestatus); the functions that
// must stay paired with them declare their role:
//
//	//growt:wire dispatch opcode    — server-side request dispatcher:
//	                                  every opcode member must appear as
//	                                  an explicit case in the function's
//	                                  switch statements
//	//growt:wire encode opcode      — client-side request entry point:
//	                                  somewhere in the package, every
//	                                  opcode member must be passed as an
//	                                  argument to a tagged encoder
//	//growt:wire decode wirestatus  — client-side response decoder:
//	                                  every status member must appear as
//	                                  an explicit case (a default clause
//	                                  does not count — it would hide an
//	                                  unhandled status)
//
// Group names resolve same-package or across packages via the vetx
// facts the unit driver ships (the same mechanism statusswitch uses),
// so the client package is checked against the server's enums without
// either importing analyzer machinery. Adding an opcode to wire.go
// without teaching the dispatcher, the client API, and the decoder
// about it becomes a build error in whichever package fell behind.
package wirepair

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the wirepair pass.
var Analyzer = &analysis.Analyzer{
	Name: "wirepair",
	Doc: "pair every //growt:enum opcode/status member with its " +
		"//growt:wire dispatch, encode, and decode sites",
	Run: run,
}

func run(pass *analysis.Pass) error {
	groups := analysis.EnumGroupsFromFiles(pass.Pkg.Path(), pass.Files)
	groups = append(groups, pass.ImportedEnums...)
	byName := make(map[string]analysis.EnumGroup)
	for _, g := range groups {
		byName[g.Name] = g
	}

	// encoders[group name] = encode-tagged function objects; the
	// call-site sweep below needs them all before it can judge coverage.
	type encodeSet struct {
		fns   map[types.Object]bool
		first *ast.FuncDecl
	}
	encoders := make(map[string]*encodeSet)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			val, ok := analysis.FuncDirective(fd, "wire")
			if !ok {
				continue
			}
			fields := strings.Fields(val)
			if len(fields) != 2 {
				pass.Reportf(fd.Pos(), "//growt:wire wants `//growt:wire <dispatch|encode|decode> <group>`, got %q", val)
				continue
			}
			role, groupName := fields[0], fields[1]
			group, found := byName[groupName]
			if !found {
				pass.Reportf(fd.Pos(), "//growt:wire %s names unknown //growt:enum group %q (not declared here or in any import)", role, groupName)
				continue
			}
			switch role {
			case "dispatch", "decode":
				checkCases(pass, fd, role, group)
			case "encode":
				es := encoders[groupName]
				if es == nil {
					es = &encodeSet{fns: make(map[types.Object]bool), first: fd}
					encoders[groupName] = es
				}
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					es.fns[obj] = true
				}
			default:
				pass.Reportf(fd.Pos(), "//growt:wire role must be dispatch, encode, or decode, got %q", role)
			}
		}
	}

	for groupName, es := range encoders {
		checkEncoders(pass, es.first, es.fns, byName[groupName])
	}
	return nil
}

// checkCases requires every member of group to appear as an explicit
// case expression in some switch inside fd's body. A default clause is
// deliberately not an excuse: dispatchers and decoders route unknown
// codes through it, so hiding a known member there is exactly the
// drift this analyzer exists to catch.
func checkCases(pass *analysis.Pass, fd *ast.FuncDecl, role string, group analysis.EnumGroup) {
	if fd.Body == nil {
		pass.Reportf(fd.Pos(), "//growt:wire %s on a function with no body", role)
		return
	}
	member := make(map[string]bool, len(group.Members))
	for _, m := range group.Members {
		member[m] = true
	}
	seen := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, expr := range cc.List {
			obj := constObject(pass, expr)
			if obj == nil || obj.Pkg() == nil {
				continue
			}
			if obj.Pkg().Path() == group.PkgPath && member[obj.Name()] {
				seen[obj.Name()] = true
			}
		}
		return true
	})
	if missing := missingMembers(group, seen); missing != "" {
		pass.Reportf(fd.Pos(),
			"wire %s for //growt:enum %s is missing explicit cases for %s",
			role, group.Name, missing)
	}
}

// checkEncoders requires every member of group to be passed, somewhere
// in this package, as an argument to one of the encode-tagged
// functions.
func checkEncoders(pass *analysis.Pass, first *ast.FuncDecl, fns map[types.Object]bool, group analysis.EnumGroup) {
	member := make(map[string]bool, len(group.Members))
	for _, m := range group.Members {
		member[m] = true
	}
	seen := make(map[string]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := calleeObject(pass, call); callee == nil || !fns[callee] {
				return true
			}
			for _, arg := range call.Args {
				obj := constObject(pass, arg)
				if obj == nil || obj.Pkg() == nil {
					continue
				}
				if obj.Pkg().Path() == group.PkgPath && member[obj.Name()] {
					seen[obj.Name()] = true
				}
			}
			return true
		})
	}
	if missing := missingMembers(group, seen); missing != "" {
		pass.Reportf(first.Pos(),
			"wire encode for //growt:enum %s has no call passing %s to a tagged encoder",
			group.Name, missing)
	}
}

// missingMembers lists group members absent from seen, in declaration
// order; "" when covered.
func missingMembers(group analysis.EnumGroup, seen map[string]bool) string {
	var missing []string
	for _, m := range group.Members {
		if !seen[m] {
			missing = append(missing, m)
		}
	}
	return strings.Join(missing, ", ")
}

// constObject resolves an expression to the constant it names, if any.
func constObject(pass *analysis.Pass, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if c, ok := pass.TypesInfo.Uses[e].(*types.Const); ok {
			return c
		}
	case *ast.SelectorExpr:
		if c, ok := pass.TypesInfo.Uses[e.Sel].(*types.Const); ok {
			return c
		}
	}
	return nil
}

// calleeObject resolves the object a call invokes.
func calleeObject(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}
