package unit

// White-box tests for the driver's error paths — the branches `go vet
// -vettool` only exercises when something is wrong: unreadable or
// malformed .cfg files, dependency vetx files with a skewed schema or
// junk payload, and the SucceedOnTypecheckFailure escape hatch cmd/go
// uses for packages it already knows are broken.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// writeTemp writes content under a test temp dir and returns the path.
func writeTemp(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeCfg marshals cfg into a .cfg file like cmd/go would.
func writeCfg(t *testing.T, dir string, cfg Config) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return writeTemp(t, dir, "vet.cfg", string(data))
}

// readVetx decodes a facts file the driver wrote.
func readVetx(t *testing.T, path string) facts {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f facts
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("vetx output is not valid JSON: %v", err)
	}
	return f
}

func TestRunMissingCfg(t *testing.T) {
	if _, err := run(filepath.Join(t.TempDir(), "absent.cfg"), nil); err == nil {
		t.Fatal("run succeeded on a nonexistent config file")
	}
}

func TestRunMalformedCfg(t *testing.T) {
	cfg := writeTemp(t, t.TempDir(), "vet.cfg", "{this is not json")
	_, err := run(cfg, nil)
	if err == nil || !strings.Contains(err.Error(), "cannot decode vet config") {
		t.Fatalf("want a decode error naming the config, got %v", err)
	}
}

// A standard-library package must short-circuit: empty facts, no
// parsing (GoFiles here do not even exist).
func TestRunStandardPackage(t *testing.T) {
	dir := t.TempDir()
	vetx := filepath.Join(dir, "out.vetx")
	cfg := writeCfg(t, dir, Config{
		ImportPath: "fmt",
		GoFiles:    []string{filepath.Join(dir, "does-not-exist.go")},
		Standard:   map[string]bool{"fmt": true},
		VetxOutput: vetx,
	})
	diags, err := run(cfg, nil)
	if err != nil || len(diags) != 0 {
		t.Fatalf("standard package run: diags=%v err=%v", diags, err)
	}
	f := readVetx(t, vetx)
	if f.Schema != factsSchema || len(f.Enums) != 0 {
		t.Fatalf("standard package facts = %+v, want empty schema-%d payload", f, factsSchema)
	}
}

// Parse failures honor SucceedOnTypecheckFailure: cmd/go sets it when
// the compiler has already reported the package broken, and the vet
// tool must not double-report.
func TestRunParseFailure(t *testing.T) {
	dir := t.TempDir()
	src := writeTemp(t, dir, "bad.go", "package p\n\nfunc {{{\n")
	vetx := filepath.Join(dir, "out.vetx")

	base := Config{
		ImportPath: "example/p",
		GoFiles:    []string{src},
		VetxOutput: vetx,
	}

	strict := base
	if _, err := run(writeCfg(t, dir, strict), nil); err == nil {
		t.Fatal("parse failure with SucceedOnTypecheckFailure=false did not error")
	}

	lenient := base
	lenient.SucceedOnTypecheckFailure = true
	diags, err := run(writeCfg(t, dir, lenient), nil)
	if err != nil || len(diags) != 0 {
		t.Fatalf("parse failure with SucceedOnTypecheckFailure=true: diags=%v err=%v", diags, err)
	}
	// The escape hatch still owes cmd/go a facts file (it is a declared
	// build output).
	if f := readVetx(t, vetx); f.Schema != factsSchema {
		t.Fatalf("facts schema = %d, want %d", f.Schema, factsSchema)
	}
}

// Type-check failures (the file parses, the types don't resolve) take
// the later branch: facts are extracted from the parse either way, and
// SucceedOnTypecheckFailure decides whether the run errors.
func TestRunTypecheckFailure(t *testing.T) {
	dir := t.TempDir()
	src := writeTemp(t, dir, "bad.go", "package p\n\nvar x undeclaredType\n")
	vetx := filepath.Join(dir, "out.vetx")

	base := Config{
		ID:         "example/p",
		ImportPath: "example/p",
		Compiler:   "gc",
		GoFiles:    []string{src},
		VetxOutput: vetx,
	}

	strict := base
	if _, err := run(writeCfg(t, dir, strict), nil); err == nil {
		t.Fatal("type-check failure with SucceedOnTypecheckFailure=false did not error")
	}

	lenient := base
	lenient.SucceedOnTypecheckFailure = true
	diags, err := run(writeCfg(t, dir, lenient), nil)
	if err != nil || len(diags) != 0 {
		t.Fatalf("type-check failure with SucceedOnTypecheckFailure=true: diags=%v err=%v", diags, err)
	}
}

// VetxOnly runs must extract facts from the parse and stop before
// type checking — a type error in the file must not matter.
func TestRunVetxOnly(t *testing.T) {
	dir := t.TempDir()
	src := writeTemp(t, dir, "p.go", `package p

var x undeclaredType

//growt:enum status
const (
	statusA = iota
	statusB
)
`)
	vetx := filepath.Join(dir, "out.vetx")
	cfg := writeCfg(t, dir, Config{
		ImportPath: "example/p",
		GoFiles:    []string{src},
		VetxOnly:   true,
		VetxOutput: vetx,
	})
	diags, err := run(cfg, nil)
	if err != nil || len(diags) != 0 {
		t.Fatalf("VetxOnly run: diags=%v err=%v", diags, err)
	}
	f := readVetx(t, vetx)
	if len(f.Enums) != 1 || f.Enums[0].Name != "status" || len(f.Enums[0].Members) != 2 {
		t.Fatalf("VetxOnly facts = %+v, want the status group with 2 members", f)
	}
}

// Dependency vetx files with a skewed schema, junk content, or a
// missing file are each silently skipped — cross-package enums are
// best-effort — while well-formed ones still load.
func TestRunDepFactsSchemaSkew(t *testing.T) {
	dir := t.TempDir()
	src := writeTemp(t, dir, "p.go", "package p\n")

	good := writeTemp(t, dir, "good.vetx", `{"schema":1,"enums":[{"pkg":"dep/ok","name":"status","members":["a","b"]}]}`)
	skewed := writeTemp(t, dir, "skewed.vetx", `{"schema":2,"enums":[{"pkg":"dep/skew","name":"future","members":["x"]}]}`)
	junk := writeTemp(t, dir, "junk.vetx", "not json at all")

	var imported []analysis.EnumGroup
	probe := &analysis.Analyzer{
		Name: "probe",
		Doc:  "records the imported enum groups the driver hands it",
		Run: func(pass *analysis.Pass) error {
			imported = pass.ImportedEnums
			return nil
		},
	}

	cfg := writeCfg(t, dir, Config{
		ID:         "example/p",
		ImportPath: "example/p",
		Compiler:   "gc",
		GoFiles:    []string{src},
		PackageVetx: map[string]string{
			"dep/ok":      good,
			"dep/skew":    skewed,
			"dep/junk":    junk,
			"dep/missing": filepath.Join(dir, "never-written.vetx"),
		},
		VetxOutput: filepath.Join(dir, "out.vetx"),
	})
	diags, err := run(cfg, []*analysis.Analyzer{probe})
	if err != nil || len(diags) != 0 {
		t.Fatalf("run: diags=%v err=%v", diags, err)
	}
	if len(imported) != 1 || imported[0].PkgPath != "dep/ok" || imported[0].Name != "status" {
		t.Fatalf("ImportedEnums = %+v, want only dep/ok's status group", imported)
	}
}

// Diagnostics come back rendered as file:line:col: message, the shape
// Main prints to stderr for `go vet` to surface.
func TestRunRendersDiagnostics(t *testing.T) {
	dir := t.TempDir()
	src := writeTemp(t, dir, "p.go", "package p\n\nvar V int\n")

	shouter := &analysis.Analyzer{
		Name: "shouter",
		Doc:  "reports every file's package clause",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				pass.Report(analysis.Diagnostic{Pos: f.Package, Message: "package clause here"})
			}
			return nil
		},
	}

	cfg := writeCfg(t, dir, Config{
		ID:         "example/p",
		ImportPath: "example/p",
		Compiler:   "gc",
		GoFiles:    []string{src},
		VetxOutput: filepath.Join(dir, "out.vetx"),
	})
	diags, err := run(cfg, []*analysis.Analyzer{shouter})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.HasSuffix(diags[0], "p.go:1:1: package clause here") {
		t.Fatalf("diags = %q, want one ending in \"p.go:1:1: package clause here\"", diags)
	}
}
