// Package unit is the driver that lets the repository's analyzers run
// under `go vet -vettool=`. It speaks the three-part protocol cmd/go
// requires of a vet tool:
//
//	growvet -V=full     describe the executable for build caching
//	growvet -flags      describe the tool's flags as JSON
//	growvet foo.cfg     analyze the single package described by the
//	                    JSON config file cmd/go prepared
//
// This is a standard-library reimplementation of the x/tools
// unitchecker (which is itself stdlib underneath: the package is
// re-type-checked with go/types, resolving imports through the export
// data files cmd/go lists in the config). Diagnostics print to stderr
// as file:line:col: message and exit with status 2, which `go vet`
// surfaces per package.
//
// Facts: the one cross-package fact this suite uses is the set of
// //growt:enum const groups a package declares (statusswitch needs the
// groups of imported packages). Each run writes its package's groups to
// the vetx output file cmd/go designates, and reads its dependencies'
// groups from the vetx files cmd/go forwards. Fact extraction needs
// only a parse, so fact-only runs (VetxOnly) skip type checking
// entirely, and standard-library packages (which declare no growt
// directives) write empty facts without even parsing.
package unit

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"regexp"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Config is the JSON schema of the file cmd/go passes to a vet tool —
// the fields this driver consumes, by their cmd/go names (unknown
// fields are ignored by encoding/json).
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// facts is the vetx payload: the enum groups a package exports.
type facts struct {
	Schema int                  `json:"schema"`
	Enums  []analysis.EnumGroup `json:"enums,omitempty"`
}

const factsSchema = 1

// Main runs the analyzers under the vet protocol. It never returns.
func Main(analyzers ...*analysis.Analyzer) {
	progname := "growvet"
	if len(os.Args) > 0 {
		progname = os.Args[0]
	}
	if len(os.Args) == 2 {
		switch os.Args[1] {
		case "-V=full", "--V=full":
			printVersion()
			os.Exit(0)
		case "-flags", "--flags":
			// No tool-level flags: every analyzer always runs.
			fmt.Println("[]")
			os.Exit(0)
		case "-h", "-help", "--help", "help":
			fmt.Fprintf(os.Stderr, "usage: go vet -vettool=%s ./...\n\nAnalyzers:\n", progname)
			for _, a := range analyzers {
				fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
			}
			os.Exit(0)
		}
	}
	if len(os.Args) != 2 || !strings.HasSuffix(os.Args[1], ".cfg") {
		fmt.Fprintf(os.Stderr, "%s: must be run by 'go vet -vettool=%s' (got args %q)\n",
			progname, progname, os.Args[1:])
		os.Exit(1)
	}
	diags, err := run(os.Args[1], analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(2)
	}
	os.Exit(0)
}

// printVersion implements the -V=full half of cmd/go's build caching:
// the output must change whenever the tool's behavior could, so it
// embeds a content hash of the executable itself (the same scheme
// x/tools' unitchecker uses).
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, h.Sum(nil))
}

// run analyzes the single package described by cfgFile and returns the
// rendered diagnostics.
func run(cfgFile string, analyzers []*analysis.Analyzer) ([]string, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("cannot decode vet config %s: %v", cfgFile, err)
	}

	// Standard-library packages carry no growt directives: empty facts,
	// no work. (This keeps `go vet ./...`, which fact-walks the whole
	// dependency graph, cheap.)
	if cfg.Standard[cfg.ImportPath] {
		return nil, writeFacts(cfg.VetxOutput, nil)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, writeFacts(cfg.VetxOutput, nil)
			}
			return nil, err
		}
		files = append(files, f)
	}
	groups := analysis.EnumGroupsFromFiles(cfg.ImportPath, files)
	if err := writeFacts(cfg.VetxOutput, groups); err != nil {
		return nil, err
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	pkg, info, err := typecheck(&cfg, fset, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}

	imported, err := readDepFacts(&cfg)
	if err != nil {
		return nil, err
	}

	var diags []string
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:      a,
			Fset:          fset,
			Files:         files,
			Pkg:           pkg,
			TypesInfo:     info,
			ImportedEnums: imported,
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, fmt.Sprintf("%s: %s", fset.Position(d.Pos), d.Message))
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	return diags, nil
}

// goVersionRE matches the GoVersion forms go/types accepts.
var goVersionRE = regexp.MustCompile(`^go1\.[0-9]+$`)

// typecheck re-type-checks the package, resolving imports through the
// export data files cmd/go listed in the config.
func typecheck(cfg *Config, fset *token.FileSet, files []*ast.File) (*types.Package, *types.Info, error) {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path has already been resolved through ImportMap.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(importPath)
	})
	tc := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(cfg.Compiler, build.Default.GOARCH),
	}
	if goVersionRE.MatchString(goVersionPrefix(cfg.GoVersion)) {
		tc.GoVersion = goVersionPrefix(cfg.GoVersion)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

// goVersionPrefix trims a patch release ("go1.22.3" → "go1.22").
func goVersionPrefix(v string) string {
	parts := strings.SplitN(v, ".", 3)
	if len(parts) < 2 {
		return v
	}
	return parts[0] + "." + parts[1]
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// writeFacts writes the package's vetx output. cmd/go treats the file
// as a build output and hashes it, so the encoding is deterministic
// (groups sorted by name).
func writeFacts(path string, groups []analysis.EnumGroup) error {
	if path == "" {
		return nil
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].Name < groups[j].Name })
	data, err := json.Marshal(facts{Schema: factsSchema, Enums: groups})
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o666)
}

// readDepFacts loads the enum groups of every dependency whose vetx
// file cmd/go forwarded.
func readDepFacts(cfg *Config) ([]analysis.EnumGroup, error) {
	var all []analysis.EnumGroup
	paths := make([]string, 0, len(cfg.PackageVetx))
	for p := range cfg.PackageVetx {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		data, err := os.ReadFile(cfg.PackageVetx[p])
		if err != nil {
			// A missing or unreadable dep vetx only costs cross-package
			// enum groups; the analyzers still run.
			continue
		}
		var f facts
		if err := json.Unmarshal(data, &f); err != nil || f.Schema != factsSchema {
			continue
		}
		all = append(all, f.Enums...)
	}
	return all, nil
}
