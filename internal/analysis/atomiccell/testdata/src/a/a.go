// Package a is the atomiccell fixture: tagged cell words accessed
// atomically (silent), plainly (reported), and from an exclusive phase
// (silent).
package a

import "sync/atomic"

type table struct {
	//growt:atomic
	cells []uint64
	mask  uint64 // untagged: plain access is fine
}

type counters struct {
	//growt:atomic
	n atomic.Uint64
}

//growt:atomic
var global []uint64

func atomicOK(t *table, i int) uint64 {
	if t.cells == nil {
		return 0
	}
	_ = len(t.cells)
	_ = cap(t.cells)
	atomic.StoreUint64(&t.cells[2*i], t.mask)
	atomic.CompareAndSwapUint64(&t.cells[2*i], 0, 1)
	return atomic.LoadUint64(&t.cells[2*i+1])
}

func wrapperOK(c *counters) uint64 {
	c.n.Add(1)
	return c.n.Load()
}

func globalOK(i int) uint64 {
	return atomic.LoadUint64(&global[i])
}

func plainRead(t *table, i int) uint64 {
	return t.cells[i] // want `tagged //growt:atomic`
}

func plainWrite(t *table, i int) {
	t.cells[i] = 42 // want `tagged //growt:atomic`
}

func rangeOver(t *table) uint64 {
	var s uint64
	for _, w := range t.cells { // want `tagged //growt:atomic`
		s += w
	}
	return s
}

func aliasEscape(t *table) *[]uint64 {
	return &t.cells // want `tagged //growt:atomic`
}

func copyWrapper(c *counters) atomic.Uint64 {
	return c.n // want `tagged //growt:atomic`
}

func globalWrite(i int) {
	global[i] = 1 // want `tagged //growt:atomic`
}

//growt:exclusive -- construction: no concurrent readers exist yet
func newTable(n int) *table {
	t := &table{cells: make([]uint64, 2*n)}
	for i := range t.cells {
		t.cells[i] = 0
	}
	return t
}
