package atomiccell_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/atomiccell"
)

func TestAtomicCell(t *testing.T) {
	analysistest.Run(t, "testdata", atomiccell.Analyzer, "a")
}
