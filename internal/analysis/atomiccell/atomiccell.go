// Package atomiccell enforces the split-word cell protocol's access
// discipline statically (internal/core/cell.go, invariants 1–4): a
// declaration tagged //growt:atomic holds words that concurrent
// goroutines race on, so every read and write of it must go through
// sync/atomic (or an atomic wrapper type). A plain load or store of a
// tagged word anywhere outside an allow-listed //growt:exclusive
// function is a protocol violation — the static form of the bug class
// the Wing-Gong linearizability checker only catches when a schedule
// happens to expose it.
//
// Allowed accesses of a tagged declaration:
//
//   - &x (possibly through indexing) passed directly to a sync/atomic
//     function: atomic.LoadUint64(&t.cells[2*i])
//   - a method call on an atomic wrapper (a type from sync/atomic or
//     repro/internal/pad): c.ins.Add(1), ring[i].Store(p)
//   - len(x) and cap(x): the slice header is written once at
//     construction, only the elements race
//   - x == nil / x != nil: same header-only read
//   - anything inside a function whose doc carries //growt:exclusive,
//     the annotation for construction and other single-owner phases
//     (the paper's exclusive migration phases, §5.3.2)
//
// Everything else — plain index reads, assignments, range over the
// slice, copying an atomic wrapper, taking the address for a non-atomic
// callee — is reported.
package atomiccell

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the atomiccell pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomiccell",
	Doc: "enforce sync/atomic-only access to //growt:atomic declarations " +
		"(the cell protocol's split-word invariants)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	tagged := taggedObjects(pass)
	if len(tagged) == 0 {
		return nil
	}
	parents := analysis.NewParents(pass.Files)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok {
				if _, excl := analysis.FuncDirective(fd, "exclusive"); excl {
					continue // single-owner phase: plain access allowed
				}
			}
			checkDecl(pass, decl, tagged, parents)
		}
	}
	return nil
}

// taggedObjects collects the types.Object of every //growt:atomic
// struct field and package-level var in the package.
func taggedObjects(pass *analysis.Pass) map[types.Object]bool {
	tagged := make(map[types.Object]bool)
	addField := func(field *ast.Field) {
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				tagged[obj] = true
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, field := range n.Fields.List {
					if analysis.FieldDirective(field, "atomic") {
						addField(field)
					}
				}
			case *ast.GenDecl:
				if n.Tok != token.VAR {
					return true
				}
				_, onDecl := analysis.GenDeclDirective(n, "atomic")
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					if onDecl || analysis.ValueSpecDirective(vs, "atomic") {
						for _, name := range vs.Names {
							if obj := pass.TypesInfo.Defs[name]; obj != nil {
								tagged[obj] = true
							}
						}
					}
				}
			}
			return true
		})
	}
	return tagged
}

// checkDecl reports every reference to a tagged object inside decl that
// is not one of the allowed atomic access shapes.
func checkDecl(pass *analysis.Pass, decl ast.Decl, tagged map[types.Object]bool, parents analysis.Parents) {
	ast.Inspect(decl, func(n ast.Node) bool {
		var obj types.Object
		var refNode ast.Node
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.FieldVal {
				obj = sel.Obj()
				refNode = n
			} else if o := pass.TypesInfo.Uses[n.Sel]; o != nil {
				obj = o
				refNode = n
			}
		case *ast.Ident:
			// Skip the Sel of a SelectorExpr (handled above) and
			// definitions (struct tags, assignments handled via use side).
			if p, ok := parents[n].(*ast.SelectorExpr); ok && p.Sel == n {
				return true
			}
			obj = pass.TypesInfo.Uses[n]
			refNode = n
		default:
			return true
		}
		if obj == nil || !tagged[obj] {
			return true
		}
		if !allowedAccess(pass, refNode, parents) {
			pass.Reportf(refNode.Pos(),
				"%s is tagged //growt:atomic: access it through sync/atomic "+
					"(or move this code into a //growt:exclusive function)", obj.Name())
		}
		return true
	})
}

// allowedAccess classifies how the tagged reference at ref is used.
func allowedAccess(pass *analysis.Pass, ref ast.Node, parents analysis.Parents) bool {
	// Climb through indexing and parens: the "access expression" of
	// t.cells is t.cells[2*i] in atomic.LoadUint64(&t.cells[2*i]).
	access := ast.Expr(ref.(ast.Expr))
climb:
	for {
		switch p := parents[access].(type) {
		case *ast.ParenExpr:
			access = p
		case *ast.IndexExpr:
			if p.X != access {
				break climb // tagged word used as an index — a plain read
			}
			access = p
		default:
			break climb
		}
	}
	switch p := parents[access].(type) {
	case *ast.CallExpr:
		// len(x) / cap(x).
		if id, ok := p.Fun.(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				return true
			}
		}
	case *ast.UnaryExpr:
		// &x as a direct argument of a sync/atomic call.
		if p.Op == token.AND {
			if call, ok := parents[p].(*ast.CallExpr); ok && isAtomicCallee(pass, call) {
				for _, arg := range call.Args {
					if arg == ast.Expr(p) {
						return true
					}
				}
			}
		}
	case *ast.SelectorExpr:
		// x.Method(...) where Method belongs to an atomic wrapper type.
		if p.X == access {
			if call, ok := parents[p].(*ast.CallExpr); ok && call.Fun == ast.Expr(p) {
				if sel, ok := pass.TypesInfo.Selections[p]; ok && sel.Kind() == types.MethodVal {
					if fn, ok := sel.Obj().(*types.Func); ok && isAtomicWrapperPkg(fn.Pkg()) {
						return true
					}
				}
			}
		}
	case *ast.BinaryExpr:
		// x == nil / x != nil: reads only the once-written slice header.
		if p.Op == token.EQL || p.Op == token.NEQ {
			other := p.X
			if other == access {
				other = p.Y
			}
			if tv, ok := pass.TypesInfo.Types[other]; ok && tv.IsNil() {
				return true
			}
		}
	}
	return false
}

// isAtomicCallee reports whether call invokes a sync/atomic function.
func isAtomicCallee(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// isAtomicWrapperPkg reports whether a method's defining package is an
// atomic wrapper provider: sync/atomic itself (atomic.Uint64,
// atomic.Pointer[T], ...) or the repository's cache-line-padded
// equivalents in internal/pad.
func isAtomicWrapperPkg(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	return pkg.Path() == "sync/atomic" || strings.HasSuffix(pkg.Path(), "internal/pad")
}
