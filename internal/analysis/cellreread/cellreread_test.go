package cellreread_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/cellreread"
)

func TestCellReread(t *testing.T) {
	analysistest.Run(t, "testdata", cellreread.Analyzer, "a")
}
