// Package a is the cellreread fixture: CAS retry loops and enum-status
// switches that do and do not refresh their view of the cell between
// iterations.
package a

import "sync/atomic"

type opStatus uint8

//growt:enum opstatus
const (
	statusOK opStatus = iota
	statusRetry
	statusMarked
)

type table struct{ cells []uint64 }

func (t *table) loadVal(i uint64) uint64 { return atomic.LoadUint64(&t.cells[i]) }
func (t *table) casVal(i, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&t.cells[i], old, new)
}
func (t *table) recheckKey(i, k uint64) {}
func (t *table) status(i uint64) opStatus {
	return opStatus(t.loadVal(i) & 3)
}

var sink uint64

// ---------------------------------------------------------------------
// Rule A: CAS expected values.

// Re-loaded at the top of every iteration: fine.
func goodReload(t *table, i, nv uint64) {
	for {
		v := t.loadVal(i)
		if t.casVal(i, v, nv) {
			return
		}
	}
}

// Loaded before the loop but re-loaded on the retry path: fine — one
// reaching definition is per-iteration.
func goodReloadTail(t *table, i, nv uint64) {
	v := t.loadVal(i)
	for {
		if t.casVal(i, v, nv) {
			return
		}
		v = t.loadVal(i)
	}
}

// Literal expected value (a claim CAS): nothing to go stale.
func goodLiteral(t *table, i uint64) {
	for !t.casVal(i, 0, 1) {
	}
}

// CAS outside any loop: a single failed attempt is a valid protocol.
func goodOneShot(t *table, i, nv uint64) bool {
	v := t.loadVal(i)
	return t.casVal(i, v, nv)
}

// The classic stale spin: v is loaded once, the loop can never succeed
// after the word moves on.
func staleSpin(t *table, i, nv uint64) {
	v := t.loadVal(i)
	for {
		if t.casVal(i, v, nv) { // want `stale CAS retry`
			return
		}
	}
}

// Same bug through a package-level atomic.
func staleAtomic(p *uint64, nv uint64) {
	old := atomic.LoadUint64(p)
	for !atomic.CompareAndSwapUint64(p, old, nv) { // want `stale CAS retry`
	}
}

// The inner loop spins on a value only the outer loop refreshes.
func staleInner(t *table, i, nv uint64) {
	for {
		v := t.loadVal(i)
		for j := 0; j < 8; j++ {
			if t.casVal(i, v, nv) { // want `stale CAS retry`
				return
			}
		}
		sink = v
	}
}

// ---------------------------------------------------------------------
// Rule B: enum-status switches.

// The status is recomputed at the top of every iteration: fine.
func goodStatusLoop(t *table, i uint64) {
	for {
		s := t.status(i)
		switch s {
		case statusRetry:
			continue
		case statusMarked, statusOK:
			return
		default:
			return
		}
	}
}

// Switching directly on a call: the tag re-executes, nothing is saved.
func goodStatusCallTag(t *table, i uint64) {
	for {
		switch t.status(i) {
		case statusRetry:
			continue
		default:
			return
		}
	}
}

// The retry arm re-validates the cell before looping: accepted via the
// re-read primitives escape hatch.
func goodStatusRecheck(t *table, i, k uint64) {
	s := t.status(i)
	for {
		switch s {
		case statusRetry:
			t.recheckKey(i, k)
			continue
		default:
			return
		}
	}
}

// A saved status replayed forever: the retry arm can reach the switch
// again with nothing refreshed.
func staleStatusLoop(t *table, i uint64) {
	s := t.status(i)
	for {
		switch s { // want `stale //growt:enum opstatus switch`
		case statusRetry:
			continue
		default:
			return
		}
	}
}

// The looping arm is implicit (falls to the loop's back edge), not a
// continue: still caught.
func staleStatusFallthrough(t *table, i uint64) {
	s := t.status(i)
	done := false
	for !done {
		switch s { // want `stale //growt:enum opstatus switch`
		case statusOK:
			done = true
		case statusRetry:
			sink++
		}
	}
}

// Not in a loop: a single dispatch cannot spin.
func goodStatusOnce(t *table, i uint64) {
	s := t.status(i)
	switch s {
	case statusRetry:
		sink++
	default:
	}
}
