// Package cellreread makes stale-read spin loops a build error. The
// cell protocol's CAS retry loops are only live (in the lock-free
// sense) when each iteration re-reads the word it is about to CAS: a
// loop that keeps retrying with the expected value it loaded before
// the loop can never succeed once the word has moved on, and a loop
// that keeps switching on a status computed before the loop retries a
// decision that can never change — the bug class behind PR 2's
// lost-op races.
//
// Two flow-sensitive rules, built on internal/analysis/flow:
//
// Rule A (stale CAS expected value). For a compare-and-swap call
// inside a loop — a casVal/casKey method or any CompareAndSwap*
// function, whose expected argument is the second-to-last — at least
// one definition of the expected-value variable that reaches the call
// must be inside the loop's per-iteration region (body or post
// statement). When every reaching definition is outside the loop, the
// retry spins on a stale read:
//
//	v := t.loadVal(i)
//	for {
//	    if t.casVal(i, v, nv) { return }   // error: v never re-loaded
//	}
//
// Literal expected values (casKey(i, 0, ...)) and variables the pass
// cannot track (captured from an enclosing function) are skipped.
//
// Rule B (stale status switch). A switch inside a loop whose tag is a
// saved //growt:enum value (no call in the tag expression) and whose
// cases name group members must not be able to run a second time
// without the looping path either redefining a tag variable or calling
// one of the cell re-read primitives (recheckKey, waitKey, loadVal,
// loadKey). Switching on a status a call recomputes each iteration
// (`switch t.doOp(k)`) is fine; replaying a saved one is a spin:
//
//	s := t.status(i)
//	for {
//	    switch s {                         // error: s never recomputed
//	    case statusRetry:
//	        continue
//	    }
//	}
//
// Enum groups resolve exactly as in statusswitch: same-package
// //growt:enum declarations plus imported groups carried as vetx
// facts.
package cellreread

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/flow"
)

// Analyzer is the cellreread pass.
var Analyzer = &analysis.Analyzer{
	Name: "cellreread",
	Doc: "require CAS retry loops to re-read the cell word (or recompute " +
		"the //growt:enum status) each iteration",
	Run: run,
}

// rereadNames are the cell re-read primitives that break rule B's
// staleness: a looping path that calls one of these has refreshed its
// view of the cell.
var rereadNames = map[string]bool{
	"recheckKey": true,
	"waitKey":    true,
	"loadVal":    true,
	"loadKey":    true,
}

// funcFlow caches the per-function-body flow artifacts.
type funcFlow struct {
	graph *flow.Graph
	reach *flow.ReachingDefs
}

type checker struct {
	pass     *analysis.Pass
	parents  analysis.Parents
	memberOf map[string]string // qualified const name -> group name
	flows    map[*ast.BlockStmt]*funcFlow
}

func run(pass *analysis.Pass) error {
	groups := analysis.EnumGroupsFromFiles(pass.Pkg.Path(), pass.Files)
	groups = append(groups, pass.ImportedEnums...)
	memberOf := make(map[string]string)
	for _, g := range groups {
		for _, m := range g.Members {
			memberOf[g.PkgPath+"."+m] = g.Name
		}
	}
	c := &checker{
		pass:     pass,
		parents:  analysis.NewParents(pass.Files),
		memberOf: memberOf,
		flows:    make(map[*ast.BlockStmt]*funcFlow),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					c.checkCAS(n)
				case *ast.SwitchStmt:
					c.checkStatusSwitch(n)
				}
				return true
			})
		}
	}
	return nil
}

// flowFor builds (or returns the cached) graph and reaching-defs for
// the innermost function body containing n, along with that body.
func (c *checker) flowFor(n ast.Node) (*funcFlow, *ast.BlockStmt) {
	var body *ast.BlockStmt
	var entry []*ast.Ident
	for p := n; p != nil; p = c.parents[p] {
		switch fn := p.(type) {
		case *ast.FuncLit:
			body = fn.Body
			entry = fieldIdents(fn.Type.Params)
		case *ast.FuncDecl:
			body = fn.Body
			entry = fieldIdents(fn.Recv)
			entry = append(entry, fieldIdents(fn.Type.Params)...)
			entry = append(entry, fieldIdents(fn.Type.Results)...)
		}
		if body != nil {
			break
		}
	}
	if body == nil {
		return nil, nil
	}
	ff := c.flows[body]
	if ff == nil {
		g := flow.New(body)
		ff = &funcFlow{graph: g, reach: flow.Reaching(g, c.pass.TypesInfo, entry)}
		c.flows[body] = ff
	}
	return ff, body
}

func fieldIdents(fl *ast.FieldList) []*ast.Ident {
	if fl == nil {
		return nil
	}
	var out []*ast.Ident
	for _, f := range fl.List {
		out = append(out, f.Names...)
	}
	return out
}

// enclosingLoop returns the innermost for/range statement containing n
// on a per-iteration path (a position in the loop's init statement does
// not count), without crossing a function-literal boundary.
func (c *checker) enclosingLoop(n ast.Node) ast.Stmt {
	child := n
	for p := c.parents[n]; p != nil; p = c.parents[p] {
		switch l := p.(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return nil
		case *ast.ForStmt:
			if child != ast.Node(l.Init) {
				return l
			}
		case *ast.RangeStmt:
			return l
		}
		child = p
	}
	return nil
}

// perIteration reports whether node d executes on every iteration of
// loop: it sits in the loop body or post statement, or is the range
// statement itself (whose Key/Value assignment is per-iteration).
func perIteration(loop ast.Stmt, d ast.Node) bool {
	within := func(outer ast.Node) bool {
		return outer != nil && d.Pos() >= outer.Pos() && d.End() <= outer.End()
	}
	switch l := loop.(type) {
	case *ast.ForStmt:
		if within(l.Body) {
			return true
		}
		if l.Post != nil && within(l.Post) {
			return true
		}
	case *ast.RangeStmt:
		if d == ast.Node(l) {
			return true
		}
		return within(l.Body)
	}
	return false
}

// placedNode climbs from n to the node the CFG builder placed in a
// block (the enclosing statement or control expression).
func placedNode(g *flow.Graph, parents analysis.Parents, n ast.Node) ast.Node {
	for p := n; p != nil; p = parents[p] {
		if g.BlockOf(p) != nil {
			return p
		}
		if _, isLit := p.(*ast.FuncLit); isLit {
			return nil
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Rule A: stale CAS expected value.

// checkCAS validates one compare-and-swap call site.
func (c *checker) checkCAS(call *ast.CallExpr) {
	name, ok := casCalleeName(call)
	if !ok || len(call.Args) < 2 {
		return
	}
	loop := c.enclosingLoop(call)
	if loop == nil {
		return
	}
	// The expected value is the second-to-last argument in every CAS
	// shape: casVal(i, old, new), CompareAndSwapUint64(&x, old, new),
	// v.CompareAndSwap(old, new).
	expected, ok := ast.Unparen(call.Args[len(call.Args)-2]).(*ast.Ident)
	if !ok {
		return // literal or computed expected value: not a saved read
	}
	obj, ok := c.pass.TypesInfo.Uses[expected].(*types.Var)
	if !ok {
		return
	}
	ff, _ := c.flowFor(call)
	if ff == nil {
		return
	}
	site := placedNode(ff.graph, c.parents, call)
	if site == nil {
		return
	}
	defs := ff.reach.DefsAt(site, obj)
	if defs == nil {
		return // untracked variable (e.g. captured): unknown, stay quiet
	}
	for _, d := range defs {
		if perIteration(loop, d.Node) {
			return
		}
	}
	c.pass.Reportf(call.Pos(),
		"stale CAS retry: every definition of expected value %s reaching this %s "+
			"call is outside the enclosing loop, so a failed CAS retries with the "+
			"same stale value forever; re-load the cell word each iteration",
		expected.Name, name)
}

// casCalleeName reports whether call invokes a compare-and-swap —
// a casVal/casKey method or any CompareAndSwap* function — and
// returns the callee name.
func casCalleeName(call *ast.CallExpr) (string, bool) {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return "", false
	}
	if name == "casVal" || name == "casKey" || strings.HasPrefix(name, "CompareAndSwap") {
		return name, true
	}
	return "", false
}

// ---------------------------------------------------------------------
// Rule B: stale status switch.

// checkStatusSwitch validates one switch over a saved enum status.
func (c *checker) checkStatusSwitch(sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	group := c.enumGroupOf(sw)
	if group == "" {
		return
	}
	// A tag containing a call recomputes the status every time the
	// switch runs; only a saved value can go stale.
	if containsCall(sw.Tag) {
		return
	}
	tagObjs := c.tagVars(sw.Tag)
	if len(tagObjs) == 0 {
		return
	}
	if c.enclosingLoop(sw) == nil {
		return
	}
	ff, _ := c.flowFor(sw)
	if ff == nil {
		return
	}
	g := ff.graph
	b := g.BlockOf(sw.Tag)
	if b == nil {
		return
	}
	idx := g.NodeIndex(sw.Tag)
	refreshed := func(n ast.Node) bool {
		return callsRereadPrimitive(n) || definesAny(c.pass.TypesInfo, n, tagObjs)
	}
	if g.ReachesAvoiding(b, idx, sw.Tag, refreshed) {
		c.pass.Reportf(sw.Pos(),
			"stale //growt:enum %s switch: the loop can re-run this switch without "+
				"redefining its tag or calling recheckKey/waitKey/loadVal/loadKey, so "+
				"the retry path replays the same saved status; recompute it each iteration",
			group)
	}
}

// enumGroupOf returns the name of the enum group the switch's cases
// belong to, or "" when no case names a tracked member.
func (c *checker) enumGroupOf(sw *ast.SwitchStmt) string {
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range cc.List {
			obj := constObject(c.pass, expr)
			if obj == nil || obj.Pkg() == nil {
				continue
			}
			if g, ok := c.memberOf[obj.Pkg().Path()+"."+obj.Name()]; ok {
				return g
			}
		}
	}
	return ""
}

// tagVars collects the local variables the tag expression reads.
func (c *checker) tagVars(tag ast.Expr) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(tag, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
				out[v] = true
			}
		}
		return true
	})
	return out
}

// containsCall reports whether e contains any call expression.
func containsCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
			return false
		}
		return !found
	})
	return found
}

// callsRereadPrimitive reports whether block node n calls one of the
// cell re-read primitives, without descending into function literals.
func callsRereadPrimitive(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if rereadNames[name] {
			found = true
			return false
		}
		return true
	})
	return found
}

// definesAny reports whether block node n (re)defines one of objs,
// mirroring the definition sites flow's reaching-defs pass recognizes.
func definesAny(info *types.Info, n ast.Node, objs map[types.Object]bool) bool {
	hit := func(id *ast.Ident) bool {
		if obj := info.Defs[id]; obj != nil && objs[obj] {
			return true
		}
		if obj := info.Uses[id]; obj != nil && objs[obj] {
			return true
		}
		return false
	}
	switch s := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && hit(id) {
				return true
			}
		}
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(s.X).(*ast.Ident); ok && hit(id) {
			return true
		}
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{s.Key, s.Value} {
			if id, ok := ast.Unparen(e).(*ast.Ident); ok && hit(id) {
				return true
			}
		}
	}
	return false
}

// constObject resolves a case expression to the constant it names.
func constObject(pass *analysis.Pass, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if c, ok := pass.TypesInfo.Uses[e].(*types.Const); ok {
			return c
		}
	case *ast.SelectorExpr:
		if c, ok := pass.TypesInfo.Uses[e.Sel].(*types.Const); ok {
			return c
		}
	}
	return nil
}
