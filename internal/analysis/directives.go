package analysis

import (
	"go/ast"
	"strings"
)

// This file parses the //growt: directive comments the analyzers key
// off. A directive is a comment line of the form
//
//	//growt:<name>
//	//growt:<name> <argument...>
//	//growt:<name> -- <free-form reason>
//
// written with no space after // (the Go convention for tool
// directives, which also makes go/doc omit them from rendered
// documentation). Directives attach to the declaration whose doc or
// trailing line comment carries them: a struct field, a var or const
// declaration group, or a function declaration.

const directivePrefix = "//growt:"

// directiveIn scans a comment group for //growt:<name> and returns the
// remainder of the line (the argument, trimmed) and whether it was
// found. A `-- reason` suffix is part of the returned argument; callers
// that take arguments split it off themselves.
func directiveIn(g *ast.CommentGroup, name string) (arg string, ok bool) {
	if g == nil {
		return "", false
	}
	for _, c := range g.List {
		rest, found := strings.CutPrefix(c.Text, directivePrefix+name)
		if !found {
			continue
		}
		if rest == "" {
			return "", true
		}
		// Require a separator so growt:atomic does not match growt:atomicx.
		if rest[0] != ' ' && rest[0] != '\t' {
			continue
		}
		arg = strings.TrimSpace(rest)
		if reason := strings.Index(arg, "--"); reason >= 0 {
			arg = strings.TrimSpace(arg[:reason])
		}
		return arg, true
	}
	return "", false
}

// FieldDirective reports whether a struct field carries the directive
// (in its doc comment or its trailing line comment).
func FieldDirective(f *ast.Field, name string) bool {
	if _, ok := directiveIn(f.Doc, name); ok {
		return true
	}
	_, ok := directiveIn(f.Comment, name)
	return ok
}

// GenDeclDirective returns the argument of the directive on a var or
// const declaration group's doc comment.
func GenDeclDirective(d *ast.GenDecl, name string) (string, bool) {
	return directiveIn(d.Doc, name)
}

// FuncDirective returns the argument of the directive on a function
// declaration's doc comment.
func FuncDirective(fd *ast.FuncDecl, name string) (string, bool) {
	return directiveIn(fd.Doc, name)
}

// ValueSpecDirective reports whether one spec inside a var/const group
// carries the directive on its own doc or line comment.
func ValueSpecDirective(s *ast.ValueSpec, name string) bool {
	if _, ok := directiveIn(s.Doc, name); ok {
		return true
	}
	_, ok := directiveIn(s.Comment, name)
	return ok
}

// EnumGroupsFromFiles extracts every //growt:enum const group declared
// in the files. The group's members are all named constants of the
// tagged declaration block, in declaration order. This is used both by
// statusswitch (same-package groups) and by the unit driver (exporting
// groups to the package's vetx facts for importers).
func EnumGroupsFromFiles(pkgPath string, files []*ast.File) []EnumGroup {
	var groups []EnumGroup
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			gname, ok := GenDeclDirective(gd, "enum")
			if !ok || gname == "" {
				continue
			}
			g := EnumGroup{PkgPath: pkgPath, Name: gname}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, id := range vs.Names {
					if id.Name != "_" {
						g.Members = append(g.Members, id.Name)
					}
				}
			}
			if len(g.Members) > 0 {
				groups = append(groups, g)
			}
		}
	}
	return groups
}
