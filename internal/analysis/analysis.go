// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis surface this repository needs: a
// named Analyzer with a Run function over a type-checked package, plus
// the driver glue (internal/analysis/unit) that speaks cmd/go's
// `go vet -vettool=` protocol and the test harness
// (internal/analysis/analysistest) that checks analyzers against
// `// want` fixtures.
//
// The container this repository builds in has no module proxy access,
// so x/tools cannot be a dependency; everything here rides the standard
// library (go/ast, go/types, go/importer) — which is all x/tools'
// unitchecker itself uses underneath.
//
// The repository's analyzers are driven by directive comments (see
// directives.go): //growt:atomic, //growt:exclusive, //growt:hotpath,
// //growt:acquires, //growt:enum. docs/ANALYSIS.md maps each analyzer
// and directive to the cell-protocol invariant or facade contract it
// enforces.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be
	// a valid Go identifier.
	Name string
	// Doc is the one-paragraph help text; its first line is the summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// ImportedEnums lists the //growt:enum const groups declared by
	// imported packages — the one cross-package fact this suite needs.
	// The unit driver sources it from dependency vetx files; the test
	// harness extracts it from fixture imports directly.
	ImportedEnums []EnumGroup

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// EnumGroup is the fact statusswitch exchanges across packages: a named
// set of constants declared in one //growt:enum-tagged const block.
type EnumGroup struct {
	PkgPath string   `json:"pkg"`
	Name    string   `json:"name"`
	Members []string `json:"members"`
}

// Parents maps every AST node of a set of files to its parent node —
// the context lookup several analyzers need to classify how an
// expression is used.
type Parents map[ast.Node]ast.Node

// NewParents indexes the files.
func NewParents(files []*ast.File) Parents {
	p := make(Parents)
	for _, f := range files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			if len(stack) > 0 {
				p[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)
			return true
		})
	}
	return p
}
