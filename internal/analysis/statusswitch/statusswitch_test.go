package statusswitch_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/statusswitch"
)

func TestStatusSwitch(t *testing.T) {
	analysistest.Run(t, "testdata", statusswitch.Analyzer, "a", "b")
}
