// Package b is the cross-package statusswitch fixture: it switches
// over package a's //growt:enum group, which reaches the analyzer as
// an imported fact — the same route the unit driver's vetx files take
// between growd and its client.
package b

import "a"

func Remote(s a.Status) int {
	switch s { // want `missing StatusNotFound, StatusErr`
	case a.StatusOK:
		return 0
	}
	return -1
}

func RemoteDefault(s a.Status) int {
	switch s {
	case a.StatusOK:
		return 0
	default:
		return -1
	}
}
