// Package a is the statusswitch fixture: a typed status enum and a
// byte-typed opcode group (the wire.go shape), switched exhaustively,
// with a default, and with gaps.
package a

type Status int

//growt:enum status
const (
	StatusOK Status = iota
	StatusNotFound
	StatusErr
)

//growt:enum opcode
const (
	OpGet byte = 0x01
	OpSet byte = 0x02
	OpDel byte = 0x03
)

func Exhaustive(s Status) int {
	switch s {
	case StatusOK:
		return 0
	case StatusNotFound:
		return 1
	case StatusErr:
		return 2
	}
	return -1
}

func WithDefault(s Status) int {
	switch s {
	case StatusOK:
		return 0
	default:
		return -1
	}
}

func Missing(s Status) int {
	switch s { // want `missing StatusErr`
	case StatusOK, StatusNotFound:
		return 0
	}
	return -1
}

func OpMissing(op byte) bool {
	switch op { // want `missing OpDel`
	case OpGet:
		return true
	case OpSet:
		return true
	}
	return false
}

func Unrelated(x int) int {
	switch x { // not an enum switch: silent
	case 1:
		return 1
	}
	return 0
}
