// Package statusswitch makes switches over //growt:enum constant
// groups exhaustive. The repository has two such vocabularies whose
// silent partial handling has bitten before: the core per-operation
// status enum (statusInserted … statusMismatch in internal/core), where
// a handler that misses a status spins the retry loop forever, and the
// wire opcode/status bytes in internal/server/wire.go, where growd and
// its client must agree on every code — the next opcode added to the
// server cannot be allowed to fall through on the client side.
//
// A switch participates when any of its case expressions names a member
// of a tagged group (same package or imported; imported groups travel
// as vetx facts under `go vet`). A participating switch must either
// list every member of the group or carry a default clause that makes
// the fallback explicit.
package statusswitch

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the statusswitch pass.
var Analyzer = &analysis.Analyzer{
	Name: "statusswitch",
	Doc: "require switches over //growt:enum groups (core statuses, wire " +
		"opcodes) to cover every member or declare a default",
	Run: run,
}

func run(pass *analysis.Pass) error {
	groups := analysis.EnumGroupsFromFiles(pass.Pkg.Path(), pass.Files)
	groups = append(groups, pass.ImportedEnums...)
	if len(groups) == 0 {
		return nil
	}
	// memberOf: qualified constant name -> index into groups.
	memberOf := make(map[string]int)
	for i, g := range groups {
		for _, m := range g.Members {
			memberOf[g.PkgPath+"."+m] = i
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok {
				return true
			}
			checkSwitch(pass, sw, groups, memberOf)
			return true
		})
	}
	return nil
}

// checkSwitch validates one switch statement against every enum group
// its cases touch.
func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt, groups []analysis.EnumGroup, memberOf map[string]int) {
	hasDefault := false
	// covered[groupIdx] = set of member names this switch handles.
	covered := make(map[int]map[string]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, expr := range cc.List {
			obj := constObject(pass, expr)
			if obj == nil || obj.Pkg() == nil {
				continue
			}
			gi, ok := memberOf[obj.Pkg().Path()+"."+obj.Name()]
			if !ok {
				continue
			}
			if covered[gi] == nil {
				covered[gi] = make(map[string]bool)
			}
			covered[gi][obj.Name()] = true
		}
	}
	if hasDefault || len(covered) == 0 {
		return // explicit fallback, or not an enum switch
	}
	for gi, seen := range covered {
		g := groups[gi]
		var missing []string
		for _, m := range g.Members {
			if !seen[m] {
				missing = append(missing, m)
			}
		}
		if len(missing) > 0 {
			pass.Reportf(sw.Pos(),
				"switch over //growt:enum %s is not exhaustive: missing %s "+
					"(add the cases or an explicit default)",
				g.Name, joinNames(missing))
		}
	}
}

// constObject resolves a case expression to the constant object it
// names, if any.
func constObject(pass *analysis.Pass, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if c, ok := pass.TypesInfo.Uses[e].(*types.Const); ok {
			return c
		}
	case *ast.SelectorExpr:
		if c, ok := pass.TypesInfo.Uses[e.Sel].(*types.Const); ok {
			return c
		}
	}
	return nil
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}
