// Package hotpathalloc keeps functions tagged //growt:hotpath free of
// allocating constructs. The paper's throughput hinges on probe loops
// and the service's coalescing writer doing zero heap work per
// operation; a stray closure capture or interface conversion inserted
// during a refactor costs more than it looks like (an allocation plus
// GC pressure on every table operation) and no test fails. The
// analyzer flags, inside tagged functions:
//
//   - closures that capture outer variables (escape to heap);
//     capture-free func literals are static and stay allowed
//   - any call into package fmt (formatting allocates; growd's hot
//     loops pre-render errors outside the tagged region)
//   - implicit or explicit conversions of non-pointer-shaped concrete
//     values to interface types (boxing allocates; pointers, channels,
//     maps and funcs are pointer-shaped and convert without allocating)
//   - append to a slice that was not locally made with an explicit
//     capacity (make([]T, n, c) or make([]T, n)) — growth reallocates
//
// Arguments of panic(...) are exempt throughout: the cold path may
// format as expensively as it likes, and the repository's hot loops
// guard impossible states with panic(fmt.Sprintf(...)).
package hotpathalloc

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the hotpathalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc: "forbid allocating constructs (capturing closures, fmt, interface " +
		"boxing, unhinted append) in //growt:hotpath functions",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, hot := analysis.FuncDirective(fd, "hotpath"); !hot {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// checkFunc walks one tagged function, skipping panic() arguments.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var sig *types.Signature
	if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		sig = obj.Type().(*types.Signature)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanic(pass, n) {
				return false // cold path: arguments may allocate freely
			}
			checkCall(pass, fd, n)
		case *ast.FuncLit:
			if caps := captures(pass, n); len(caps) > 0 {
				pass.Reportf(n.Pos(),
					"closure in //growt:hotpath function captures %s and escapes to the heap "+
						"(hoist the state or pass it as a parameter)", joinNames(caps))
				return false
			}
		case *ast.AssignStmt:
			checkAssign(pass, n)
		case *ast.ReturnStmt:
			checkReturn(pass, sig, n)
		}
		return true
	})
}

// checkCall flags fmt calls, unhinted appends, explicit conversions to
// interface types, and implicit interface boxing at argument positions.
func checkCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	// Explicit conversion: T(x) where T is an interface type.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			reportBoxing(pass, call.Args[0], tv.Type, "conversion")
		}
		return
	}

	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			if b.Name() == "append" {
				checkAppend(pass, fd, call)
			}
			return
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok &&
			fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(),
				"call to fmt.%s in //growt:hotpath function allocates "+
					"(pre-render outside the hot path)", fn.Name())
			return
		}
	}

	// Implicit boxing: concrete argument passed to an interface param.
	sig, ok := callSignature(pass, call)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... forwards the slice, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		reportBoxing(pass, arg, pt, "argument")
	}
}

// callSignature resolves the signature a call invokes (nil, false for
// builtins and conversions).
func callSignature(pass *analysis.Pass, call *ast.CallExpr) (*types.Signature, bool) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return nil, false
	}
	sig, ok := tv.Type.(*types.Signature)
	return sig, ok
}

// checkAppend requires the appended-to slice to be a local variable
// initialized from a make with an explicit size or capacity, so the
// append provably stays within the pre-sized backing array in steady
// state.
func checkAppend(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	base := ast.Unparen(call.Args[0])
	if sl, ok := base.(*ast.SliceExpr); ok {
		base = ast.Unparen(sl.X) // append(buf[:0], ...) reuses buf's array
	}
	id, ok := base.(*ast.Ident)
	if !ok {
		pass.Reportf(call.Pos(),
			"append in //growt:hotpath function without a capacity-hinted destination")
		return
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil || !madeWithCapacity(pass, fd, obj) {
		pass.Reportf(call.Pos(),
			"append to %s in //growt:hotpath function: destination is not locally "+
				"made with a capacity hint (make([]T, n, c)), so growth reallocates", id.Name)
	}
}

// madeWithCapacity reports whether obj is assigned a make([]T, ...)
// with an explicit length/capacity anywhere in fd, or is a parameter
// (the caller owns the sizing decision).
func madeWithCapacity(pass *analysis.Pass, fd *ast.FuncDecl, obj types.Object) bool {
	if v, ok := obj.(*types.Var); ok {
		// Parameters and receivers: sizing is the caller's contract.
		if fd.Type.Params != nil && tupleContains(pass, fd.Type.Params, v) {
			return true
		}
		if fd.Recv != nil && tupleContains(pass, fd.Recv, v) {
			return true
		}
		// Struct fields reached via a local selector are handled by the
		// Ident check in checkAppend (base is a SelectorExpr there).
	}
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) && len(n.Rhs) != 1 {
					continue
				}
				lobj := pass.TypesInfo.Defs[lid]
				if lobj == nil {
					lobj = pass.TypesInfo.Uses[lid]
				}
				if lobj != obj {
					continue
				}
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else {
					continue
				}
				if isHintedMake(pass, rhs) {
					found = true
				}
			}
		case *ast.ValueSpec:
			for i, lid := range n.Names {
				if pass.TypesInfo.Defs[lid] != obj || i >= len(n.Values) {
					continue
				}
				if isHintedMake(pass, n.Values[i]) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// tupleContains reports whether a field list declares v.
func tupleContains(pass *analysis.Pass, fields *ast.FieldList, v *types.Var) bool {
	for _, f := range fields.List {
		for _, name := range f.Names {
			if pass.TypesInfo.Defs[name] == v {
				return true
			}
		}
	}
	return false
}

// isHintedMake matches make([]T, n) and make([]T, n, c).
func isHintedMake(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "make"
}

// checkAssign flags concrete-to-interface assignments.
func checkAssign(pass *analysis.Pass, n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return // multi-value form; the callee's return types govern
	}
	for i, rhs := range n.Rhs {
		var target types.Type
		if tv, ok := pass.TypesInfo.Types[n.Lhs[i]]; ok {
			target = tv.Type // selector/index/deref LHS
		} else if id, ok := n.Lhs[i].(*ast.Ident); ok {
			// Plain identifiers live in Uses (x = v assigns an existing
			// var) or Defs (x := v defines x with v's own type — no
			// conversion, skip).
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				target = obj.Type()
			}
		}
		reportBoxing(pass, rhs, target, "assignment")
	}
}

// checkReturn flags concrete values returned as interface results.
func checkReturn(pass *analysis.Pass, sig *types.Signature, n *ast.ReturnStmt) {
	if sig == nil || len(n.Results) != sig.Results().Len() {
		return
	}
	for i, res := range n.Results {
		reportBoxing(pass, res, sig.Results().At(i).Type(), "return")
	}
}

// reportBoxing reports expr if placing it into target boxes a
// non-pointer-shaped concrete value into an interface.
func reportBoxing(pass *analysis.Pass, expr ast.Expr, target types.Type, context string) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil || tv.IsNil() {
		return
	}
	src := tv.Type
	if types.IsInterface(src) {
		return // interface-to-interface carries the existing box
	}
	if pointerShaped(src) {
		return // pointer-shaped values fit in the iface word directly
	}
	pass.Reportf(expr.Pos(),
		"%s converts %s to interface %s in //growt:hotpath function: boxing allocates",
		context, types.TypeString(src, types.RelativeTo(pass.Pkg)),
		types.TypeString(target, types.RelativeTo(pass.Pkg)))
}

// pointerShaped reports whether values of t occupy exactly one pointer
// word, so interface conversion needs no allocation.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// captures lists the outer local variables a func literal closes over.
func captures(pass *analysis.Pass, lit *ast.FuncLit) []string {
	seen := make(map[string]bool)
	var names []string
	pkgScope := pass.Pkg.Scope()
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() != pass.Pkg {
			return true
		}
		if v.Parent() == pkgScope || v.Parent() == nil {
			return true // package-level vars are not captured
		}
		if lit.Pos() <= v.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal (params included)
		}
		if !seen[v.Name()] {
			seen[v.Name()] = true
			names = append(names, v.Name())
		}
		return true
	})
	return names
}

// isPanic reports whether call is the builtin panic.
func isPanic(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}
