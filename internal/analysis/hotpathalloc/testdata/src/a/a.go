// Package a is the hotpathalloc fixture: each allocating construct in
// a //growt:hotpath function (capturing closure, fmt, interface
// boxing, unhinted append), its allowed counterpart, and the
// panic-argument exemption.
package a

import "fmt"

type big struct{ a, b, c uint64 }

func sink(v any)        { _ = v }
func sinks(vs ...any)   { _ = vs }
func take(f func() int) { _ = f }

//growt:hotpath
func capturing(n int) {
	take(func() int { return n }) // want `captures n`
}

//growt:hotpath
func staticClosure() {
	take(func() int { return 42 }) // capture-free: static, allowed
}

//growt:hotpath
func useFmt(x int) string {
	return fmt.Sprintf("%d", x) // want `fmt.Sprintf`
}

//growt:hotpath
func boxReturn(x int) any {
	return x // want `boxing allocates`
}

//growt:hotpath
func boxArg(x uint64) {
	sink(x) // want `boxing allocates`
}

//growt:hotpath
func boxVariadic(b big) {
	sinks(b) // want `boxing allocates`
}

//growt:hotpath
func boxAssign(x int) any {
	var v any
	v = x // want `boxing allocates`
	return v
}

//growt:hotpath
func pointerOK(b *big) any {
	return b // pointer-shaped: fits the iface word, allowed
}

//growt:hotpath
func nilOK() any {
	return nil // no box, allowed
}

//growt:hotpath
func panicExempt(x int) int {
	if x < 0 {
		panic(fmt.Sprintf("impossible state %d", x)) // cold path: exempt
	}
	return x
}

//growt:hotpath
func hintedAppend(n int) []byte {
	buf := make([]byte, 0, n)
	for i := 0; i < n; i++ {
		buf = append(buf, byte(i))
	}
	return buf
}

//growt:hotpath
func reuseAppend(buf []byte, frame []byte) []byte {
	return append(buf[:0], frame...) // param destination: caller sizes it, allowed
}

//growt:hotpath
func unhintedAppend(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want `capacity hint`
	}
	return out
}

func coldPath(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // untagged function: analyzer stays away
	}
	out = append(out, len(fmt.Sprint(n)))
	return out
}
