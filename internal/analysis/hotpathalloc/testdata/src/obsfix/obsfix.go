// Package obsfix shapes the hotpathalloc fixture like internal/obs:
// the metrics hot paths — sharded counter Add, log2-histogram Observe
// — must stay silent (they are the allocation-free contract the obs
// package ships), while seeded "convenience" variants that allocate
// (label rendering, boxing into a sink, growing a sample slice,
// capturing closure) must each fire.
package obsfix

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

const (
	shardCount  = 8
	shardMask   = shardCount - 1
	histBuckets = 65
)

// padded mimics internal/pad: one counter word per cache line.
type padded struct {
	v atomic.Uint64
	_ [56]byte
}

type counter struct {
	s [shardCount]padded
}

type hist struct {
	b   [histBuckets]atomic.Uint64
	n   atomic.Uint64
	sum atomic.Uint64
	max atomic.Uint64
}

// Add is the clean sharded hot path: pick a shard from the caller's
// hint, one atomic add. Nothing here may allocate.
//
//growt:hotpath
func (c *counter) Add(shard uint64, n uint64) {
	c.s[shard&shardMask].v.Add(n)
}

// Observe is the clean histogram hot path: bucket index from the bit
// length, three atomic adds, a CAS loop for the max.
//
//growt:hotpath
func (h *hist) Observe(v uint64) {
	h.b[bits.Len64(v)].Add(1)
	h.n.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// --- seeded allocating variants: each line must fire ---

var sink func() uint64

type recorder struct{ samples []uint64 }

func record(v any) { _ = v }

// observeLabeled renders the series name per observation — the exact
// mistake the registry's register-once design exists to prevent.
//
//growt:hotpath
func (h *hist) observeLabeled(op string, v uint64) string {
	h.Observe(v)
	return fmt.Sprintf("growd_op_nanos{op=%q} %d", op, v) // want `fmt.Sprintf`
}

// addTraced boxes the delta into an any-typed trace sink.
//
//growt:hotpath
func (c *counter) addTraced(shard, n uint64) {
	c.Add(shard, n)
	record(n) // want `boxing allocates`
}

// observeSampled grows an unhinted sample slice on the hot path.
//
//growt:hotpath
func (r *recorder) observeSampled(h *hist, v uint64) {
	h.Observe(v)
	r.samples = append(r.samples, v) // want `append`
}

// deferredRead captures the histogram in a closure that escapes.
//
//growt:hotpath
func (h *hist) deferredRead() {
	sink = func() uint64 { return h.n.Load() } // want `captures h`
}
