// Package tracefix shapes the hotpathalloc fixture like
// internal/obs/trace: the flight-recorder append path — ticket
// fetch-and-add plus seqlock-bracketed atomic stores — must stay
// silent (Append is the always-on allocation-free contract), while
// seeded "helpful" variants that allocate (rendering the event,
// boxing it into a logger, buffering into an unhinted slice, capturing
// the ring in a flush closure) must each fire.
package tracefix

import (
	"fmt"
	"sync/atomic"
)

const ringSlots = 64

type slot struct {
	seq  atomic.Uint64
	ts   atomic.Uint64
	kind atomic.Uint64
	a0   atomic.Uint64
	a1   atomic.Uint64
	a2   atomic.Uint64
}

type ring struct {
	cursor atomic.Uint64
	slots  [ringSlots]slot
}

// Append is the clean recorder hot path: claim a ticket, bracket the
// payload stores with the odd/even sequence protocol. Nothing here may
// allocate.
//
//growt:hotpath
func (r *ring) Append(ts int64, kind uint8, a0, a1, a2 uint64) {
	ticket := r.cursor.Add(1) - 1
	s := &r.slots[ticket&(ringSlots-1)]
	s.seq.Store(2*ticket + 1)
	s.ts.Store(uint64(ts))
	s.kind.Store(uint64(kind))
	s.a0.Store(a0)
	s.a1.Store(a1)
	s.a2.Store(a2)
	s.seq.Store(2*ticket + 2)
}

// --- seeded allocating variants: each line must fire ---

var flush func() uint64

type spiller struct{ overflow []uint64 }

func logEvent(v any) { _ = v }

// appendRendered formats the event as it is recorded — the recorder
// stores fixed binary words precisely so nothing renders on the hot
// path.
//
//growt:hotpath
func (r *ring) appendRendered(ts int64, kind uint8, a0 uint64) string {
	r.Append(ts, kind, a0, 0, 0)
	return fmt.Sprintf("trace[%d] kind=%d a0=%d", ts, kind, a0) // want `fmt.Sprintf`
}

// appendLogged boxes the argument into an any-typed event logger.
//
//growt:hotpath
func (r *ring) appendLogged(ts int64, kind uint8, a0 uint64) {
	r.Append(ts, kind, a0, 0, 0)
	logEvent(a0) // want `boxing allocates`
}

// appendSpill grows an unhinted overflow buffer instead of
// overwriting the oldest slot.
//
//growt:hotpath
func (sp *spiller) appendSpill(r *ring, ts int64, a0 uint64) {
	r.Append(ts, 1, a0, 0, 0)
	sp.overflow = append(sp.overflow, a0) // want `append`
}

// appendDeferredFlush captures the ring in an escaping flush closure.
//
//growt:hotpath
func (r *ring) appendDeferredFlush() {
	flush = func() uint64 { return r.cursor.Load() } // want `captures r`
}
