// Package analysistest checks an analyzer against fixture packages, in
// the style of golang.org/x/tools/go/analysis/analysistest: fixture
// sources live under <dir>/src/<pkgpath>/ and annotate the lines where
// diagnostics are expected with
//
//	//growt:atomic
//	cells []uint64
//	...
//	t.cells[0] = 1 // want `tagged //growt:atomic`
//
// The string after `want` is a regular expression (quoted or
// back-quoted; several may follow one want) that must match a
// diagnostic reported on that line. The harness fails the test on any
// unmatched expectation and on any unexpected diagnostic, so fixtures
// pin both the positive findings and the negative space (allow-listed
// code staying silent).
//
// Fixture imports resolve in two steps: a sibling fixture package under
// the same testdata dir (type-checked recursively, its //growt:enum
// groups fed to the pass as imported facts — exercising the vetx path),
// otherwise the standard library via the source importer.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run applies the analyzer to each fixture package and compares the
// diagnostics against the // want annotations.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	for _, pkgpath := range pkgpaths {
		pkgpath := pkgpath
		t.Run(pkgpath, func(t *testing.T) {
			t.Helper()
			runOne(t, dir, a, pkgpath)
		})
	}
}

// loaded is one type-checked fixture package.
type loaded struct {
	fset  *token.FileSet
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
	enums []analysis.EnumGroup
	err   error
}

// loader memoizes fixture packages so mutually-imported fixtures check
// once, and threads std imports to the source importer.
type loader struct {
	dir   string
	fset  *token.FileSet
	std   types.Importer
	cache map[string]*loaded
}

func newLoader(dir string) *loader {
	fset := token.NewFileSet()
	return &loader{
		dir:   dir,
		fset:  fset,
		std:   importer.ForCompiler(fset, "source", nil),
		cache: make(map[string]*loaded),
	}
}

func (l *loader) load(pkgpath string) (*loaded, error) {
	if p, ok := l.cache[pkgpath]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle through %s", pkgpath)
		}
		return p, p.err
	}
	l.cache[pkgpath] = nil // cycle marker
	p := l.doLoad(pkgpath)
	l.cache[pkgpath] = p
	return p, p.err
}

func (l *loader) doLoad(pkgpath string) *loaded {
	p := &loaded{fset: l.fset}
	srcDir := filepath.Join(l.dir, "src", filepath.FromSlash(pkgpath))
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		p.err = err
		return p
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(srcDir, name), nil, parser.ParseComments)
		if err != nil {
			p.err = err
			return p
		}
		p.files = append(p.files, f)
	}
	if len(p.files) == 0 {
		p.err = fmt.Errorf("no Go files in %s", srcDir)
		return p
	}
	p.enums = analysis.EnumGroupsFromFiles(pkgpath, p.files)

	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if _, err := os.Stat(filepath.Join(l.dir, "src", filepath.FromSlash(path))); err == nil {
			dep, err := l.load(path)
			if err != nil {
				return nil, err
			}
			return dep.pkg, nil
		}
		return l.std.Import(path)
	})
	p.info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	tc := &types.Config{Importer: imp}
	p.pkg, p.err = tc.Check(pkgpath, l.fset, p.files, p.info)
	return p
}

// importedEnums gathers the enum groups of every fixture package the
// target imported — the same facts the unit driver would read from
// dependency vetx files.
func (l *loader) importedEnums(target string) []analysis.EnumGroup {
	var all []analysis.EnumGroup
	paths := make([]string, 0, len(l.cache))
	for path := range l.cache {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if path == target || l.cache[path] == nil {
			continue
		}
		all = append(all, l.cache[path].enums...)
	}
	return all
}

func runOne(t *testing.T, dir string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	l := newLoader(dir)
	p, err := l.load(pkgpath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
	}

	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:      a,
		Fset:          p.fset,
		Files:         p.files,
		Pkg:           p.pkg,
		TypesInfo:     p.info,
		ImportedEnums: l.importedEnums(pkgpath),
		Report:        func(d analysis.Diagnostic) { got = append(got, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	wants := collectWants(t, p.fset, p.files)
	matched := make([]bool, len(wants))
	for _, d := range got {
		pos := p.fset.Position(d.Pos)
		ok := false
		for i, w := range wants {
			if w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// collectWants parses every `// want "re" ...` comment. Expectations
// attach to the line the comment starts on.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var wants []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitPatterns(t, pos, m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// splitPatterns reads the sequence of Go string literals after `want`.
func splitPatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		var lit string
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern %q", pos, s)
			}
			lit = s[1 : 1+end]
			s = s[end+2:]
		case '"':
			rest := s[1:]
			end := -1
			for i := 0; i < len(rest); i++ {
				if rest[i] == '\\' {
					i++
					continue
				}
				if rest[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern %q", pos, s)
			}
			unq, err := strconv.Unquote(s[:end+2])
			if err != nil {
				t.Fatalf("%s: bad want pattern %q: %v", pos, s[:end+2], err)
			}
			lit = unq
			s = s[end+2:]
		default:
			t.Fatalf("%s: want patterns must be quoted or back-quoted, got %q", pos, s)
		}
		pats = append(pats, lit)
		s = strings.TrimSpace(s)
	}
	return pats
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
