package flow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// parseFunc parses src as the body of `func f(...)` inside a small file
// and returns the graph plus a lookup from call-statement names to
// blocks: the test sources mark interesting program points with calls
// like `mark1()`, and at(name) returns the block and index of that call
// statement.
type fixture struct {
	t     *testing.T
	g     *Graph
	fn    *ast.FuncDecl
	file  *ast.File
	info  *types.Info
	calls map[string]ast.Node
}

func parseFunc(t *testing.T, decls string) *fixture {
	t.Helper()
	src := "package p\n\n" + decls
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs: make(map[*ast.Ident]types.Object),
		Uses: make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default(), Error: func(error) {}}
	// Type errors are tolerated: dominance tests reference undeclared
	// marker functions on purpose.
	conf.Check("p", fset, []*ast.File{file}, info)

	var fn *ast.FuncDecl
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			fn = fd
		}
	}
	if fn == nil {
		t.Fatalf("no func f in fixture")
	}
	fx := &fixture{
		t:     t,
		g:     New(fn.Body),
		fn:    fn,
		file:  file,
		info:  info,
		calls: make(map[string]ast.Node),
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		if call, ok := es.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				fx.calls[id.Name] = es
			}
		}
		return true
	})
	return fx
}

// at returns the block holding the marker call named name.
func (fx *fixture) at(name string) *Block {
	fx.t.Helper()
	n, ok := fx.calls[name]
	if !ok {
		fx.t.Fatalf("no marker call %s()", name)
	}
	b := fx.g.BlockOf(n)
	if b == nil {
		fx.t.Fatalf("marker %s() not placed in any block", name)
	}
	return b
}

func (fx *fixture) node(name string) ast.Node {
	fx.t.Helper()
	n, ok := fx.calls[name]
	if !ok {
		fx.t.Fatalf("no marker call %s()", name)
	}
	return n
}

func (fx *fixture) checkDom(a, b string, want bool) {
	fx.t.Helper()
	if got := fx.g.Dominates(fx.at(a), fx.at(b)); got != want {
		fx.t.Errorf("Dominates(%s, %s) = %v, want %v", a, b, got, want)
	}
}

func (fx *fixture) checkPostDom(a, b string, want bool) {
	fx.t.Helper()
	if got := fx.g.PostDominates(fx.at(a), fx.at(b)); got != want {
		fx.t.Errorf("PostDominates(%s, %s) = %v, want %v", a, b, got, want)
	}
}

func TestDominanceBranch(t *testing.T) {
	fx := parseFunc(t, `
func f(c bool) {
	top()
	if c {
		thenArm()
	} else {
		elseArm()
	}
	join()
}`)
	fx.checkDom("top", "thenArm", true)
	fx.checkDom("top", "elseArm", true)
	fx.checkDom("top", "join", true)
	fx.checkDom("thenArm", "join", false) // else path skips it
	fx.checkDom("elseArm", "join", false)
	fx.checkDom("join", "thenArm", false) // dominance is not backwards

	fx.checkPostDom("join", "top", true)
	fx.checkPostDom("join", "thenArm", true)
	fx.checkPostDom("join", "elseArm", true)
	fx.checkPostDom("thenArm", "top", false) // else path avoids it
	fx.checkPostDom("elseArm", "top", false)
}

func TestDominanceEarlyReturn(t *testing.T) {
	fx := parseFunc(t, `
func f(c bool) {
	top()
	if c {
		early()
		return
	}
	tail()
}`)
	fx.checkDom("top", "early", true)
	fx.checkDom("top", "tail", true)
	// tail does NOT post-dominate top: the early return exits first.
	fx.checkPostDom("tail", "top", false)
	fx.checkPostDom("tail", "early", false)
	// Reflexivity.
	fx.checkDom("top", "top", true)
	fx.checkPostDom("tail", "tail", true)
}

func TestDominanceLoop(t *testing.T) {
	fx := parseFunc(t, `
func f(n int) {
	top()
	for i := 0; i < n; i++ {
		body()
		if i == 1 {
			continue
		}
		late()
	}
	done()
}`)
	fx.checkDom("top", "body", true)
	fx.checkDom("top", "done", true)
	fx.checkDom("body", "late", true)
	fx.checkDom("body", "done", false) // zero-iteration path
	fx.checkDom("late", "done", false) // continue path skips it

	fx.checkPostDom("done", "top", true)
	fx.checkPostDom("done", "body", true)
	fx.checkPostDom("done", "late", true)
	fx.checkPostDom("body", "top", false) // loop may run zero times
	fx.checkPostDom("late", "body", false)
}

func TestDominanceInfiniteLoop(t *testing.T) {
	fx := parseFunc(t, `
func f(c bool) {
	top()
	for {
		spin()
		if c {
			out()
			return
		}
	}
}`)
	fx.checkDom("top", "spin", true)
	fx.checkDom("spin", "out", true)
	// Post-dominance quantifies over paths that reach Exit; the back
	// edge never does, so out's return is spin's only way out.
	fx.checkPostDom("out", "spin", true)
	if !fx.g.PostDominates(fx.g.Exit, fx.at("spin")) {
		t.Errorf("Exit should post-dominate spin (return is the only way out)")
	}
}

func TestDominanceDefer(t *testing.T) {
	fx := parseFunc(t, `
func f(c bool) {
	top()
	defer cleanup()
	if c {
		early()
		return
	}
	tail()
}`)
	// The defer statement (arming point) is straight-line after top, so
	// it dominates everything and is post-dominated by nothing except
	// Exit-side nodes... but crucially the arming point itself
	// post-dominates top: every path out passes through it.
	deferStmt := func() ast.Node {
		var ds ast.Node
		ast.Inspect(fx.fn.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.DeferStmt); ok {
				ds = n
			}
			return true
		})
		return ds
	}()
	if deferStmt == nil {
		t.Fatal("no defer in fixture")
	}
	db := fx.g.BlockOf(deferStmt)
	if db == nil {
		t.Fatal("defer statement not placed")
	}
	if !fx.g.Dominates(db, fx.at("early")) {
		t.Errorf("defer arming point should dominate early()")
	}
	if !fx.g.Dominates(db, fx.at("tail")) {
		t.Errorf("defer arming point should dominate tail()")
	}
	if !fx.g.PostDominates(db, fx.at("top")) {
		t.Errorf("defer arming point should post-dominate top()")
	}
	// A defer armed inside a branch does not cover the other arm.
	fx2 := parseFunc(t, `
func f(c bool) {
	top()
	if c {
		armed()
		defer cleanup()
	}
	tail()
}`)
	var ds2 ast.Node
	ast.Inspect(fx2.fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.DeferStmt); ok {
			ds2 = n
		}
		return true
	})
	if fx2.g.PostDominates(fx2.g.BlockOf(ds2), fx2.at("top")) {
		t.Errorf("branch-local defer must not post-dominate top()")
	}
}

func TestDominancePanic(t *testing.T) {
	fx := parseFunc(t, `
func f(c bool) {
	top()
	if c {
		pre()
		panic("boom")
	}
	tail()
}`)
	// The panic arm exits: tail does not post-dominate top.
	fx.checkPostDom("tail", "top", false)
	// Code after panic is unreachable.
	fx2 := parseFunc(t, `
func f() {
	top()
	panic("boom")
	dead()
}`)
	if fx2.g.Reachable(fx2.at("dead")) {
		t.Errorf("statement after panic should be unreachable")
	}
	if fx2.g.Dominates(fx2.at("top"), fx2.at("dead")) {
		t.Errorf("dominance must exclude unreachable blocks")
	}
}

func TestDominanceSwitch(t *testing.T) {
	fx := parseFunc(t, `
func f(x int) {
	top()
	switch x {
	case 1:
		one()
	case 2:
		two()
		fallthrough
	case 3:
		three()
	default:
		other()
	}
	join()
}`)
	fx.checkDom("top", "one", true)
	fx.checkDom("top", "join", true)
	fx.checkDom("one", "join", false)
	fx.checkDom("two", "three", false) // case 3 is reachable directly
	fx.checkPostDom("join", "top", true)
	fx.checkPostDom("three", "two", true) // fallthrough is two's only way on
}

func TestExitAvoiding(t *testing.T) {
	fx := parseFunc(t, `
func f(c bool) {
	acq()
	if c {
		rel()
		return
	}
	tail()
}`)
	isRel := func(n ast.Node) bool { return n == fx.node("rel") }
	b := fx.at("acq")
	idx := fx.g.NodeIndex(fx.node("acq"))
	// The else path reaches Exit without passing rel().
	if !fx.g.ExitAvoiding(b, idx, isRel) {
		t.Errorf("ExitAvoiding should find the tail() path that skips rel()")
	}
	// With a release on every path, no avoiding path exists.
	fx2 := parseFunc(t, `
func f(c bool) {
	acq()
	if c {
		rel()
		return
	}
	rel2()
}`)
	isRel2 := func(n ast.Node) bool {
		return n == fx2.node("rel") || n == fx2.node("rel2")
	}
	b2 := fx2.at("acq")
	idx2 := fx2.g.NodeIndex(fx2.node("acq"))
	if fx2.g.ExitAvoiding(b2, idx2, isRel2) {
		t.Errorf("ExitAvoiding should find no path when both arms release")
	}
}

func TestReachesAvoidingCycle(t *testing.T) {
	fx := parseFunc(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		acq()
		use()
	}
}`)
	acq := fx.node("acq")
	b := fx.g.BlockOf(acq)
	idx := fx.g.NodeIndex(acq)
	// acq can run again around the loop without passing use... no wait,
	// use() is on the only path around. Blocking on use() must report no
	// cycle; allowing everything must report one.
	if fx.g.ReachesAvoiding(b, idx, acq, func(n ast.Node) bool { return n == fx.node("use") }) {
		t.Errorf("cycle search must respect the barrier on use()")
	}
	if !fx.g.ReachesAvoiding(b, idx, acq, func(ast.Node) bool { return false }) {
		t.Errorf("acq() is inside a loop: it can reach itself")
	}
}

func TestReachingDefs(t *testing.T) {
	fx := parseFunc(t, `
func f(n int) int {
	v := 0
	for i := 0; i < n; i++ {
		use(v)
		v = i
	}
	return v
}`)
	if fx.info == nil {
		t.Fatal("no type info")
	}
	// Collect entry idents (the parameter n).
	var entry []*ast.Ident
	for _, fl := range fx.fn.Type.Params.List {
		entry = append(entry, fl.Names...)
	}
	rd := Reaching(fx.g, fx.info, entry)

	// Find the `use(v)` call's v ident and its object.
	use := fx.node("use").(*ast.ExprStmt)
	vIdent := use.X.(*ast.CallExpr).Args[0].(*ast.Ident)
	vObj := fx.info.Uses[vIdent]
	if vObj == nil {
		t.Fatal("no object for v")
	}
	defs := rd.DefsAt(use, vObj)
	if len(defs) != 2 {
		t.Fatalf("DefsAt(use, v) = %d defs, want 2 (init + loop assign)", len(defs))
	}

	// At the return, both defs reach as well (zero-iteration + loop exit).
	var ret ast.Node
	ast.Inspect(fx.fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.ReturnStmt); ok {
			ret = n
		}
		return true
	})
	if got := len(rd.DefsAt(ret, vObj)); got != 2 {
		t.Fatalf("DefsAt(return, v) = %d defs, want 2", got)
	}

	// A variable with a single straight-line def sees exactly it.
	fx2 := parseFunc(t, `
func f() {
	w := 1
	w = 2
	use(w)
}`)
	var entry2 []*ast.Ident
	rd2 := Reaching(fx2.g, fx2.info, entry2)
	use2 := fx2.node("use").(*ast.ExprStmt)
	wIdent := use2.X.(*ast.CallExpr).Args[0].(*ast.Ident)
	wObj := fx2.info.Uses[wIdent]
	defs2 := rd2.DefsAt(use2, wObj)
	if len(defs2) != 1 {
		t.Fatalf("DefsAt(use, w) = %d defs, want 1 (w = 2 kills w := 1)", len(defs2))
	}
	if _, ok := defs2[0].Node.(*ast.AssignStmt); !ok {
		t.Fatalf("surviving def should be the assignment, got %T", defs2[0].Node)
	}
}

func TestEnclosingAndFuncLitBoundary(t *testing.T) {
	fx := parseFunc(t, `
func f(c bool) {
	outer()
	g := func() {
		inner()
	}
	g()
}`)
	// Statements inside the func literal do not belong to f's graph.
	inner := fx.node("inner")
	if fx.g.BlockOf(inner) != nil {
		t.Errorf("func literal body must not be placed in the outer graph")
	}
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(fx.fn.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	if b, _ := fx.g.Enclosing(inner, parents); b != nil {
		t.Errorf("Enclosing must stop at the func literal boundary")
	}
	// But an expression inside an outer statement climbs to it.
	outer := fx.node("outer").(*ast.ExprStmt)
	callFun := outer.X.(*ast.CallExpr).Fun
	if b, idx := fx.g.Enclosing(callFun, parents); b == nil || idx != fx.g.NodeIndex(outer) {
		t.Errorf("Enclosing(outer call fun) = (%v, %d), want the outer() statement position", b, idx)
	}
}
