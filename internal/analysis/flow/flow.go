// Package flow builds control-flow graphs over go/ast function bodies
// and answers the flow questions the repository's analyzers need:
// dominance and post-dominance (dom.go), reaching definitions for local
// variables (reach.go), and guarded path reachability (search.go).
//
// Like the rest of internal/analysis it is dependency-free — pure
// go/ast + go/token — because the build container has no module proxy
// and x/tools (whose go/cfg package plays this role upstream) cannot be
// vendored.
//
// # Graph shape
//
// A Graph is a set of basic blocks: maximal straight-line runs of AST
// nodes connected by control edges. Block nodes are statements plus the
// control expressions that decide branches (an if/for condition, a
// switch tag, a range operand), in execution order. Two virtual blocks
// frame the body: Entry (where parameters are considered defined) and
// Exit, which models every way out of the function — returns, falling
// off the end, and calls to the panic builtin all edge to Exit.
//
// Edges cover if/else, for (cond/post/backedge), range, switch and
// type switch (implicit break, fallthrough, missing-default
// fallthrough), select, labeled break/continue, and goto. A `panic(x)`
// statement ends its block with an edge to Exit — the "panic edge" —
// so Exit-reachability questions see panics as exits. Other calls are
// not treated as potential panic sites; analyzers that care about
// panic-path cleanup (handleleak) demand defer-based release instead
// of reasoning about which calls can throw.
//
// Defer statements are ordinary block nodes: a DeferStmt node marks
// where the defer is *armed*, and the deferred call itself runs at
// Exit. Analyzers model that explicitly (e.g. a deferred release
// covers every exit path that passes through its DeferStmt, but does
// not release anything on a loop's back edge).
//
// Blocks unreachable from Entry (dead code after return/panic) are
// kept in the graph but excluded from dominance and search results.
package flow

import (
	"go/ast"
)

// Block is one basic block.
type Block struct {
	// Index is the block's position in Graph.Blocks (creation order;
	// Entry is 0).
	Index int
	// Nodes are the block's statements and control expressions in
	// execution order.
	Nodes []ast.Node
	// Succs and Preds are the control edges.
	Succs, Preds []*Block
	// reachable is true when the block is reachable from Entry.
	reachable bool
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Entry, Exit *Block
	Blocks      []*Block

	blockOf map[ast.Node]*Block
	indexOf map[ast.Node]int

	dom, postdom *domTree // built lazily
}

// New builds the control-flow graph of a function body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{
		blockOf: make(map[ast.Node]*Block),
		indexOf: make(map[ast.Node]int),
	}
	b := &builder{g: g, labels: make(map[string]*Block)}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	b.stmtList(body.List)
	b.edge(b.cur, g.Exit) // falling off the end returns
	for _, pg := range b.gotos {
		if t := b.labels[pg.label]; t != nil {
			b.edge(pg.from, t)
		}
	}
	g.markReachable()
	return g
}

// Reachable reports whether b is reachable from Entry.
func (g *Graph) Reachable(b *Block) bool { return b.reachable }

// BlockOf returns the block holding n, which must be a node the
// builder placed (a statement or control expression); nil otherwise.
func (g *Graph) BlockOf(n ast.Node) *Block { return g.blockOf[n] }

// NodeIndex returns n's position within its block (see BlockOf).
func (g *Graph) NodeIndex(n ast.Node) int { return g.indexOf[n] }

// Enclosing climbs the parent chain from n (typically an expression
// nested inside a statement) until it finds a node placed in a block,
// and returns that block and the node's index within it. parents is a
// child-to-parent index over the same files (analysis.NewParents).
// Returns (nil, -1) when n is not under any placed node — e.g. inside
// a function literal, whose body belongs to its own Graph.
func (g *Graph) Enclosing(n ast.Node, parents map[ast.Node]ast.Node) (*Block, int) {
	for n != nil {
		if b, ok := g.blockOf[n]; ok {
			return b, g.indexOf[n]
		}
		// Do not climb out of a nested function literal: its statements
		// belong to the literal's own graph, not this one.
		if _, isLit := n.(*ast.FuncLit); isLit {
			return nil, -1
		}
		n = parents[n]
	}
	return nil, -1
}

func (g *Graph) markReachable() {
	var stack []*Block
	g.Entry.reachable = true
	stack = append(stack, g.Entry)
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !s.reachable {
				s.reachable = true
				stack = append(stack, s)
			}
		}
	}
}

// ---------------------------------------------------------------------
// Builder.

type pendingGoto struct {
	from  *Block
	label string
}

// frame is one enclosing breakable/continuable construct.
type frame struct {
	label     string // non-empty when the construct is labeled
	brk, cont *Block // cont is nil for switch/select
}

type builder struct {
	g      *Graph
	cur    *Block
	frames []frame
	labels map[string]*Block
	gotos  []pendingGoto

	// pendingLabel carries a LabeledStmt's label to the loop or switch
	// it labels, so `break L` / `continue L` resolve to its frame.
	pendingLabel string
	// fallTarget is the next case-clause body while building a switch
	// clause; a fallthrough statement edges to it.
	fallTarget *Block
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jump ends the current block with an edge to next and continues there.
func (b *builder) jump(next *Block) {
	b.edge(b.cur, next)
	b.cur = next
}

// add places a node at the end of the current block.
func (b *builder) add(n ast.Node) {
	b.g.blockOf[n] = b.cur
	b.g.indexOf[n] = len(b.cur.Nodes)
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// terminate ends the current block (return/panic/goto/break/continue):
// whatever follows in the source is unreachable from here.
func (b *builder) terminate() {
	b.cur = b.newBlock()
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the construct that owns it.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) stmt(s ast.Stmt) {
	// A label only applies to the statement written directly after it.
	if _, ok := s.(*ast.LabeledStmt); !ok {
		defer func() { b.pendingLabel = "" }()
	}
	switch s := s.(type) {
	case nil, *ast.BadStmt, *ast.EmptyStmt:
		// nothing

	case *ast.DeclStmt, *ast.AssignStmt, *ast.IncDecStmt, *ast.SendStmt,
		*ast.GoStmt, *ast.DeferStmt:
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.edge(b.cur, b.g.Exit)
			b.terminate()
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.terminate()

	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		target := b.newBlock()
		b.jump(target)
		b.labels[s.Label.Name] = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s, b.takeLabel())

	case *ast.RangeStmt:
		b.rangeStmt(s, b.takeLabel())

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body, label, true)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body, label, false)

	case *ast.SelectStmt:
		b.selectStmt(s, b.takeLabel())

	default:
		// Future statement kinds: place conservatively in the current
		// block so node lookups still resolve.
		b.add(s)
	}
}

func (b *builder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if label == "" || f.label == label {
				b.edge(b.cur, f.brk)
				break
			}
		}
		b.terminate()
	case "continue":
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if f.cont != nil && (label == "" || f.label == label) {
				b.edge(b.cur, f.cont)
				break
			}
		}
		b.terminate()
	case "goto":
		b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
		b.terminate()
	case "fallthrough":
		if b.fallTarget != nil {
			b.edge(b.cur, b.fallTarget)
		}
		b.terminate()
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	after := b.newBlock()

	then := b.newBlock()
	b.edge(cond, then)
	b.cur = then
	b.stmtList(s.Body.List)
	b.edge(b.cur, after)

	if s.Else != nil {
		els := b.newBlock()
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		b.edge(b.cur, after)
	} else {
		b.edge(cond, after)
	}
	b.cur = after
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock()
	b.jump(head)
	if s.Cond != nil {
		b.add(s.Cond)
	}
	body := b.newBlock()
	done := b.newBlock()
	b.edge(head, body)
	if s.Cond != nil {
		b.edge(head, done)
	}

	cont := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		cont = post
	}
	b.frames = append(b.frames, frame{label: label, brk: done, cont: cont})
	b.cur = body
	b.stmtList(s.Body.List)
	b.edge(b.cur, cont)
	b.frames = b.frames[:len(b.frames)-1]

	if post != nil {
		b.cur = post
		b.stmt(s.Post)
		b.edge(b.cur, head)
	}
	b.cur = done
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock()
	b.jump(head)
	// The RangeStmt node stands for the per-iteration step: advancing
	// the iterator and assigning Key/Value (reach.go treats it as their
	// definition site).
	b.add(s)
	body := b.newBlock()
	done := b.newBlock()
	b.edge(head, body)
	b.edge(head, done)

	b.frames = append(b.frames, frame{label: label, brk: done, cont: head})
	b.cur = body
	b.stmtList(s.Body.List)
	b.edge(b.cur, head)
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

// switchBody builds the clauses of a switch or type switch. The tag (or
// type-switch assign) has already been placed in the current block.
func (b *builder) switchBody(body *ast.BlockStmt, label string, allowFall bool) {
	tag := b.cur
	done := b.newBlock()

	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		bodies[i] = b.newBlock()
		b.edge(tag, bodies[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(tag, done) // no case matches
	}

	b.frames = append(b.frames, frame{label: label, brk: done})
	savedFall := b.fallTarget
	for i, cc := range clauses {
		b.cur = bodies[i]
		// Case label expressions are placed in the clause body so node
		// lookups inside them resolve to a block.
		for _, e := range cc.List {
			b.add(e)
		}
		b.fallTarget = nil
		if allowFall && i+1 < len(clauses) {
			b.fallTarget = bodies[i+1]
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, done)
	}
	b.fallTarget = savedFall
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	sel := b.cur
	done := b.newBlock()
	b.frames = append(b.frames, frame{label: label, brk: done})
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		body := b.newBlock()
		b.edge(sel, body)
		b.cur = body
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, done)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

// isPanicCall reports whether e is a call to the panic builtin.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
