package flow

// Guarded path search: can control get from here to there without
// passing a node the caller designates as a barrier? This is the
// primitive behind handleleak's coverage questions — "does some exit
// path avoid every release?" and "can the acquire run again before a
// release?" — phrased so the analyzer supplies the semantics (what
// releases) and the graph supplies the paths.

import "go/ast"

// ExitAvoiding reports whether control, starting immediately after the
// node at position idx of block b, can reach the function exit without
// first passing a node for which avoid returns true. Unreachable
// blocks never yield paths.
func (g *Graph) ExitAvoiding(b *Block, idx int, avoid func(ast.Node) bool) bool {
	return g.search(b, idx, nil, avoid)
}

// ReachesAvoiding reports whether control, starting immediately after
// the node at position idx of block b, can reach target without first
// passing a node for which avoid returns true. Pass the starting node
// itself as target to ask whether it can run a second time (a cycle)
// before any barrier.
func (g *Graph) ReachesAvoiding(b *Block, idx int, target ast.Node, avoid func(ast.Node) bool) bool {
	return g.search(b, idx, target, avoid)
}

// search walks forward from (b, idx+1). A nil target means "reaching
// the Exit block is the goal".
func (g *Graph) search(b *Block, idx int, target ast.Node, avoid func(ast.Node) bool) bool {
	if b == nil || !b.reachable {
		return false
	}
	visited := make(map[*Block]bool)
	// scan walks one block from node position `from`; it returns
	// (found, blocked): found when the goal was met, blocked when a
	// barrier cut this path inside the block.
	scan := func(blk *Block, from int) (found, blocked bool) {
		for i := from; i < len(blk.Nodes); i++ {
			n := blk.Nodes[i]
			if target != nil && n == target {
				return true, false
			}
			if avoid(n) {
				return false, true
			}
		}
		if target == nil && blk == g.Exit {
			return true, false
		}
		return false, false
	}

	var walk func(blk *Block, from int) bool
	walk = func(blk *Block, from int) bool {
		found, blocked := scan(blk, from)
		if found {
			return true
		}
		if blocked {
			return false
		}
		for _, s := range blk.Succs {
			if visited[s] {
				continue
			}
			visited[s] = true
			if walk(s, 0) {
				return true
			}
		}
		return false
	}
	return walk(b, idx+1)
}
