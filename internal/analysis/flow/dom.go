package flow

// Dominance and post-dominance, computed with the Cooper–Harvey–Kennedy
// iterative algorithm over a reverse-postorder numbering — simple,
// and plenty fast at function-body scale.
//
// Dominance is rooted at Entry over forward edges: a dominates b when
// every path Entry→b passes through a. Post-dominance is the same
// computation on the reversed graph rooted at Exit: a post-dominates b
// when every path b→Exit passes through a. Blocks that cannot reach
// Exit (infinite loops) have no post-dominators; PostDominates reports
// false for them, and likewise Dominates for blocks unreachable from
// Entry. Both relations are reflexive.

// domTree is one dominator tree (forward or reverse).
type domTree struct {
	idom  map[*Block]*Block // immediate dominator; root maps to itself
	order map[*Block]int    // reverse-postorder number
}

// Dominates reports whether a dominates b (every path from Entry to b
// passes through a). Reflexive; false when either block is unreachable.
func (g *Graph) Dominates(a, b *Block) bool {
	if g.dom == nil {
		g.dom = buildDomTree(g.Entry, succs, preds)
	}
	return g.dom.covers(a, b)
}

// PostDominates reports whether a post-dominates b (every path from b
// to Exit passes through a). Reflexive; false when either block cannot
// reach Exit.
func (g *Graph) PostDominates(a, b *Block) bool {
	if g.postdom == nil {
		g.postdom = buildDomTree(g.Exit, preds, succs)
	}
	return g.postdom.covers(a, b)
}

// covers reports whether a is on b's dominator chain.
func (t *domTree) covers(a, b *Block) bool {
	if _, ok := t.order[a]; !ok {
		return false
	}
	if _, ok := t.order[b]; !ok {
		return false
	}
	for {
		if b == a {
			return true
		}
		next := t.idom[b]
		if next == b {
			return false // reached the root
		}
		b = next
	}
}

func succs(b *Block) []*Block { return b.Succs }
func preds(b *Block) []*Block { return b.Preds }

// buildDomTree computes the dominator tree rooted at root, following
// fwd edges (bwd gives the predecessors in that orientation). Passing
// (Exit, preds, succs) yields the post-dominator tree.
func buildDomTree(root *Block, fwd, bwd func(*Block) []*Block) *domTree {
	// Reverse postorder over the subgraph reachable from root.
	var po []*Block
	seen := make(map[*Block]bool)
	var dfs func(*Block)
	dfs = func(b *Block) {
		seen[b] = true
		for _, s := range fwd(b) {
			if !seen[s] {
				dfs(s)
			}
		}
		po = append(po, b)
	}
	dfs(root)

	order := make(map[*Block]int, len(po))
	rpo := make([]*Block, len(po))
	for i := range po {
		b := po[len(po)-1-i]
		rpo[i] = b
		order[b] = i
	}

	idom := make(map[*Block]*Block, len(po))
	idom[root] = root
	intersect := func(a, b *Block) *Block {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			var ni *Block
			for _, p := range bwd(b) {
				if idom[p] == nil {
					continue // not reachable in this orientation, or not yet processed
				}
				if ni == nil {
					ni = p
				} else {
					ni = intersect(ni, p)
				}
			}
			if ni != nil && idom[b] != ni {
				idom[b] = ni
				changed = true
			}
		}
	}
	return &domTree{idom: idom, order: order}
}
