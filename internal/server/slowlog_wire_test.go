package server_test

import (
	"fmt"
	"testing"

	"repro/internal/server"
	"repro/internal/server/client"
)

// TestSlowLogOpcode exercises the SLOWLOG wire surface end to end with
// a 1ns threshold, under which every request is a slow op: the client
// runs traffic, scrapes the log over the same connection, and the
// entries carry the executed opcodes with nonzero latencies in
// timestamp order.
func TestSlowLogOpcode(t *testing.T) {
	_, addr := startServer(t, server.Options{SlowOpThreshold: 1})
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i := 0; i < 10; i++ {
		k := []byte(fmt.Sprintf("k%d", i))
		if err := cl.Set(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if _, _, err := cl.Get(k); err != nil {
			t.Fatal(err)
		}
	}

	es, err := cl.SlowLog()
	if err != nil {
		t.Fatalf("slowlog: %v", err)
	}
	if len(es) == 0 {
		t.Fatal("no slow ops captured at a 1ns threshold")
	}
	ops := map[string]int{}
	for i, e := range es {
		ops[e.Op]++
		if e.LatencyNanos == 0 {
			t.Errorf("entry %d: zero latency", i)
		}
		if i > 0 && e.TS < es[i-1].TS {
			t.Errorf("entry %d: out of order (%d < %d)", i, e.TS, es[i-1].TS)
		}
	}
	if ops["set"] == 0 || ops["get"] == 0 {
		t.Errorf("expected set and get entries, got %v", ops)
	}

	// A disabled log (negative threshold) captures nothing.
	_, addr2 := startServer(t, server.Options{SlowOpThreshold: -1})
	cl2, err := client.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if err := cl2.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	es2, err := cl2.SlowLog()
	if err != nil {
		t.Fatalf("slowlog: %v", err)
	}
	if len(es2) != 0 {
		t.Errorf("disabled slowlog captured %d entries", len(es2))
	}
}
