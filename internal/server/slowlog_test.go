package server

import (
	"testing"
)

// TestSlowLogInsertAllocs pins the hot-path contract: insert never
// allocates (it runs on the request path whenever the threshold
// trips, and a tight threshold must not turn the recorder into an
// allocation source).
func TestSlowLogInsertAllocs(t *testing.T) {
	var l slowLog
	if n := testing.AllocsPerRun(1000, func() {
		l.insert(123456789, OpSet, 42, 0xfeed, 3, 2, 1_500_000)
	}); n != 0 {
		t.Fatalf("slowlog insert allocates %v per run, want 0", n)
	}
}

// TestSlowLogWraparound pins oldest-overwrite: inserting far more than
// slowLogSlots entries retains exactly the newest slowLogSlots, in
// timestamp order.
func TestSlowLogWraparound(t *testing.T) {
	var l slowLog
	const total = slowLogSlots*2 + 40
	for i := 0; i < total; i++ {
		l.insert(int64(i), OpGet, uint64(i), 0, 0, 0, 1)
	}
	es := l.snapshot()
	if len(es) != slowLogSlots {
		t.Fatalf("snapshot has %d entries, want %d", len(es), slowLogSlots)
	}
	for i, e := range es {
		want := uint64(total - slowLogSlots + i)
		if e.ID != want {
			t.Errorf("entry %d: ID = %d, want %d", i, e.ID, want)
		}
		if e.Op != "get" {
			t.Errorf("entry %d: Op = %q, want get", i, e.Op)
		}
	}
}

// TestSlowLogKeyOfRequest checks the best-effort key re-extraction per
// opcode shape: single-key ops yield their first field, batches their
// first key, keyless ops nil.
func TestSlowLogKeyOfRequest(t *testing.T) {
	key := []byte("the-key")
	single := AppendBytes(nil, key)
	batch := AppendBytes(AppendUint32(nil, 2), key)
	cases := []struct {
		name string
		kind byte
		body []byte
		want string
	}{
		{"get", OpGet, single, "the-key"},
		{"set", OpSet, AppendBytes(single, []byte("v")), "the-key"},
		{"incr", OpIncr, AppendUint64(single, 1), "the-key"},
		{"mget", OpMGet, batch, "the-key"},
		{"mset", OpMSet, AppendBytes(batch, []byte("v")), "the-key"},
		{"empty-mget", OpMGet, AppendUint32(nil, 0), ""},
		{"ping", OpPing, nil, ""},
		{"stats", OpStats, nil, ""},
		{"slowlog", OpSlowLog, nil, ""},
	}
	for _, c := range cases {
		if got := string(keyOfRequest(c.kind, c.body)); got != c.want {
			t.Errorf("%s: keyOfRequest = %q, want %q", c.name, got, c.want)
		}
	}
}
