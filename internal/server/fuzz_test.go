package server

// Native fuzz targets for the wire layer. Seeds mirror the fixture
// frames server_test.go drives over real connections: well-formed
// requests for every opcode plus the malformed shapes the rejection
// tests pin down (short frames, truncated bodies, trailing garbage).
// CI's fuzz-smoke job runs each target briefly; the committed corpus
// under testdata/fuzz replays as ordinary test cases on every `go
// test` run.

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzFrame builds a complete frame from byte-string body fields, like
// server_test.go's frame helper.
func fuzzFrame(id uint64, kind byte, body ...[]byte) []byte {
	f := BeginFrame(nil, id, kind)
	for _, b := range body {
		f = AppendBytes(f, b)
	}
	return EndFrame(f, 0)
}

// FuzzReadFrame feeds arbitrary byte streams to the frame reader: it
// must never panic, must reject announced lengths beyond the cap, and
// every frame it accepts must re-encode to exactly the bytes it read.
func FuzzReadFrame(f *testing.F) {
	f.Add(fuzzFrame(1, OpPing))
	f.Add(fuzzFrame(2, OpGet, []byte("k")))
	f.Add(fuzzFrame(3, OpSet, []byte("k"), []byte("v")))
	f.Add(fuzzFrame(4, OpCAS, []byte("k"), []byte("old"), []byte("new")))
	// Truncated mid-body, short length, oversized length.
	f.Add(fuzzFrame(5, OpGet, []byte("key"))[:10])
	f.Add([]byte{0, 0, 0, 3})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})

	const max = uint32(1 << 16)
	f.Fuzz(func(t *testing.T, data []byte) {
		id, kind, body, _, err := ReadFrame(bytes.NewReader(data), max, nil)
		if err != nil {
			return // rejected or truncated input: any error is fine, panics are not
		}
		if uint32(len(body)) > max {
			t.Fatalf("accepted a %d-byte body beyond the %d cap", len(body), max)
		}
		re := BeginFrame(nil, id, kind)
		re = append(re, body...)
		re = EndFrame(re, 0)
		if len(data) < len(re) || !bytes.Equal(re, data[:len(re)]) {
			t.Fatalf("accepted frame does not round-trip:\nread  %x\nwrote %x", data[:min(len(data), len(re))], re)
		}
	})
}

// FuzzDecodeRequest throws arbitrary request bodies at the dispatcher:
// exec must never panic, and whatever it answers must itself be a
// well-formed frame echoing the request id with a known status.
func FuzzDecodeRequest(f *testing.F) {
	st := NewStore()
	f.Cleanup(func() { st.Close() })
	srv := New(st, Options{})
	cs := st.C.NewSession()
	f.Cleanup(cs.Close)

	add := func(fr []byte) {
		id := binary.BigEndian.Uint64(fr[4:])
		f.Add(id, fr[12], append([]byte(nil), fr[13:]...))
	}
	add(fuzzFrame(1, OpPing))
	add(fuzzFrame(2, OpGet, []byte("k")))
	add(fuzzFrame(3, OpSet, []byte("k"), []byte("v")))
	add(fuzzFrame(4, OpDel, []byte("k")))
	add(fuzzFrame(5, OpCAS, []byte("k"), []byte("old"), []byte("new")))
	add(fuzzFrame(7, OpSize))
	f.Add(uint64(6), OpIncr, append(AppendBytes(nil, []byte("ctr")), AppendUint64(nil, 3)...))
	f.Add(uint64(8), OpSetEx, append(fuzzFrame(0, 0, []byte("k"), []byte("v"))[13:], AppendUint64(nil, 500)...))
	f.Add(uint64(9), OpMGet, append(AppendUint32(nil, 1), AppendBytes(nil, []byte("k"))...))
	// The rejection shapes: unknown opcode, truncated field, trailing junk.
	f.Add(uint64(10), byte(0x7F), []byte(nil))
	f.Add(uint64(11), OpGet, AppendUint32(nil, 100))
	f.Add(uint64(12), OpPing, []byte{0xAA})

	f.Fuzz(func(t *testing.T, id uint64, kind byte, reqBody []byte) {
		frame, _ := srv.exec(cs, nil, id, kind, reqBody)
		rid, status, _, _, err := ReadFrame(bytes.NewReader(frame), DefaultMaxFrame, nil)
		if err != nil {
			t.Fatalf("exec produced an unreadable frame (%v): %x", err, frame)
		}
		if rid != id {
			t.Fatalf("response id %d does not echo request id %d", rid, id)
		}
		switch status {
		case StatusOK, StatusNotFound, StatusMismatch, StatusErr:
		default:
			t.Fatalf("response carries unknown status %#x", status)
		}
	})
}

// FuzzBodyCursor drives the sticky body cursor directly with an
// arbitrary field script: it must never read out of bounds and must
// stay bad once bad.
func FuzzBodyCursor(f *testing.F) {
	f.Add([]byte{}, []byte{0, 1, 2})
	f.Add(AppendBytes(nil, []byte("k")), []byte{0})
	f.Add(AppendUint64(nil, 9), []byte{1, 2})
	f.Fuzz(func(t *testing.T, data, script []byte) {
		p := body{b: data}
		wasBad := false
		for _, op := range script {
			switch op % 3 {
			case 0:
				p.bytesField()
			case 1:
				p.uint64Field()
			case 2:
				p.uint32Field()
			}
			if wasBad && !p.bad {
				t.Fatal("body cursor recovered from a parse failure; bad must be sticky")
			}
			wasBad = p.bad
		}
	})
}
