package server_test

import (
	"fmt"
	"testing"

	"repro/internal/server"
	"repro/internal/server/client"
)

// TestStatsOpcode exercises the STATS wire surface end to end: the
// client scrapes the server's obs registry over the same connection it
// runs operations on, and the snapshot's per-opcode series — derived
// from the opcode enum, not a hand-kept list — reflect exactly the
// traffic this session generated (Options.Obs nil gives the server a
// private registry, so no other test's ops can leak in).
func TestStatsOpcode(t *testing.T) {
	_, addr := startServer(t, server.Options{})
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	before, err := cl.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}

	const sets, gets = 7, 13
	for i := 0; i < sets; i++ {
		k := []byte(fmt.Sprintf("k%d", i))
		if err := cl.Set(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < gets; i++ {
		if _, _, err := cl.Get([]byte("k0")); err != nil {
			t.Fatal(err)
		}
	}

	after, err := cl.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	win := after.Sub(before)

	// The STATS round trips themselves are counted too: the "after"
	// snapshot is taken while serving the second STATS request, whose
	// own counter increment happens before the snapshot is encoded.
	if got := win.Counter(`growd_op_total{op="set"}`); got != sets {
		t.Errorf(`op_total{op="set"} window = %d, want %d`, got, sets)
	}
	if got := win.Counter(`growd_op_total{op="get"}`); got != gets {
		t.Errorf(`op_total{op="get"} window = %d, want %d`, got, gets)
	}
	if got := win.Counter("growd_ops_total"); got < sets+gets {
		t.Errorf("ops_total window = %d, want >= %d", got, sets+gets)
	}

	// The exec-latency histograms must have one observation per op and
	// a sane shape (Max bounds every quantile).
	h := win.Hist(`growd_op_nanos{op="get"}`)
	if h.Count != gets {
		t.Errorf(`op_nanos{op="get"} count = %d, want %d`, h.Count, gets)
	}
	if q := h.Quantile(0.99); q > 0 && h.Max > 0 && q > 2*h.Max {
		t.Errorf("p99 %d implausible against max %d", q, h.Max)
	}

	// A fresh snapshot is cumulative: never below the window.
	if after.Counter(`growd_op_total{op="set"}`) < sets {
		t.Errorf("cumulative snapshot lost sets")
	}
}
