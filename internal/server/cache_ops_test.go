package server_test

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	growt "repro"
	"repro/internal/server"
	"repro/internal/server/client"
)

// startCacheServer is startServer with cache-layer options threaded
// through the store (the growd -default-ttl/-max-entries path).
func startCacheServer(t *testing.T, opt server.Options, opts ...growt.Option) (*server.Server, string) {
	t.Helper()
	st := server.NewStore(opts...)
	srv := server.New(st, opt)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-serveDone; err != nil {
			t.Errorf("Serve returned %v", err)
		}
		st.Close()
	})
	return srv, ln.Addr().String()
}

// TestSetExAndTTL drives the per-entry TTL lifecycle over the wire:
// SETEX → TTL countdown → expiry reads as NOT_FOUND everywhere.
func TestSetExAndTTL(t *testing.T) {
	srv, addr := startCacheServer(t, server.Options{})
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.SetEx([]byte("k"), []byte("v"), 300*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := cl.Get([]byte("k")); err != nil || !ok || string(v) != "v" {
		t.Fatalf("pre-expiry get = %q, %v, %v", v, ok, err)
	}
	if ttl, ok, err := cl.TTL([]byte("k")); err != nil || !ok || ttl <= 0 || ttl > 300*time.Millisecond {
		t.Fatalf("ttl = %v, %v, %v", ttl, ok, err)
	}
	// An immortal entry answers the sentinel (< 0 through the client).
	cl.Set([]byte("forever"), []byte("v"))
	if ttl, ok, err := cl.TTL([]byte("forever")); err != nil || !ok || ttl >= 0 {
		t.Fatalf("immortal ttl = %v, %v, %v", ttl, ok, err)
	}
	// TTL of an absent key: NOT_FOUND, not an error.
	if _, ok, err := cl.TTL([]byte("nope")); err != nil || ok {
		t.Fatalf("absent ttl ok=%v err=%v", ok, err)
	}

	// Past the deadline every read path reports absence.
	time.Sleep(400 * time.Millisecond)
	if v, ok, _ := cl.Get([]byte("k")); ok {
		t.Fatalf("expired key observable over the wire: %q", v)
	}
	if _, ok, _ := cl.TTL([]byte("k")); ok {
		t.Fatal("expired key has a TTL")
	}
	if ok, _ := cl.Del([]byte("k")); ok {
		t.Fatal("expired key deletable as live")
	}
	st := srv.Stats()
	if st.PerOp["setex"] != 1 || st.PerOp["ttl"] != 4 || st.Expired == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestExpireOverWire: EXPIRE re-deadlines live keys, refuses absent and
// expired ones.
func TestExpireOverWire(t *testing.T) {
	_, addr := startCacheServer(t, server.Options{})
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	cl.Set([]byte("k"), []byte("v"))
	if ok, err := cl.Expire([]byte("k"), 250*time.Millisecond); err != nil || !ok {
		t.Fatalf("expire live = %v, %v", ok, err)
	}
	if ttl, ok, _ := cl.TTL([]byte("k")); !ok || ttl <= 0 {
		t.Fatalf("ttl after expire = %v, %v", ttl, ok)
	}
	if ok, err := cl.Expire([]byte("absent"), time.Second); err != nil || ok {
		t.Fatalf("expire absent = %v, %v", ok, err)
	}
	time.Sleep(350 * time.Millisecond)
	if ok, _ := cl.Expire([]byte("k"), time.Hour); ok {
		t.Fatal("EXPIRE revived an expired key")
	}
	if _, ok, _ := cl.Get([]byte("k")); ok {
		t.Fatal("expired key observable after refused revival")
	}
}

// TestDefaultTTLOverWire: a growd-style default TTL applies to SET and
// MSET; SETEX still overrides per entry.
func TestDefaultTTLOverWire(t *testing.T) {
	_, addr := startCacheServer(t, server.Options{}, growt.WithTTL(250*time.Millisecond))
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	cl.Set([]byte("short"), []byte("v"))
	if err := cl.SetEx([]byte("long"), []byte("v"), time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := cl.MSet([2][]byte{[]byte("m1"), []byte("v")}, [2][]byte{[]byte("m2"), []byte("v")}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond)
	for _, k := range []string{"short", "m1", "m2"} {
		if _, ok, _ := cl.Get([]byte(k)); ok {
			t.Fatalf("default TTL not applied to %q", k)
		}
	}
	if v, ok, _ := cl.Get([]byte("long")); !ok || string(v) != "v" {
		t.Fatalf("SETEX override lost: %q, %v", v, ok)
	}
}

// TestMGetPartialMiss: a batch spanning present, absent, expired, and
// empty-valued keys answers per-key verdicts in one OK frame.
func TestMGetPartialMiss(t *testing.T) {
	srv, addr := startCacheServer(t, server.Options{})
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	cl.Set([]byte("a"), []byte("va"))
	cl.Set([]byte("empty"), []byte{})
	cl.SetEx([]byte("dying"), []byte("vd"), 100*time.Millisecond)
	time.Sleep(200 * time.Millisecond)

	vals, err := cl.MGet([]byte("a"), []byte("missing"), []byte("dying"), []byte("empty"))
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 4 {
		t.Fatalf("MGET returned %d entries", len(vals))
	}
	if string(vals[0]) != "va" {
		t.Fatalf("vals[0] = %q", vals[0])
	}
	if vals[1] != nil {
		t.Fatalf("absent key answered %q", vals[1])
	}
	if vals[2] != nil {
		t.Fatalf("expired key answered %q", vals[2])
	}
	if vals[3] == nil || len(vals[3]) != 0 {
		t.Fatalf("present-empty value = %v", vals[3])
	}
	// Zero-key batch is legal and answers an empty OK.
	if vals, err := cl.MGet(); err != nil || len(vals) != 0 {
		t.Fatalf("empty MGET = %v, %v", vals, err)
	}
	if st := srv.Stats(); st.PerOp["mget"] != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestMSetRoundTrip: a batch store lands atomically-per-key and reads
// back through both GET and MGET.
func TestMSetRoundTrip(t *testing.T) {
	srv, addr := startCacheServer(t, server.Options{})
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var pairs [][2][]byte
	var keys [][]byte
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("k%03d", i))
		pairs = append(pairs, [2][]byte{k, []byte(fmt.Sprintf("v%03d", i))})
		keys = append(keys, k)
	}
	if err := cl.MSet(pairs...); err != nil {
		t.Fatal(err)
	}
	vals, err := cl.MGet(keys...)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if want := fmt.Sprintf("v%03d", i); string(v) != want {
			t.Fatalf("vals[%d] = %q, want %q", i, v, want)
		}
	}
	if st := srv.Stats(); st.PerOp["mset"] != 1 || st.Hits != 100 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestMalformedBatchFrames: truncated batch bodies are terminal protocol
// errors, and a malformed MSET applies none of its pairs.
func TestMalformedBatchFrames(t *testing.T) {
	srv, addr := startCacheServer(t, server.Options{})

	t.Run("mget-count-overruns-body", func(t *testing.T) {
		rc := dialRaw(t, addr)
		f := server.BeginFrame(nil, 3, server.OpMGet)
		f = server.AppendUint32(f, 5) // claims 5 keys, carries 1
		f = server.AppendBytes(f, []byte("k"))
		rc.send(server.EndFrame(f, 0))
		id, status, _, err := rc.read()
		if err != nil || status != server.StatusErr || id != 3 {
			t.Fatalf("want StatusErr id 3, got id=%d status=%#x err=%v", id, status, err)
		}
		if _, _, _, err := rc.read(); err == nil {
			t.Fatal("connection stayed open after malformed batch")
		}
	})

	t.Run("mset-truncated-pair-applies-nothing", func(t *testing.T) {
		rc := dialRaw(t, addr)
		f := server.BeginFrame(nil, 4, server.OpMSet)
		f = server.AppendUint32(f, 2) // two pairs claimed
		f = server.AppendBytes(f, []byte("applied?"))
		f = server.AppendBytes(f, []byte("v"))
		f = server.AppendBytes(f, []byte("half")) // second pair missing its value
		rc.send(server.EndFrame(f, 0))
		if _, status, _, err := rc.read(); err != nil || status != server.StatusErr {
			t.Fatalf("want StatusErr, got status=%#x err=%v", status, err)
		}
	})

	// The intact first pair of the malformed MSET must not have landed.
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, ok, _ := cl.Get([]byte("applied?")); ok {
		t.Fatal("malformed MSET applied its parsed prefix")
	}
	if srv.Stats().ProtocolErrs < 2 {
		t.Fatalf("protocol errors not counted: %+v", srv.Stats())
	}
}

// TestMGetReplyCap: a batch whose found values would overflow the frame
// cap answers a per-request error — the session survives, and no peer
// enforcing the same cap ever sees an oversized frame.
func TestMGetReplyCap(t *testing.T) {
	_, addr := startCacheServer(t, server.Options{MaxFrame: 4096})
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var keys [][]byte
	big := bytes.Repeat([]byte("x"), 1000)
	for i := 0; i < 10; i++ {
		k := []byte(fmt.Sprintf("big%d", i))
		if err := cl.Set(k, big); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	if _, err := cl.MGet(keys...); err == nil {
		t.Fatal("10 KB MGET reply fit a 4 KiB frame cap")
	}
	// Non-fatal: the session keeps serving, and a smaller batch works.
	if err := cl.Ping(); err != nil {
		t.Fatalf("session died after refused MGET: %v", err)
	}
	if vals, err := cl.MGet(keys[:2]...); err != nil || len(vals) != 2 {
		t.Fatalf("small batch after refusal = %v, %v", len(vals), err)
	}
}

// TestSubMillisecondTTLRoundsUp: a positive TTL below the wire's
// millisecond resolution must round up to 1ms, not truncate to
// "immortal".
func TestSubMillisecondTTLRoundsUp(t *testing.T) {
	_, addr := startCacheServer(t, server.Options{})
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.SetEx([]byte("blink"), []byte("v"), 100*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	// The entry must carry a real deadline (not the immortal sentinel)...
	if ttl, ok, err := cl.TTL([]byte("blink")); err != nil {
		t.Fatal(err)
	} else if ok && ttl < 0 {
		t.Fatal("sub-ms TTL stored as immortal")
	}
	// ...and actually die.
	time.Sleep(50 * time.Millisecond)
	if _, ok, _ := cl.Get([]byte("blink")); ok {
		t.Fatal("sub-ms TTL entry still alive after 50ms")
	}
}

// TestEvictionOverWire: a growd-style entry budget holds under a wire
// workload and surfaces through the evicted counter.
func TestEvictionOverWire(t *testing.T) {
	const budget = 64
	srv, addr := startCacheServer(t, server.Options{}, growt.WithMaxEntries(budget))
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i := 0; i < 8*budget; i++ {
		if err := cl.Set([]byte(fmt.Sprintf("k%04d", i)), bytes.Repeat([]byte("x"), 16)); err != nil {
			t.Fatal(err)
		}
	}
	n, err := cl.Size()
	if err != nil {
		t.Fatal(err)
	}
	// The server's named-string keys ride the exact-counting generic
	// route; allow only the per-write eviction bound as slack.
	if n > budget+8 {
		t.Fatalf("size %d blew the budget %d", n, budget)
	}
	if st := srv.Stats(); st.Evicted == 0 {
		t.Fatalf("no evictions recorded: %+v", st)
	}
}
