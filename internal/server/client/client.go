// Package client is the pipelined Go client for the growd protocol
// (internal/server, docs/PROTOCOL.md). A Client owns a pool of
// connections; every connection keeps a pending-request table keyed by
// request id, a writer goroutine that coalesces queued request frames
// into batched flushes, and a reader goroutine that dispatches
// responses to their callbacks. Any number of goroutines may share one
// Client: concurrent calls pipeline naturally onto the pooled
// connections instead of waiting for each other's round trips.
package client

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// ErrClosed is reported by calls on a closed client or after a
// connection failure (wrapped with the underlying cause when known).
var ErrClosed = errors.New("client: connection closed")

// Resp is a decoded response. Val aliases the connection's read buffer
// inside callbacks — async callbacks must copy it to retain it; the
// synchronous wrappers already return copies.
type Resp struct {
	Status byte
	Val    []byte // GET value; StatusErr message
	N      uint64 // INCR / SIZE result
	Err    error  // transport failure; Status is unset when non-nil
}

type config struct {
	conns    int
	maxFrame uint32
	dialWait time.Duration
	outQueue int
}

// Option configures Dial.
type Option func(*config)

// WithConns sets the connection pool size (default 1). Calls are
// spread round-robin; independent pipelines multiply throughput until
// the server side saturates.
func WithConns(n int) Option { return func(c *config) { c.conns = n } }

// WithMaxFrame caps acceptable response frames (default
// server.DefaultMaxFrame).
func WithMaxFrame(n uint32) Option { return func(c *config) { c.maxFrame = n } }

// WithDialWait keeps retrying the initial dials until the deadline
// (default: one attempt). Lets a load generator start before the server
// finishes binding.
func WithDialWait(d time.Duration) Option { return func(c *config) { c.dialWait = d } }

// Client is a pooled, pipelined protocol client. Safe for concurrent use.
type Client struct {
	conns []*conn
	next  atomic.Uint64
}

// Dial connects the pool.
func Dial(addr string, opts ...Option) (*Client, error) {
	cfg := config{conns: 1, maxFrame: server.DefaultMaxFrame, outQueue: 256}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.conns < 1 {
		cfg.conns = 1
	}
	cl := &Client{}
	deadline := time.Now().Add(cfg.dialWait)
	for i := 0; i < cfg.conns; i++ {
		nc, err := dialUntil(addr, deadline)
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.conns = append(cl.conns, newConn(nc, &cfg))
	}
	return cl, nil
}

// dialUntil retries the dial until deadline (at least one attempt).
func dialUntil(addr string, deadline time.Time) (net.Conn, error) {
	for {
		nc, err := net.Dial("tcp", addr)
		if err == nil {
			return nc, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Close tears down every connection; in-flight requests fail with
// ErrClosed.
func (cl *Client) Close() error {
	for _, c := range cl.conns {
		c.close(ErrClosed)
	}
	return nil
}

// conn returns the next pool member round-robin.
func (cl *Client) conn() *conn {
	return cl.conns[cl.next.Add(1)%uint64(len(cl.conns))]
}

// ---------------------------------------------------------------------
// Synchronous API. Each call pipelines onto a pooled connection and
// blocks only for its own response.

// Ping round-trips a liveness probe.
func (cl *Client) Ping() error {
	r := cl.conn().roundTrip(server.OpPing, nil)
	if r.Err != nil {
		return r.Err
	}
	return expectOK("PING", r)
}

// Get fetches the value at key; ok is false when absent (or expired).
func (cl *Client) Get(key []byte) (val []byte, ok bool, err error) {
	r := cl.conn().roundTrip(server.OpGet, bodyOf([][]byte{key}, 0, false))
	switch {
	case r.Err != nil:
		return nil, false, r.Err
	case r.Status == server.StatusNotFound:
		return nil, false, nil
	case r.Status == server.StatusOK:
		return r.Val, true, nil // roundTrip already copied it
	}
	return nil, false, statusErr("GET", r)
}

// Set unconditionally stores ⟨key, val⟩ under the server's default TTL.
func (cl *Client) Set(key, val []byte) error {
	r := cl.conn().roundTrip(server.OpSet, bodyOf([][]byte{key, val}, 0, false))
	if r.Err != nil {
		return r.Err
	}
	return expectOK("SET", r)
}

// SetEx stores ⟨key, val⟩ with an explicit per-entry TTL (millisecond
// wire resolution, sub-ms values round up; ttl <= 0 stores an immortal
// entry).
func (cl *Client) SetEx(key, val []byte, ttl time.Duration) error {
	r := cl.conn().roundTrip(server.OpSetEx, bodyOf([][]byte{key, val}, ttlToMillis(ttl), true))
	if r.Err != nil {
		return r.Err
	}
	return expectOK("SETEX", r)
}

// Expire re-deadlines the live entry at key to now+ttl; ok is false
// when the key is absent or already expired.
func (cl *Client) Expire(key []byte, ttl time.Duration) (ok bool, err error) {
	r := cl.conn().roundTrip(server.OpExpire, bodyOf([][]byte{key}, ttlToMillis(ttl), true))
	switch {
	case r.Err != nil:
		return false, r.Err
	case r.Status == server.StatusOK:
		return true, nil
	case r.Status == server.StatusNotFound:
		return false, nil
	}
	return false, statusErr("EXPIRE", r)
}

// TTL returns the remaining time-to-live of the live entry at key.
// ok is false when the key is absent or expired; a live entry with no
// deadline reports ttl < 0.
func (cl *Client) TTL(key []byte) (ttl time.Duration, ok bool, err error) {
	r := cl.conn().roundTrip(server.OpTTL, bodyOf([][]byte{key}, 0, false))
	switch {
	case r.Err != nil:
		return 0, false, r.Err
	case r.Status == server.StatusNotFound:
		return 0, false, nil
	case r.Status == server.StatusOK:
		if r.N == server.TTLImmortal {
			return -1, true, nil
		}
		return time.Duration(r.N) * time.Millisecond, true, nil
	}
	return 0, false, statusErr("TTL", r)
}

// Del removes key; ok reports whether a live entry was present.
func (cl *Client) Del(key []byte) (ok bool, err error) {
	r := cl.conn().roundTrip(server.OpDel, bodyOf([][]byte{key}, 0, false))
	switch {
	case r.Err != nil:
		return false, r.Err
	case r.Status == server.StatusOK:
		return true, nil
	case r.Status == server.StatusNotFound:
		return false, nil
	}
	return false, statusErr("DEL", r)
}

// CAS atomically replaces key's value with new iff it currently equals
// old. swapped reports success; found distinguishes a mismatch
// (found=true) from an absent key (found=false).
func (cl *Client) CAS(key, old, new []byte) (swapped, found bool, err error) {
	r := cl.conn().roundTrip(server.OpCAS, bodyOf([][]byte{key, old, new}, 0, false))
	switch {
	case r.Err != nil:
		return false, false, r.Err
	case r.Status == server.StatusOK:
		return true, true, nil
	case r.Status == server.StatusMismatch:
		return false, true, nil
	case r.Status == server.StatusNotFound:
		return false, false, nil
	}
	return false, false, statusErr("CAS", r)
}

// Incr adds delta to the 8-byte big-endian counter at key (absent keys
// start at 0) and returns the new value.
func (cl *Client) Incr(key []byte, delta uint64) (uint64, error) {
	r := cl.conn().roundTrip(server.OpIncr, bodyOf([][]byte{key}, delta, true))
	switch {
	case r.Err != nil:
		return 0, r.Err
	case r.Status == server.StatusOK:
		return r.N, nil
	}
	return 0, statusErr("INCR", r)
}

// Size returns the server's approximate element count.
func (cl *Client) Size() (uint64, error) {
	r := cl.conn().roundTrip(server.OpSize, nil)
	switch {
	case r.Err != nil:
		return 0, r.Err
	case r.Status == server.StatusOK:
		return r.N, nil
	}
	return 0, statusErr("SIZE", r)
}

// MGet fetches a batch of keys in one frame. vals is parallel to keys:
// vals[i] is nil when keys[i] was absent (or expired) — a partial miss
// is an ordinary reply, not an error. A present-but-empty value comes
// back as a non-nil empty slice.
func (cl *Client) MGet(keys ...[]byte) (vals [][]byte, err error) {
	b := server.AppendUint32(nil, uint32(len(keys)))
	for _, k := range keys {
		b = server.AppendBytes(b, k)
	}
	r := cl.conn().roundTrip(server.OpMGet, b)
	switch {
	case r.Err != nil:
		return nil, r.Err
	case r.Status != server.StatusOK:
		return nil, statusErr("MGET", r)
	}
	return parseMGet(r.Val, len(keys))
}

// parseMGet decodes an MGET reply body: per requested key, found:u8 then
// (when found) the value as a length-prefixed byte string.
func parseMGet(b []byte, n int) ([][]byte, error) {
	vals := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 1 {
			return nil, fmt.Errorf("client: MGET: reply truncated at entry %d", i)
		}
		found := b[0] != 0
		b = b[1:]
		if !found {
			vals = append(vals, nil)
			continue
		}
		if len(b) < 4 {
			return nil, fmt.Errorf("client: MGET: reply truncated at entry %d", i)
		}
		vlen := binary.BigEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < vlen {
			return nil, fmt.Errorf("client: MGET: reply truncated at entry %d", i)
		}
		vals = append(vals, append([]byte{}, b[:vlen]...))
		b = b[vlen:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("client: MGET: %d trailing reply bytes", len(b))
	}
	return vals, nil
}

// Stats scrapes the server's metric registry over the wire (STATS):
// every counter, gauge, and latency histogram the server side has
// registered, as one mergeable/subtractable snapshot. Scraping through
// the data protocol means a load generator measures the same path it
// loads — no side-channel HTTP listener required.
func (cl *Client) Stats() (obs.Snapshot, error) {
	r := cl.conn().roundTrip(server.OpStats, nil)
	switch {
	case r.Err != nil:
		return obs.Snapshot{}, r.Err
	case r.Status != server.StatusOK:
		return obs.Snapshot{}, statusErr("STATS", r)
	}
	var s obs.Snapshot
	if err := json.Unmarshal(r.Val, &s); err != nil {
		return obs.Snapshot{}, fmt.Errorf("client: STATS: bad snapshot body: %w", err)
	}
	return s, nil
}

// SlowLog fetches the server's slow-op log (the SLOWLOG opcode):
// every recent request over the server's latency threshold, in
// ascending timestamp order. Like Stats it is an observability scrape
// over the data connection — a load generator can pull the slow ops of
// exactly its measured window without a side channel.
func (cl *Client) SlowLog() ([]server.SlowEntry, error) {
	r := cl.conn().roundTrip(server.OpSlowLog, nil)
	switch {
	case r.Err != nil:
		return nil, r.Err
	case r.Status != server.StatusOK:
		return nil, statusErr("SLOWLOG", r)
	}
	var es []server.SlowEntry
	if err := json.Unmarshal(r.Val, &es); err != nil {
		return nil, fmt.Errorf("client: SLOWLOG: bad body: %w", err)
	}
	return es, nil
}

// MSet stores a batch of ⟨key, val⟩ pairs in one frame under the
// server's default TTL. A malformed batch applies nothing server-side.
func (cl *Client) MSet(pairs ...[2][]byte) error {
	b := server.AppendUint32(nil, uint32(len(pairs)))
	for _, kv := range pairs {
		b = server.AppendBytes(b, kv[0])
		b = server.AppendBytes(b, kv[1])
	}
	r := cl.conn().roundTrip(server.OpMSet, b)
	if r.Err != nil {
		return r.Err
	}
	return expectOK("MSET", r)
}

// ttlToMillis converts a duration into the wire's millisecond TTL
// domain (0 = immortal), saturating negatives to 0. Positive sub-
// millisecond TTLs round UP to 1 ms: truncation would flip "expire
// almost immediately" into "never expire".
func ttlToMillis(ttl time.Duration) uint64 {
	if ttl <= 0 {
		return 0
	}
	return uint64((ttl + time.Millisecond - 1) / time.Millisecond)
}

// ---------------------------------------------------------------------
// Asynchronous API: the open-loop load generator schedules request
// admission independently of completions, so it needs fire-and-callback
// sends. cb runs on the connection's reader goroutine and must not
// block; Resp.Val aliases the read buffer and must be copied to retain.

// GetAsync pipelines a GET.
func (cl *Client) GetAsync(key []byte, cb func(Resp)) {
	cl.conn().send(server.OpGet, bodyOf([][]byte{key}, 0, false), cb)
}

// SetAsync pipelines a SET.
func (cl *Client) SetAsync(key, val []byte, cb func(Resp)) {
	cl.conn().send(server.OpSet, bodyOf([][]byte{key, val}, 0, false), cb)
}

// SetExAsync pipelines a SETEX (the open-loop expiring workload's write).
func (cl *Client) SetExAsync(key, val []byte, ttl time.Duration, cb func(Resp)) {
	cl.conn().send(server.OpSetEx, bodyOf([][]byte{key, val}, ttlToMillis(ttl), true), cb)
}

// IncrAsync pipelines an INCR.
func (cl *Client) IncrAsync(key []byte, delta uint64, cb func(Resp)) {
	cl.conn().send(server.OpIncr, bodyOf([][]byte{key}, delta, true), cb)
}

func expectOK(op string, r Resp) error {
	if r.Status == server.StatusOK {
		return nil
	}
	return statusErr(op, r)
}

func statusErr(op string, r Resp) error {
	if r.Status == server.StatusErr {
		return fmt.Errorf("client: %s: server error: %s", op, r.Val)
	}
	return fmt.Errorf("client: %s: unexpected status %#x", op, r.Status)
}

// ---------------------------------------------------------------------
// Connection machinery.

type conn struct {
	c        net.Conn
	out      chan []byte   // encoded request frames for the writer
	done     chan struct{} // closed when the connection is torn down
	maxFrame uint32

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]func(Resp)
	sticky  error // first failure; set before done closes

	closeOnce sync.Once
}

func newConn(nc net.Conn, cfg *config) *conn {
	c := &conn{
		c:        nc,
		out:      make(chan []byte, cfg.outQueue),
		done:     make(chan struct{}),
		maxFrame: cfg.maxFrame,
		pending:  make(map[uint64]func(Resp)),
	}
	go c.writeLoop()
	go c.readLoop()
	return c
}

// close fails all pending requests with cause and tears the conn down.
func (c *conn) close(cause error) {
	c.closeOnce.Do(func() {
		c.mu.Lock()
		c.sticky = cause
		pend := c.pending
		c.pending = nil
		c.mu.Unlock()
		close(c.done)
		c.c.Close()
		for _, cb := range pend {
			cb(Resp{Err: cause})
		}
	})
}

// send pipelines one request whose body was pre-encoded with the wire
// helpers (AppendBytes/AppendUint64/AppendUint32); cb always fires
// exactly once. Nil byte-string fields encode as zero-length fields,
// never as missing ones, so callers passing nil keys or values produce
// well-formed frames.
//
//growt:wire encode opcode
func (c *conn) send(kind byte, reqBody []byte, cb func(Resp)) {
	c.mu.Lock()
	if c.pending == nil {
		err := c.sticky
		c.mu.Unlock()
		cb(Resp{Err: fmt.Errorf("%w: %w", ErrClosed, err)})
		return
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = cb
	c.mu.Unlock()

	frame := server.BeginFrame(nil, id, kind)
	frame = append(frame, reqBody...)
	frame = server.EndFrame(frame, 0)

	select {
	case c.out <- frame:
	case <-c.done:
		c.fail(id) // the reader's teardown may already have fired it
	}
}

// bodyOf encodes the common request-body shape: any number of
// length-prefixed byte-string fields, optionally followed by one u64.
func bodyOf(fields [][]byte, n uint64, hasN bool) []byte {
	var b []byte
	for _, f := range fields {
		b = server.AppendBytes(b, f)
	}
	if hasN {
		b = server.AppendUint64(b, n)
	}
	return b
}

// fail fires the pending callback for id with the sticky error, if the
// teardown has not already consumed it.
func (c *conn) fail(id uint64) {
	c.mu.Lock()
	var cb func(Resp)
	if c.pending != nil {
		cb = c.pending[id]
		delete(c.pending, id)
	}
	err := c.sticky
	c.mu.Unlock()
	if cb != nil {
		if err == nil {
			err = ErrClosed
		}
		cb(Resp{Err: err})
	}
}

// roundTrip is send + wait. Val is copied inside the callback — the
// reader's buffer is only stable for the callback's duration.
//
//growt:wire encode opcode
func (c *conn) roundTrip(kind byte, reqBody []byte) Resp {
	ch := make(chan Resp, 1)
	c.send(kind, reqBody, func(r Resp) {
		if len(r.Val) > 0 {
			r.Val = append([]byte(nil), r.Val...)
		}
		ch <- r
	})
	return <-ch
}

// failWrite tears the connection down after a write error. Kept out of
// writeLoop so the hot loop stays free of fmt.
func (c *conn) failWrite(err error) {
	c.close(fmt.Errorf("%w: write: %w", ErrClosed, err))
}

// writeLoop batches queued frames into one buffered write + flush per
// burst — the client half of the pipeline's syscall amortization.
//
//growt:hotpath
func (c *conn) writeLoop() {
	buf := make([]byte, 0, 64<<10)
	for {
		var frame []byte
		select {
		case frame = <-c.out:
		case <-c.done:
			return
		}
		buf = append(buf[:0], frame...)
		for coalescing := true; coalescing; {
			select {
			case next := <-c.out:
				buf = append(buf, next...)
				if len(buf) >= 256<<10 {
					coalescing = false
				}
			case <-c.done:
				return
			default:
				coalescing = false
			}
		}
		if _, err := c.c.Write(buf); err != nil {
			c.failWrite(err)
			return
		}
	}
}

// readLoop decodes responses and dispatches callbacks by request id.
func (c *conn) readLoop() {
	var buf []byte
	for {
		id, status, respBody, nbuf, err := server.ReadFrame(c.c, c.maxFrame, buf)
		buf = nbuf
		if err != nil {
			c.close(fmt.Errorf("%w: read: %w", ErrClosed, err))
			return
		}
		c.mu.Lock()
		var cb func(Resp)
		if c.pending != nil {
			cb = c.pending[id]
			delete(c.pending, id)
		}
		c.mu.Unlock()
		if cb == nil {
			// id 0 is the server's terminal protocol-error response (it
			// could not attribute the failure to a request).
			if id == 0 && status == server.StatusErr {
				c.close(fmt.Errorf("%w: server: %s", ErrClosed, respBody))
			} else {
				c.close(fmt.Errorf("%w: response for unknown request id %d", ErrClosed, id))
			}
			return
		}
		cb(decode(status, respBody))
	}
}

// decode splits a response body per status: OK bodies carry the value
// bytes or a u64 result, error bodies carry the message.
//
//growt:wire decode wirestatus
func decode(status byte, respBody []byte) Resp {
	r := Resp{Status: status}
	switch status {
	case server.StatusOK:
		if len(respBody) == 8 {
			r.N = binary.BigEndian.Uint64(respBody)
		}
		r.Val = respBody
	case server.StatusErr:
		r.Val = respBody
	case server.StatusNotFound, server.StatusMismatch:
		// No body: the status alone is the answer. Listed explicitly so
		// statusswitch proves the client handles every wire status.
	}
	return r
}
