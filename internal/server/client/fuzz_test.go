package client

// Fuzz target for the response-decode path: the per-status split in
// decode must hold for arbitrary status bytes and bodies. Paired with
// internal/server's FuzzDecodeRequest, the two ends of the wire get
// fuzzed against the same grammar.

import (
	"encoding/binary"
	"testing"

	"repro/internal/server"
)

func FuzzDecodeResp(f *testing.F) {
	f.Add(server.StatusOK, []byte(nil))
	f.Add(server.StatusOK, []byte("value"))
	f.Add(server.StatusOK, binary.BigEndian.AppendUint64(nil, 42))
	f.Add(server.StatusNotFound, []byte(nil))
	f.Add(server.StatusMismatch, []byte(nil))
	f.Add(server.StatusErr, []byte("malformed request"))
	f.Add(byte(0x7F), []byte("junk"))

	f.Fuzz(func(t *testing.T, status byte, respBody []byte) {
		r := decode(status, respBody)
		if r.Status != status {
			t.Fatalf("decode rewrote status %#x to %#x", status, r.Status)
		}
		if r.Err != nil {
			t.Fatalf("pure decode fabricated a transport error: %v", r.Err)
		}
		if status == server.StatusOK && len(respBody) == 8 {
			if want := binary.BigEndian.Uint64(respBody); r.N != want {
				t.Fatalf("8-byte OK body decoded N=%d, want %d", r.N, want)
			}
		}
	})
}
