package server_test

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/server/client"
)

// startServer runs a server on a loopback listener and returns its
// address. Cleanup shuts it down and verifies every session unwound.
func startServer(t *testing.T, opt server.Options) (*server.Server, string) {
	t.Helper()
	st := server.NewStore()
	srv := server.New(st, opt)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-serveDone; err != nil {
			t.Errorf("Serve returned %v", err)
		}
		st.Close()
	})
	return srv, ln.Addr().String()
}

// waitFor polls cond until true or the deadline fails the test.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServerOps(t *testing.T) {
	_, addr := startServer(t, server.Options{})
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}

	// GET absent / SET / GET present / overwrite.
	if _, ok, err := cl.Get([]byte("k")); err != nil || ok {
		t.Fatalf("get absent = %v, %v", ok, err)
	}
	if err := cl.Set([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := cl.Get([]byte("k")); err != nil || !ok || string(v) != "v1" {
		t.Fatalf("get = %q, %v, %v", v, ok, err)
	}
	if err := cl.Set([]byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := cl.Get([]byte("k")); string(v) != "v2" {
		t.Fatalf("overwrite left %q", v)
	}

	// Empty value and empty key are legal byte strings — including nil
	// slices, which must encode as zero-length fields, not missing ones.
	if err := cl.Set([]byte{}, []byte{}); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := cl.Get([]byte{}); err != nil || !ok || len(v) != 0 {
		t.Fatalf("empty key/value = %q, %v, %v", v, ok, err)
	}
	if err := cl.Set([]byte("niltest"), nil); err != nil {
		t.Fatalf("nil value: %v", err)
	}
	if v, ok, err := cl.Get([]byte("niltest")); err != nil || !ok || len(v) != 0 {
		t.Fatalf("nil-value roundtrip = %q, %v, %v", v, ok, err)
	}
	if swapped, _, err := cl.CAS([]byte("niltest"), nil, []byte("now-set")); err != nil || !swapped {
		t.Fatalf("cas from nil old = %v, %v", swapped, err)
	}
	// The connection must still be healthy (a missing-field frame would
	// have been terminal).
	if err := cl.Ping(); err != nil {
		t.Fatalf("connection unhealthy after nil-slice ops: %v", err)
	}

	// CAS: mismatch, match, absent.
	if swapped, found, err := cl.CAS([]byte("k"), []byte("wrong"), []byte("v3")); err != nil || swapped || !found {
		t.Fatalf("cas mismatch = %v, %v, %v", swapped, found, err)
	}
	if swapped, _, err := cl.CAS([]byte("k"), []byte("v2"), []byte("v3")); err != nil || !swapped {
		t.Fatalf("cas match = %v, %v", swapped, err)
	}
	if v, _, _ := cl.Get([]byte("k")); string(v) != "v3" {
		t.Fatalf("cas left %q", v)
	}
	if swapped, found, err := cl.CAS([]byte("nope"), []byte("a"), []byte("b")); err != nil || swapped || found {
		t.Fatalf("cas absent = %v, %v, %v", swapped, found, err)
	}

	// DEL present / absent.
	if ok, err := cl.Del([]byte("k")); err != nil || !ok {
		t.Fatalf("del = %v, %v", ok, err)
	}
	if ok, _ := cl.Del([]byte("k")); ok {
		t.Fatal("double del succeeded")
	}

	// INCR: init, add, and the non-counter error.
	if v, err := cl.Incr([]byte("ctr"), 5); err != nil || v != 5 {
		t.Fatalf("incr init = %d, %v", v, err)
	}
	if v, err := cl.Incr([]byte("ctr"), 7); err != nil || v != 12 {
		t.Fatalf("incr = %d, %v", v, err)
	}
	cl.Set([]byte("str"), []byte("not a counter"))
	if _, err := cl.Incr([]byte("str"), 1); err == nil {
		t.Fatal("incr of a non-counter value must fail")
	}
	if v, _, _ := cl.Get([]byte("str")); string(v) != "not a counter" {
		t.Fatalf("failed incr must leave the value, got %q", v)
	}

	// SIZE sees the live elements (generic route counts exactly).
	n, err := cl.Size()
	if err != nil || n != 4 { // "", niltest, ctr, str
		t.Fatalf("size = %d, %v", n, err)
	}
}

// TestPipelining issues a deep pipeline of async requests and checks
// every response routes back to its own callback.
func TestPipelining(t *testing.T) {
	_, addr := startServer(t, server.Options{})
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const n = 2000
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("k%04d", i))
		val := []byte(fmt.Sprintf("v%04d", i))
		wg.Add(1)
		cl.SetAsync(key, val, func(r client.Resp) {
			if r.Err != nil || r.Status != server.StatusOK {
				t.Errorf("set %s: %v status %#x", key, r.Err, r.Status)
			}
			wg.Done()
		})
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		wg.Add(1)
		i := i
		cl.GetAsync([]byte(fmt.Sprintf("k%04d", i)), func(r client.Resp) {
			want := fmt.Sprintf("v%04d", i)
			if r.Err != nil || string(r.Val) != want {
				t.Errorf("get %d = %q, %v (want %q)", i, r.Val, r.Err, want)
			}
			wg.Done()
		})
	}
	wg.Wait()
}

// rawConn is a frame-level test client for protocol-violation cases.
type rawConn struct {
	t *testing.T
	c net.Conn
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &rawConn{t, c}
}

func (r *rawConn) send(frame []byte) {
	r.t.Helper()
	if _, err := r.c.Write(frame); err != nil {
		r.t.Fatal(err)
	}
}

func (r *rawConn) read() (id uint64, status byte, respBody []byte, err error) {
	r.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	id, status, respBody, _, err = server.ReadFrame(r.c, server.DefaultMaxFrame, nil)
	return id, status, respBody, err
}

func frame(id uint64, kind byte, body ...[]byte) []byte {
	f := server.BeginFrame(nil, id, kind)
	for _, b := range body {
		f = server.AppendBytes(f, b)
	}
	return server.EndFrame(f, 0)
}

func TestMalformedFrameRejection(t *testing.T) {
	srv, addr := startServer(t, server.Options{MaxFrame: 1 << 12})

	t.Run("unknown-opcode", func(t *testing.T) {
		rc := dialRaw(t, addr)
		rc.send(frame(7, 0x7F))
		id, status, _, err := rc.read()
		if err != nil || status != server.StatusErr || id != 7 {
			t.Fatalf("want StatusErr for id 7, got id=%d status=%#x err=%v", id, status, err)
		}
		// Terminal: the connection must close after the error response.
		if _, _, _, err := rc.read(); err == nil {
			t.Fatal("connection stayed open after protocol error")
		}
	})

	t.Run("truncated-body", func(t *testing.T) {
		rc := dialRaw(t, addr)
		// A GET whose body is shorter than its key length prefix claims.
		f := server.BeginFrame(nil, 9, server.OpGet)
		f = binary.BigEndian.AppendUint32(f, 100) // key length 100, no bytes
		rc.send(server.EndFrame(f, 0))
		id, status, _, err := rc.read()
		if err != nil || status != server.StatusErr || id != 9 {
			t.Fatalf("want StatusErr for id 9, got id=%d status=%#x err=%v", id, status, err)
		}
	})

	t.Run("trailing-garbage", func(t *testing.T) {
		rc := dialRaw(t, addr)
		// A PING with leftover body bytes must be rejected, not ignored.
		f := server.BeginFrame(nil, 11, server.OpPing)
		f = append(f, 0xAA)
		rc.send(server.EndFrame(f, 0))
		_, status, _, err := rc.read()
		if err != nil || status != server.StatusErr {
			t.Fatalf("want StatusErr, got status=%#x err=%v", status, err)
		}
	})

	t.Run("oversized-frame", func(t *testing.T) {
		rc := dialRaw(t, addr)
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], 1<<20) // above the 4 KiB cap
		rc.send(hdr[:])
		id, status, _, err := rc.read()
		if err != nil || status != server.StatusErr || id != 0 {
			t.Fatalf("want terminal StatusErr id=0, got id=%d status=%#x err=%v", id, status, err)
		}
		if _, _, _, err := rc.read(); err == nil {
			t.Fatal("connection stayed open after oversized frame")
		}
	})

	t.Run("short-frame", func(t *testing.T) {
		rc := dialRaw(t, addr)
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], 3) // < id+kind
		rc.send(hdr[:])
		if _, status, _, err := rc.read(); err != nil || status != server.StatusErr {
			t.Fatalf("want StatusErr, got status=%#x err=%v", status, err)
		}
	})

	// The server survives all of it and keeps serving well-formed clients.
	waitFor(t, "sessions to unwind", func() bool { return srv.Stats().ConnsActive == 0 })
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatalf("server unhealthy after protocol errors: %v", err)
	}
	if srv.Stats().ProtocolErrs < 5 {
		t.Fatalf("protocol errors not counted: %+v", srv.Stats())
	}
}

// TestClientDisconnectMidPipeline drops connections at awkward moments
// and checks the sessions unwind without leaking and without disturbing
// other clients.
func TestClientDisconnectMidPipeline(t *testing.T) {
	srv, addr := startServer(t, server.Options{})

	// A well-behaved bystander whose session must survive it all.
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Set([]byte("stable"), []byte("value"))

	for i := 0; i < 10; i++ {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		// A pipeline burst...
		var burst []byte
		for j := 0; j < 100; j++ {
			burst = append(burst, frame(uint64(j+1), server.OpSet,
				[]byte(fmt.Sprintf("churn%d", j)), []byte("x"))...)
		}
		// ...then cut the connection mid-frame: half a SET's header.
		burst = append(burst, 0, 0, 0, 20, 0, 0)
		if _, err := c.Write(burst); err != nil {
			t.Fatal(err)
		}
		c.Close() // without ever reading a response
	}

	waitFor(t, "churned sessions to unwind", func() bool { return srv.Stats().ConnsActive == 1 })
	if v, ok, err := cl.Get([]byte("stable")); err != nil || !ok || string(v) != "value" {
		t.Fatalf("bystander disturbed: %q, %v, %v", v, ok, err)
	}
	// The half-written pipelines were executed up to the cut.
	if v, ok, _ := cl.Get([]byte("churn99")); !ok || string(v) != "x" {
		t.Fatalf("pipelined ops before the cut were lost: %q, %v", v, ok)
	}
}

// TestConcurrentPipelinedClients is the -race workout: many goroutines
// hammer one pooled client with a mixed pipeline, and the INCR totals
// must come out exact.
func TestConcurrentPipelinedClients(t *testing.T) {
	_, addr := startServer(t, server.Options{})
	cl, err := client.Dial(addr, client.WithConns(4))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const (
		workers  = 8
		rounds   = 300
		counters = 4
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				ctr := []byte(fmt.Sprintf("ctr%d", (r+w)%counters))
				if _, err := cl.Incr(ctr, 1); err != nil {
					t.Errorf("incr: %v", err)
					return
				}
				key := []byte(fmt.Sprintf("w%d-k%d", w, r%16))
				if err := cl.Set(key, []byte("data")); err != nil {
					t.Errorf("set: %v", err)
					return
				}
				if _, _, err := cl.Get(key); err != nil {
					t.Errorf("get: %v", err)
					return
				}
				if r%8 == 0 {
					cl.Del(key)
				}
			}
		}(w)
	}
	wg.Wait()

	var total uint64
	for i := 0; i < counters; i++ {
		v, err := cl.Incr([]byte(fmt.Sprintf("ctr%d", i)), 0)
		if err != nil {
			t.Fatal(err)
		}
		total += v
	}
	if want := uint64(workers * rounds); total != want {
		t.Fatalf("lost increments over the wire: %d want %d", total, want)
	}
}

// TestCASContention drives an end-to-end optimistic-concurrency loop:
// every successful swap is one unique transition, so the final value
// counts them exactly.
func TestCASContention(t *testing.T) {
	_, addr := startServer(t, server.Options{})
	cl, err := client.Dial(addr, client.WithConns(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	key := []byte("cas-ctr")
	enc := func(v uint64) []byte {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], v)
		return b[:]
	}
	cl.Set(key, enc(0))

	const workers, swapsEach = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for done := 0; done < swapsEach; {
				cur, ok, err := cl.Get(key)
				if err != nil || !ok {
					t.Errorf("get: %v %v", ok, err)
					return
				}
				next := enc(binary.BigEndian.Uint64(cur) + 1)
				swapped, _, err := cl.CAS(key, cur, next)
				if err != nil {
					t.Errorf("cas: %v", err)
					return
				}
				if swapped {
					done++
				}
			}
		}()
	}
	wg.Wait()
	final, _, _ := cl.Get(key)
	if got := binary.BigEndian.Uint64(final); got != workers*swapsEach {
		t.Fatalf("cas lost transitions: %d want %d", got, workers*swapsEach)
	}
}

// TestGracefulShutdown: a client with a full pipeline in flight gets
// all its responses before Shutdown returns.
func TestGracefulShutdown(t *testing.T) {
	st := server.NewStore()
	defer st.Close()
	srv := server.New(st, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	cl, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var okCount int64
	var mu sync.Mutex
	for i := 0; i < 500; i++ {
		wg.Add(1)
		cl.SetAsync([]byte(fmt.Sprintf("k%d", i)), []byte("v"), func(r client.Resp) {
			if r.Err == nil && r.Status == server.StatusOK {
				mu.Lock()
				okCount++
				mu.Unlock()
			}
			wg.Done()
		})
	}
	wg.Wait() // every pipelined response arrived
	cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if okCount != 500 {
		t.Fatalf("only %d of 500 pipelined ops answered", okCount)
	}
	// Post-shutdown dials must be refused.
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestShutdownForceClosesIdleSessions: an idle connected client cannot
// stall shutdown past its context.
func TestShutdownForceClosesIdleSessions(t *testing.T) {
	st := server.NewStore()
	defer st.Close()
	srv := server.New(st, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	idle, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	waitFor(t, "idle session", func() bool { return srv.Stats().ConnsActive == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("shutdown = %v, want DeadlineExceeded", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
	// The forced close must have torn the idle session down.
	idle.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := idle.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("idle conn read = %v, want EOF", err)
	}
}
