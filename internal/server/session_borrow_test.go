package server

// Pins the session redesign's acceptance criterion: the exec hot path
// performs zero handle-pool acquires per operation. A connection costs
// exactly one borrow — the Session pinned for its whole life — and the
// per-op acquire/release channel hop of the pre-session design is gone.
// Map.PoolBorrows counts every pool acquire, so a regression that
// sneaks a handle-free cache call back into the dispatch path shows up
// as a nonzero delta here.

import (
	"context"
	"net"
	"testing"
	"time"

	growt "repro"
)

// TestExecZeroPoolBorrowsPerOp drives the dispatcher directly through
// one session across the full opcode mix and requires the pool-borrow
// counter to stand still.
func TestExecZeroPoolBorrowsPerOp(t *testing.T) {
	st := NewStore(growt.WithSweepInterval(-1)) // no sweeper session muddying the counter
	defer st.Close()
	srv := New(st, Options{})
	cs := st.C.NewSession()
	defer cs.Close()

	srv.exec(cs, nil, 0, OpPing, nil) // warm any lazy setup before the snapshot

	base := st.C.PoolBorrows()
	const rounds = 500
	for i := 0; i < rounds; i++ {
		set := append(AppendBytes(nil, []byte("k")), AppendBytes(nil, []byte("v"))...)
		srv.exec(cs, nil, 1, OpSet, set)
		srv.exec(cs, nil, 2, OpGet, AppendBytes(nil, []byte("k")))
		srv.exec(cs, nil, 3, OpIncr, append(AppendBytes(nil, []byte("ctr")), AppendUint64(nil, 1)...))
		cas := append(AppendBytes(nil, []byte("k")), AppendBytes(nil, []byte("v"))...)
		cas = append(cas, AppendBytes(nil, []byte("v2"))...)
		srv.exec(cs, nil, 4, OpCAS, cas)
		srv.exec(cs, nil, 5, OpTTL, AppendBytes(nil, []byte("k")))
		srv.exec(cs, nil, 6, OpSize, nil)
		srv.exec(cs, nil, 7, OpDel, AppendBytes(nil, []byte("k")))
	}
	if got := st.C.PoolBorrows() - base; got != 0 {
		t.Fatalf("exec path borrowed %d pooled handles across %d ops; want 0", got, rounds*7)
	}
}

// TestConnectionBorrowsOneHandle runs a real connection through a
// pipelined burst and checks the whole connection cost exactly one pool
// borrow, independent of the op count.
func TestConnectionBorrowsOneHandle(t *testing.T) {
	st := NewStore(growt.WithSweepInterval(-1))
	defer st.Close()
	srv := New(st, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveDone
	}()

	base := st.C.PoolBorrows()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const ops = 200
	var burst []byte
	for i := 0; i < ops; i++ {
		burst = append(burst, fuzzFrame(uint64(i+1), OpSet, []byte("bk"), []byte("bv"))...)
	}
	if _, err := conn.Write(burst); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for i := 0; i < ops; i++ {
		if _, _, _, _, err := ReadFrame(conn, DefaultMaxFrame, nil); err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
	}
	if got := st.C.PoolBorrows() - base; got != 1 {
		t.Fatalf("connection serving %d ops borrowed %d pooled handles; want exactly 1", ops, got)
	}
}
