package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/maphash"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// Options tunes a Server. The zero value is ready to use.
type Options struct {
	// MaxFrame caps a single request frame; DefaultMaxFrame when 0.
	MaxFrame uint32
	// ReadBuffer / WriteBuffer size the per-connection bufio layers;
	// 64 KiB when 0. The write buffer is the coalescing window: one
	// flush can carry hundreds of pipelined responses.
	ReadBuffer, WriteBuffer int
	// OutQueue is the per-session response queue depth (default 256).
	// The reader parks when the queue is full, which backpressures a
	// client that pipelines faster than its link drains.
	OutQueue int
	// Obs is the metric registry the server registers into; a private
	// registry when nil. growd passes obs.Default so the server's
	// series share /metrics and the STATS opcode with the core and
	// cache layers; tests leave it nil and keep exact per-instance
	// counts.
	Obs *obs.Registry
	// SlowOpThreshold is the execution-latency floor above which a
	// request is captured into the slow-op log (served by the SLOWLOG
	// opcode). Zero means DefaultSlowOpThreshold; negative disables
	// capture entirely.
	SlowOpThreshold time.Duration
}

func (o *Options) defaults() {
	if o.MaxFrame == 0 {
		o.MaxFrame = DefaultMaxFrame
	}
	if o.ReadBuffer == 0 {
		o.ReadBuffer = 64 << 10
	}
	if o.WriteBuffer == 0 {
		o.WriteBuffer = 64 << 10
	}
	if o.OutQueue == 0 {
		o.OutQueue = 256
	}
	if o.SlowOpThreshold == 0 {
		o.SlowOpThreshold = DefaultSlowOpThreshold
	}
}

// Stats is a snapshot of the server's counters, shaped for expvar. The
// hit/miss/expired/evicted block is sourced from the cache layer: hits
// and misses count GET/MGET outcomes, expired counts entries collected
// past their deadline (lazily or by the sweeper), evicted counts live
// entries removed to hold the -max-entries budget.
type Stats struct {
	ConnsAccepted uint64 `json:"conns_accepted"`
	ConnsActive   int64  `json:"conns_active"`
	Ops           uint64 `json:"ops"`
	// PerOp counts executed requests per opcode, keyed by wire name
	// (OpName). The key set is derived from the opcode enum at New, so
	// it tracks the protocol by construction — adding an opcode extends
	// this map without touching Stats.
	PerOp        map[string]uint64 `json:"per_op"`
	ProtocolErrs uint64            `json:"protocol_errs"`

	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Expired uint64 `json:"expired"`
	Evicted uint64 `json:"evicted"`

	// Sweeper gauges, also sourced from the cache layer: the cumulative
	// entry visit/removal counts of the background expiry sweeper plus
	// the per-tick figures of its most recent pass. A healthy cursor
	// sweeper visits each entry about once per full cycle — visited
	// growing quadratically in the table size is the bug these exist to
	// catch.
	SweepVisited     uint64 `json:"sweep_visited"`
	SweepRemoved     uint64 `json:"sweep_removed"`
	LastSweepVisited uint64 `json:"last_sweep_visited"`
	LastSweepRemoved uint64 `json:"last_sweep_removed"`
}

// metrics holds the server's obs instruments, registered once at New.
// The per-opcode arrays are indexed by raw opcode byte and populated
// for exactly the opcodes OpName knows — the enum is the single source
// of the per-op series set.
type metrics struct {
	reg           *obs.Registry
	connsAccepted *obs.Counter
	connsActive   *obs.Gauge
	ops           *obs.Counter
	protocolErrs  *obs.Counter
	queueDepth    *obs.Hist
	opCount       [256]*obs.Counter
	opLat         [256]*obs.Hist
}

func newMetrics(reg *obs.Registry) metrics {
	m := metrics{
		reg:           reg,
		connsAccepted: reg.Counter("growd_conns_accepted_total"),
		connsActive:   reg.Gauge("growd_conns_active"),
		ops:           reg.Counter("growd_ops_total"),
		protocolErrs:  reg.Counter("growd_protocol_errs_total"),
		queueDepth:    reg.Hist("growd_out_queue_depth"),
	}
	for op := 0; op < 256; op++ {
		name := OpName(byte(op))
		if name == "" {
			continue
		}
		m.opCount[op] = reg.Counter("growd_op_total", "op", name)
		m.opLat[op] = reg.Hist("growd_op_nanos", "op", name)
	}
	return m
}

// Server serves the binary protocol over a Store. Each accepted
// connection gets a session: the reader goroutine parses and executes
// the pipeline in order against the shared cache (which pools its own
// map handles — core handles register never-deregistered per-handle
// state, so the bounded pool lives where the handles do), the writer
// goroutine drains the response queue into a buffered writer and
// flushes only when the queue runs empty — so a deep pipeline pays one
// syscall per batch, not per response.
type Server struct {
	st  *Store
	opt Options

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	m    metrics
	slow slowLog
}

// New builds a server over st.
func New(st *Store, opt Options) *Server {
	opt.defaults()
	reg := opt.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Server{
		st:    st,
		opt:   opt,
		conns: make(map[net.Conn]struct{}),
		m:     newMetrics(reg),
	}
}

// Obs returns the registry the server records into (Options.Obs, or
// the private one New built) — the same registry the STATS opcode
// snapshots.
func (s *Server) Obs() *obs.Registry { return s.m.reg }

// SlowOps snapshots the slow-op log in ascending timestamp order — the
// same view the SLOWLOG opcode serializes; growd's SIGQUIT dump and
// tests read it directly.
func (s *Server) SlowOps() []SlowEntry { return s.slow.snapshot() }

// Stats snapshots the counters (expvar-friendly: growd publishes it via
// expvar.Func), merging the cache layer's hit/miss/expired/evicted
// block into the protocol-level counts. The per-op map is built from
// the opcode enum via the same OpName scan that registered the series.
func (s *Server) Stats() Stats {
	cs := s.st.C.Stats()
	perOp := make(map[string]uint64, len(s.m.opCount))
	for op := 0; op < 256; op++ {
		if c := s.m.opCount[op]; c != nil {
			perOp[OpName(byte(op))] = c.Value()
		}
	}
	return Stats{
		ConnsAccepted: s.m.connsAccepted.Value(),
		ConnsActive:   s.m.connsActive.Value(),
		Ops:           s.m.ops.Value(),
		PerOp:         perOp,
		ProtocolErrs:  s.m.protocolErrs.Value(),
		Hits:          cs.Hits,
		Misses:        cs.Misses,
		Expired:       cs.Expired,
		Evicted:       cs.Evicted,

		SweepVisited:     cs.SweepVisited,
		SweepRemoved:     cs.SweepRemoved,
		LastSweepVisited: cs.LastSweepVisited,
		LastSweepRemoved: cs.LastSweepRemoved,
	}
}

// Serve accepts connections on ln until Shutdown (returns nil) or a
// non-temporary accept error (returned).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	alreadyClosed := s.closed.Load()
	s.mu.Unlock()
	if alreadyClosed {
		// Shutdown ran before the listener was registered (it sets closed
		// before inspecting s.ln under the same lock, so exactly one side
		// sees the other): close it here or nobody will.
		ln.Close()
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		// Registration and the closed flag are reconciled under one lock:
		// either this section sees closed and drops the conn, or Shutdown's
		// flag-setting section runs later and its sweep/Wait see the
		// registered session. Checking closed outside the lock could
		// register a session after Shutdown already reported fully drained.
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.m.connsAccepted.Add(1)
		s.m.connsActive.Add(1)
		go s.session(conn)
	}
}

// Shutdown stops accepting, then waits for live sessions to drain. When
// ctx expires first, remaining connections are force-closed and
// ctx.Err() is returned after they unwind. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	// The flag is set under s.mu (see Serve's registration section): after
	// this section, no further session can register, and every registered
	// one is visible to the Wait and the force-close sweep below.
	s.mu.Lock()
	s.closed.Store(true)
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// session runs one connection's lifecycle. Teardown paths:
//
//   - client closes / read error → reader closes the queue, writer
//     flushes what's pending and closes the conn;
//   - write error → writer closes the conn and its done channel; the
//     blocked reader's Read fails and the reader unwinds;
//   - protocol error → reader enqueues a final StatusErr response and
//     closes the queue (terminal: framing cannot resync).
//
// Either way both goroutines exit and the connection is untracked — the
// disconnect-mid-pipeline test drives every path.
func (s *Server) session(conn net.Conn) {
	defer s.wg.Done()
	out := make(chan []byte, s.opt.OutQueue)
	done := make(chan struct{})

	go s.writeLoop(conn, out, done)
	s.readLoop(conn, out, done)

	<-done // writer owns conn.Close; wait so untracking is ordered after it
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.m.connsActive.Add(-1)
}

// writeLoop drains out into a buffered writer, flushing only when the
// queue is momentarily empty — the write-coalescing half of the
// pipelining story. Closes conn and done on exit.
//
//growt:hotpath
func (s *Server) writeLoop(conn net.Conn, out <-chan []byte, done chan<- struct{}) {
	defer close(done)
	defer conn.Close()
	bw := bufio.NewWriterSize(conn, s.opt.WriteBuffer)
	for frame := range out {
		if _, err := bw.Write(frame); err != nil {
			return
		}
		for coalescing := true; coalescing; {
			select {
			case next, ok := <-out:
				if !ok {
					bw.Flush()
					return
				}
				if _, err := bw.Write(next); err != nil {
					return
				}
			default:
				coalescing = false
			}
		}
		if bw.Flush() != nil {
			return
		}
	}
	bw.Flush()
}

// readLoop parses and executes the request pipeline in order. It owns
// the out channel and always closes it on exit. The cache session is
// per-connection: one pooled map handle is pinned here for the
// connection's whole life, so the ops executed below never touch the
// handle pool — the pre-session design paid an acquire/release channel
// hop on every single operation.
func (s *Server) readLoop(conn net.Conn, out chan<- []byte, done <-chan struct{}) {
	defer close(out)
	cs := s.st.C.NewSession()
	defer cs.Close()
	br := bufio.NewReaderSize(conn, s.opt.ReadBuffer)
	var frameBuf []byte // ReadFrame scratch, reused across frames
	for {
		id, kind, reqBody, nbuf, err := ReadFrame(br, s.opt.MaxFrame, frameBuf)
		frameBuf = nbuf
		if err != nil {
			if errors.Is(err, ErrFrameTooLarge) || errors.Is(err, ErrMalformed) {
				s.m.protocolErrs.Add(1)
				// Best-effort terminal error; id is unknowable here (the
				// frame could not be parsed past its length), so echo 0.
				s.trySend(out, done, errFrame(nil, 0, err.Error()))
			}
			return // EOF, connection reset, or terminal protocol error
		}
		// Each response frame is freshly allocated: ownership moves to the
		// writer goroutine at the send.
		trace.Emit(trace.KindExecStart, uint64(kind), id, 0)
		begin := time.Now()
		resp, fatal := s.exec(cs, nil, id, kind, reqBody)
		lat := time.Since(begin)
		if lat < 0 {
			lat = 0
		}
		if h := s.m.opLat[kind]; h != nil {
			h.Observe(uint64(lat))
		}
		// The response status byte sits after the length and id words;
		// every frame exec builds carries one.
		status := StatusErr
		if len(resp) > 4+frameHeader-1 {
			status = resp[4+frameHeader-1]
		}
		trace.Emit(trace.KindExecEnd, uint64(kind), uint64(status), uint64(lat))
		if thr := s.opt.SlowOpThreshold; thr > 0 && lat >= thr {
			var kh uint64
			if key := keyOfRequest(kind, reqBody); len(key) > 0 {
				kh = maphash.Bytes(storeSeed, key)
			}
			s.slow.insert(trace.Now(), kind, id, kh,
				uint64(len(out)), s.st.C.Generation(), uint64(lat))
		}
		if !s.trySend(out, done, resp) {
			return
		}
		if fatal {
			s.m.protocolErrs.Add(1)
			return
		}
	}
}

// trySend enqueues a response unless the writer already died. The
// queue occupancy sampled at every enqueue is the coalescing-depth
// distribution: a writer keeping up samples near zero, a saturated
// link samples near OutQueue.
func (s *Server) trySend(out chan<- []byte, done <-chan struct{}, frame []byte) bool {
	depth := uint64(len(out))
	s.m.queueDepth.Observe(depth)
	var id uint64
	if len(frame) >= 12 {
		id = binary.BigEndian.Uint64(frame[4:12])
	}
	trace.Emit(trace.KindEnqueue, id, depth, 0)
	select {
	case out <- frame:
		return true
	case <-done:
		return false
	}
}

// errFrame builds a StatusErr response carrying msg. Response bodies
// are raw (no length prefix): the frame length already delimits them.
func errFrame(dst []byte, id uint64, msg string) []byte {
	start := len(dst)
	dst = BeginFrame(dst, id, StatusErr)
	dst = append(dst, msg...)
	return EndFrame(dst, start)
}

// exec executes one decoded request against the connection's cache
// session and returns the encoded response frame. fatal marks
// protocol-level failures (unknown opcode, body that does not parse)
// after which the connection must close; operation failures (absent
// key, CAS mismatch, non-counter INCR target) are ordinary statuses and
// keep the session alive.
//
// c is the per-connection session created by readLoop: every cache op
// below reuses its pinned map handle, so the hot path performs zero
// handle-pool acquires per request.
//
//growt:wire dispatch opcode
func (s *Server) exec(c *cache.Session[Key, string], dst []byte, id uint64, kind byte, reqBody []byte) (frame []byte, fatal bool) {
	s.m.ops.Add(1)
	// Per-op counting is enum-derived: the counter exists iff OpName
	// knows the opcode, so this one line replaces a per-case increment
	// in every arm below (and can never miss a new opcode).
	if pc := s.m.opCount[kind]; pc != nil {
		pc.Add(1)
	}
	p := body{b: reqBody}
	start := len(dst)
	switch kind {
	case OpPing:
		if !p.done() {
			break
		}
		return EndFrame(BeginFrame(dst, id, StatusOK), start), false

	case OpGet:
		key := p.bytesField()
		if !p.done() {
			break
		}
		v, ok := c.Get(Key(key))
		if !ok {
			return EndFrame(BeginFrame(dst, id, StatusNotFound), start), false
		}
		dst = BeginFrame(dst, id, StatusOK)
		dst = append(dst, v...)
		return EndFrame(dst, start), false

	case OpSet:
		key := p.bytesField()
		val := p.bytesField()
		if !p.done() {
			break
		}
		c.Set(Key(key), string(val))
		return EndFrame(BeginFrame(dst, id, StatusOK), start), false

	case OpSetEx:
		key := p.bytesField()
		val := p.bytesField()
		ttl := p.uint64Field()
		if !p.done() {
			break
		}
		c.SetTTL(Key(key), string(val), ttlMillis(ttl))
		return EndFrame(BeginFrame(dst, id, StatusOK), start), false

	case OpExpire:
		key := p.bytesField()
		ttl := p.uint64Field()
		if !p.done() {
			break
		}
		if !c.Expire(Key(key), ttlMillis(ttl)) {
			return EndFrame(BeginFrame(dst, id, StatusNotFound), start), false
		}
		return EndFrame(BeginFrame(dst, id, StatusOK), start), false

	case OpTTL:
		key := p.bytesField()
		if !p.done() {
			break
		}
		d, ok := c.TTL(Key(key))
		if !ok {
			return EndFrame(BeginFrame(dst, id, StatusNotFound), start), false
		}
		dst = BeginFrame(dst, id, StatusOK)
		dst = AppendUint64(dst, ttlReply(d))
		return EndFrame(dst, start), false

	case OpDel:
		key := p.bytesField()
		if !p.done() {
			break
		}
		if !c.Delete(Key(key)) {
			return EndFrame(BeginFrame(dst, id, StatusNotFound), start), false
		}
		return EndFrame(BeginFrame(dst, id, StatusOK), start), false

	case OpCAS:
		key := p.bytesField()
		old := p.bytesField()
		new := p.bytesField()
		if !p.done() {
			break
		}
		swapped, found := c.CompareAndSwap(Key(key), string(old), string(new))
		switch {
		case swapped:
			return EndFrame(BeginFrame(dst, id, StatusOK), start), false
		case found:
			return EndFrame(BeginFrame(dst, id, StatusMismatch), start), false
		}
		return EndFrame(BeginFrame(dst, id, StatusNotFound), start), false

	case OpIncr:
		key := p.bytesField()
		delta := p.uint64Field()
		if !p.done() {
			break
		}
		v, ok := incr(c, Key(key), delta)
		if !ok {
			return errFrame(dst, id, "INCR target is not an 8-byte counter"), false
		}
		dst = BeginFrame(dst, id, StatusOK)
		dst = AppendUint64(dst, v)
		return EndFrame(dst, start), false

	case OpSize:
		if !p.done() {
			break
		}
		dst = BeginFrame(dst, id, StatusOK)
		dst = AppendUint64(dst, c.Len())
		return EndFrame(dst, start), false

	case OpMGet:
		// Batched GET: the response body is, per requested key in request
		// order, a found:u8 flag followed (when found) by the value as a
		// length-prefixed byte string — so one frame answers the whole
		// batch and partial misses are explicit, not terminal.
		n := p.uint32Field()
		keys := make([][]byte, 0, min(int(n), 64))
		for i := uint32(0); i < n && !p.bad; i++ {
			keys = append(keys, p.bytesField())
		}
		if !p.done() {
			break
		}
		dst = BeginFrame(dst, id, StatusOK)
		for _, key := range keys {
			if v, ok := c.Get(Key(key)); ok {
				dst = append(dst, 1)
				dst = AppendBytes(dst, []byte(v))
			} else {
				dst = append(dst, 0)
			}
			// Individual requests are capped at MaxFrame, but a batch of
			// large values can multiply past it — and a peer enforcing the
			// same cap would tear the connection down over an oversized
			// reply. Refuse with an ordinary per-request error instead.
			if uint32(len(dst)-start-4) > s.opt.MaxFrame {
				return errFrame(dst[:start], id,
					"MGET reply exceeds the frame cap; split the batch"), false
			}
		}
		return EndFrame(dst, start), false

	case OpMSet:
		// Batched default-TTL SET. The body is parsed and validated in
		// full before any store: a malformed batch applies nothing.
		n := p.uint32Field()
		pairs := make([][2][]byte, 0, min(int(n), 64))
		for i := uint32(0); i < n && !p.bad; i++ {
			k := p.bytesField()
			v := p.bytesField()
			pairs = append(pairs, [2][]byte{k, v})
		}
		if !p.done() {
			break
		}
		for _, kv := range pairs {
			c.Set(Key(kv[0]), string(kv[1]))
		}
		return EndFrame(BeginFrame(dst, id, StatusOK), start), false

	case OpStats:
		// Observability scrape: the registry — server, core-migration,
		// and cache series alike when growd wired obs.Default in — as
		// one JSON body. A scrape is a cold path; it allocates freely.
		if !p.done() {
			break
		}
		b, err := json.Marshal(s.m.reg.Snapshot())
		if err != nil {
			return errFrame(dst[:start], id, "stats encoding failed"), false
		}
		dst = BeginFrame(dst, id, StatusOK)
		dst = append(dst, b...)
		return EndFrame(dst, start), false

	case OpSlowLog:
		// Observability scrape like STATS: the slow-op log as one JSON
		// array. Cold path; allocates freely.
		if !p.done() {
			break
		}
		b, err := json.Marshal(s.slow.snapshot())
		if err != nil {
			return errFrame(dst[:start], id, "slowlog encoding failed"), false
		}
		dst = BeginFrame(dst, id, StatusOK)
		dst = append(dst, b...)
		return EndFrame(dst, start), false
	}
	return errFrame(dst[:start], id, "malformed request"), true
}
