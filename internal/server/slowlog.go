package server

import (
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/pad"
)

// The slow-op log: a bounded ring of the most recent requests whose
// execution latency crossed Options.SlowOpThreshold. Where the flight
// recorder answers "what was the system doing", the slow-op log
// answers "which requests paid for it": each entry carries the opcode,
// a hash of the key (the key itself may be megabytes; the hash is
// enough to correlate repeats and probe-cluster neighbors), the
// response-queue depth at completion, and the table generation the op
// ran against — so a stalled SET can be matched to the exact migration
// (flip events carry the new generation) that stalled it.
//
// The ring uses the same per-slot seqlock as internal/obs/trace: a
// padded fetch-and-add cursor deals slots, writers bracket the payload
// with odd/even sequence stores, readers discard torn slots. Insert is
// //growt:hotpath — it runs on the request path (only for ops already
// slow, but a threshold set to 0 must not add allocation on top).

// slowLogSlots is the ring capacity. 256 entries ≈ minutes of history
// at sane thresholds; a threshold loose enough to overflow it faster
// is measuring the wrong thing.
const slowLogSlots = 256

// DefaultSlowOpThreshold is the latency floor for slow-op capture when
// Options.SlowOpThreshold is zero: 1ms is ~two orders of magnitude
// over a healthy uncontended op and comfortably under a migration
// stall on any table worth logging.
const DefaultSlowOpThreshold = time.Millisecond

// SlowEntry is one captured slow operation, shaped for the SLOWLOG
// JSON body.
type SlowEntry struct {
	TS           int64  `json:"ts_nanos"`
	Op           string `json:"op"`
	ID           uint64 `json:"id"`
	KeyHash      uint64 `json:"key_hash"`
	QueueDepth   uint64 `json:"queue_depth"`
	Generation   uint64 `json:"generation"`
	LatencyNanos uint64 `json:"latency_nanos"`
}

// slowSlot is one seqlock-protected record; all words atomic, so the
// scheme is race-detector clean (see internal/obs/trace for the
// protocol discussion).
type slowSlot struct {
	seq     atomic.Uint64
	ts      atomic.Uint64
	op      atomic.Uint64
	id      atomic.Uint64
	keyHash atomic.Uint64
	depth   atomic.Uint64
	gen     atomic.Uint64
	lat     atomic.Uint64
}

type slowLog struct {
	cursor pad.Uint64
	slots  [slowLogSlots]slowSlot
}

// insert records one slow op. Allocation-free and wait-free: a
// fetch-and-add plus eight atomic stores.
//
//growt:hotpath
func (l *slowLog) insert(ts int64, op byte, id, keyHash, depth, gen, lat uint64) {
	ticket := l.cursor.Add(1) - 1
	s := &l.slots[ticket&(slowLogSlots-1)]
	s.seq.Store(2*ticket + 1)
	s.ts.Store(uint64(ts))
	s.op.Store(uint64(op))
	s.id.Store(id)
	s.keyHash.Store(keyHash)
	s.depth.Store(depth)
	s.gen.Store(gen)
	s.lat.Store(lat)
	s.seq.Store(2*ticket + 2)
}

// snapshot drains the complete entries in ascending timestamp order.
// Cold path (the SLOWLOG opcode and the SIGQUIT dump): allocates
// freely, skips torn slots, does not clear the ring.
func (l *slowLog) snapshot() []SlowEntry {
	out := make([]SlowEntry, 0, slowLogSlots)
	for i := range l.slots {
		s := &l.slots[i]
		seq1 := s.seq.Load()
		if seq1 == 0 || seq1&1 == 1 {
			continue
		}
		e := SlowEntry{
			TS:           int64(s.ts.Load()),
			Op:           OpName(byte(s.op.Load())),
			ID:           s.id.Load(),
			KeyHash:      s.keyHash.Load(),
			QueueDepth:   s.depth.Load(),
			Generation:   s.gen.Load(),
			LatencyNanos: s.lat.Load(),
		}
		if s.seq.Load() != seq1 {
			continue
		}
		out = append(out, e)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].TS < out[b].TS })
	return out
}

// keyOfRequest re-extracts the (first) key of a request body for
// slow-op attribution. Keyless ops and batch headers that fail to
// parse yield nil (hash 0); attribution is best-effort by design — the
// request already executed, this must not re-validate it.
func keyOfRequest(kind byte, reqBody []byte) []byte {
	p := body{b: reqBody}
	switch kind {
	case OpGet, OpSet, OpSetEx, OpExpire, OpTTL, OpDel, OpCAS, OpIncr:
		return p.bytesField()
	case OpMGet, OpMSet:
		if p.uint32Field() == 0 {
			return nil
		}
		return p.bytesField()
	default:
		return nil // ping/size/stats/slowlog carry no key
	}
}
