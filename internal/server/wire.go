// Package server is the network service layer over the typed map: a
// compact length-prefixed binary protocol (GET/SET/DEL/CAS/INCR/SIZE,
// request ids, pipelining) served by per-connection reader/writer
// goroutine pairs with write coalescing. It is what turns the paper's
// in-process throughput numbers into end-to-end serving numbers — the
// protocol is built so that clients can keep many requests in flight
// per connection, amortizing syscall and wakeup cost over whole
// batches of operations instead of paying it per op.
//
// The wire format is specified in docs/PROTOCOL.md. Every frame is
//
//	len:u32 | id:u64 | kind:u8 | body
//
// with all integers big-endian; len counts the bytes after the length
// field itself. On a request, kind is the opcode; on a response it is
// the status. Responses to one connection's requests come back in
// request order, each echoing the request id.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// DefaultAddr is the address growd listens on when none is given.
const DefaultAddr = ":7420"

// Request opcodes. The group is a //growt:enum: growvet's statusswitch
// analyzer requires every switch over opcodes — server dispatch and
// client alike — to handle all of them or declare an explicit default,
// so adding an opcode here cannot silently fall through on one side.
//
//growt:enum opcode
const (
	OpPing byte = 0x01 // liveness probe ("healthz"); empty body
	OpGet  byte = 0x02 // key -> value
	OpSet  byte = 0x03 // key value -> store with the server's default TTL
	OpDel  byte = 0x04 // key -> remove
	OpCAS  byte = 0x05 // key old new -> swap iff current == old
	OpIncr byte = 0x06 // key delta:u64 -> add to an 8-byte counter value
	OpSize byte = 0x07 // -> approximate element count

	// Cache opcodes (PR 5): per-entry TTL and batched access.
	OpSetEx  byte = 0x08 // key value ttlms:u64 -> store with explicit TTL
	OpExpire byte = 0x09 // key ttlms:u64 -> re-deadline a live key
	OpTTL    byte = 0x0A // key -> remaining TTL in ms (TTLImmortal = none)
	OpMGet   byte = 0x0B // n:u32, n × key -> batched GET, per-key found flag
	OpMSet   byte = 0x0C // n:u32, n × (key value) -> batched default-TTL SET

	// Observability opcode (PR 9): scrape the server's obs registry —
	// counters, gauges, latency histograms — over the data protocol
	// itself, so a load generator needs no side-channel HTTP scrape.
	OpStats byte = 0x0D // -> JSON-encoded obs.Snapshot

	// Observability opcode (PR 10): scrape the server's slow-op log —
	// every recent request over the latency threshold, stamped with the
	// opcode, key hash, queue depth, and table generation it ran
	// against — over the data protocol, like STATS.
	OpSlowLog byte = 0x0E // -> JSON array of SlowEntry
)

// OpName maps an opcode to its lowercase wire name ("" for unknown
// bytes). The switch covers the //growt:enum with no default, so
// statusswitch fails the build when an opcode is added but not named —
// and everything per-opcode in the server (metric series, the Stats
// per-op map) is derived from this function, which is what makes
// "thirteen parallel struct fields drifting from the enum" structurally
// impossible.
func OpName(op byte) string {
	switch op {
	case OpPing:
		return "ping"
	case OpGet:
		return "get"
	case OpSet:
		return "set"
	case OpDel:
		return "del"
	case OpCAS:
		return "cas"
	case OpIncr:
		return "incr"
	case OpSize:
		return "size"
	case OpSetEx:
		return "setex"
	case OpExpire:
		return "expire"
	case OpTTL:
		return "ttl"
	case OpMGet:
		return "mget"
	case OpMSet:
		return "mset"
	case OpStats:
		return "stats"
	case OpSlowLog:
		return "slowlog"
	}
	return ""
}

// TTLImmortal is the TTL response payload for a live entry with no
// deadline (stored without a TTL on a server with no default TTL).
const TTLImmortal = ^uint64(0)

// Response statuses. A //growt:enum like the opcodes: switches over
// response statuses must be exhaustive or carry a default.
//
//growt:enum wirestatus
const (
	StatusOK       byte = 0x00
	StatusNotFound byte = 0x01 // GET/DEL/CAS: key absent
	StatusMismatch byte = 0x02 // CAS: key present with a different value
	StatusErr      byte = 0x03 // protocol or operation error; body = message
)

// frameHeader is the fixed part after the length field: id (8) + kind (1).
const frameHeader = 8 + 1

// DefaultMaxFrame caps a single frame (1 MiB). A peer announcing a
// larger frame is rejected before any of it is read, so a corrupt or
// hostile length field cannot make the reader allocate unboundedly.
const DefaultMaxFrame = 1 << 20

// ErrFrameTooLarge reports a frame whose announced length exceeds the
// configured cap. Terminal for the connection: framing cannot resync.
var ErrFrameTooLarge = errors.New("frame exceeds size limit")

// ErrMalformed reports a frame too short to carry the id and kind, or a
// body that does not parse under its opcode. Terminal for the connection.
var ErrMalformed = errors.New("malformed frame")

// BeginFrame starts a frame in dst: it reserves the length field and
// writes id and kind. Body fields are appended by the caller; EndFrame
// patches the length. The returned slice must stay the one passed to
// EndFrame (append chains are fine, re-slicing from the front is not).
func BeginFrame(dst []byte, id uint64, kind byte) []byte {
	dst = append(dst, 0, 0, 0, 0)
	dst = binary.BigEndian.AppendUint64(dst, id)
	return append(dst, kind)
}

// EndFrame patches the length field of the frame begun at offset start
// (the value of len(dst) before BeginFrame appended to it).
func EndFrame(frame []byte, start int) []byte {
	binary.BigEndian.PutUint32(frame[start:], uint32(len(frame)-start-4))
	return frame
}

// AppendBytes appends a length-prefixed byte string body field.
func AppendBytes(dst, b []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

// AppendUint64 appends a fixed 8-byte body field.
func AppendUint64(dst []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, v)
}

// AppendUint32 appends a fixed 4-byte body field (batch counts).
func AppendUint32(dst []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(dst, v)
}

// ReadFrame reads one frame from r into buf (grown as needed) and
// returns the id, kind, and body. The body aliases the returned buffer:
// it is valid until the next ReadFrame call with the same buf. io.EOF is
// returned untouched on a clean close before any byte of a frame;
// mid-frame closes surface as io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, max uint32, buf []byte) (id uint64, kind byte, body, nbuf []byte, err error) {
	var lenb [4]byte
	if _, err = io.ReadFull(r, lenb[:]); err != nil {
		return 0, 0, nil, buf, err
	}
	n := binary.BigEndian.Uint32(lenb[:])
	if n < frameHeader {
		return 0, 0, nil, buf, ErrMalformed
	}
	if n > max {
		return 0, 0, nil, buf, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, max)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err = io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, nil, buf, err
	}
	id = binary.BigEndian.Uint64(buf)
	return id, buf[8], buf[frameHeader:], buf, nil
}

// body is the cursor used to parse frame bodies. Parse failures are
// sticky: once bad, every further read reports bad.
type body struct {
	b   []byte
	bad bool
}

// bytesField consumes a length-prefixed byte string.
func (p *body) bytesField() []byte {
	if p.bad || len(p.b) < 4 {
		p.bad = true
		return nil
	}
	n := binary.BigEndian.Uint32(p.b)
	if uint32(len(p.b)-4) < n {
		p.bad = true
		return nil
	}
	f := p.b[4 : 4+n]
	p.b = p.b[4+n:]
	return f
}

// uint64Field consumes a fixed 8-byte integer.
func (p *body) uint64Field() uint64 {
	if p.bad || len(p.b) < 8 {
		p.bad = true
		return 0
	}
	v := binary.BigEndian.Uint64(p.b)
	p.b = p.b[8:]
	return v
}

// uint32Field consumes a fixed 4-byte integer (batch counts).
func (p *body) uint32Field() uint32 {
	if p.bad || len(p.b) < 4 {
		p.bad = true
		return 0
	}
	v := binary.BigEndian.Uint32(p.b)
	p.b = p.b[4:]
	return v
}

// done reports whether the whole body parsed with nothing left over.
func (p *body) done() bool { return !p.bad && len(p.b) == 0 }
