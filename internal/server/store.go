package server

import (
	"encoding/binary"
	"hash/maphash"
	"time"

	growt "repro"
	"repro/internal/cache"
)

// Key is the server's map key type. It is a *named* string type on
// purpose: the typed facade routes exactly `string` to the bounded §5.7
// complex-key table, while named string types take the generic route —
// a growing word core mapping the key's hash to a lock-free collision
// chain — so a long-running server never hits a fixed table bound.
type Key string

var storeSeed = maphash.MakeSeed()

// Store is the table a Server serves: a cache facade (per-entry TTL,
// bounded-memory eviction) over a typed map from opaque byte-string
// keys to opaque byte-string values. With no default TTL and no entry
// budget the cache is a near-pass-through and the server behaves like
// the immortal store it used to be; growd's -default-ttl/-max-entries
// flags turn the same binary into a bounded cache. Values are Go
// strings so CAS can compare them with == through the cache's
// CompareAndSwap.
type Store struct {
	C *cache.Cache[Key, string]
}

// NewStore builds the served cache. opts are the facade's functional
// options — the table-shaping ones (strategy, capacity, TSX) exactly as
// growt.New accepts them, plus the cache-layer ones (WithTTL,
// WithMaxEntries, WithSweepInterval) — so growd exposes the same
// configuration surface as the library. A fast maphash-based hasher is
// installed first, which a caller-supplied WithHasher still overrides
// (later options win).
func NewStore(opts ...growt.Option) *Store {
	opts = append([]growt.Option{growt.WithHasher(func(k Key) uint64 {
		return maphash.String(storeSeed, string(k))
	})}, opts...)
	return &Store{C: cache.New[Key, string](opts...)}
}

// Close stops the cache's sweeper and releases the map's background
// resources.
func (st *Store) Close() { st.C.Close() }

// incr atomically adds delta to the 8-byte big-endian counter at key,
// initializing an absent (or expired) key to delta under the server's
// default TTL; an existing counter keeps its deadline. ok is false when
// the key holds a live value that is not exactly 8 bytes; the value is
// then left untouched.
func incr(c *cache.Session[Key, string], k Key, delta uint64) (newVal uint64, ok bool) {
	var enc [8]byte
	binary.BigEndian.PutUint64(enc[:], delta)
	// The closure may run several times under contention; the cache
	// applies exactly its final invocation, so the last recorded verdict
	// and sum are the authoritative ones.
	inserted := c.Compute(k, string(enc[:]), func(cur, _ string) string {
		if len(cur) != 8 {
			ok = false
			return cur
		}
		ok = true
		newVal = binary.BigEndian.Uint64([]byte(cur)) + delta
		binary.BigEndian.PutUint64(enc[:], newVal)
		return string(enc[:])
	})
	if inserted {
		return delta, true
	}
	return newVal, ok
}

// ttlMillis converts a wire TTL (milliseconds, 0 = immortal) into the
// cache's duration domain, saturating instead of overflowing.
func ttlMillis(ms uint64) time.Duration {
	const maxMs = uint64(1<<63-1) / uint64(time.Millisecond)
	if ms > maxMs {
		ms = maxMs
	}
	return time.Duration(ms) * time.Millisecond
}

// ttlReply converts a cache TTL verdict into the wire's millisecond
// domain: immortal entries answer TTLImmortal, finite deadlines round
// up so a just-set TTL never reads back as 0.
func ttlReply(d time.Duration) uint64 {
	if d < 0 {
		return TTLImmortal
	}
	ms := uint64((d + time.Millisecond - 1) / time.Millisecond)
	if ms == TTLImmortal {
		ms--
	}
	return ms
}
