package server

import (
	"encoding/binary"
	"hash/maphash"

	growt "repro"
)

// Key is the server's map key type. It is a *named* string type on
// purpose: the typed facade routes exactly `string` to the bounded §5.7
// complex-key table, while named string types take the generic route —
// a growing word core mapping the key's hash to a lock-free collision
// chain — so a long-running server never hits a fixed table bound.
type Key string

var storeSeed = maphash.MakeSeed()

// Store is the table a Server serves: a typed map from opaque byte-string
// keys to opaque byte-string values. Values are Go strings so CAS can
// compare them with == through the facade's CompareAndSwap.
type Store struct {
	M *growt.Map[Key, string]
}

// NewStore builds the served map. opts are the facade's functional
// options (strategy, capacity, TSX — exactly what growt.New accepts), so
// growd exposes the same table configuration surface as the library. A
// fast maphash-based hasher is installed first, which a caller-supplied
// WithHasher still overrides (later options win).
func NewStore(opts ...growt.Option) *Store {
	opts = append([]growt.Option{growt.WithHasher(func(k Key) uint64 {
		return maphash.String(storeSeed, string(k))
	})}, opts...)
	return &Store{M: growt.New[Key, string](opts...)}
}

// Close releases the map's background resources.
func (st *Store) Close() { st.M.Close() }

// session-side operation helpers. Each session owns one map handle
// (§5.1's per-goroutine discipline: sessions execute their connection's
// pipeline sequentially on the reader goroutine).

// incr atomically adds delta to the 8-byte big-endian counter at key,
// initializing an absent key to delta. ok is false when the key holds a
// value that is not exactly 8 bytes; the value is then left untouched.
func incr(h *growt.Handle[Key, string], k Key, delta uint64) (newVal uint64, ok bool) {
	var enc [8]byte
	binary.BigEndian.PutUint64(enc[:], delta)
	// The closure may run several times under contention; the backend
	// applies exactly its final invocation, so the last recorded verdict
	// and sum are the authoritative ones.
	inserted := h.InsertOrUpdate(k, string(enc[:]), func(cur, _ string) string {
		if len(cur) != 8 {
			ok = false
			return cur
		}
		ok = true
		newVal = binary.BigEndian.Uint64([]byte(cur)) + delta
		binary.BigEndian.PutUint64(enc[:], newVal)
		return string(enc[:])
	})
	if inserted {
		return delta, true
	}
	return newVal, ok
}
