package stringmap

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	m := New(1000)
	h := m.Handle()
	if !h.Insert("hello", 1) || h.Insert("hello", 2) {
		t.Fatal("insert semantics")
	}
	if v, ok := h.Find("hello"); !ok || v != 1 {
		t.Fatal("find")
	}
	if _, ok := h.Find("world"); ok {
		t.Fatal("phantom find")
	}
	if !h.Update("hello", 9, func(c, d uint64) uint64 { return c + d }) {
		t.Fatal("update")
	}
	if v, _ := h.Find("hello"); v != 10 {
		t.Fatal("update value")
	}
	if h.Update("absent", 1, func(c, d uint64) uint64 { return d }) {
		t.Fatal("update absent")
	}
	if !h.Delete("hello") || h.Delete("hello") {
		t.Fatal("delete semantics")
	}
	if _, ok := h.Find("hello"); ok {
		t.Fatal("deleted still visible")
	}
	if !h.Insert("hello", 5) { // revive
		t.Fatal("revive")
	}
	if m.Size() != 1 {
		t.Fatalf("size %d", m.Size())
	}
}

func TestManyKeys(t *testing.T) {
	m := New(20000)
	h := m.Handle()
	for i := 0; i < 20000; i++ {
		s := fmt.Sprintf("key-%d-%s", i, strings.Repeat("x", i%50))
		if !h.Insert(s, uint64(i)) {
			t.Fatalf("insert %q", s)
		}
	}
	for i := 0; i < 20000; i++ {
		s := fmt.Sprintf("key-%d-%s", i, strings.Repeat("x", i%50))
		if v, ok := h.Find(s); !ok || v != uint64(i) {
			t.Fatalf("find %q: %d,%v", s, v, ok)
		}
	}
	if m.Size() != 20000 {
		t.Fatalf("size %d", m.Size())
	}
}

// TestSignatureCollisions: keys engineered to collide on home cell still
// resolve correctly through full string comparison.
func TestSignatureCollisions(t *testing.T) {
	m := New(64)
	h := m.Handle()
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i, s := range keys {
		if !h.Insert(s, uint64(i+1)) {
			t.Fatalf("insert %q", s)
		}
	}
	for i, s := range keys {
		if v, ok := h.Find(s); !ok || v != uint64(i+1) {
			t.Fatalf("find %q", s)
		}
	}
}

func TestEmptyAndLongStrings(t *testing.T) {
	m := New(100)
	h := m.Handle()
	if !h.Insert("", 42) {
		t.Fatal("empty string insert")
	}
	if v, ok := h.Find(""); !ok || v != 42 {
		t.Fatal("empty string find")
	}
	long := strings.Repeat("z", maxStrLen)
	if !h.Insert(long, 7) {
		t.Fatal("max-length insert")
	}
	if v, ok := h.Find(long); !ok || v != 7 {
		t.Fatal("max-length find")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized key must panic")
		}
	}()
	h.Insert(strings.Repeat("z", maxStrLen+1), 1)
}

func TestInsertOrUpdateAggregation(t *testing.T) {
	m := New(100)
	h := m.Handle()
	add := func(c, d uint64) uint64 { return c + d }
	if !h.InsertOrUpdate("w", 3, add) {
		t.Fatal("first must insert")
	}
	if h.InsertOrUpdate("w", 4, add) {
		t.Fatal("second must update")
	}
	if v, _ := h.Find("w"); v != 7 {
		t.Fatalf("got %d", v)
	}
}

func TestQuickModel(t *testing.T) {
	f := func(ops []struct {
		Kind uint8
		Key  uint8
		Val  uint16
	}) bool {
		m := New(512)
		h := m.Handle()
		model := map[string]uint64{}
		for _, op := range ops {
			s := fmt.Sprintf("k%d", op.Key)
			v := uint64(op.Val) + 1
			switch op.Kind % 4 {
			case 0:
				_, p := model[s]
				if h.Insert(s, v) == p {
					return false
				}
				if !p {
					model[s] = v
				}
			case 1:
				want, p := model[s]
				got, ok := h.Find(s)
				if ok != p || (ok && got != want) {
					return false
				}
			case 2:
				_, p := model[s]
				if h.InsertOrUpdate(s, v, func(c, d uint64) uint64 { return c + d }) == p {
					return false
				}
				if p {
					model[s] += v
				} else {
					model[s] = v
				}
			case 3:
				_, p := model[s]
				if h.Delete(s) != p {
					return false
				}
				delete(model, s)
			}
		}
		for s, want := range model {
			if got, ok := h.Find(s); !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentWordCount(t *testing.T) {
	m := New(4096)
	words := make([]string, 200)
	for i := range words {
		words[i] = fmt.Sprintf("word%03d", i)
	}
	const goroutines = 8
	const perG = 20000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := m.Handle()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				h.InsertOrUpdate(words[r.Intn(len(words))], 1,
					func(c, d uint64) uint64 { return c + d })
			}
		}(int64(g))
	}
	wg.Wait()
	h := m.Handle()
	var sum uint64
	for _, w := range words {
		v, _ := h.Find(w)
		sum += v
	}
	if sum != goroutines*perG {
		t.Fatalf("lost updates: %d != %d", sum, goroutines*perG)
	}
}

func TestConcurrentUniqueInsert(t *testing.T) {
	m := New(8192)
	const goroutines = 8
	const keys = 4000
	var wins [goroutines]int
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := m.Handle()
			for i := 0; i < keys; i++ {
				if h.Insert(fmt.Sprintf("k%d", i), uint64(id)+1) {
					wins[id]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, w := range wins {
		total += w
	}
	if total != keys {
		t.Fatalf("insert successes %d want %d", total, keys)
	}
}

func TestRange(t *testing.T) {
	m := New(100)
	h := m.Handle()
	want := map[string]uint64{"a": 1, "b": 2, "c": 3}
	for s, v := range want {
		h.Insert(s, v)
	}
	h.Delete("b")
	got := map[string]uint64{}
	m.Range(func(s string, v uint64) bool { got[s] = v; return true })
	if len(got) != 2 || got["a"] != 1 || got["c"] != 3 {
		t.Fatalf("range got %v", got)
	}
}
