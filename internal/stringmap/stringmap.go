// Package stringmap implements the complex-key generalization outlined in
// §5.7 of the paper (the authors describe the design but leave the
// implementation as future work, §9): a concurrent linear-probing map
// from strings to 62-bit values where
//
//   - the table itself manages storage for keys: string bytes are copied
//     into append-only arena pages allocated per handle (the paper's
//     per-thread string pages);
//   - a cell's key word packs a 16-bit signature of the master hash next
//     to the 47-bit arena reference, so probing compares signatures first
//     and dereferences the arena only on signature match — restoring most
//     of linear probing's cache friendliness;
//   - the value word reuses the live/tombstone protocol of the core
//     table, so updates and deletions are single-word CAS operations.
//
// The table is bounded (sized at construction) like the paper's folklore
// base; deleted keys' arena space is reclaimed only wholesale via Reset,
// matching the paper's observation that string space is best garbage
// collected during migration/cleanup phases.
package stringmap

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/hashfn"
	"repro/internal/tables"
)

const (
	pendingBit = uint64(1) << 63
	sigShift   = 47
	sigMask    = uint64(1<<16-1) << sigShift
	refMask    = uint64(1)<<sigShift - 1

	markedBit = uint64(1) << 63
	liveBit   = uint64(1) << 62
	valueMask = liveBit - 1

	// MaxValue is the largest storable value.
	MaxValue = valueMask

	pageSize   = 1 << 16 // 64 KiB arena pages
	maxPages   = 1 << 31
	maxStrLen  = pageSize - 2
	lenHdrSize = 2
)

// arena is the shared page registry. Pages are immutable once filled;
// only the owning handle appends to its current page.
type arena struct {
	mu    sync.Mutex
	pages [][]byte
}

// newPage registers a fresh page and returns its index.
func (a *arena) newPage() uint32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.pages) >= maxPages {
		panic("stringmap: arena page space exhausted")
	}
	a.pages = append(a.pages, make([]byte, 0, pageSize))
	return uint32(len(a.pages) - 1)
}

// get returns the string stored at ref. The bytes are immutable, so the
// unsafe-free copy to string happens once at read.
func (a *arena) get(ref uint64) string {
	page := uint32(ref >> 16)
	off := uint32(ref & 0xFFFF)
	a.mu.Lock()
	p := a.pages[page]
	a.mu.Unlock()
	n := uint32(p[off]) | uint32(p[off+1])<<8
	return string(p[off+lenHdrSize : off+lenHdrSize+n])
}

// Map is a bounded concurrent string-keyed hash map.
type Map struct {
	//growt:atomic
	cells    []uint64 // interleaved key/value words
	capacity uint64
	shift    uint
	gen      uint64 // process-unique id tagging resumable cursors
	ar       arena
	size     atomic.Int64
}

// mapGen hands every Map a process-unique nonzero generation id for
// RangeFrom cursors (0 is reserved for "no cursor").
var mapGen atomic.Uint64

// New builds a map with capacity ≥ 2·expected (the paper's sizing rule).
//
//growt:exclusive -- construction: the map is unpublished
func New(expected uint64) *Map {
	capacity := 2 * expected
	if capacity < 8 {
		capacity = 8
	}
	logCap := uint(bits.Len64(capacity - 1))
	capacity = uint64(1) << logCap
	return &Map{
		cells:    make([]uint64, 2*capacity),
		capacity: capacity,
		shift:    64 - logCap,
		gen:      mapGen.Add(1),
	}
}

// Capacity returns the cell count.
func (m *Map) Capacity() uint64 { return m.capacity }

// Size returns the exact live element count (maintained with a shared
// atomic counter; contrast with §5.2's approximate scheme — string maps
// are not the contention hot path the paper optimizes, so exactness wins).
func (m *Map) Size() uint64 {
	n := m.size.Load()
	if n < 0 {
		return 0
	}
	return uint64(n)
}

func (m *Map) loadKey(i uint64) uint64 { return atomic.LoadUint64(&m.cells[2*i]) }
func (m *Map) loadVal(i uint64) uint64 { return atomic.LoadUint64(&m.cells[2*i+1]) }
func (m *Map) casKey(i, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&m.cells[2*i], old, new)
}
func (m *Map) casVal(i, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&m.cells[2*i+1], old, new)
}
func (m *Map) storeKey(i, k uint64) { atomic.StoreUint64(&m.cells[2*i], k) }
func (m *Map) storeVal(i, v uint64) { atomic.StoreUint64(&m.cells[2*i+1], v) }

func (m *Map) waitKey(i uint64) uint64 {
	for spins := 0; ; spins++ {
		kw := m.loadKey(i)
		if kw&pendingBit == 0 {
			return kw
		}
		if spins > 64 {
			runtime.Gosched()
		}
	}
}

// sigOf extracts the signature bits from the master hash: the index uses
// the top bits, the signature the least significant ones ("bits that were
// not used for finding the position", §5.7).
func sigOf(h uint64) uint64 { return (h & 0xFFFF) << sigShift }

// Handle is a goroutine-private accessor owning an arena page.
type Handle struct {
	m       *Map
	page    uint32
	pageOff uint32
	havePg  bool
}

// Handle returns a new accessor (§5.1 handles).
func (m *Map) Handle() *Handle { return &Handle{m: m} }

// alloc copies s into the handle's current page, returning the 47-bit
// arena reference. Strings longer than a page get a dedicated page, like
// the paper's "long strings use the general purpose allocator".
func (h *Handle) alloc(s string) uint64 {
	if len(s) > maxStrLen {
		panic(fmt.Sprintf("stringmap: key longer than %d bytes", maxStrLen))
	}
	need := uint32(len(s) + lenHdrSize)
	if !h.havePg || h.pageOff+need > pageSize {
		h.page = h.m.ar.newPage()
		h.pageOff = 0
		h.havePg = true
	}
	h.m.ar.mu.Lock()
	p := h.m.ar.pages[h.page]
	off := h.pageOff
	p = p[:off+need]
	p[off] = byte(len(s))
	p[off+1] = byte(len(s) >> 8)
	copy(p[off+lenHdrSize:], s)
	h.m.ar.pages[h.page] = p
	h.m.ar.mu.Unlock()
	h.pageOff += need
	return uint64(h.page)<<16 | uint64(off)
}

// Insert stores ⟨s,v⟩ if absent; returns true iff this call inserted.
func (h *Handle) Insert(s string, v uint64) bool {
	ok, _ := h.upsert(s, v, nil)
	return ok
}

// InsertOrUpdate inserts ⟨s,v⟩ or updates with up; true iff inserted.
func (h *Handle) InsertOrUpdate(s string, v uint64, up func(cur, d uint64) uint64) bool {
	ok, _ := h.upsert(s, v, up)
	return ok
}

// upsert implements both: with up==nil a duplicate refuses (insert
// semantics), otherwise it updates.
func (h *Handle) upsert(s string, v uint64, up func(cur, d uint64) uint64) (inserted, updated bool) {
	if v > MaxValue {
		panic("stringmap: value exceeds 62 bits")
	}
	hash := hashfn.HashString(s)
	sig := sigOf(hash)
	mask := h.m.capacity - 1
	i := hash >> h.m.shift
	ref := uint64(0)
	haveRef := false
	for probes := uint64(0); probes <= h.m.capacity; probes++ {
		kw := h.m.loadKey(i)
		if kw == 0 {
			if !haveRef {
				ref = h.alloc(s)
				haveRef = true
			}
			if h.m.casKey(i, 0, ref|sig|pendingBit) {
				h.m.storeVal(i, v|liveBit)
				h.m.storeKey(i, ref|sig)
				h.m.size.Add(1)
				return true, false
			}
			kw = h.m.loadKey(i)
		}
		if kw&sigMask == sig {
			if kw&pendingBit != 0 {
				kw = h.m.waitKey(i)
			}
			if h.m.ar.get(kw&refMask) == s {
				for {
					cur := h.m.loadVal(i)
					if cur&liveBit == 0 {
						// Tombstone owned by s: revive.
						if h.m.casVal(i, cur, v|liveBit) {
							h.m.size.Add(1)
							return true, false
						}
						continue
					}
					if up == nil {
						return false, false
					}
					nv := up(cur&valueMask, v)&valueMask | liveBit
					if h.m.casVal(i, cur, nv) {
						return false, true
					}
				}
			}
		}
		i = (i + 1) & mask
	}
	panic("stringmap: table full — size it to ≥2n")
}

// Find returns the value stored at s.
func (h *Handle) Find(s string) (uint64, bool) {
	hash := hashfn.HashString(s)
	sig := sigOf(hash)
	mask := h.m.capacity - 1
	i := hash >> h.m.shift
	for probes := uint64(0); probes <= h.m.capacity; probes++ {
		kw := h.m.loadKey(i)
		if kw == 0 {
			return 0, false
		}
		if kw&sigMask == sig && kw&pendingBit == 0 {
			if h.m.ar.get(kw&refMask) == s {
				v := h.m.loadVal(i)
				if v&liveBit == 0 {
					return 0, false
				}
				return v & valueMask, true
			}
		}
		i = (i + 1) & mask
	}
	return 0, false
}

// Update applies up to the element at s; false if absent.
func (h *Handle) Update(s string, d uint64, up func(cur, d uint64) uint64) bool {
	hash := hashfn.HashString(s)
	sig := sigOf(hash)
	mask := h.m.capacity - 1
	i := hash >> h.m.shift
	for probes := uint64(0); probes <= h.m.capacity; probes++ {
		kw := h.m.loadKey(i)
		if kw == 0 {
			return false
		}
		if kw&sigMask == sig && kw&pendingBit == 0 && h.m.ar.get(kw&refMask) == s {
			for {
				cur := h.m.loadVal(i)
				if cur&liveBit == 0 {
					return false
				}
				if h.m.casVal(i, cur, up(cur&valueMask, d)&valueMask|liveBit) {
					return true
				}
			}
		}
		i = (i + 1) & mask
	}
	return false
}

// Delete tombstones s; the arena bytes stay until Reset (the paper defers
// key-space reclamation to migration phases).
func (h *Handle) Delete(s string) bool {
	_, ok := h.LoadAndDelete(s)
	return ok
}

// LoadAndDelete tombstones s and returns the value the winning CAS
// removed (exact: the CAS is the linearization point). ok is false when
// s was absent.
func (h *Handle) LoadAndDelete(s string) (uint64, bool) {
	hash := hashfn.HashString(s)
	sig := sigOf(hash)
	mask := h.m.capacity - 1
	i := hash >> h.m.shift
	for probes := uint64(0); probes <= h.m.capacity; probes++ {
		kw := h.m.loadKey(i)
		if kw == 0 {
			return 0, false
		}
		if kw&sigMask == sig && kw&pendingBit == 0 && h.m.ar.get(kw&refMask) == s {
			for {
				cur := h.m.loadVal(i)
				if cur&liveBit == 0 {
					return 0, false
				}
				if h.m.casVal(i, cur, cur&^liveBit) {
					h.m.size.Add(-1)
					return cur & valueMask, true
				}
			}
		}
		i = (i + 1) & mask
	}
	return 0, false
}

// CompareAndDelete tombstones s iff its current value word equals want;
// the conditional CAS is the linearization point, so on true the removed
// value was exactly want at the instant of removal.
func (h *Handle) CompareAndDelete(s string, want uint64) bool {
	hash := hashfn.HashString(s)
	sig := sigOf(hash)
	mask := h.m.capacity - 1
	i := hash >> h.m.shift
	for probes := uint64(0); probes <= h.m.capacity; probes++ {
		kw := h.m.loadKey(i)
		if kw == 0 {
			return false
		}
		if kw&sigMask == sig && kw&pendingBit == 0 && h.m.ar.get(kw&refMask) == s {
			for {
				cur := h.m.loadVal(i)
				if cur&liveBit == 0 || cur&valueMask != want {
					return false
				}
				if h.m.casVal(i, cur, cur&^liveBit) {
					h.m.size.Add(-1)
					return true
				}
			}
		}
		i = (i + 1) & mask
	}
	return false
}

// Range calls f on every live element; quiescent use only.
func (m *Map) Range(f func(s string, v uint64) bool) {
	for i := uint64(0); i < m.capacity; i++ {
		kw := m.loadKey(i)
		if kw == 0 || kw&pendingBit != 0 {
			continue
		}
		v := m.loadVal(i)
		if v&liveBit == 0 {
			continue
		}
		if !f(m.ar.get(kw&refMask), v&valueMask) {
			return
		}
	}
}

// RangeFrom resumes Range at cur (the shape of tables.CursorRanger,
// with string keys). The map is bounded — no migrations — so the
// generation only guards against cursors from a different Map instance;
// a mismatch restarts from cell zero. Quiescent use only.
func (m *Map) RangeFrom(cur tables.Cursor, f func(s string, v uint64) bool) (tables.Cursor, bool) {
	pos := uint64(0)
	if cur.Gen == m.gen {
		pos = cur.Pos
	}
	for i := pos; i < m.capacity; i++ {
		kw := m.loadKey(i)
		if kw == 0 || kw&pendingBit != 0 {
			continue
		}
		v := m.loadVal(i)
		if v&liveBit == 0 {
			continue
		}
		if !f(m.ar.get(kw&refMask), v&valueMask) {
			if i+1 >= m.capacity {
				return tables.Cursor{Gen: m.gen}, true
			}
			return tables.Cursor{Gen: m.gen, Pos: i + 1}, false
		}
	}
	return tables.Cursor{Gen: m.gen}, true
}
