package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestHistBasics(t *testing.T) {
	var h Hist
	for _, v := range []uint64{0, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Errorf("Count = %d, want 6", s.Count)
	}
	if s.Sum != 1010 {
		t.Errorf("Sum = %d, want 1010", s.Sum)
	}
	if s.Max != 1000 {
		t.Errorf("Max = %d, want 1000", s.Max)
	}
	if s.Buckets[0] != 1 { // value 0
		t.Errorf("bucket 0 = %d, want 1", s.Buckets[0])
	}
	if s.Buckets[1] != 1 { // value 1
		t.Errorf("bucket 1 = %d, want 1", s.Buckets[1])
	}
	if s.Buckets[2] != 2 { // values 2,3
		t.Errorf("bucket 2 = %d, want 2", s.Buckets[2])
	}
	if got := s.Mean(); got != 1010/6 {
		t.Errorf("Mean = %d, want %d", got, 1010/6)
	}
}

func TestHistEmpty(t *testing.T) {
	var h Hist
	s := h.Snapshot()
	if s.Quantile(0.99) != 0 || s.Mean() != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
}

// TestQuantileErrorBound checks the log2 histogram's contract against
// a reference sort: for every q, the reported quantile is an upper
// bound on the exact order statistic and within a factor of two of it.
func TestQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dists := map[string]func() uint64{
		"uniform": func() uint64 { return uint64(rng.Intn(1_000_000)) + 1 },
		"exp":     func() uint64 { return uint64(rng.ExpFloat64()*50_000) + 1 },
		"bimodal": func() uint64 {
			if rng.Intn(100) < 95 {
				return uint64(rng.Intn(2_000)) + 1
			}
			return uint64(rng.Intn(5_000_000)) + 1_000_000
		},
	}
	for name, draw := range dists {
		var h Hist
		vals := make([]uint64, 20_000)
		for i := range vals {
			vals[i] = draw()
			h.Observe(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		s := h.Snapshot()
		for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999, 1.0} {
			rank := int(math.Ceil(q * float64(len(vals))))
			if rank < 1 {
				rank = 1
			}
			exact := vals[rank-1]
			got := s.Quantile(q)
			if got < exact {
				t.Errorf("%s q=%v: estimate %d below exact %d", name, q, got, exact)
			}
			if exact > 0 && got >= 2*exact {
				t.Errorf("%s q=%v: estimate %d not within 2x of exact %d", name, q, got, exact)
			}
		}
		if s.Max != vals[len(vals)-1] {
			t.Errorf("%s: Max = %d, want %d", name, s.Max, vals[len(vals)-1])
		}
	}
}

// TestHistConcurrentMerge has G writers hammer private histograms plus
// one shared histogram concurrently (snapshots racing with writers),
// then checks the merged private snapshots and the quiesced shared
// snapshot agree on every total. Run under -race this also proves
// Observe/Snapshot need no external synchronization.
func TestHistConcurrentMerge(t *testing.T) {
	const goroutines, perG = 8, 5000
	var shared Hist
	private := make([]Hist, goroutines)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// A snapshot reader racing with the writers: values may be torn
	// between fields, but each load must be race-free and each bucket
	// monotone.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := shared.Snapshot()
			var total uint64
			for _, c := range s.Buckets {
				total += c
			}
			if total < last {
				t.Error("bucket total went backwards")
				return
			}
			last = total
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				v := uint64(rng.Intn(1 << 20))
				shared.Observe(v)
				private[g].Observe(v)
			}
		}(g)
	}
	// Let the reader race against the writers for a moment, then stop
	// it and wait for everything.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	<-done

	var merged HistSnapshot
	for g := range private {
		merged = merged.Merge(private[g].Snapshot())
	}
	got := shared.Snapshot()
	if merged.Count != goroutines*perG || got.Count != merged.Count {
		t.Fatalf("Count: merged=%d shared=%d want=%d", merged.Count, got.Count, goroutines*perG)
	}
	if got.Sum != merged.Sum {
		t.Fatalf("Sum: merged=%d shared=%d", merged.Sum, got.Sum)
	}
	if got.Max != merged.Max {
		t.Fatalf("Max: merged=%d shared=%d", merged.Max, got.Max)
	}
	if got.Buckets != merged.Buckets {
		t.Fatal("bucket contents diverge between merged privates and shared")
	}
}

func TestHistSnapshotSubWindow(t *testing.T) {
	var h Hist
	h.Observe(10)
	h.Observe(20)
	before := h.Snapshot()
	h.Observe(1000)
	h.Observe(2000)
	win := h.Snapshot().Sub(before)
	if win.Count != 2 || win.Sum != 3000 {
		t.Fatalf("window = {Count:%d Sum:%d}, want {2 3000}", win.Count, win.Sum)
	}
	if got := win.Quantile(1.0); got < 2000 || got >= 4000 {
		t.Fatalf("window max-quantile = %d, want in [2000, 4000)", got)
	}
}

func TestObserveSince(t *testing.T) {
	var h Hist
	h.ObserveSince(time.Now().Add(-time.Millisecond))
	s := h.Snapshot()
	if s.Count != 1 || s.Max < uint64(time.Millisecond) {
		t.Fatalf("ObserveSince recorded {Count:%d Max:%d}", s.Count, s.Max)
	}
	// A start time in the future must clamp to zero, not wrap.
	h.ObserveSince(time.Now().Add(time.Hour))
	if s := h.Snapshot(); s.Max > uint64(time.Minute) {
		t.Fatalf("future start wrapped: Max=%d", s.Max)
	}
}

func TestBucketUpper(t *testing.T) {
	cases := map[int]uint64{
		0:  0,
		1:  1,
		2:  3,
		3:  7,
		10: 1023,
		63: 1<<63 - 1,
		64: math.MaxUint64,
	}
	for i, want := range cases {
		if got := bucketUpper(i); got != want {
			t.Errorf("bucketUpper(%d) = %d, want %d", i, got, want)
		}
	}
}
