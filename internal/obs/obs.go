// Package obs is the observability core: allocation-free,
// dependency-free metric primitives safe for //growt:hotpath code, plus
// a process-wide registry and two exposition encodings (Prometheus text
// and mergeable JSON snapshots).
//
// The paper's §8 evaluation lives on tail behavior under contention —
// and so do the optimizations queued behind it (amortized per-bucket
// migration, hot-path overhead hunts). Measuring a tail from inside the
// server requires instruments whose own cost is invisible next to the
// operations they observe:
//
//   - Counter is sharded across cache-line-padded slots (internal/pad),
//     so concurrent increments from many goroutines do not fight over
//     one line; Add is one padded atomic add.
//   - Gauge is a single padded int64.
//   - Hist is a lock-free fixed-bucket log2 histogram: Observe performs
//     three atomic adds and a bounded max-CAS, no allocation, no lock.
//     Snapshots are plain value structs that merge and subtract, so a
//     load generator can scrape twice and extract the quantiles of
//     exactly its measured window.
//
// Registration (Registry.Counter/Gauge/Hist) is get-or-create by
// rendered name and interns nothing per call afterwards: instrument
// construction happens once at subsystem init, and the returned pointer
// is what hot code uses. The package depends only on the standard
// library and internal/pad, so every layer — core tables, cache,
// server — can import it without cycles.
//
// Exposition is dual-surface: Registry.WritePrometheus renders the
// classic text format (growd serves it at /metrics on its -debug
// listener), and Registry.Snapshot returns a JSON-marshalable snapshot
// (growd serves it over the wire as the STATS opcode, so a client can
// scrape server-side figures through the same pipelined connection it
// measures with). See docs/OBSERVABILITY.md for the metric inventory.
package obs

import (
	"sort"
	"sync"
)

// Registry is a named collection of metrics. The zero value is not
// usable — build with NewRegistry. All methods are safe for concurrent
// use; registration takes a mutex, reads of registered instruments do
// not.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Hist
	collectors []func()
}

// Default is the process-wide registry. Library subsystems (core
// migration metrics, cache counters) register here; growd exposes it
// at /metrics and over the STATS opcode. Tests that need isolated
// counts build their own Registry instead.
var Default = NewRegistry()

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Hist),
	}
}

// Counter returns the counter registered under name (get-or-create).
// labels are alternating key/value pairs baked into the series name:
// Counter("ops_total", "op", "get") is the series ops_total{op="get"}.
// Invalid names and odd label lists panic — registration runs at
// subsystem init, where a loud failure beats a silently mangled series.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	full := seriesName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[full]
	if !ok {
		c = newCounter()
		r.counters[full] = c
	}
	return c
}

// Gauge returns the gauge registered under name (get-or-create).
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	full := seriesName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[full]
	if !ok {
		g = &Gauge{}
		r.gauges[full] = g
	}
	return g
}

// Hist returns the histogram registered under name (get-or-create).
func (r *Registry) Hist(name string, labels ...string) *Hist {
	full := seriesName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[full]
	if !ok {
		h = &Hist{}
		r.hists[full] = h
	}
	return h
}

// RegisterCollector adds a hook that runs at the start of every
// Snapshot (and therefore every Prometheus render, which snapshots
// internally). Collectors refresh pull-style sources — the
// runtime/metrics bridge samples GC and scheduler state this way —
// by setting gauges on the registry; they run outside the registry
// lock, so they may call Gauge/Counter/Hist freely.
func (r *Registry) RegisterCollector(f func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, f)
}

// Snapshot captures every registered metric at one point in time. The
// maps are keyed by full series name (labels included). Snapshots are
// plain values: marshal them, merge them, subtract them.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	collectors := make([]func(), len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()
	for _, f := range collectors {
		f()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters: make(map[string]uint64, len(r.counters)),
		Gauges:   make(map[string]int64, len(r.gauges)),
		Hists:    make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Hists[name] = h.Snapshot()
	}
	return s
}

// Snapshot is a point-in-time capture of a Registry, shaped for JSON
// (the STATS opcode body). Counter and histogram contents are
// monotone, so the difference of two snapshots of the same registry is
// the activity between them — Sub gives a load generator the exact
// histogram of its measured window.
type Snapshot struct {
	Counters map[string]uint64       `json:"counters,omitempty"`
	Gauges   map[string]int64        `json:"gauges,omitempty"`
	Hists    map[string]HistSnapshot `json:"hists,omitempty"`
}

// Sub returns the activity between prev and s: counters and histogram
// contents are subtracted (saturating at zero, so a restarted server
// yields zeros, not garbage); gauges keep s's current value — a gauge
// has no meaningful delta.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters: make(map[string]uint64, len(s.Counters)),
		Gauges:   make(map[string]int64, len(s.Gauges)),
		Hists:    make(map[string]HistSnapshot, len(s.Hists)),
	}
	for name, v := range s.Counters {
		d.Counters[name] = satSub(v, prev.Counters[name])
	}
	for name, v := range s.Gauges {
		d.Gauges[name] = v
	}
	for name, h := range s.Hists {
		d.Hists[name] = h.Sub(prev.Hists[name])
	}
	return d
}

// Counter returns the named counter's value (0 when absent).
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Gauge returns the named gauge's value (0 when absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Hist returns the named histogram's snapshot (zero when absent).
func (s Snapshot) Hist(name string) HistSnapshot { return s.Hists[name] }

func satSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// seriesName renders name plus alternating label key/value pairs into
// the canonical series string: name{k1="v1",k2="v2"}. Labels are
// rendered in the given order; callers use a fixed order per family so
// equal series render equal strings.
func seriesName(name string, labels []string) string {
	if !validMetricName(name) {
		panic("obs: invalid metric name " + name)
	}
	if len(labels) == 0 {
		return name
	}
	if len(labels)%2 != 0 {
		panic("obs: odd label list for " + name)
	}
	out := name + "{"
	for i := 0; i < len(labels); i += 2 {
		if !validLabelName(labels[i]) {
			panic("obs: invalid label name " + labels[i] + " for " + name)
		}
		if i > 0 {
			out += ","
		}
		out += labels[i] + `="` + escapeLabel(labels[i+1]) + `"`
	}
	return out + "}"
}

// familyOf splits a full series name into its family (the bare metric
// name) and the rendered label block ("" when unlabeled).
func familyOf(series string) (family, labelBlock string) {
	for i := 0; i < len(series); i++ {
		if series[i] == '{' {
			return series[:i], series[i:]
		}
	}
	return series, ""
}

// validMetricName enforces the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if len(s) == 0 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName enforces [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(s string) bool {
	if len(s) == 0 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

// sortedKeys returns m's keys in sorted order (stable exposition).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
