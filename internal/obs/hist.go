package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count: one bucket per possible
// bit-length of a uint64 value, plus bucket 0 for the value zero.
// Bucket i (i ≥ 1) holds values v with 2^(i-1) ≤ v < 2^i; its upper
// bound is 2^i − 1. Factor-of-two buckets cost nothing to index
// (bits.Len64) and bound every quantile estimate within 2× of exact —
// plenty to tell a 50 µs p99 from a 5 ms migration stall.
const histBuckets = 65

// Hist is a lock-free log2 latency histogram. Observe is three atomic
// adds plus a bounded max-CAS — no locks, no allocation — so it is safe
// inside //growt:hotpath code. Buckets deliberately share cache lines
// (a 65×128-byte padded layout would cost 8 KiB per histogram and the
// write rate per histogram is far below per-counter rates); the count
// and sum words, hit on every Observe, get their own padding via the
// struct layout below.
type Hist struct {
	//growt:atomic
	b [histBuckets]atomic.Uint64

	n   atomic.Uint64
	sum atomic.Uint64
	max atomic.Uint64
}

// Observe records v (typically nanoseconds; the metric name carries
// the unit).
//
//growt:hotpath
func (h *Hist) Observe(v uint64) {
	h.b[bits.Len64(v)].Add(1)
	h.n.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur {
			break
		}
		if h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveSince records the time elapsed since start, in nanoseconds.
//
//growt:hotpath
func (h *Hist) ObserveSince(start time.Time) {
	d := time.Since(start)
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Snapshot captures the histogram. Concurrent Observes may land
// between the field reads (count/sum/buckets can disagree by the few
// in-flight observations); the snapshot is self-consistent once
// writers quiesce, and windowed deltas via Sub inherit the same
// tolerance.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := 0; i < histBuckets; i++ {
		s.Buckets[i] = h.b[i].Load()
	}
	s.Count = h.n.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// HistSnapshot is a point-in-time copy of a Hist: a plain value that
// marshals to JSON, merges across shards or servers, and subtracts to
// form windows.
type HistSnapshot struct {
	Count   uint64              `json:"count"`
	Sum     uint64              `json:"sum"`
	Max     uint64              `json:"max"`
	Buckets [histBuckets]uint64 `json:"buckets"`
}

// Merge returns the combination of s and o, as if every observation
// recorded in either had been recorded in one histogram.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	out := s
	out.Count += o.Count
	out.Sum += o.Sum
	if o.Max > out.Max {
		out.Max = o.Max
	}
	for i := range out.Buckets {
		out.Buckets[i] += o.Buckets[i]
	}
	return out
}

// Sub returns the observations in s but not in prev — the activity
// window between two snapshots of the same histogram. Subtraction
// saturates at zero so a server restart between scrapes yields an
// empty window rather than wrapped garbage. Max carries s's value: a
// maximum cannot be un-observed.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	out := s
	out.Count = satSub(s.Count, prev.Count)
	out.Sum = satSub(s.Sum, prev.Sum)
	for i := range out.Buckets {
		out.Buckets[i] = satSub(s.Buckets[i], prev.Buckets[i])
	}
	return out
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1) of
// the recorded values: the upper bound of the bucket containing the
// ceil(q·n)-th smallest observation, clamped to the exact tracked Max
// (every observation is ≤ Max, so the clamp only tightens the top
// bucket's bound — a p99 can never read above the max). Because
// buckets span a factor of two, the true quantile lies in
// (result/2, result]. Returns 0 for an empty snapshot; q ≥ 1 returns
// the bound of the highest occupied bucket.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen uint64
	for i, c := range s.Buckets {
		seen += c
		if seen >= rank {
			return s.clampMax(bucketUpper(i))
		}
	}
	return s.clampMax(bucketUpper(histBuckets - 1))
}

// clampMax tightens a bucket upper bound with the exact maximum (in a
// Sub window Max is the cumulative maximum, still a valid upper bound
// for every windowed observation). Max of zero means every recorded
// value was zero, in which case the bound is already zero.
func (s HistSnapshot) clampMax(v uint64) uint64 {
	if s.Max > 0 && s.Max < v {
		return s.Max
	}
	return v
}

// Mean returns the average recorded value (0 when empty).
func (s HistSnapshot) Mean() uint64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// bucketUpper is the largest value bucket i can hold: 0 for bucket 0,
// 2^i − 1 for the rest (saturating at MaxUint64 for the top bucket).
func bucketUpper(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}
