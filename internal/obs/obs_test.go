package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrentExact(t *testing.T) {
	c := newCounter()
	const goroutines, perG = 16, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("Counter.Value = %d, want %d", got, goroutines*perG)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Add(5)
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Fatalf("Gauge.Value = %d, want 3", got)
	}
	g.Set(-7)
	if got := g.Value(); got != -7 {
		t.Fatalf("Gauge.Value after Set = %d, want -7", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("ops_total", "op", "get")
	b := r.Counter("ops_total", "op", "get")
	if a != b {
		t.Fatal("same series name must return the same counter")
	}
	c := r.Counter("ops_total", "op", "set")
	if a == c {
		t.Fatal("distinct labels must return distinct counters")
	}
	if h1, h2 := r.Hist("lat_nanos"), r.Hist("lat_nanos"); h1 != h2 {
		t.Fatal("same hist name must return the same hist")
	}
	if g1, g2 := r.Gauge("depth"), r.Gauge("depth"); g1 != g2 {
		t.Fatal("same gauge name must return the same gauge")
	}
}

func TestRegistryInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, tc := range []struct {
		name   string
		labels []string
	}{
		{"bad-name", nil},
		{"", nil},
		{"1leading", nil},
		{"ok", []string{"odd"}},
		{"ok", []string{"bad-label", "v"}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Counter(%q, %v) did not panic", tc.name, tc.labels)
				}
			}()
			r.Counter(tc.name, tc.labels...)
		}()
	}
}

func TestRegistrySnapshotAndSub(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops_total").Add(10)
	r.Gauge("depth").Set(4)
	r.Hist("lat_nanos").Observe(100)

	before := r.Snapshot()
	r.Counter("ops_total").Add(5)
	r.Gauge("depth").Set(9)
	r.Hist("lat_nanos").Observe(200)
	r.Hist("lat_nanos").Observe(300)
	after := r.Snapshot()

	win := after.Sub(before)
	if got := win.Counter("ops_total"); got != 5 {
		t.Errorf("window counter = %d, want 5", got)
	}
	if got := win.Gauge("depth"); got != 9 {
		t.Errorf("window gauge = %d, want current value 9", got)
	}
	if h := win.Hist("lat_nanos"); h.Count != 2 || h.Sum != 500 {
		t.Errorf("window hist = {Count:%d Sum:%d}, want {2 500}", h.Count, h.Sum)
	}
	if got := win.Counter("absent"); got != 0 {
		t.Errorf("absent counter = %d, want 0", got)
	}
}

func TestSnapshotSubSaturates(t *testing.T) {
	cur := Snapshot{Counters: map[string]uint64{"c": 3}}
	prev := Snapshot{Counters: map[string]uint64{"c": 10}}
	if got := cur.Sub(prev).Counter("c"); got != 0 {
		t.Fatalf("saturating sub = %d, want 0", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("growt_ops_total", "op", "get").Add(7)
	r.Counter("growt_ops_total", "op", "set").Add(3)
	r.Gauge("growt_conns").Set(2)
	h := r.Hist("growt_lat_nanos", "op", "get")
	h.Observe(3) // bucket le=3
	h.Observe(3)
	h.Observe(100) // bucket le=127

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE growt_ops_total counter\n",
		`growt_ops_total{op="get"} 7` + "\n",
		`growt_ops_total{op="set"} 3` + "\n",
		"# TYPE growt_conns gauge\n",
		"growt_conns 2\n",
		"# TYPE growt_lat_nanos histogram\n",
		`growt_lat_nanos_bucket{op="get",le="3"} 2` + "\n",
		`growt_lat_nanos_bucket{op="get",le="127"} 3` + "\n",
		`growt_lat_nanos_bucket{op="get",le="+Inf"} 3` + "\n",
		`growt_lat_nanos_sum{op="get"} 106` + "\n",
		`growt_lat_nanos_count{op="get"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// One TYPE header per family, even with several series.
	if n := strings.Count(out, "# TYPE growt_ops_total counter"); n != 1 {
		t.Errorf("counter family declared %d times, want 1", n)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "k", "a\"b\\c\nd").Add(1)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `c_total{k="a\"b\\c\nd"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("escaped series %q missing in:\n%s", want, sb.String())
	}
}

func TestAllocationFreeHotPaths(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Hist("h_nanos")
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Errorf("Counter.Add allocates %.1f per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Add(1) }); n != 0 {
		t.Errorf("Gauge.Add allocates %.1f per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); n != 0 {
		t.Errorf("Hist.Observe allocates %.1f per op, want 0", n)
	}
}
