package obs

import (
	"runtime"
	"unsafe"

	"repro/internal/pad"
)

// shardCount is the number of padded slots per Counter: the smallest
// power of two ≥ GOMAXPROCS at package init, so concurrent writers
// spread across distinct cache lines. Fixed at init — resizing shards
// at runtime would race with hot-path writers for no benefit.
var (
	shardCount = ceilPow2(runtime.GOMAXPROCS(0))
	shardMask  = uint64(shardCount - 1)
)

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Counter is a monotonically increasing sharded counter. Add touches a
// single cache-line-padded slot chosen by the caller's stack address,
// so goroutines running on different Ps rarely collide on a line.
// Value sums the shards (approximate during concurrent writes, exact
// once writers quiesce — the usual sharded-counter contract).
type Counter struct {
	//growt:atomic
	s []pad.Uint64
}

//growt:exclusive
func newCounter() *Counter {
	return &Counter{s: make([]pad.Uint64, shardCount)}
}

// shardIdx picks a shard from the address of a stack local. Distinct
// goroutines live on distinct stacks, so the high bits differ; the
// Fibonacci multiplier spreads them across the shard space. The
// pointer is converted forward to uintptr in a single expression and
// never dereferenced, so the local does not escape — Add stays
// allocation-free.
//
//growt:hotpath
func shardIdx() uint64 {
	var p byte
	return (uint64(uintptr(unsafe.Pointer(&p))) * 0x9E3779B97F4A7C15) >> 32 & shardMask
}

// Add increments the counter by n.
//
//growt:hotpath
func (c *Counter) Add(n uint64) {
	c.s[shardIdx()].Add(n)
}

// Value returns the sum of all shards.
func (c *Counter) Value() uint64 {
	var total uint64
	for i := 0; i < len(c.s); i++ {
		total += c.s[i].Load()
	}
	return total
}

// Gauge is a settable signed value on its own cache line (current
// connections, queue depth, sweep cursor position).
type Gauge struct {
	v pad.Int64
}

// Add moves the gauge by d (negative to decrease).
//
//growt:hotpath
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Set replaces the gauge value.
//
//growt:hotpath
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }
