package obs

import (
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): `# TYPE` headers per family,
// series sorted by name, histograms as cumulative `_bucket{le=...}`
// series plus `_sum` and `_count`. Exposition is a cold path — it
// allocates freely; only the record side of obs is budgeted.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()

	lastFamily := ""
	for _, name := range sortedKeys(s.Counters) {
		family, _ := familyOf(name)
		if family != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", family); err != nil {
				return err
			}
			lastFamily = family
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}

	lastFamily = ""
	for _, name := range sortedKeys(s.Gauges) {
		family, _ := familyOf(name)
		if family != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", family); err != nil {
				return err
			}
			lastFamily = family
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}

	lastFamily = ""
	for _, name := range sortedKeys(s.Hists) {
		family, labels := familyOf(name)
		if family != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", family); err != nil {
				return err
			}
			lastFamily = family
		}
		if err := writePromHist(w, family, labels, s.Hists[name]); err != nil {
			return err
		}
	}
	return nil
}

// writePromHist emits one histogram series: cumulative buckets up to
// the highest occupied one, the mandatory +Inf bucket, then sum and
// count. le bounds are the raw log2 bucket upper bounds in the
// metric's own unit (names carry units, e.g. _nanos).
func writePromHist(w io.Writer, family, labels string, h HistSnapshot) error {
	top := -1
	for i, c := range h.Buckets {
		if c > 0 {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += h.Buckets[i]
		le := strconv.FormatUint(bucketUpper(i), 10)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", family, withLE(labels, le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", family, withLE(labels, "+Inf"), h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", family, labels, h.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", family, labels, h.Count)
	return err
}

// withLE splices an le label into a rendered label block:
// "" + 42 → {le="42"}; {op="get"} + 42 → {op="get",le="42"}.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}
