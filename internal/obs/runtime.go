package obs

import (
	"math"
	"runtime/metrics"
	"sync"
)

// RegisterRuntimeMetrics bridges the Go runtime's own instrumentation
// into r as gauges, refreshed by a collector on every Snapshot (and
// therefore on every /metrics render and STATS reply). The point is
// attribution: when a slow-op trace shows a stall, these gauges say
// whether the collector or the scheduler — not the table — owned it.
//
//	go_gc_pause_{p50,p99,max}_nanos   stop-the-world pause distribution
//	go_sched_latency_{p50,p99}_nanos  goroutine ready→run latency
//	go_heap_live_bytes                live heap objects
//	go_heap_goal_bytes                next GC trigger target
//	go_goroutines                     current goroutine count
//	go_gc_cycles                      completed GC cycles
//
// The pause and latency distributions are cumulative since process
// start (runtime/metrics semantics); windowed percentiles come from
// subtracting scrapes client-side like every other gauge.
func RegisterRuntimeMetrics(r *Registry) {
	samples := []metrics.Sample{
		{Name: "/gc/pauses:seconds"},
		{Name: "/sched/latencies:seconds"},
		{Name: "/memory/classes/heap/objects:bytes"},
		{Name: "/gc/heap/goal:bytes"},
		{Name: "/sched/goroutines:goroutines"},
		{Name: "/gc/cycles/total:gc-cycles"},
	}
	gcP50 := r.Gauge("go_gc_pause_p50_nanos")
	gcP99 := r.Gauge("go_gc_pause_p99_nanos")
	gcMax := r.Gauge("go_gc_pause_max_nanos")
	schedP50 := r.Gauge("go_sched_latency_p50_nanos")
	schedP99 := r.Gauge("go_sched_latency_p99_nanos")
	heapLive := r.Gauge("go_heap_live_bytes")
	heapGoal := r.Gauge("go_heap_goal_bytes")
	goroutines := r.Gauge("go_goroutines")
	gcCycles := r.Gauge("go_gc_cycles")

	// Snapshot can run concurrently (STATS opcode and a /metrics scrape
	// at once); the samples slice is shared scratch, so serialize reads.
	var mu sync.Mutex
	r.RegisterCollector(func() {
		mu.Lock()
		defer mu.Unlock()
		metrics.Read(samples)
		if h := samples[0].Value.Float64Histogram(); h != nil {
			gcP50.Set(histQuantileNanos(h, 0.50))
			gcP99.Set(histQuantileNanos(h, 0.99))
			gcMax.Set(histQuantileNanos(h, 1.0))
		}
		if h := samples[1].Value.Float64Histogram(); h != nil {
			schedP50.Set(histQuantileNanos(h, 0.50))
			schedP99.Set(histQuantileNanos(h, 0.99))
		}
		heapLive.Set(int64(samples[2].Value.Uint64()))
		heapGoal.Set(int64(samples[3].Value.Uint64()))
		goroutines.Set(int64(samples[4].Value.Uint64()))
		gcCycles.Set(int64(samples[5].Value.Uint64()))
	})
}

// histQuantileNanos returns an upper bound (in nanoseconds) for the
// q-quantile of a runtime Float64Histogram whose buckets are seconds.
// Mirrors HistSnapshot.Quantile: the bound of the bucket holding the
// ceil(q·n)-th observation. An unbounded top bucket falls back to its
// lower edge — the runtime's histograms cap their real range, so this
// only triggers for pathological outliers. Empty distributions yield 0.
func histQuantileNanos(h *metrics.Float64Histogram, q float64) int64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if c > 0 && seen >= rank {
			// Bucket i spans [Buckets[i], Buckets[i+1]).
			upper := h.Buckets[i+1]
			if math.IsInf(upper, +1) {
				upper = h.Buckets[i]
			}
			return secondsToNanos(upper)
		}
	}
	return 0
}

func secondsToNanos(s float64) int64 {
	if math.IsInf(s, +1) || s >= math.MaxInt64/1e9 {
		return math.MaxInt64
	}
	if s <= 0 || math.IsInf(s, -1) {
		return 0
	}
	return int64(s * 1e9)
}
