package trace

import (
	"bytes"
	"encoding/json"
	"runtime"
	"sync"
	"testing"
)

// newRingShards builds a ring with a known shard count regardless of
// the machine the test runs on, by pinning GOMAXPROCS around the
// constructor (shard count is fixed at construction).
func newRingShards(t *testing.T, shards, perShard int) *Ring {
	t.Helper()
	old := runtime.GOMAXPROCS(shards)
	r := NewRing(perShard)
	runtime.GOMAXPROCS(old)
	if len(r.shards) != shards {
		t.Fatalf("shard count = %d, want %d", len(r.shards), shards)
	}
	return r
}

// TestFlightRecorderWraparound pins the oldest-overwrite semantics: a
// single-shard ring of 64 slots receiving 256 events retains exactly
// the newest 64, in append (= time) order.
func TestFlightRecorderWraparound(t *testing.T) {
	r := newRingShards(t, 1, 64)
	const total = 256
	for i := 0; i < total; i++ {
		r.Append(KindExecEnd, uint64(i), uint64(i)+1, 0)
	}
	evs := r.Drain()
	if len(evs) != 64 {
		t.Fatalf("drained %d events, want 64", len(evs))
	}
	for i, e := range evs {
		want := uint64(total - 64 + i)
		if e.A0 != want {
			t.Errorf("event %d: A0 = %d, want %d (oldest must be overwritten)", i, e.A0, want)
		}
		if i > 0 && e.TS < evs[i-1].TS {
			t.Errorf("event %d: TS %d precedes predecessor %d", i, e.TS, evs[i-1].TS)
		}
	}
}

// TestFlightRecorderConcurrent hammers one ring from many writers
// while a reader drains in a loop. Every drained record must satisfy
// the writers' invariant (A1 = A0+1, A2 = A0 XOR magic) — a torn read
// mixing two records would break it — and every drain must come back
// time-ordered. Run under -race this also proves the seqlock protocol
// is data-race clean.
func TestFlightRecorderConcurrent(t *testing.T) {
	const magic = 0x9E3779B97F4A7C15
	r := NewRing(256)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 20000; i++ {
				a0 := uint64(g)<<32 | uint64(i)
				r.Append(KindExecStart, a0, a0+1, a0^magic)
			}
		}(g)
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			evs := r.Drain()
			for i, e := range evs {
				if e.Kind != KindExecStart {
					t.Errorf("drained kind %d, want %d", e.Kind, KindExecStart)
				}
				if e.A1 != e.A0+1 || e.A2 != e.A0^magic {
					t.Errorf("torn record: A0=%x A1=%x A2=%x", e.A0, e.A1, e.A2)
				}
				if i > 0 && e.TS < evs[i-1].TS {
					t.Errorf("drain not time-ordered at %d: %d < %d", i, e.TS, evs[i-1].TS)
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()
}

// TestFlightRecorderAppendAllocs pins the hot-path contract: Append
// (and the package-level Emit) never allocate.
func TestFlightRecorderAppendAllocs(t *testing.T) {
	r := NewRing(256)
	if n := testing.AllocsPerRun(1000, func() {
		r.Append(KindMigCopySlice, 1, 2, 3)
	}); n != 0 {
		t.Fatalf("Append allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		Emit(KindSweepSlice, 4, 5, 6)
	}); n != 0 {
		t.Fatalf("Emit allocates %v per run, want 0", n)
	}
}

// TestFlightRecorderKindNames checks every enum member decodes to a
// distinct nonempty name and out-of-range values (including the
// reserved zero) decode to "".
func TestFlightRecorderKindNames(t *testing.T) {
	seen := map[string]Kind{}
	for k := KindExecStart; k <= KindEvictStorm; k++ {
		name := KindName(k)
		if name == "" {
			t.Errorf("kind %d has no name", k)
			continue
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("kinds %d and %d share name %q", prev, k, name)
		}
		seen[name] = k
	}
	if got := KindName(0); got != "" {
		t.Errorf("KindName(0) = %q, want empty", got)
	}
	if got := KindName(KindEvictStorm + 1); got != "" {
		t.Errorf("KindName(out of range) = %q, want empty", got)
	}
}

// TestFlightRecorderWriteJSON checks the rendered drain is well-formed
// JSON carrying kind names.
func TestFlightRecorderWriteJSON(t *testing.T) {
	r := newRingShards(t, 1, 64)
	r.Append(KindExecEnd, 7, 0, 1500)
	r.Append(KindMigFlip, 4096, 2, 0)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, r.Drain()); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var out []struct {
		TS   int64  `json:"ts_nanos"`
		Kind string `json:"kind"`
		A0   uint64 `json:"a0"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("rendered drain is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(out) != 2 {
		t.Fatalf("rendered %d events, want 2", len(out))
	}
	if out[0].Kind != "exec_end" || out[1].Kind != "mig_flip" {
		t.Errorf("kinds = %q, %q; want exec_end, mig_flip", out[0].Kind, out[1].Kind)
	}
	if out[0].TS > out[1].TS {
		t.Errorf("events out of order: %d > %d", out[0].TS, out[1].TS)
	}
}
