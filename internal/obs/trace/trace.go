// Package trace is the always-on flight recorder: a sharded, lock-free
// ring of fixed-size binary event records that the hot paths append to
// without allocating and a drain API that snapshots the recent past in
// time-merged order.
//
// Aggregate metrics (internal/obs) can bound tail behavior — a p99
// migration pause, a probe-length knee — but cannot explain a single
// slow operation. The recorder keeps the raw event stream the paper's
// pause analysis needs: every exec start/end, every migration phase
// transition, every sweep slice, cheap enough to leave on in
// production. Events overwrite oldest-first; the ring is a window onto
// the recent past, not a log.
//
// Concurrency design: each shard is a power-of-two slot array with a
// cache-line-padded ticket cursor (fetch-and-add claims a slot; no
// CAS loops, writers never wait). Each slot is a per-slot seqlock of
// six atomic words — sequence, timestamp, kind, and three arguments.
// A writer stores seq=2·ticket+1 (odd: write in progress), then the
// payload, then seq=2·ticket+2 (even: complete). A reader accepts a
// slot only when the sequence is even, nonzero, and unchanged across
// the payload reads, so drained records are never torn; every access
// is atomic, so the scheme is race-detector clean. Under extreme
// wraparound contention two writers a full ring apart can race on one
// slot — the loser's record survives untorn but possibly older; Drain
// sorts by timestamp, so the merged view stays ordered either way.
package trace

import (
	"encoding/json"
	"io"
	"runtime"
	"sort"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/pad"
)

// Kind identifies what a trace event records. Kind zero is reserved:
// a slot whose kind would be zero has never been written, so decoders
// can treat it as empty without a separate occupancy bitmap.
type Kind uint8

// The event kinds, one per instrumented transition. Arguments are
// positional (A0..A2); the per-kind conventions are:
//
//	ExecStart   A0=opcode  A1=request id   A2=unused
//	ExecEnd     A0=opcode  A1=status       A2=latency nanos
//	Enqueue     A0=request id  A1=queue depth  A2=unused
//	MigArm      A0=src capacity  A1=dst capacity  A2=unused
//	MigAdopt    A0=total blocks  A1=blocks done  A2=unused
//	MigCopySlice A0=block index  A1=cells moved  A2=unused
//	MigDrain    A0=handles drained  A1,A2=unused
//	MigFlip     A0=cells moved  A1=new generation  A2=unused
//	MigAbort    A0=src capacity  A1,A2=unused
//	SweepSlice  A0=entries visited  A1=entries removed  A2=unused
//	EvictStorm  A0=entries evicted  A1=approx size  A2=entry budget
//
//growt:enum tracekind
const (
	KindExecStart Kind = 1 + iota
	KindExecEnd
	KindEnqueue
	KindMigArm
	KindMigAdopt
	KindMigCopySlice
	KindMigDrain
	KindMigFlip
	KindMigAbort
	KindSweepSlice
	KindEvictStorm
)

// KindName returns the wire/JSON name of a kind, or "" for values
// outside the enum (including the reserved zero).
func KindName(k Kind) string {
	switch k {
	case KindExecStart:
		return "exec_start"
	case KindExecEnd:
		return "exec_end"
	case KindEnqueue:
		return "enqueue"
	case KindMigArm:
		return "mig_arm"
	case KindMigAdopt:
		return "mig_adopt"
	case KindMigCopySlice:
		return "mig_copy_slice"
	case KindMigDrain:
		return "mig_drain"
	case KindMigFlip:
		return "mig_flip"
	case KindMigAbort:
		return "mig_abort"
	case KindSweepSlice:
		return "sweep_slice"
	case KindEvictStorm:
		return "evict_storm"
	}
	return ""
}

// Event is one drained record: the fixed 1+3-word payload plus the
// monotonic timestamp it was appended at (nanoseconds on the same
// clock for every shard, so cross-shard ordering is meaningful).
type Event struct {
	TS   int64  `json:"ts_nanos"`
	Kind Kind   `json:"-"`
	A0   uint64 `json:"a0"`
	A1   uint64 `json:"a1"`
	A2   uint64 `json:"a2"`
}

// The monotonic clock base. time.Since(base) reads the runtime's
// monotonic clock without allocating; adding the wall base keeps
// drained timestamps meaningful across processes.
var (
	base      = time.Now()
	baseNanos = base.UnixNano()
)

// nowNanos is the recorder's clock: wall nanos derived from the
// monotonic clock, so it never jumps backward under NTP steps.
//
//growt:hotpath
func nowNanos() int64 {
	return baseNanos + int64(time.Since(base))
}

// slot is one seqlock-protected record. All six words are atomics:
// the race detector sees only synchronized accesses, and the seq
// protocol (odd while writing, even and ticket-derived when complete)
// lets readers reject torn payloads.
type slot struct {
	seq  atomic.Uint64
	ts   atomic.Uint64
	kind atomic.Uint64
	a0   atomic.Uint64
	a1   atomic.Uint64
	a2   atomic.Uint64
}

// shard is one writer lane: a padded ticket cursor (the only
// cross-writer contention point, alone on its cache line) and the
// slot array it deals into.
type shard struct {
	cursor pad.Uint64
	slots  []slot
}

// Ring is the flight recorder: one shard per (rounded-up) GOMAXPROCS
// lane, each sized to perShard slots. Total capacity is
// shards×perShard events; older events are overwritten in ticket
// order within each shard.
type Ring struct {
	shards []shard
	mask   uint64
}

// DefaultPerShard is the per-shard slot count of the package-level
// ring. 4096 events per lane costs ~200 KiB per lane (48-byte slots)
// and holds a few hundred milliseconds of history at full service
// load — enough that a migration's phase events survive the burst of
// exec events recorded alongside them, which is the whole point of a
// merged window.
const DefaultPerShard = 4096

// Default is the package-level recorder the instrumented layers emit
// into. Sized at init; always on.
var Default = NewRing(DefaultPerShard)

// NewRing builds a recorder with perShard slots per shard (rounded up
// to a power of two, minimum 64). The shard count is the smallest
// power of two ≥ GOMAXPROCS at call time.
func NewRing(perShard int) *Ring {
	n := 64
	for n < perShard {
		n <<= 1
	}
	sc := ceilPow2(runtime.GOMAXPROCS(0))
	r := &Ring{shards: make([]shard, sc), mask: uint64(n - 1)}
	for i := range r.shards {
		r.shards[i].slots = make([]slot, n)
	}
	return r
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// shardIdx picks a shard from the address of a stack local, exactly
// like obs.Counter: distinct goroutines live on distinct stacks, the
// Fibonacci multiplier spreads the high bits, and the single-expression
// pointer→uintptr conversion keeps the local from escaping.
//
//growt:hotpath
func (r *Ring) shardIdx() uint64 {
	var p byte
	return (uint64(uintptr(unsafe.Pointer(&p))) * 0x9E3779B97F4A7C15) >> 32 & uint64(len(r.shards)-1)
}

// Append records one event. Allocation-free and wait-free: one
// fetch-and-add on the shard cursor plus six atomic stores.
//
//growt:hotpath
func (r *Ring) Append(k Kind, a0, a1, a2 uint64) {
	ts := nowNanos()
	sh := &r.shards[r.shardIdx()]
	ticket := sh.cursor.Add(1) - 1
	s := &sh.slots[ticket&r.mask]
	s.seq.Store(2*ticket + 1)
	s.ts.Store(uint64(ts))
	s.kind.Store(uint64(k))
	s.a0.Store(a0)
	s.a1.Store(a1)
	s.a2.Store(a2)
	s.seq.Store(2*ticket + 2)
}

// Emit appends to the package-level Default ring.
//
//growt:hotpath
func Emit(k Kind, a0, a1, a2 uint64) {
	Default.Append(k, a0, a1, a2)
}

// Now returns the recorder's clock reading. Instrumented layers that
// stamp their own records (the server's slow-op log) use it so their
// timestamps interleave exactly with drained trace events.
//
//growt:hotpath
func Now() int64 { return nowNanos() }

// Drain snapshots every complete record currently in the ring, merged
// across shards into ascending timestamp order. It is a cold-path
// read: it allocates freely and tolerates concurrent writers — a slot
// overwritten mid-read fails its seqlock validation and is skipped,
// never returned torn. The ring is not cleared; Drain is a window
// read, not a consume.
func (r *Ring) Drain() []Event {
	out := make([]Event, 0, len(r.shards)*16)
	for i := range r.shards {
		sh := &r.shards[i]
		for j := range sh.slots {
			s := &sh.slots[j]
			seq1 := s.seq.Load()
			if seq1 == 0 || seq1&1 == 1 {
				continue // never written, or write in progress
			}
			ev := Event{
				TS:   int64(s.ts.Load()),
				Kind: Kind(s.kind.Load()),
				A0:   s.a0.Load(),
				A1:   s.a1.Load(),
				A2:   s.a2.Load(),
			}
			if s.seq.Load() != seq1 {
				continue // overwritten while reading: torn, drop
			}
			out = append(out, ev)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].TS < out[b].TS })
	return out
}

// jsonEvent is the rendered form: the kind travels as its name so the
// stream is greppable without the enum table.
type jsonEvent struct {
	TS   int64  `json:"ts_nanos"`
	Kind string `json:"kind"`
	A0   uint64 `json:"a0"`
	A1   uint64 `json:"a1"`
	A2   uint64 `json:"a2"`
}

// WriteJSON renders events (as returned by Drain) as a JSON array of
// {ts_nanos, kind, a0, a1, a2} objects. Events whose kind falls
// outside the enum render with an empty kind rather than being
// dropped — a corrupt record is evidence, not noise.
func WriteJSON(w io.Writer, evs []Event) error {
	js := make([]jsonEvent, len(evs))
	for i, e := range evs {
		js[i] = jsonEvent{TS: e.TS, Kind: KindName(e.Kind), A0: e.A0, A1: e.A1, A2: e.A2}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(js)
}
