package baselines

import (
	"sync"

	"repro/internal/tables"
)

// MutexMap is a built-in Go map behind one RWMutex — the classic
// general-purpose concurrent map, and the cautionary tale of the paper's
// conclusion ("the simple decision to require a lock for reading can
// decrease performance by almost four orders of magnitude").
type MutexMap struct {
	mu sync.RWMutex
	m  map[uint64]uint64
}

// NewMutexMap builds the table with capacity hint.
func NewMutexMap(capacity uint64) *MutexMap {
	return &MutexMap{m: make(map[uint64]uint64, capacity)}
}

// Handle returns the table itself.
func (t *MutexMap) Handle() tables.Handle { return direct(t) }

// ApproxSize returns the exact size.
func (t *MutexMap) ApproxSize() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return uint64(len(t.m))
}

// Range iterates elements.
func (t *MutexMap) Range(f func(k, v uint64) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for k, v := range t.m {
		if !f(k, v) {
			return
		}
	}
}

var _ tables.Interface = (*MutexMap)(nil)
var _ tables.Sizer = (*MutexMap)(nil)
var _ tables.Ranger = (*MutexMap)(nil)

// Insert implements tables.Handle.
func (t *MutexMap) Insert(k, d uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.m[k]; ok {
		return false
	}
	t.m[k] = d
	return true
}

// Update implements tables.Handle.
func (t *MutexMap) Update(k, d uint64, up tables.UpdateFn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur, ok := t.m[k]
	if !ok {
		return false
	}
	t.m[k] = up(cur, d)
	return true
}

// InsertOrUpdate implements tables.Handle.
func (t *MutexMap) InsertOrUpdate(k, d uint64, up tables.UpdateFn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cur, ok := t.m[k]; ok {
		t.m[k] = up(cur, d)
		return false
	}
	t.m[k] = d
	return true
}

// Find implements tables.Handle.
func (t *MutexMap) Find(k uint64) (uint64, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v, ok := t.m[k]
	return v, ok
}

// Delete implements tables.Handle.
func (t *MutexMap) Delete(k uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.m[k]; !ok {
		return false
	}
	delete(t.m, k)
	return true
}

func init() {
	tables.Register(tables.Capabilities{
		Name: "mutexmap", Plot: "extra (Go idiom)", StdInterface: "direct",
		Growing: "yes", AtomicUpdates: "locked", Deletion: true,
		GeneralTypes: true, Reference: "global RWMutex + builtin map",
	}, func(capacity uint64) tables.Interface { return NewMutexMap(capacity) })
}
