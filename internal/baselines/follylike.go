package baselines

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/hashfn"
	"repro/internal/tables"
)

// Folly reimplements folly::AtomicHashMap's growth architecture [9]: a
// chain of bounded lock-free linear-probing subtables. When the current
// subtable fills, a new one (a fraction of the previous size, as in
// folly) is appended; lookups walk the subtable chain — this is what
// degrades folly's find performance on grown tables in Fig. 3, and the
// chain bounds total growth to a constant factor of the initial capacity
// (~18×, §8.1.2). Deletion uses tombstones that are never reclaimed,
// again as in folly.
type Folly struct {
	mu   sync.Mutex // guards appending subtables
	subs atomic.Pointer[[]*follySub]
	size atomic.Int64
}

type follySub struct {
	//growt:atomic
	cells []uint64 // interleaved key/value; key==follyTomb ⇒ deleted
	mask  uint64
	shift uint
	used  atomic.Int64
}

const (
	follyTomb = ^uint64(0) // tombstone key marker
	// follyMaxSubs bounds the chain (folly allows 14 extra maps).
	follyMaxSubs = 14
	// follyGrowthFrac: each extra subtable has initial/2 cells, so total
	// growth ≈ 1 + 14/2 = 8× cells ≈ folly's bounded growth factor regime.
	follyFillNum = 4
	follyFillDen = 5
)

//growt:exclusive -- construction: the subtable is unpublished
func newFollySub(capacity uint64) *follySub {
	if capacity < 64 {
		capacity = 64
	}
	c := uint64(64)
	for c < capacity {
		c <<= 1
	}
	shift := uint(64)
	for x := c; x > 1; x >>= 1 {
		shift--
	}
	return &follySub{cells: make([]uint64, 2*c), mask: c - 1, shift: shift}
}

// NewFolly builds the table with the given initial subtable capacity.
func NewFolly(capacity uint64) *Folly {
	t := &Folly{}
	subs := []*follySub{newFollySub(2 * capacity)}
	t.subs.Store(&subs)
	return t
}

func (s *follySub) loadKey(i uint64) uint64 { return atomic.LoadUint64(&s.cells[2*i]) }
func (s *follySub) loadVal(i uint64) uint64 { return atomic.LoadUint64(&s.cells[2*i+1]) }
func (s *follySub) casKey(i, o, n uint64) bool {
	return atomic.CompareAndSwapUint64(&s.cells[2*i], o, n)
}
func (s *follySub) casVal(i, o, n uint64) bool {
	return atomic.CompareAndSwapUint64(&s.cells[2*i+1], o, n)
}
func (s *follySub) storeVal(i, v uint64) { atomic.StoreUint64(&s.cells[2*i+1], v) }

// findIn probes one subtable; returns cell index or ^0, and whether the
// probe ended at an empty cell (key definitely absent from this sub).
func (s *follySub) findIn(k uint64) (uint64, bool) {
	i := hashfn.Hash64(k) >> s.shift
	for probes := uint64(0); probes <= s.mask; probes++ {
		kw := s.loadKey(i)
		if kw == 0 {
			return ^uint64(0), true
		}
		if kw == k {
			return i, false
		}
		i = (i + 1) & s.mask
	}
	return ^uint64(0), false
}

// insertIn tries to claim a cell in s. Returns (cell, status): status 0 =
// inserted, 1 = already present at cell, 2 = subtable full.
func (s *follySub) insertIn(k, d uint64) (uint64, int) {
	capacity := s.mask + 1
	if uint64(s.used.Load())*follyFillDen >= capacity*follyFillNum {
		return 0, 2
	}
	i := hashfn.Hash64(k) >> s.shift
	for probes := uint64(0); probes <= s.mask; probes++ {
		kw := s.loadKey(i)
		if kw == 0 {
			// folly publishes under a per-cell spin on the key: claim the
			// key with a reserved in-flight marker, then write the value.
			if s.casKey(i, 0, follyTomb-1) {
				s.storeVal(i, d)
				atomic.StoreUint64(&s.cells[2*i], k)
				s.used.Add(1)
				return i, 0
			}
			kw = s.loadKey(i)
		}
		for spins := 0; kw == follyTomb-1; spins++ { // in-flight neighbor
			if spins > 64 {
				runtime.Gosched()
			}
			kw = s.loadKey(i)
		}
		if kw == k {
			return i, 1
		}
		i = (i + 1) & s.mask
	}
	return 0, 2
}

// Handle returns the table itself.
func (t *Folly) Handle() tables.Handle { return direct(t) }

// ApproxSize returns the exact size.
func (t *Folly) ApproxSize() uint64 {
	n := t.size.Load()
	if n < 0 {
		return 0
	}
	return uint64(n)
}

// MemBytes reports backing memory across the subtable chain.
func (t *Folly) MemBytes() uint64 {
	var b uint64
	for _, s := range *t.subs.Load() {
		b += uint64(len(s.cells)) * 8
	}
	return b
}

// Range iterates elements; quiescent use only.
func (t *Folly) Range(f func(k, v uint64) bool) {
	for _, s := range *t.subs.Load() {
		for i := uint64(0); i <= s.mask; i++ {
			kw := s.loadKey(i)
			if kw == 0 || kw == follyTomb || kw == follyTomb-1 {
				continue
			}
			v := s.loadVal(i)
			if v == follyTomb {
				continue
			}
			if !f(kw, v) {
				return
			}
		}
	}
}

var _ tables.Interface = (*Folly)(nil)
var _ tables.Sizer = (*Folly)(nil)
var _ tables.Ranger = (*Folly)(nil)
var _ tables.MemUser = (*Folly)(nil)
var _ tables.Adder = (*Folly)(nil)

// locate finds k across the chain; returns (sub, cell) or nil.
func (t *Folly) locate(k uint64) (*follySub, uint64) {
	for _, s := range *t.subs.Load() {
		if cell, _ := s.findIn(k); cell != ^uint64(0) {
			return s, cell
		}
	}
	return nil, 0
}

// grow appends a new subtable (half the first one's size, folly's
// default growth fraction).
func (t *Folly) grow() {
	t.mu.Lock()
	defer t.mu.Unlock()
	subs := *t.subs.Load()
	last := subs[len(subs)-1]
	capacity := last.mask + 1
	if uint64(last.used.Load())*follyFillDen < capacity*follyFillNum {
		return // someone already grew
	}
	if len(subs) >= follyMaxSubs {
		panic("baselines: folly-like table exceeded its bounded growth factor (§8.1.2)")
	}
	first := subs[0].mask + 1
	ns := append(append([]*follySub{}, subs...), newFollySub(first))
	t.subs.Store(&ns)
}

// Insert implements tables.Handle.
func (t *Folly) Insert(k, d uint64) bool {
	if k == 0 || k >= follyTomb-1 {
		panic("baselines: key outside folly-like domain")
	}
	for {
		subs := *t.subs.Load()
		// Check all but the last subtable for the key (they are full).
		for i := 0; i+1 < len(subs); i++ {
			if cell, _ := subs[i].findIn(k); cell != ^uint64(0) {
				if subs[i].loadVal(cell) != follyTomb {
					return false
				}
				// Tombstoned in an old subtable: folly revives in place.
				if subs[i].casVal(cell, follyTomb, d) {
					t.size.Add(1)
					return true
				}
				return false
			}
		}
		last := subs[len(subs)-1]
		cell, st := last.insertIn(k, d)
		switch st {
		case 0:
			t.size.Add(1)
			return true
		case 1:
			if last.loadVal(cell) == follyTomb {
				if last.casVal(cell, follyTomb, d) {
					t.size.Add(1)
					return true
				}
			}
			return false
		default:
			t.grow()
		}
	}
}

// Update implements tables.Handle.
func (t *Folly) Update(k, d uint64, up tables.UpdateFn) bool {
	s, cell := t.locate(k)
	if s == nil {
		return false
	}
	for {
		v := s.loadVal(cell)
		if v == follyTomb {
			return false
		}
		if s.casVal(cell, v, up(v, d)) {
			return true
		}
	}
}

// InsertOrUpdate implements tables.Handle.
func (t *Folly) InsertOrUpdate(k, d uint64, up tables.UpdateFn) bool {
	for {
		if s, cell := t.locate(k); s != nil {
			v := s.loadVal(cell)
			if v != follyTomb {
				if s.casVal(cell, v, up(v, d)) {
					return false
				}
				continue
			}
			if s.casVal(cell, follyTomb, d) {
				t.size.Add(1)
				return true
			}
			continue
		}
		if t.Insert(k, d) {
			return true
		}
	}
}

// InsertOrAdd implements tables.Adder with a fetch-add on the value word.
func (t *Folly) InsertOrAdd(k, d uint64) bool {
	return t.InsertOrUpdate(k, d, tables.AddFn)
}

// Find implements tables.Handle: walks the whole subtable chain (the
// grown-table find penalty of Fig. 3).
func (t *Folly) Find(k uint64) (uint64, bool) {
	s, cell := t.locate(k)
	if s == nil {
		return 0, false
	}
	v := s.loadVal(cell)
	if v == follyTomb {
		return 0, false
	}
	return v, true
}

// Delete implements tables.Handle: value tombstone, never reclaimed.
func (t *Folly) Delete(k uint64) bool {
	s, cell := t.locate(k)
	if s == nil {
		return false
	}
	for {
		v := s.loadVal(cell)
		if v == follyTomb {
			return false
		}
		if s.casVal(cell, v, follyTomb) {
			t.size.Add(-1)
			return true
		}
	}
}

func init() {
	tables.Register(tables.Capabilities{
		Name: "folly", Plot: "+ marker", StdInterface: "direct",
		Growing: "const factor", AtomicUpdates: "yes", Deletion: true,
		GeneralTypes: false, Reference: "folly::AtomicHashMap [9] subtable chaining",
	}, func(capacity uint64) tables.Interface { return NewFolly(capacity) })
}
