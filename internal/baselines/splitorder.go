package baselines

import (
	"math/bits"
	"sync/atomic"

	"repro/internal/hashfn"
	"repro/internal/tables"
)

// SplitOrder reimplements Shalev & Shavit's split-ordered lists [33] —
// the lock-free extensible hash table used by the Userspace-RCU library's
// hash map, which the paper benchmarks as "RCU"/"RCU QSBR". All elements
// live in a single lock-free linked list ordered by the bit-reversed
// hash (the split order); buckets are lazily initialized shortcut
// pointers (sentinel nodes) into the list, and growing just doubles the
// published bucket count — elements never move. Where urcu needs
// read-copy-update grace periods to reclaim unlinked nodes, Go's GC
// provides reclamation for free (see DESIGN.md §4).
//
// The list uses Michael-style marking: a deleted node's next pointer is
// swung to a dedicated marker node wrapping the real successor, which
// makes mark-and-unlink race-free without a pointer-tag CAS.
type SplitOrder struct {
	segs    [soMaxSegs]atomic.Pointer[[]atomic.Pointer[soNode]]
	nBuck   atomic.Uint64
	size    atomic.Int64
	head    *soNode // sentinel for bucket 0
	maxLoad uint64
}

type soNode struct {
	sokey  uint64 // bit-reversed hash, LSB 1 for regular / 0 for sentinel
	key    uint64
	val    atomic.Uint64
	next   atomic.Pointer[soNode]
	isMark bool // marker wrapper: its next is the marked node's successor
}

const (
	soSegBits = 12 // 4096 buckets per segment
	soSegSize = 1 << soSegBits
	soMaxSegs = 1 << 18
)

// NewSplitOrder builds the table; capacity is only a hint for the initial
// bucket count.
func NewSplitOrder(capacity uint64) *SplitOrder {
	t := &SplitOrder{maxLoad: 2}
	t.head = &soNode{sokey: 0}
	seg := make([]atomic.Pointer[soNode], soSegSize)
	seg[0].Store(t.head)
	t.segs[0].Store(&seg)
	n := uint64(2)
	for n < capacity/t.maxLoad {
		n <<= 1
	}
	if n > soSegSize {
		n = soSegSize // further growth happens online
	}
	t.nBuck.Store(n)
	return t
}

// soRegularKey maps a key's hash into split order (LSB set).
func soRegularKey(h uint64) uint64 { return bits.Reverse64(h) | 1 }

// soSentinelKey maps a bucket index into split order (LSB clear).
func soSentinelKey(b uint64) uint64 { return bits.Reverse64(b) &^ 1 }

// bucketPtr returns the slot holding bucket b's sentinel pointer.
func (t *SplitOrder) bucketPtr(b uint64) *atomic.Pointer[soNode] {
	segIdx := b >> soSegBits
	seg := t.segs[segIdx].Load()
	if seg == nil {
		ns := make([]atomic.Pointer[soNode], soSegSize)
		if t.segs[segIdx].CompareAndSwap(nil, &ns) {
			seg = &ns
		} else {
			seg = t.segs[segIdx].Load()
		}
	}
	return &(*seg)[b&(soSegSize-1)]
}

// listFind locates the position for (sokey,key) starting at start: it
// returns (pred, cur) where cur is the first node ≥ (sokey,key), and
// physically unlinks marked nodes on the way (Michael's algorithm).
func (t *SplitOrder) listFind(start *soNode, sokey, key uint64) (pred, cur *soNode) {
retry:
	pred = start
	cur = pred.next.Load()
	for {
		if cur == nil {
			return pred, nil
		}
		succ := cur.next.Load()
		if succ != nil && succ.isMark {
			// cur is deleted: unlink it.
			if !pred.next.CompareAndSwap(cur, succ.next.Load()) {
				goto retry
			}
			cur = succ.next.Load()
			continue
		}
		if cur.sokey > sokey || (cur.sokey == sokey && cur.key >= key) {
			return pred, cur
		}
		pred = cur
		cur = succ
	}
}

// listInsert inserts node after the position found from start; returns
// false if an equal (sokey,key) live node exists (dup holds it).
func (t *SplitOrder) listInsert(start, node *soNode) (*soNode, bool) {
	for {
		pred, cur := t.listFind(start, node.sokey, node.key)
		if cur != nil && cur.sokey == node.sokey && cur.key == node.key {
			return cur, false
		}
		node.next.Store(cur)
		if pred.next.CompareAndSwap(cur, node) {
			return node, true
		}
	}
}

// getBucket returns bucket b's sentinel, initializing it (and its parent
// chain) on first touch — the lazy recursive initialization of [33].
func (t *SplitOrder) getBucket(b uint64) *soNode {
	p := t.bucketPtr(b)
	if s := p.Load(); s != nil {
		return s
	}
	// Initialize parent first: clear b's most significant set bit.
	parent := b &^ (uint64(1) << (63 - uint(bits.LeadingZeros64(b))))
	ps := t.getBucket(parent)
	sent := &soNode{sokey: soSentinelKey(b)}
	got, _ := t.listInsert(ps, sent)
	p.CompareAndSwap(nil, got)
	return p.Load()
}

func (t *SplitOrder) bucketOf(h uint64) *soNode {
	n := t.nBuck.Load()
	return t.getBucket(h & (n - 1))
}

// maybeGrow doubles the bucket count when the load factor is exceeded.
func (t *SplitOrder) maybeGrow() {
	n := t.nBuck.Load()
	if uint64(t.size.Load()) > n*t.maxLoad && n < soMaxSegs*soSegSize/2 {
		t.nBuck.CompareAndSwap(n, 2*n)
	}
}

// Handle returns the table itself.
func (t *SplitOrder) Handle() tables.Handle { return direct(t) }

// ApproxSize returns the exact size.
func (t *SplitOrder) ApproxSize() uint64 {
	n := t.size.Load()
	if n < 0 {
		return 0
	}
	return uint64(n)
}

// Range iterates live elements; quiescent use only.
func (t *SplitOrder) Range(f func(k, v uint64) bool) {
	for cur := t.head; cur != nil; cur = cur.next.Load() {
		if cur.isMark {
			continue
		}
		succ := cur.next.Load()
		if succ != nil && succ.isMark {
			continue // deleted
		}
		if cur.sokey&1 == 1 {
			if !f(cur.key, cur.val.Load()) {
				return
			}
		}
	}
}

var _ tables.Interface = (*SplitOrder)(nil)
var _ tables.Sizer = (*SplitOrder)(nil)
var _ tables.Ranger = (*SplitOrder)(nil)

// Insert implements tables.Handle.
func (t *SplitOrder) Insert(k, d uint64) bool {
	h := hashfn.Avalanche(k)
	start := t.bucketOf(h)
	node := &soNode{sokey: soRegularKey(h), key: k}
	node.val.Store(d)
	_, ok := t.listInsert(start, node)
	if ok {
		t.size.Add(1)
		t.maybeGrow()
	}
	return ok
}

// find returns the live node for k, or nil.
func (t *SplitOrder) find(k uint64) *soNode {
	h := hashfn.Avalanche(k)
	start := t.bucketOf(h)
	sokey := soRegularKey(h)
	_, cur := t.listFind(start, sokey, k)
	if cur != nil && cur.sokey == sokey && cur.key == k {
		return cur
	}
	return nil
}

// Find implements tables.Handle.
func (t *SplitOrder) Find(k uint64) (uint64, bool) {
	n := t.find(k)
	if n == nil {
		return 0, false
	}
	return n.val.Load(), true
}

// Update implements tables.Handle.
func (t *SplitOrder) Update(k, d uint64, up tables.UpdateFn) bool {
	n := t.find(k)
	if n == nil {
		return false
	}
	for {
		v := n.val.Load()
		if n.val.CompareAndSwap(v, up(v, d)) {
			return true
		}
	}
}

// InsertOrUpdate implements tables.Handle.
func (t *SplitOrder) InsertOrUpdate(k, d uint64, up tables.UpdateFn) bool {
	h := hashfn.Avalanche(k)
	start := t.bucketOf(h)
	node := &soNode{sokey: soRegularKey(h), key: k}
	node.val.Store(d)
	got, inserted := t.listInsert(start, node)
	if inserted {
		t.size.Add(1)
		t.maybeGrow()
		return true
	}
	for {
		v := got.val.Load()
		if got.val.CompareAndSwap(v, up(v, d)) {
			return false
		}
	}
}

// Delete implements tables.Handle: mark (by swinging next to a marker
// wrapper), then attempt physical unlink.
func (t *SplitOrder) Delete(k uint64) bool {
	h := hashfn.Avalanche(k)
	start := t.bucketOf(h)
	sokey := soRegularKey(h)
	for {
		pred, cur := t.listFind(start, sokey, k)
		if cur == nil || cur.sokey != sokey || cur.key != k {
			return false
		}
		succ := cur.next.Load()
		if succ != nil && succ.isMark {
			continue // already being deleted; re-find (it will unlink)
		}
		marker := &soNode{isMark: true}
		marker.next.Store(succ)
		if !cur.next.CompareAndSwap(succ, marker) {
			continue
		}
		t.size.Add(-1)
		// Best-effort physical unlink; listFind cleans up otherwise.
		pred.next.CompareAndSwap(cur, succ)
		return true
	}
}

func init() {
	tables.Register(tables.Capabilities{
		Name: "splitorder", Plot: "x marker", StdInterface: "direct (GC replaces RCU)",
		Growing: "lock-free (buckets only)", AtomicUpdates: "CAS on node", Deletion: true,
		GeneralTypes: true, Reference: "Shalev & Shavit [33] via urcu's hash map",
	}, func(capacity uint64) tables.Interface { return NewSplitOrder(capacity) })
}
