package baselines

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	_ "repro/internal/core" // register the paper's tables (Table 1 check)
	"repro/internal/tables"
)

// concurrent lists the baselines that allow fully concurrent mixed
// operations; "seq" (sequential only) and "phase" (phase concurrent) are
// driven separately under their disciplines.
var concurrent = []string{
	"mutexmap", "shardedmap", "syncmap", "lockedchain", "leahash",
	"hopscotch", "cuckoo", "folly", "splitorder", "junctionlinear",
}

var all = append([]string{"seq", "phase"}, concurrent...)

func mk(t *testing.T, name string, capacity uint64) tables.Interface {
	t.Helper()
	tab, err := tables.New(name, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// TestSequentialSemantics runs the shared sequential differential test on
// every baseline.
func TestSequentialSemantics(t *testing.T) {
	for _, name := range all {
		name := name
		t.Run(name, func(t *testing.T) {
			h := mk(t, name, 4096).Handle()
			model := map[uint64]uint64{}
			r := rand.New(rand.NewSource(42))
			for i := 0; i < 30000; i++ {
				k := uint64(r.Intn(700)) + 1
				v := uint64(r.Intn(1 << 30))
				switch r.Intn(5) {
				case 0:
					_, p := model[k]
					if h.Insert(k, v) == p {
						t.Fatalf("op %d insert(%d) disagrees with model (present=%v)", i, k, p)
					}
					if !p {
						model[k] = v
					}
				case 1:
					_, p := model[k]
					if h.Update(k, v, tables.AddFn) != p {
						t.Fatalf("op %d update(%d) disagrees", i, k)
					}
					if p {
						model[k] += v
					}
				case 2:
					_, p := model[k]
					if h.InsertOrUpdate(k, v, tables.AddFn) == p {
						t.Fatalf("op %d upsert(%d) disagrees", i, k)
					}
					if p {
						model[k] += v
					} else {
						model[k] = v
					}
				case 3:
					want, p := model[k]
					got, ok := h.Find(k)
					if ok != p || (ok && got != want) {
						t.Fatalf("op %d find(%d)=(%d,%v) want (%d,%v)", i, k, got, ok, want, p)
					}
				case 4:
					_, p := model[k]
					if h.Delete(k) != p {
						t.Fatalf("op %d delete(%d) disagrees", i, k)
					}
					delete(model, k)
				}
			}
			for k, want := range model {
				if got, ok := h.Find(k); !ok || got != want {
					t.Fatalf("final find(%d)=(%d,%v) want %d", k, got, ok, want)
				}
			}
		})
	}
}

// TestQuickSmallTables drives each baseline through quick-generated op
// sequences on small tables (stresses collision paths and displacement).
func TestQuickSmallTables(t *testing.T) {
	for _, name := range all {
		name := name
		t.Run(name, func(t *testing.T) {
			f := func(ops []struct {
				Kind, Key uint8
				Val       uint16
			}) bool {
				h := mk(t, name, 256).Handle()
				model := map[uint64]uint64{}
				for _, op := range ops {
					k := uint64(op.Key)%64 + 1
					v := uint64(op.Val) + 1
					switch op.Kind % 4 {
					case 0:
						_, p := model[k]
						if h.Insert(k, v) == p {
							return false
						}
						if !p {
							model[k] = v
						}
					case 1:
						want, p := model[k]
						got, ok := h.Find(k)
						if ok != p || (ok && got != want) {
							return false
						}
					case 2:
						_, p := model[k]
						if h.InsertOrUpdate(k, v, tables.Overwrite) == p {
							return false
						}
						model[k] = v
					case 3:
						_, p := model[k]
						if h.Delete(k) != p {
							return false
						}
						delete(model, k)
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConcurrentUniqueInsert: the §4 exactly-one-winner contract for all
// concurrent baselines.
func TestConcurrentUniqueInsert(t *testing.T) {
	const goroutines = 8
	const keys = 8000
	for _, name := range concurrent {
		name := name
		t.Run(name, func(t *testing.T) {
			tab := mk(t, name, keys)
			var wins [goroutines]uint64
			var wg sync.WaitGroup
			for i := 0; i < goroutines; i++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					h := tab.Handle()
					for k := uint64(1); k <= keys; k++ {
						if h.Insert(k, uint64(id)+1) {
							wins[id]++
						}
					}
				}(i)
			}
			wg.Wait()
			var total uint64
			for _, w := range wins {
				total += w
			}
			if total != keys {
				t.Fatalf("insert successes %d, want %d", total, keys)
			}
			h := tab.Handle()
			for k := uint64(1); k <= keys; k++ {
				if v, ok := h.Find(k); !ok || v < 1 || v > goroutines {
					t.Fatalf("key %d: %d,%v", k, v, ok)
				}
			}
		})
	}
}

// TestConcurrentAggregation: no lost updates on insert-or-increment.
func TestConcurrentAggregation(t *testing.T) {
	const goroutines = 6
	const perG = 20000
	const keys = 256
	for _, name := range concurrent {
		name := name
		t.Run(name, func(t *testing.T) {
			tab := mk(t, name, keys*4)
			var wg sync.WaitGroup
			for i := 0; i < goroutines; i++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					h := tab.Handle()
					r := rand.New(rand.NewSource(seed))
					for j := 0; j < perG; j++ {
						h.InsertOrUpdate(uint64(r.Intn(keys))+1, 1, tables.AddFn)
					}
				}(int64(i))
			}
			wg.Wait()
			h := tab.Handle()
			var sum uint64
			for k := uint64(1); k <= keys; k++ {
				v, _ := h.Find(k)
				sum += v
			}
			if sum != goroutines*perG {
				t.Fatalf("lost updates: %d != %d", sum, goroutines*perG)
			}
		})
	}
}

// TestConcurrentGrowth: concurrent inserts across growth events.
func TestConcurrentGrowth(t *testing.T) {
	growers := []string{"mutexmap", "shardedmap", "syncmap", "lockedchain",
		"leahash", "cuckoo", "folly", "splitorder", "junctionlinear"}
	const goroutines = 4
	const perG = 20000
	for _, name := range growers {
		name := name
		t.Run(name, func(t *testing.T) {
			capacity := uint64(64)
			if name == "folly" {
				// folly is a semi-grower (bounded growth factor, §8.1.2):
				// the paper initializes it with half the target size.
				capacity = goroutines * perG / 2
			}
			tab := mk(t, name, capacity)
			var wg sync.WaitGroup
			for i := 0; i < goroutines; i++ {
				wg.Add(1)
				go func(base uint64) {
					defer wg.Done()
					h := tab.Handle()
					for j := uint64(1); j <= perG; j++ {
						if !h.Insert(base+j, base+j) {
							panic("insert of unique key failed")
						}
					}
				}(uint64(i) * 1_000_000)
			}
			wg.Wait()
			h := tab.Handle()
			for i := uint64(0); i < goroutines; i++ {
				base := i * 1_000_000
				for j := uint64(1); j <= perG; j += 97 {
					if v, ok := h.Find(base + j); !ok || v != base+j {
						t.Fatalf("key %d lost across growth", base+j)
					}
				}
			}
			if s, ok := tab.(tables.Sizer); ok {
				if got := s.ApproxSize(); got != goroutines*perG {
					t.Fatalf("size %d want %d", got, goroutines*perG)
				}
			}
		})
	}
}

// TestPhaseDiscipline drives the phase-concurrent table through proper
// globally synchronized phases: parallel insert phase, parallel find
// phase, parallel delete phase (with backward-shift repair), then a
// verification phase.
func TestPhaseDiscipline(t *testing.T) {
	tab := mk(t, "phase", 40000)
	const goroutines = 8
	const keys = 20000
	run := func(f func(h tables.Handle, part int)) {
		var wg sync.WaitGroup
		for i := 0; i < goroutines; i++ {
			wg.Add(1)
			go func(part int) {
				defer wg.Done()
				f(tab.Handle(), part)
			}(i)
		}
		wg.Wait()
	}
	// Insert phase.
	run(func(h tables.Handle, part int) {
		for k := part + 1; k <= keys; k += goroutines {
			if !h.Insert(uint64(k), uint64(k)*2) {
				panic("phase insert failed")
			}
		}
	})
	// Find phase.
	run(func(h tables.Handle, part int) {
		for k := part + 1; k <= keys; k += goroutines {
			if v, ok := h.Find(uint64(k)); !ok || v != uint64(k)*2 {
				panic("phase find failed")
			}
		}
	})
	// Delete phase: remove odd keys.
	run(func(h tables.Handle, part int) {
		for k := part + 1; k <= keys; k += goroutines {
			if k%2 == 1 {
				if !h.Delete(uint64(k)) {
					panic("phase delete failed")
				}
			}
		}
	})
	// Verify phase.
	run(func(h tables.Handle, part int) {
		for k := part + 1; k <= keys; k += goroutines {
			v, ok := h.Find(uint64(k))
			if k%2 == 1 && ok {
				panic("deleted key still present")
			}
			if k%2 == 0 && (!ok || v != uint64(k)*2) {
				panic("surviving key lost by backward-shift deletion")
			}
		}
	})
	if got := tab.(tables.Sizer).ApproxSize(); got != keys/2 {
		t.Fatalf("size after delete phase: %d want %d", got, keys/2)
	}
}

// TestHopscotchDisplacement fills a small table enough to force hopscotch
// moves and verifies the hop invariants via Find.
func TestHopscotchDisplacement(t *testing.T) {
	tab := NewHopscotch(3000)
	h := tab.Handle()
	for k := uint64(1); k <= 3000; k++ {
		if !h.Insert(k, k^42) {
			t.Fatalf("insert %d", k)
		}
	}
	for k := uint64(1); k <= 3000; k++ {
		if v, ok := h.Find(k); !ok || v != k^42 {
			t.Fatalf("find %d after displacement", k)
		}
	}
}

// TestCuckooForcedRehash inserts far past the initial capacity to force
// BFS evictions and full rehashes.
func TestCuckooForcedRehash(t *testing.T) {
	tab := NewCuckoo(64)
	h := tab.Handle()
	const n = 20000
	for k := uint64(1); k <= n; k++ {
		if !h.Insert(k, k+7) {
			t.Fatalf("insert %d", k)
		}
	}
	for k := uint64(1); k <= n; k++ {
		if v, ok := h.Find(k); !ok || v != k+7 {
			t.Fatalf("find %d after rehash", k)
		}
	}
	if tab.ApproxSize() != n {
		t.Fatalf("size %d", tab.ApproxSize())
	}
}

// TestSplitOrderBucketGrowth checks lazy bucket initialization across
// growth.
func TestSplitOrderBucketGrowth(t *testing.T) {
	tab := NewSplitOrder(4)
	h := tab.Handle()
	const n = 50000
	for k := uint64(1); k <= n; k++ {
		if !h.Insert(k, k) {
			t.Fatalf("insert %d", k)
		}
	}
	if tab.nBuck.Load() <= 4 {
		t.Fatal("bucket count did not grow")
	}
	for k := uint64(1); k <= n; k += 13 {
		if _, ok := h.Find(k); !ok {
			t.Fatalf("find %d", k)
		}
	}
	// Delete half and verify unlinking.
	for k := uint64(1); k <= n; k += 2 {
		if !h.Delete(k) {
			t.Fatalf("delete %d", k)
		}
	}
	for k := uint64(1); k <= n; k += 2 {
		if _, ok := h.Find(k); ok {
			t.Fatalf("deleted %d still present", k)
		}
		if _, ok := h.Find(k + 1); k+1 <= n && !ok {
			t.Fatalf("survivor %d lost", k+1)
		}
	}
}

// TestFollyBoundedGrowth verifies the subtable chain grows and lookups
// walk it.
func TestFollyBoundedGrowth(t *testing.T) {
	// Initial size chosen so that 3000 elements need several subtables
	// yet stay within folly's bounded total growth factor (~15×).
	tab := NewFolly(256)
	h := tab.Handle()
	const n = 3000
	for k := uint64(1); k <= n; k++ {
		if !h.Insert(k, k) {
			t.Fatalf("insert %d", k)
		}
	}
	if len(*tab.subs.Load()) < 2 {
		t.Fatal("no extra subtables allocated")
	}
	for k := uint64(1); k <= n; k++ {
		if v, ok := h.Find(k); !ok || v != k {
			t.Fatalf("find %d across subtables", k)
		}
	}
}

// TestRangeAndSizers exercises the optional interfaces across baselines.
func TestRangeAndSizers(t *testing.T) {
	for _, name := range all {
		name := name
		t.Run(name, func(t *testing.T) {
			tab := mk(t, name, 1024)
			h := tab.Handle()
			for k := uint64(1); k <= 100; k++ {
				h.Insert(k, k*2)
			}
			if r, ok := tab.(tables.Ranger); ok {
				seen := map[uint64]uint64{}
				r.Range(func(k, v uint64) bool { seen[k] = v; return true })
				if len(seen) != 100 {
					t.Fatalf("range saw %d elements", len(seen))
				}
				for k, v := range seen {
					if v != k*2 {
						t.Fatalf("range value wrong for %d", k)
					}
				}
			}
			if s, ok := tab.(tables.Sizer); ok {
				if s.ApproxSize() != 100 {
					t.Fatalf("size %d", s.ApproxSize())
				}
			}
			if m, ok := tab.(tables.MemUser); ok {
				if m.MemBytes() == 0 {
					t.Fatal("MemBytes zero")
				}
			}
		})
	}
}

// TestRegistryComplete: every expected table is registered with coherent
// capabilities (Table 1 source of truth).
func TestRegistryComplete(t *testing.T) {
	want := append([]string{"folklore", "tsxfolklore", "uaGrow", "usGrow",
		"paGrow", "psGrow", "uaGrow-tsx", "usGrow-tsx"}, all...)
	for _, name := range want {
		caps, ok := tables.Lookup(name)
		if !ok {
			t.Errorf("%s not registered", name)
			continue
		}
		if caps.Reference == "" || caps.StdInterface == "" {
			t.Errorf("%s has incomplete capabilities", name)
		}
	}
	if len(tables.All()) < len(want) {
		t.Fatalf("registry has %d entries, want ≥ %d", len(tables.All()), len(want))
	}
}
