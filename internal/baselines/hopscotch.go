package baselines

import (
	"sort"
	"sync"

	"repro/internal/hashfn"
	"repro/internal/tables"
)

// Hopscotch reimplements hopscotch hashing (Herlihy, Shavit, Tzafrir [13])
// as benchmarked by the paper: a bounded open-addressing table where every
// element lives within a fixed hop range H of its home bucket, tracked by
// a per-bucket hop-info bitmap; inserts displace elements backwards to
// restore the invariant. The table is striped into lockable segments;
// operations acquire the (few) segments they touch in globally sorted
// order, which keeps the scheme deadlock-free including wrap-around.
// Like the original release, the table does not grow.
type Hopscotch struct {
	keys []uint64
	vals []uint64
	hops []uint32 // bit i set: cell home+i holds an element homed here
	segs []hsSeg
	mask uint64
}

type hsSeg struct {
	mu sync.RWMutex
	_  [40]byte
}

const (
	hopRange   = 32
	hsSegCells = 4096
	// hsProbeSpan bounds the free-slot probe of an insert (in segments).
	hsProbeSpan = 4
)

// NewHopscotch builds a bounded table with capacity ≥ 2·expected.
func NewHopscotch(expected uint64) *Hopscotch {
	capacity := uint64(hsSegCells)
	for capacity < 2*expected {
		capacity <<= 1
	}
	return &Hopscotch{
		keys: make([]uint64, capacity),
		vals: make([]uint64, capacity),
		hops: make([]uint32, capacity),
		segs: make([]hsSeg, capacity/hsSegCells),
		mask: capacity - 1,
	}
}

func (t *Hopscotch) home(k uint64) uint64 { return hashfn.Avalanche(k) & t.mask }

// segsFor returns the distinct segment indices covering cells
// [start, start+span] (circular), sorted ascending.
func (t *Hopscotch) segsFor(start, span uint64) []int {
	n := uint64(len(t.segs))
	first := start / hsSegCells
	count := (start%hsSegCells+span)/hsSegCells + 1
	if count > n {
		count = n
	}
	out := make([]int, 0, count)
	for i := uint64(0); i < count; i++ {
		out = append(out, int((first+i)%n))
	}
	sort.Ints(out)
	// dedupe (possible after modulo)
	w := 0
	for i, s := range out {
		if i == 0 || s != out[w-1] {
			out[w] = s
			w++
		}
	}
	return out[:w]
}

func (t *Hopscotch) lock(idx []int) {
	for _, i := range idx {
		t.segs[i].mu.Lock()
	}
}

func (t *Hopscotch) unlock(idx []int) {
	for i := len(idx) - 1; i >= 0; i-- {
		t.segs[idx[i]].mu.Unlock()
	}
}

func (t *Hopscotch) rlock(idx []int) {
	for _, i := range idx {
		t.segs[i].mu.RLock()
	}
}

func (t *Hopscotch) runlock(idx []int) {
	for i := len(idx) - 1; i >= 0; i-- {
		t.segs[idx[i]].mu.RUnlock()
	}
}

// Handle returns the table itself.
func (t *Hopscotch) Handle() tables.Handle { return direct(t) }

// ApproxSize counts elements (O(n); quiescent use only).
func (t *Hopscotch) ApproxSize() uint64 {
	var n uint64
	for i := range t.keys {
		if t.keys[i] != 0 {
			n++
		}
	}
	return n
}

// MemBytes reports backing memory.
func (t *Hopscotch) MemBytes() uint64 { return uint64(len(t.keys)) * (8 + 8 + 4) }

// Range iterates elements; quiescent use only.
func (t *Hopscotch) Range(f func(k, v uint64) bool) {
	for i := range t.keys {
		if t.keys[i] != 0 {
			if !f(t.keys[i], t.vals[i]) {
				return
			}
		}
	}
}

var _ tables.Interface = (*Hopscotch)(nil)
var _ tables.Sizer = (*Hopscotch)(nil)
var _ tables.Ranger = (*Hopscotch)(nil)
var _ tables.MemUser = (*Hopscotch)(nil)

// findSlot returns the cell holding k (via the hop bitmap) or ^0. Caller
// holds the covering locks.
func (t *Hopscotch) findSlot(home, k uint64) uint64 {
	hop := t.hops[home]
	for hop != 0 {
		i := uint(trailingZeros32(hop))
		cell := (home + uint64(i)) & t.mask
		if t.keys[cell] == k {
			return cell
		}
		hop &^= 1 << i
	}
	return ^uint64(0)
}

func trailingZeros32(x uint32) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// insertLocked performs the hopscotch insertion; caller holds the probe
// span's locks and has established that k is absent.
func (t *Hopscotch) insertLocked(home, k, d uint64) {
	free := home
	dist := uint64(0)
	limit := uint64(hsProbeSpan*hsSegCells - hsSegCells/2)
	for t.keys[free] != 0 {
		free = (free + 1) & t.mask
		dist++
		if dist > limit {
			panic("baselines: hopscotch table full (probe span exhausted) — size it to ≥2n")
		}
	}
	for dist >= hopRange {
		moved := false
		for back := uint64(hopRange - 1); back >= 1; back-- {
			cand := (free + t.mask + 1 - back) & t.mask
			hop := t.hops[cand]
			if hop == 0 {
				continue
			}
			i := uint(trailingZeros32(hop))
			if uint64(i) >= back {
				continue // its nearest element is at/after the free cell
			}
			cell := (cand + uint64(i)) & t.mask
			t.keys[free] = t.keys[cell]
			t.vals[free] = t.vals[cell]
			t.hops[cand] = hop&^(1<<i) | 1<<uint(back)
			t.keys[cell] = 0
			free = cell
			dist -= back - uint64(i)
			moved = true
			break
		}
		if !moved {
			panic("baselines: hopscotch displacement failed — table too full")
		}
	}
	t.keys[free] = k
	t.vals[free] = d
	t.hops[home] |= 1 << uint(dist)
}

// Insert implements tables.Handle.
func (t *Hopscotch) Insert(k, d uint64) bool {
	if k == 0 {
		panic("baselines: key 0 reserved")
	}
	home := t.home(k)
	idx := t.segsFor(home, hsProbeSpan*hsSegCells)
	t.lock(idx)
	defer t.unlock(idx)
	if t.findSlot(home, k) != ^uint64(0) {
		return false
	}
	t.insertLocked(home, k, d)
	return true
}

// Update implements tables.Handle.
func (t *Hopscotch) Update(k, d uint64, up tables.UpdateFn) bool {
	home := t.home(k)
	idx := t.segsFor(home, hopRange)
	t.lock(idx)
	defer t.unlock(idx)
	cell := t.findSlot(home, k)
	if cell == ^uint64(0) {
		return false
	}
	t.vals[cell] = up(t.vals[cell], d)
	return true
}

// InsertOrUpdate implements tables.Handle.
func (t *Hopscotch) InsertOrUpdate(k, d uint64, up tables.UpdateFn) bool {
	home := t.home(k)
	idx := t.segsFor(home, hsProbeSpan*hsSegCells)
	t.lock(idx)
	defer t.unlock(idx)
	if cell := t.findSlot(home, k); cell != ^uint64(0) {
		t.vals[cell] = up(t.vals[cell], d)
		return false
	}
	t.insertLocked(home, k, d)
	return true
}

// Find implements tables.Handle.
func (t *Hopscotch) Find(k uint64) (uint64, bool) {
	home := t.home(k)
	idx := t.segsFor(home, hopRange)
	t.rlock(idx)
	defer t.runlock(idx)
	cell := t.findSlot(home, k)
	if cell == ^uint64(0) {
		return 0, false
	}
	return t.vals[cell], true
}

// Delete implements tables.Handle: clears the cell and its hop bit (a
// true deletion — hopscotch needs no tombstones).
func (t *Hopscotch) Delete(k uint64) bool {
	home := t.home(k)
	idx := t.segsFor(home, hopRange)
	t.lock(idx)
	defer t.unlock(idx)
	cell := t.findSlot(home, k)
	if cell == ^uint64(0) {
		return false
	}
	dist := (cell + t.mask + 1 - home) & t.mask
	t.hops[home] &^= 1 << uint(dist)
	t.keys[cell] = 0
	return true
}

func init() {
	tables.Register(tables.Capabilities{
		Name: "hopscotch", Plot: "N marker", StdInterface: "direct",
		Growing: "no", AtomicUpdates: "locked", Deletion: true,
		GeneralTypes: false, Reference: "Herlihy et al. [13] hopscotch hashing",
	}, func(capacity uint64) tables.Interface { return NewHopscotch(capacity) })
}
