package baselines

import (
	"sync"

	"repro/internal/tables"
)

// SyncMap wraps the standard library's sync.Map — the concurrent map a Go
// downstream user reaches for first. Not a paper competitor but the
// natural extra data point for a Go reproduction. Note its well-known
// weakness on write-heavy workloads (it is optimized for read-mostly,
// append-only key sets).
//
// Update/InsertOrUpdate are implemented with CompareAndSwap loops so
// dependent updates (e.g. counting) are atomic, which many of the paper's
// competitors cannot express (§8.4 "Aggregation").
type SyncMap struct {
	m sync.Map
}

// NewSyncMap builds the table (capacity hint unused; sync.Map cannot be
// pre-sized).
func NewSyncMap(uint64) *SyncMap { return &SyncMap{} }

// Handle returns the table itself.
func (t *SyncMap) Handle() tables.Handle { return direct(t) }

// ApproxSize counts elements (O(n): sync.Map keeps no counter).
func (t *SyncMap) ApproxSize() uint64 {
	var n uint64
	t.m.Range(func(_, _ any) bool { n++; return true })
	return n
}

// Range iterates elements.
func (t *SyncMap) Range(f func(k, v uint64) bool) {
	t.m.Range(func(k, v any) bool { return f(k.(uint64), v.(uint64)) })
}

var _ tables.Interface = (*SyncMap)(nil)
var _ tables.Sizer = (*SyncMap)(nil)
var _ tables.Ranger = (*SyncMap)(nil)

// Insert implements tables.Handle.
func (t *SyncMap) Insert(k, d uint64) bool {
	_, loaded := t.m.LoadOrStore(k, d)
	return !loaded
}

// Update implements tables.Handle.
func (t *SyncMap) Update(k, d uint64, up tables.UpdateFn) bool {
	for {
		cur, ok := t.m.Load(k)
		if !ok {
			return false
		}
		if t.m.CompareAndSwap(k, cur, up(cur.(uint64), d)) {
			return true
		}
	}
}

// InsertOrUpdate implements tables.Handle.
func (t *SyncMap) InsertOrUpdate(k, d uint64, up tables.UpdateFn) bool {
	for {
		cur, loaded := t.m.LoadOrStore(k, d)
		if !loaded {
			return true
		}
		if t.m.CompareAndSwap(k, cur, up(cur.(uint64), d)) {
			return false
		}
	}
}

// Find implements tables.Handle.
func (t *SyncMap) Find(k uint64) (uint64, bool) {
	v, ok := t.m.Load(k)
	if !ok {
		return 0, false
	}
	return v.(uint64), true
}

// Delete implements tables.Handle.
func (t *SyncMap) Delete(k uint64) bool {
	_, loaded := t.m.LoadAndDelete(k)
	return loaded
}

func init() {
	tables.Register(tables.Capabilities{
		Name: "syncmap", Plot: "extra (Go idiom)", StdInterface: "direct",
		Growing: "yes", AtomicUpdates: "CAS loop", Deletion: true,
		GeneralTypes: true, Reference: "stdlib sync.Map",
	}, func(capacity uint64) tables.Interface { return NewSyncMap(capacity) })
}
