package baselines

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/hashfn"
	"repro/internal/tables"
)

// JunctionLinear reimplements the architecture class of junction's
// Linear map [31]: open addressing over word-sized cells, wait-free
// reads on an atomically published table, and growth by migrating into a
// freshly allocated bigger table. Junction coordinates its migration with
// QSBR; Go's GC replaces the reclamation half (DESIGN.md §4), and the
// migration itself is protected by a writer lock (writers stall during a
// migration — the growth stalls visible for junction in Fig. 2b).
// Deletion stores a value tombstone, reclaimed at the next migration.
type JunctionLinear struct {
	cur      atomic.Pointer[jlTable]
	writers  sync.RWMutex // writers share; migration excludes writers
	size     atomic.Int64
	migating atomic.Bool
}

type jlTable struct {
	//growt:atomic
	cells []uint64
	mask  uint64
	shift uint
	used  atomic.Int64 // claimed cells (incl. tombstones)
}

const (
	jlTombVal = ^uint64(0)
	jlPending = ^uint64(0) // in-flight key marker
)

//growt:exclusive -- construction: the table is unpublished
func newJLTable(capacity uint64) *jlTable {
	c := uint64(64)
	for c < capacity {
		c <<= 1
	}
	shift := uint(64)
	for x := c; x > 1; x >>= 1 {
		shift--
	}
	return &jlTable{cells: make([]uint64, 2*c), mask: c - 1, shift: shift}
}

// NewJunctionLinear builds the table with an initial capacity.
func NewJunctionLinear(capacity uint64) *JunctionLinear {
	t := &JunctionLinear{}
	t.cur.Store(newJLTable(2 * capacity))
	return t
}

func (s *jlTable) loadKey(i uint64) uint64 { return atomic.LoadUint64(&s.cells[2*i]) }
func (s *jlTable) loadVal(i uint64) uint64 { return atomic.LoadUint64(&s.cells[2*i+1]) }
func (s *jlTable) casKey(i, o, n uint64) bool {
	return atomic.CompareAndSwapUint64(&s.cells[2*i], o, n)
}
func (s *jlTable) casVal(i, o, n uint64) bool {
	return atomic.CompareAndSwapUint64(&s.cells[2*i+1], o, n)
}
func (s *jlTable) storeVal(i, v uint64)  { atomic.StoreUint64(&s.cells[2*i+1], v) }
func (s *jlTable) storeKey(i, kw uint64) { atomic.StoreUint64(&s.cells[2*i], kw) }

// locate probes for k; returns (cell, found).
func (s *jlTable) locate(k uint64) (uint64, bool) {
	i := hashfn.Hash64(k) >> s.shift
	for probes := uint64(0); probes <= s.mask; probes++ {
		kw := s.loadKey(i)
		if kw == 0 {
			return 0, false
		}
		for spins := 0; kw == jlPending; spins++ {
			if spins > 64 {
				runtime.Gosched()
			}
			kw = s.loadKey(i)
		}
		if kw == k {
			return i, true
		}
		i = (i + 1) & s.mask
	}
	return 0, false
}

// Handle returns the table itself.
func (t *JunctionLinear) Handle() tables.Handle { return direct(t) }

// ApproxSize returns the exact size.
func (t *JunctionLinear) ApproxSize() uint64 {
	n := t.size.Load()
	if n < 0 {
		return 0
	}
	return uint64(n)
}

// MemBytes reports the current table's backing memory.
func (t *JunctionLinear) MemBytes() uint64 { return uint64(len(t.cur.Load().cells)) * 8 }

// Range iterates elements; quiescent use only.
func (t *JunctionLinear) Range(f func(k, v uint64) bool) {
	s := t.cur.Load()
	for i := uint64(0); i <= s.mask; i++ {
		kw := s.loadKey(i)
		if kw == 0 || kw == jlPending {
			continue
		}
		v := s.loadVal(i)
		if v == jlTombVal {
			continue
		}
		if !f(kw, v) {
			return
		}
	}
}

var _ tables.Interface = (*JunctionLinear)(nil)
var _ tables.Sizer = (*JunctionLinear)(nil)
var _ tables.Ranger = (*JunctionLinear)(nil)
var _ tables.MemUser = (*JunctionLinear)(nil)

// migrate moves everything into a table sized for the live count ×4,
// excluding all writers for the duration (junction's growth stall).
func (t *JunctionLinear) migrate(saw *jlTable) {
	t.writers.Lock()
	defer t.writers.Unlock()
	src := t.cur.Load()
	if src != saw {
		return // somebody else migrated while we waited
	}
	live := uint64(t.size.Load())
	dst := newJLTable(4*live + 64)
	for i := uint64(0); i <= src.mask; i++ {
		kw := src.loadKey(i)
		if kw == 0 || kw == jlPending {
			continue
		}
		v := src.loadVal(i)
		if v == jlTombVal {
			continue
		}
		j := hashfn.Hash64(kw) >> dst.shift
		for dst.loadKey(j) != 0 {
			j = (j + 1) & dst.mask
		}
		dst.storeKey(j, kw)
		dst.storeVal(j, v)
		dst.used.Add(1)
	}
	t.cur.Store(dst)
}

// Insert implements tables.Handle.
func (t *JunctionLinear) Insert(k, d uint64) bool {
	if k == 0 || k == jlPending {
		panic("baselines: key outside junction-like domain")
	}
	if d == jlTombVal {
		panic("baselines: value outside junction-like domain")
	}
	for {
		t.writers.RLock()
		s := t.cur.Load()
		if uint64(s.used.Load())*4 >= (s.mask+1)*3 {
			t.writers.RUnlock()
			t.migrate(s)
			continue
		}
		i := hashfn.Hash64(k) >> s.shift
		res := -1 // -1 keep probing; 0 inserted; 1 duplicate
		for probes := uint64(0); probes <= s.mask; probes++ {
			kw := s.loadKey(i)
			if kw == 0 {
				if s.casKey(i, 0, jlPending) {
					s.storeVal(i, d)
					s.storeKey(i, k)
					s.used.Add(1)
					res = 0
					break
				}
				kw = s.loadKey(i)
			}
			for spins := 0; kw == jlPending; spins++ {
				if spins > 64 {
					runtime.Gosched()
				}
				kw = s.loadKey(i)
			}
			if kw == k {
				// Revive a tombstone or report duplicate.
				v := s.loadVal(i)
				if v == jlTombVal && s.casVal(i, jlTombVal, d) {
					res = 0
					break
				}
				res = 1
				break
			}
			i = (i + 1) & s.mask
		}
		t.writers.RUnlock()
		switch res {
		case 0:
			t.size.Add(1)
			return true
		case 1:
			return false
		default:
			t.migrate(s) // probed the whole table: force growth
		}
	}
}

// Update implements tables.Handle.
func (t *JunctionLinear) Update(k, d uint64, up tables.UpdateFn) bool {
	t.writers.RLock()
	defer t.writers.RUnlock()
	s := t.cur.Load()
	i, ok := s.locate(k)
	if !ok {
		return false
	}
	for {
		v := s.loadVal(i)
		if v == jlTombVal {
			return false
		}
		if s.casVal(i, v, up(v, d)) {
			return true
		}
	}
}

// InsertOrUpdate implements tables.Handle.
func (t *JunctionLinear) InsertOrUpdate(k, d uint64, up tables.UpdateFn) bool {
	for {
		if t.Update(k, d, up) {
			return false
		}
		if t.Insert(k, d) {
			return true
		}
	}
}

// Find implements tables.Handle: wait-free on the published table.
func (t *JunctionLinear) Find(k uint64) (uint64, bool) {
	s := t.cur.Load()
	i, ok := s.locate(k)
	if !ok {
		return 0, false
	}
	v := s.loadVal(i)
	if v == jlTombVal {
		return 0, false
	}
	return v, true
}

// Delete implements tables.Handle: value tombstone, reclaimed at the
// next migration.
func (t *JunctionLinear) Delete(k uint64) bool {
	t.writers.RLock()
	defer t.writers.RUnlock()
	s := t.cur.Load()
	i, ok := s.locate(k)
	if !ok {
		return false
	}
	for {
		v := s.loadVal(i)
		if v == jlTombVal {
			return false
		}
		if s.casVal(i, v, jlTombVal) {
			t.size.Add(-1)
			return true
		}
	}
}

func init() {
	tables.Register(tables.Capabilities{
		Name: "junctionlinear", Plot: "qsbr diamond", StdInterface: "direct (GC replaces QSBR)",
		Growing: "yes (stop-the-world)", AtomicUpdates: "only overwrite in original", Deletion: true,
		GeneralTypes: false, Reference: "Preshing's junction Linear [31], architecture class",
	}, func(capacity uint64) tables.Interface { return NewJunctionLinear(capacity) })
}
