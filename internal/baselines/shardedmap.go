package baselines

import (
	"sync"

	"repro/internal/hashfn"
	"repro/internal/tables"
)

// shardCount is the number of independently locked shards; 256 matches
// the concurrency level TBB-style split-lock maps use by default.
const shardCount = 256

// ShardedMap is a split-lock general-purpose map: builtin Go maps behind
// per-shard RWMutexes. It stands in for TBB's
// concurrent_unordered_map-style tables (general types, growing, but
// lock-based accessors — see DESIGN.md §1.3).
type ShardedMap struct {
	shards [shardCount]struct {
		mu sync.RWMutex
		m  map[uint64]uint64
		_  [40]byte // keep shards off each other's cache lines
	}
}

// NewShardedMap builds the table with a per-shard capacity hint.
func NewShardedMap(capacity uint64) *ShardedMap {
	t := &ShardedMap{}
	per := int(capacity/shardCount) + 1
	for i := range t.shards {
		t.shards[i].m = make(map[uint64]uint64, per)
	}
	return t
}

func (t *ShardedMap) shard(k uint64) (*sync.RWMutex, map[uint64]uint64) {
	s := &t.shards[hashfn.Avalanche(k)&(shardCount-1)]
	return &s.mu, s.m
}

// Handle returns the table itself.
func (t *ShardedMap) Handle() tables.Handle { return direct(t) }

// ApproxSize returns the exact size.
func (t *ShardedMap) ApproxSize() uint64 {
	var n uint64
	for i := range t.shards {
		t.shards[i].mu.RLock()
		n += uint64(len(t.shards[i].m))
		t.shards[i].mu.RUnlock()
	}
	return n
}

// Range iterates elements.
func (t *ShardedMap) Range(f func(k, v uint64) bool) {
	for i := range t.shards {
		t.shards[i].mu.RLock()
		for k, v := range t.shards[i].m {
			if !f(k, v) {
				t.shards[i].mu.RUnlock()
				return
			}
		}
		t.shards[i].mu.RUnlock()
	}
}

var _ tables.Interface = (*ShardedMap)(nil)
var _ tables.Sizer = (*ShardedMap)(nil)
var _ tables.Ranger = (*ShardedMap)(nil)

// Insert implements tables.Handle.
func (t *ShardedMap) Insert(k, d uint64) bool {
	mu, m := t.shard(k)
	mu.Lock()
	defer mu.Unlock()
	if _, ok := m[k]; ok {
		return false
	}
	m[k] = d
	return true
}

// Update implements tables.Handle.
func (t *ShardedMap) Update(k, d uint64, up tables.UpdateFn) bool {
	mu, m := t.shard(k)
	mu.Lock()
	defer mu.Unlock()
	cur, ok := m[k]
	if !ok {
		return false
	}
	m[k] = up(cur, d)
	return true
}

// InsertOrUpdate implements tables.Handle.
func (t *ShardedMap) InsertOrUpdate(k, d uint64, up tables.UpdateFn) bool {
	mu, m := t.shard(k)
	mu.Lock()
	defer mu.Unlock()
	if cur, ok := m[k]; ok {
		m[k] = up(cur, d)
		return false
	}
	m[k] = d
	return true
}

// Find implements tables.Handle.
func (t *ShardedMap) Find(k uint64) (uint64, bool) {
	mu, m := t.shard(k)
	mu.RLock()
	defer mu.RUnlock()
	v, ok := m[k]
	return v, ok
}

// Delete implements tables.Handle.
func (t *ShardedMap) Delete(k uint64) bool {
	mu, m := t.shard(k)
	mu.Lock()
	defer mu.Unlock()
	if _, ok := m[k]; !ok {
		return false
	}
	delete(m, k)
	return true
}

func init() {
	tables.Register(tables.Capabilities{
		Name: "shardedmap", Plot: "tbb um stand-in", StdInterface: "direct",
		Growing: "yes", AtomicUpdates: "locked", Deletion: true,
		GeneralTypes: true, Reference: "split-lock map (TBB concurrent_unordered_map class)",
	}, func(capacity uint64) tables.Interface { return NewShardedMap(capacity) })
}
