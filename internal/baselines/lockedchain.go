package baselines

import (
	"sync"

	"repro/internal/hashfn"
	"repro/internal/tables"
)

// LockedChain is hashing with chaining under per-bucket reader/writer
// locks — the algorithm class of TBB's concurrent_hash_map, whose
// accessors hold a lock on the element while it is used (which is what
// makes it collapse under contention in Fig. 4). The bucket array is
// fixed at construction; chains absorb growth, so the table "grows" but
// degrades when the load factor climbs (the paper files TBB under
// efficient growers; the per-bucket chains reproduce that behavior
// without a global rehash).
type LockedChain struct {
	buckets []lcBucket
	mask    uint64
}

type lcBucket struct {
	mu   sync.RWMutex
	head *lcNode
	_    [32]byte
}

type lcNode struct {
	key  uint64
	val  uint64
	next *lcNode
}

// NewLockedChain builds the table with one bucket per expected element.
func NewLockedChain(capacity uint64) *LockedChain {
	n := uint64(16)
	for n < capacity {
		n <<= 1
	}
	return &LockedChain{buckets: make([]lcBucket, n), mask: n - 1}
}

func (t *LockedChain) bucket(k uint64) *lcBucket {
	return &t.buckets[hashfn.Avalanche(k)&t.mask]
}

// Handle returns the table itself.
func (t *LockedChain) Handle() tables.Handle { return direct(t) }

// ApproxSize counts elements (O(n)).
func (t *LockedChain) ApproxSize() uint64 {
	var n uint64
	for i := range t.buckets {
		b := &t.buckets[i]
		b.mu.RLock()
		for e := b.head; e != nil; e = e.next {
			n++
		}
		b.mu.RUnlock()
	}
	return n
}

// Range iterates elements.
func (t *LockedChain) Range(f func(k, v uint64) bool) {
	for i := range t.buckets {
		b := &t.buckets[i]
		b.mu.RLock()
		for e := b.head; e != nil; e = e.next {
			if !f(e.key, e.val) {
				b.mu.RUnlock()
				return
			}
		}
		b.mu.RUnlock()
	}
}

var _ tables.Interface = (*LockedChain)(nil)
var _ tables.Sizer = (*LockedChain)(nil)
var _ tables.Ranger = (*LockedChain)(nil)

// Insert implements tables.Handle.
func (t *LockedChain) Insert(k, d uint64) bool {
	b := t.bucket(k)
	b.mu.Lock()
	defer b.mu.Unlock()
	for e := b.head; e != nil; e = e.next {
		if e.key == k {
			return false
		}
	}
	b.head = &lcNode{key: k, val: d, next: b.head}
	return true
}

// Update implements tables.Handle.
func (t *LockedChain) Update(k, d uint64, up tables.UpdateFn) bool {
	b := t.bucket(k)
	b.mu.Lock()
	defer b.mu.Unlock()
	for e := b.head; e != nil; e = e.next {
		if e.key == k {
			e.val = up(e.val, d)
			return true
		}
	}
	return false
}

// InsertOrUpdate implements tables.Handle.
func (t *LockedChain) InsertOrUpdate(k, d uint64, up tables.UpdateFn) bool {
	b := t.bucket(k)
	b.mu.Lock()
	defer b.mu.Unlock()
	for e := b.head; e != nil; e = e.next {
		if e.key == k {
			e.val = up(e.val, d)
			return false
		}
	}
	b.head = &lcNode{key: k, val: d, next: b.head}
	return true
}

// Find implements tables.Handle. The read lock held while copying the
// value models TBB's const_accessor.
func (t *LockedChain) Find(k uint64) (uint64, bool) {
	b := t.bucket(k)
	b.mu.RLock()
	defer b.mu.RUnlock()
	for e := b.head; e != nil; e = e.next {
		if e.key == k {
			return e.val, true
		}
	}
	return 0, false
}

// Delete implements tables.Handle.
func (t *LockedChain) Delete(k uint64) bool {
	b := t.bucket(k)
	b.mu.Lock()
	defer b.mu.Unlock()
	for p := &b.head; *p != nil; p = &(*p).next {
		if (*p).key == k {
			*p = (*p).next
			return true
		}
	}
	return false
}

func init() {
	tables.Register(tables.Capabilities{
		Name: "lockedchain", Plot: "tbb hm stand-in", StdInterface: "direct",
		Growing: "chains only", AtomicUpdates: "locked", Deletion: true,
		GeneralTypes: true, Reference: "per-bucket rwlock chaining (TBB concurrent_hash_map class)",
	}, func(capacity uint64) tables.Interface { return NewLockedChain(capacity) })
}
