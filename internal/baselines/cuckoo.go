package baselines

import (
	"sync"
	"sync/atomic"

	"repro/internal/hashfn"
	"repro/internal/tables"
)

// Cuckoo reimplements libcuckoo (Li, Andersen, Kaminsky, Freedman [17]):
// bucketized cuckoo hashing with 4-slot buckets, two hash functions, a
// striped spinlock table, BFS search for short eviction paths, and moves
// executed one hop at a time under the two buckets' locks with
// re-validation. Growing is a full rehash under a global write lock —
// the paper classifies cuckoo's growing as "slow". Reads take the bucket
// locks (as in libcuckoo without TSX), which is exactly what makes it
// collapse under read contention in the paper's Fig. 4b.
type Cuckoo struct {
	global  sync.RWMutex // held shared by ops, exclusively by rehash
	buckets []ckBucket
	locks   []ckLock
	mask    uint64
	size    atomic.Int64
}

type ckBucket struct {
	keys [4]uint64
	vals [4]uint64
}

type ckLock struct {
	mu sync.Mutex
	_  [56]byte
}

const (
	ckLocks    = 2048
	ckBFSDepth = 5
	ckBFSQueue = 512
)

// NewCuckoo builds a table with ≥ 2·expected slots.
func NewCuckoo(expected uint64) *Cuckoo {
	nb := uint64(16)
	for nb*4 < 2*expected {
		nb <<= 1
	}
	return &Cuckoo{
		buckets: make([]ckBucket, nb),
		locks:   make([]ckLock, ckLocks),
		mask:    nb - 1,
	}
}

func (t *Cuckoo) hashes(k uint64) (uint64, uint64) {
	h := hashfn.Hash64(k)
	return h & t.mask, (h >> 32) * 0x9E3779B97F4A7C15 >> 32 & t.mask
}

func (t *Cuckoo) lock2(b1, b2 uint64) func() {
	l1, l2 := b1&(ckLocks-1), b2&(ckLocks-1)
	if l1 == l2 {
		t.locks[l1].mu.Lock()
		return t.locks[l1].mu.Unlock
	}
	if l1 > l2 {
		l1, l2 = l2, l1
	}
	t.locks[l1].mu.Lock()
	t.locks[l2].mu.Lock()
	return func() {
		t.locks[l2].mu.Unlock()
		t.locks[l1].mu.Unlock()
	}
}

// slotOf returns (bucket, slot) of k or (^0, 0). Caller holds the locks.
func (t *Cuckoo) slotOf(b1, b2, k uint64) (uint64, int) {
	for s := 0; s < 4; s++ {
		if t.buckets[b1].keys[s] == k {
			return b1, s
		}
	}
	for s := 0; s < 4; s++ {
		if t.buckets[b2].keys[s] == k {
			return b2, s
		}
	}
	return ^uint64(0), 0
}

// freeSlot returns a free slot index in b or -1.
func (t *Cuckoo) freeSlot(b uint64) int {
	for s := 0; s < 4; s++ {
		if t.buckets[b].keys[s] == 0 {
			return s
		}
	}
	return -1
}

// Handle returns the table itself.
func (t *Cuckoo) Handle() tables.Handle { return direct(t) }

// ApproxSize returns the exact size.
func (t *Cuckoo) ApproxSize() uint64 {
	n := t.size.Load()
	if n < 0 {
		return 0
	}
	return uint64(n)
}

// MemBytes reports backing memory.
func (t *Cuckoo) MemBytes() uint64 { return uint64(len(t.buckets)) * 64 }

// Range iterates elements; quiescent use only.
func (t *Cuckoo) Range(f func(k, v uint64) bool) {
	for i := range t.buckets {
		for s := 0; s < 4; s++ {
			if k := t.buckets[i].keys[s]; k != 0 {
				if !f(k, t.buckets[i].vals[s]) {
					return
				}
			}
		}
	}
}

var _ tables.Interface = (*Cuckoo)(nil)
var _ tables.Sizer = (*Cuckoo)(nil)
var _ tables.Ranger = (*Cuckoo)(nil)
var _ tables.MemUser = (*Cuckoo)(nil)

// Insert implements tables.Handle.
func (t *Cuckoo) Insert(k, d uint64) bool {
	if k == 0 {
		panic("baselines: key 0 reserved")
	}
	ins, _ := t.upsert(k, d, nil)
	return ins
}

// Update implements tables.Handle.
func (t *Cuckoo) Update(k, d uint64, up tables.UpdateFn) bool {
	t.global.RLock()
	defer t.global.RUnlock()
	b1, b2 := t.hashes(k)
	unlock := t.lock2(b1, b2)
	defer unlock()
	b, s := t.slotOf(b1, b2, k)
	if b == ^uint64(0) {
		return false
	}
	t.buckets[b].vals[s] = up(t.buckets[b].vals[s], d)
	return true
}

// InsertOrUpdate implements tables.Handle.
func (t *Cuckoo) InsertOrUpdate(k, d uint64, up tables.UpdateFn) bool {
	ins, _ := t.upsert(k, d, up)
	return ins
}

// upsert inserts, updates (if up != nil), or refuses a duplicate.
func (t *Cuckoo) upsert(k, d uint64, up tables.UpdateFn) (inserted, updated bool) {
	for {
		t.global.RLock()
		b1, b2 := t.hashes(k)
		unlock := t.lock2(b1, b2)
		if b, s := t.slotOf(b1, b2, k); b != ^uint64(0) {
			if up != nil {
				t.buckets[b].vals[s] = up(t.buckets[b].vals[s], d)
				unlock()
				t.global.RUnlock()
				return false, true
			}
			unlock()
			t.global.RUnlock()
			return false, false
		}
		if s := t.freeSlot(b1); s >= 0 {
			t.buckets[b1].keys[s] = k
			t.buckets[b1].vals[s] = d
			unlock()
			t.size.Add(1)
			t.global.RUnlock()
			return true, false
		}
		if s := t.freeSlot(b2); s >= 0 {
			t.buckets[b2].keys[s] = k
			t.buckets[b2].vals[s] = d
			unlock()
			t.size.Add(1)
			t.global.RUnlock()
			return true, false
		}
		unlock()
		// Both buckets full: BFS for an eviction path, then retry.
		if t.evict(b1, b2) {
			t.global.RUnlock()
			continue
		}
		saw := len(t.buckets)
		t.global.RUnlock()
		t.rehash(saw)
	}
}

// bfsEntry is one node of the eviction-path search.
type bfsEntry struct {
	bucket uint64
	parent int
	slot   int // slot taken in parent's bucket to get here
}

// evict finds a bucket with a free slot reachable by displacing at most
// ckBFSDepth elements and performs the displacements back-to-front, each
// under the two buckets' locks with re-validation. Returns false if no
// path exists (caller rehashes).
func (t *Cuckoo) evict(b1, b2 uint64) bool {
	queue := make([]bfsEntry, 0, ckBFSQueue)
	queue = append(queue, bfsEntry{bucket: b1, parent: -1}, bfsEntry{bucket: b2, parent: -1})
	depth := map[int]int{0: 0, 1: 0}
	goal := -1
	for i := 0; i < len(queue) && goal < 0; i++ {
		ks := t.snapshot(queue[i].bucket)
		for s := 0; s < 4; s++ {
			if ks[s] == 0 {
				goal = i
				break
			}
		}
		if goal >= 0 {
			break
		}
		if depth[i] >= ckBFSDepth || len(queue) >= ckBFSQueue {
			continue
		}
		for s := 0; s < 4; s++ {
			k := ks[s]
			if k == 0 {
				continue
			}
			h1, h2 := t.hashes(k)
			alt := h1
			if h1 == queue[i].bucket {
				alt = h2
			}
			queue = append(queue, bfsEntry{bucket: alt, parent: i, slot: s})
			depth[len(queue)-1] = depth[i] + 1
		}
	}
	if goal < 0 {
		return false
	}
	// Reconstruct the path root→goal, then move elements from the end.
	var path []bfsEntry
	for i := goal; i >= 0; i = queue[i].parent {
		path = append(path, queue[i])
		if queue[i].parent == -1 {
			break
		}
	}
	// path[0] = goal ... path[len-1] = root. Move backwards: for each hop,
	// move parent's displaced key into the current (freer) bucket.
	for i := 0; i+1 < len(path); i++ {
		dst := path[i].bucket
		src := path[i+1].bucket
		slot := path[i].slot
		unlock := t.lock2(dst, src)
		free := t.freeSlot(dst)
		k := t.buckets[src].keys[slot]
		if free < 0 || k == 0 {
			unlock()
			return true // plan invalidated; caller retries the insert
		}
		h1, h2 := t.hashes(k)
		if h1 != dst && h2 != dst {
			unlock()
			return true // slot was reused by a different key; retry
		}
		t.buckets[dst].keys[free] = k
		t.buckets[dst].vals[free] = t.buckets[src].vals[slot]
		t.buckets[src].keys[slot] = 0
		unlock()
	}
	return true
}

// snapshot copies a bucket's keys under its lock (for the BFS planning
// phase, which otherwise would race with locked writers).
func (t *Cuckoo) snapshot(b uint64) [4]uint64 {
	l := &t.locks[b&(ckLocks-1)].mu
	l.Lock()
	ks := t.buckets[b].keys
	l.Unlock()
	return ks
}

// rehash doubles the table under the global write lock (libcuckoo-class
// "slow growing").
func (t *Cuckoo) rehash(sawBuckets int) {
	t.global.Lock()
	defer t.global.Unlock()
	// Another thread may have rehashed while we waited for the lock.
	if len(t.buckets) != sawBuckets {
		return
	}
	type ckv struct{ k, v uint64 }
	var elems []ckv
	for i := range t.buckets {
		for s := 0; s < 4; s++ {
			if k := t.buckets[i].keys[s]; k != 0 {
				elems = append(elems, ckv{k, t.buckets[i].vals[s]})
			}
		}
	}
	nb := 2 * len(t.buckets)
	for {
		t.buckets = make([]ckBucket, nb)
		t.mask = uint64(nb - 1)
		ok := true
		for _, e := range elems {
			if !t.placeRehash(e.k, e.v, 0) {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		nb *= 2
	}
}

// placeRehash inserts during rehash (single-threaded, no locks), using
// random-walk eviction up to a bound.
func (t *Cuckoo) placeRehash(k, v uint64, depth int) bool {
	if depth > 64 {
		return false
	}
	b1, b2 := t.hashes(k)
	if s := t.freeSlot(b1); s >= 0 {
		t.buckets[b1].keys[s] = k
		t.buckets[b1].vals[s] = v
		return true
	}
	if s := t.freeSlot(b2); s >= 0 {
		t.buckets[b2].keys[s] = k
		t.buckets[b2].vals[s] = v
		return true
	}
	// Displace the first slot of b1.
	vic, vv := t.buckets[b1].keys[0], t.buckets[b1].vals[0]
	t.buckets[b1].keys[0] = k
	t.buckets[b1].vals[0] = v
	return t.placeRehash(vic, vv, depth+1)
}

// Find implements tables.Handle (locked reads, as in libcuckoo).
func (t *Cuckoo) Find(k uint64) (uint64, bool) {
	t.global.RLock()
	defer t.global.RUnlock()
	b1, b2 := t.hashes(k)
	unlock := t.lock2(b1, b2)
	defer unlock()
	b, s := t.slotOf(b1, b2, k)
	if b == ^uint64(0) {
		return 0, false
	}
	return t.buckets[b].vals[s], true
}

// Delete implements tables.Handle (true deletion, no tombstones).
func (t *Cuckoo) Delete(k uint64) bool {
	t.global.RLock()
	defer t.global.RUnlock()
	b1, b2 := t.hashes(k)
	unlock := t.lock2(b1, b2)
	defer unlock()
	b, s := t.slotOf(b1, b2, k)
	if b == ^uint64(0) {
		return false
	}
	t.buckets[b].keys[s] = 0
	t.size.Add(-1)
	return true
}

func init() {
	tables.Register(tables.Capabilities{
		Name: "cuckoo", Plot: "libcuckoo stand-in", StdInterface: "direct",
		Growing: "slow (full rehash)", AtomicUpdates: "locked", Deletion: true,
		GeneralTypes: true, Reference: "Li et al. [17] bucketized cuckoo, striped locks, BFS",
	}, func(capacity uint64) tables.Interface { return NewCuckoo(capacity) })
}
