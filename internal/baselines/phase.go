package baselines

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/hashfn"
	"repro/internal/tables"
)

// Phase reimplements the phase-concurrent linear-probing table of Shun
// and Blelloch [34]: operations of only one kind may run concurrently
// (globally synchronized phases, enforced by the caller as in the
// original library). This restriction buys true deletion — holes are
// repaired by Knuth's backward-shift rearrangement instead of tombstones,
// which is why it wins the paper's deletion benchmark (Fig. 6) — and
// tombstone-free probing. The table is bounded, like the original.
//
// Inserts are lock-free CAS claims; finds are plain probes (legal because
// no writer runs in a find phase); deletes coordinate among themselves
// with striped segment locks while they rearrange clusters.
type Phase struct {
	//growt:atomic
	cells []uint64 // interleaved key/value
	segs  []phSeg
	mask  uint64
	shift uint
	size  atomic.Int64
}

type phSeg struct {
	mu sync.Mutex
	_  [56]byte
}

const (
	phSegCells = 4096
	phDelSpan  = 4 // segments locked per deletion before escalating
)

// NewPhase builds a bounded table with capacity ≥ 2·expected.
//
//growt:exclusive -- construction: the table is unpublished
func NewPhase(expected uint64) *Phase {
	capacity := uint64(phSegCells)
	for capacity < 2*expected {
		capacity <<= 1
	}
	shift := uint(64)
	for c := capacity; c > 1; c >>= 1 {
		shift--
	}
	return &Phase{
		cells: make([]uint64, 2*capacity),
		segs:  make([]phSeg, capacity/phSegCells),
		mask:  capacity - 1,
		shift: shift,
	}
}

func (t *Phase) loadKey(i uint64) uint64 { return atomic.LoadUint64(&t.cells[2*i]) }
func (t *Phase) loadVal(i uint64) uint64 { return atomic.LoadUint64(&t.cells[2*i+1]) }
func (t *Phase) storeKey(i, k uint64)    { atomic.StoreUint64(&t.cells[2*i], k) }
func (t *Phase) storeVal(i, v uint64)    { atomic.StoreUint64(&t.cells[2*i+1], v) }
func (t *Phase) casKey(i, o, n uint64) bool {
	return atomic.CompareAndSwapUint64(&t.cells[2*i], o, n)
}
func (t *Phase) casVal(i, o, n uint64) bool {
	return atomic.CompareAndSwapUint64(&t.cells[2*i+1], o, n)
}

func (t *Phase) home(k uint64) uint64 { return hashfn.Hash64(k) >> t.shift }

// Handle returns the table itself.
func (t *Phase) Handle() tables.Handle { return direct(t) }

// ApproxSize returns the exact count.
func (t *Phase) ApproxSize() uint64 {
	n := t.size.Load()
	if n < 0 {
		return 0
	}
	return uint64(n)
}

// MemBytes reports backing memory.
func (t *Phase) MemBytes() uint64 { return uint64(len(t.cells)) * 8 }

// Range iterates elements; quiescent use only.
func (t *Phase) Range(f func(k, v uint64) bool) {
	for i := uint64(0); i <= t.mask; i++ {
		if k := t.loadKey(i); k != 0 {
			if !f(k, t.loadVal(i)) {
				return
			}
		}
	}
}

var _ tables.Interface = (*Phase)(nil)
var _ tables.Sizer = (*Phase)(nil)
var _ tables.Ranger = (*Phase)(nil)
var _ tables.MemUser = (*Phase)(nil)

// Insert implements tables.Handle (insert phase).
func (t *Phase) Insert(k, d uint64) bool {
	if k == 0 {
		panic("baselines: key 0 reserved")
	}
	i := t.home(k)
	for probes := uint64(0); probes <= t.mask; probes++ {
		kw := t.loadKey(i)
		if kw == 0 {
			// Claim the key, then publish the value. Within an insert
			// phase no operation reads values, and the phase barrier
			// orders the value store before any find (§ phase concurrency).
			if t.casKey(i, 0, k) {
				t.storeVal(i, d)
				t.size.Add(1)
				return true
			}
			kw = t.loadKey(i)
		}
		if kw == k {
			return false
		}
		i = (i + 1) & t.mask
	}
	panic("baselines: phase-concurrent table full — size it to ≥2n")
}

// Find implements tables.Handle (find phase).
func (t *Phase) Find(k uint64) (uint64, bool) {
	i := t.home(k)
	for probes := uint64(0); probes <= t.mask; probes++ {
		kw := t.loadKey(i)
		if kw == 0 {
			return 0, false
		}
		if kw == k {
			return t.loadVal(i), true
		}
		i = (i + 1) & t.mask
	}
	return 0, false
}

// Update implements tables.Handle (update phase; the original supports
// overwrite-style updates only — Table 1).
func (t *Phase) Update(k, d uint64, up tables.UpdateFn) bool {
	i := t.home(k)
	for probes := uint64(0); probes <= t.mask; probes++ {
		kw := t.loadKey(i)
		if kw == 0 {
			return false
		}
		if kw == k {
			for {
				v := t.loadVal(i)
				if t.casVal(i, v, up(v, d)) {
					return true
				}
			}
		}
		i = (i + 1) & t.mask
	}
	return false
}

// InsertOrUpdate implements tables.Handle (single-kind phase).
func (t *Phase) InsertOrUpdate(k, d uint64, up tables.UpdateFn) bool {
	if t.Update(k, d, up) {
		return false
	}
	if t.Insert(k, d) {
		return true
	}
	// Lost an insert race since the update attempt; update now.
	t.Update(k, d, up)
	return false
}

// segsSpan returns sorted distinct segment indices covering
// [start, start+span) cyclically.
func (t *Phase) segsSpan(start, span uint64) []int {
	n := uint64(len(t.segs))
	first := start / phSegCells
	count := (start%phSegCells+span)/phSegCells + 1
	if count > n {
		count = n
	}
	out := make([]int, 0, count)
	for i := uint64(0); i < count; i++ {
		out = append(out, int((first+i)%n))
	}
	sort.Ints(out)
	w := 0
	for i, s := range out {
		if i == 0 || s != out[w-1] {
			out[w] = s
			w++
		}
	}
	return out[:w]
}

func (t *Phase) lockSegs(idx []int) {
	for _, i := range idx {
		t.segs[i].mu.Lock()
	}
}

func (t *Phase) unlockSegs(idx []int) {
	for i := len(idx) - 1; i >= 0; i-- {
		t.segs[idx[i]].mu.Unlock()
	}
}

// Delete implements tables.Handle (delete phase): true deletion with
// Knuth's backward-shift repair, coordinated among deleters with striped
// locks; escalates to all segments if a cluster outruns the local span.
func (t *Phase) Delete(k uint64) bool {
	home := t.home(k)
	spanCells := uint64(phDelSpan * phSegCells)
	idx := t.segsSpan(home, spanCells)
	all := len(idx) == len(t.segs)
	t.lockSegs(idx)
	ok, escalate := t.deleteLocked(k, home, spanCells, all)
	t.unlockSegs(idx)
	if !escalate {
		return ok
	}
	// Rare: the cluster extends beyond the locked span. Take every
	// segment (sorted order ⇒ deadlock-free) and run unbounded.
	allIdx := make([]int, len(t.segs))
	for i := range allIdx {
		allIdx[i] = i
	}
	t.lockSegs(allIdx)
	ok, _ = t.deleteLocked(k, home, t.mask+1, true)
	t.unlockSegs(allIdx)
	return ok
}

// deleteLocked performs the deletion under held locks. Returns
// (deleted, needEscalation).
func (t *Phase) deleteLocked(k, home, spanCells uint64, unbounded bool) (bool, bool) {
	// Locate k within the span.
	i := home
	found := false
	for off := uint64(0); off < spanCells; off++ {
		kw := t.loadKey(i)
		if kw == 0 {
			return false, false
		}
		if kw == k {
			found = true
			break
		}
		i = (i + 1) & t.mask
	}
	if !found {
		return false, !unbounded
	}
	// Backward-shift repair (Knuth 6.4 Algorithm R).
	hole := i
	j := i
	steps := uint64(0)
	for {
		j = (j + 1) & t.mask
		steps++
		if !unbounded && steps+((home+t.mask+1-hole)&t.mask) >= spanCells {
			return false, true // would leave the locked span: escalate
		}
		kj := t.loadKey(j)
		if kj == 0 {
			break
		}
		r := t.home(kj)
		movable := false
		if j > hole {
			movable = r <= hole || r > j
		} else {
			movable = r <= hole && r > j
		}
		if movable {
			t.storeVal(hole, t.loadVal(j))
			t.storeKey(hole, kj)
			hole = j
		}
	}
	t.storeKey(hole, 0)
	t.storeVal(hole, 0)
	t.size.Add(-1)
	return true, false
}

func init() {
	tables.Register(tables.Capabilities{
		Name: "phase", Plot: "filled square", StdInterface: "sync phases",
		Growing: "no", AtomicUpdates: "only overwrite", Deletion: true,
		GeneralTypes: false, Reference: "Shun & Blelloch [34] phase-concurrent table",
	}, func(capacity uint64) tables.Interface { return NewPhase(capacity) })
}
