package baselines

import (
	"math/bits"

	"repro/internal/hashfn"
	"repro/internal/tables"
)

// Seq is the hand-optimized *sequential* linear-probing table of §8.1.4,
// used to compute the absolute speedups the paper reports. It uses no
// atomic instructions at all and is NOT safe for concurrent use — exactly
// like the paper's sequential baseline. It grows by doubling at 60% fill
// and cleans tombstones during migration, mirroring the growing variants'
// policy so growing overheads are comparable.
type Seq struct {
	keys     []uint64
	vals     []uint64
	dead     []bool
	capacity uint64
	shift    uint
	nonempty uint64 // occupied cells incl. tombstones
	liveN    uint64
	bounded  bool
}

// NewSeq builds a growing sequential table.
func NewSeq(initialCapacity uint64) *Seq {
	s := &Seq{}
	s.init(initialCapacity)
	return s
}

// NewSeqBounded builds a fixed-capacity sequential table sized ≥2n.
func NewSeqBounded(expected uint64) *Seq {
	s := &Seq{bounded: true}
	s.init(2 * expected)
	return s
}

func (s *Seq) init(capacity uint64) {
	if capacity < 8 {
		capacity = 8
	}
	logCap := uint(bits.Len64(capacity - 1))
	capacity = uint64(1) << logCap
	s.keys = make([]uint64, capacity)
	s.vals = make([]uint64, capacity)
	s.dead = make([]bool, capacity)
	s.capacity = capacity
	s.shift = 64 - logCap
	s.nonempty = 0
	s.liveN = 0
}

// Handle returns the table itself (sequential use only).
func (s *Seq) Handle() tables.Handle { return direct(s) }

// ApproxSize returns the exact size (sequential tables count exactly).
func (s *Seq) ApproxSize() uint64 { return s.liveN }

// MemBytes reports backing memory.
func (s *Seq) MemBytes() uint64 { return s.capacity * (8 + 8 + 1) }

// Range iterates live elements.
func (s *Seq) Range(f func(k, v uint64) bool) {
	for i := uint64(0); i < s.capacity; i++ {
		if s.keys[i] != 0 && !s.dead[i] {
			if !f(s.keys[i], s.vals[i]) {
				return
			}
		}
	}
}

var _ tables.Interface = (*Seq)(nil)
var _ tables.Sizer = (*Seq)(nil)
var _ tables.Ranger = (*Seq)(nil)
var _ tables.MemUser = (*Seq)(nil)
var _ tables.Adder = (*Seq)(nil)

func (s *Seq) maybeGrow() {
	if s.nonempty*5 < s.capacity*3 {
		return
	}
	if s.bounded {
		panic("baselines: bounded sequential table full")
	}
	newCap := s.capacity * 2
	if s.liveN < s.capacity/3 {
		newCap = s.capacity // tombstone cleanup
	}
	ok, ov, od := s.keys, s.vals, s.dead
	s.init(newCap)
	for i := range ok {
		if ok[i] != 0 && !od[i] {
			s.place(ok[i], ov[i])
		}
	}
}

// place inserts k (known absent) without growth checks.
func (s *Seq) place(k, v uint64) {
	mask := s.capacity - 1
	i := hashfn.Hash64(k) >> s.shift
	for s.keys[i] != 0 {
		i = (i + 1) & mask
	}
	s.keys[i] = k
	s.vals[i] = v
	s.nonempty++
	s.liveN++
}

// lookup returns the cell index of k, or the first empty cell, plus found.
func (s *Seq) lookup(k uint64) (uint64, bool) {
	mask := s.capacity - 1
	i := hashfn.Hash64(k) >> s.shift
	for {
		if s.keys[i] == 0 {
			return i, false
		}
		if s.keys[i] == k && !s.dead[i] {
			return i, true
		}
		if s.keys[i] == k && s.dead[i] {
			return i, false // tombstone owned by k: revivable slot
		}
		i = (i + 1) & mask
	}
}

// Insert implements tables.Handle.
func (s *Seq) Insert(k, d uint64) bool {
	if k == 0 {
		panic("baselines: key 0 reserved")
	}
	i, found := s.lookup(k)
	if found {
		return false
	}
	if s.keys[i] == k { // revive tombstone
		s.dead[i] = false
		s.vals[i] = d
		s.liveN++
		return true
	}
	s.keys[i] = k
	s.vals[i] = d
	s.nonempty++
	s.liveN++
	s.maybeGrow()
	return true
}

// Update implements tables.Handle.
func (s *Seq) Update(k, d uint64, up tables.UpdateFn) bool {
	i, found := s.lookup(k)
	if !found {
		return false
	}
	s.vals[i] = up(s.vals[i], d)
	return true
}

// InsertOrUpdate implements tables.Handle.
func (s *Seq) InsertOrUpdate(k, d uint64, up tables.UpdateFn) bool {
	i, found := s.lookup(k)
	if found {
		s.vals[i] = up(s.vals[i], d)
		return false
	}
	if s.keys[i] == k {
		s.dead[i] = false
		s.vals[i] = d
		s.liveN++
		return true
	}
	s.keys[i] = k
	s.vals[i] = d
	s.nonempty++
	s.liveN++
	s.maybeGrow()
	return true
}

// InsertOrAdd implements tables.Adder.
func (s *Seq) InsertOrAdd(k, d uint64) bool { return s.InsertOrUpdate(k, d, tables.AddFn) }

// Find implements tables.Handle.
func (s *Seq) Find(k uint64) (uint64, bool) {
	i, found := s.lookup(k)
	if !found {
		return 0, false
	}
	return s.vals[i], true
}

// Delete implements tables.Handle (tombstoning, reclaimed at migration).
func (s *Seq) Delete(k uint64) bool {
	i, found := s.lookup(k)
	if !found {
		return false
	}
	s.dead[i] = true
	s.liveN--
	return true
}

func init() {
	tables.Register(tables.Capabilities{
		Name: "seq", Plot: "dashed black line", StdInterface: "sequential only",
		Growing: "yes", AtomicUpdates: "n/a (sequential)", Deletion: true,
		GeneralTypes: false, Reference: "§8.1.4 hand-optimized sequential baseline",
	}, func(capacity uint64) tables.Interface { return NewSeq(capacity) })
}
