// Package baselines reimplements, from their published algorithms, the
// competitor hash tables the paper benchmarks against (§8.1), plus two
// idiomatic-Go general-purpose maps. The originals are C/C++ libraries
// that cannot be linked from an offline pure-Go module, so each stand-in
// reproduces the *algorithm class* — fine-grained locking vs. open
// addressing vs. chaining vs. RCU-style ordered lists — which is what the
// paper's comparison measures (see DESIGN.md §1.3/§4 for the mapping).
//
// Every table implements tables.Interface and registers itself in the
// capability registry, so the conformance suite and the benchmark harness
// drive all of them uniformly.
package baselines

import "repro/internal/tables"

// selfHandle adapts a table whose methods are already safe for direct
// concurrent use (no per-goroutine state) to the handle-based interface.
type selfHandle struct{ tables.Handle }

// direct wraps h so that Handle() can return the table itself.
func direct(h tables.Handle) tables.Handle { return selfHandle{h} }
