package baselines

import (
	"sync"
	"sync/atomic"

	"repro/internal/hashfn"
	"repro/internal/tables"
)

// LeaHash reimplements Doug Lea's java.util.concurrent.ConcurrentHashMap
// (the pre-Java-8 design the paper benchmarks as "LeaHash" [16]): the
// table is split into segments; each segment is a chaining hash table
// with a lock serializing writers, while readers traverse the immutable
// chain nodes lock-free (nodes are never mutated after linking except for
// the value, which is an atomic).
type LeaHash struct {
	segs [leaSegments]leaSegment
}

const leaSegments = 16

type leaSegment struct {
	mu      sync.Mutex
	buckets atomic.Pointer[[]atomic.Pointer[leaNode]]
	count   atomic.Int64
	_       [24]byte
}

type leaNode struct {
	key  uint64
	val  atomic.Uint64
	next atomic.Pointer[leaNode] // written only under the segment lock
}

// NewLeaHash builds the table with a per-segment capacity hint.
func NewLeaHash(capacity uint64) *LeaHash {
	t := &LeaHash{}
	per := uint64(16)
	for per*leaSegments < capacity {
		per <<= 1
	}
	for i := range t.segs {
		b := make([]atomic.Pointer[leaNode], per)
		t.segs[i].buckets.Store(&b)
	}
	return t
}

func (t *LeaHash) segment(h uint64) *leaSegment { return &t.segs[h>>60] }

// Handle returns the table itself.
func (t *LeaHash) Handle() tables.Handle { return direct(t) }

// ApproxSize sums the segment counters.
func (t *LeaHash) ApproxSize() uint64 {
	var n int64
	for i := range t.segs {
		n += t.segs[i].count.Load()
	}
	if n < 0 {
		return 0
	}
	return uint64(n)
}

// Range iterates elements.
func (t *LeaHash) Range(f func(k, v uint64) bool) {
	for i := range t.segs {
		b := *t.segs[i].buckets.Load()
		for j := range b {
			for e := b[j].Load(); e != nil; e = e.next.Load() {
				if !f(e.key, e.val.Load()) {
					return
				}
			}
		}
	}
}

var _ tables.Interface = (*LeaHash)(nil)
var _ tables.Sizer = (*LeaHash)(nil)
var _ tables.Ranger = (*LeaHash)(nil)

// findNode is the lock-free read path.
func (s *leaSegment) findNode(h, k uint64) *leaNode {
	b := *s.buckets.Load()
	for e := b[h&uint64(len(b)-1)].Load(); e != nil; e = e.next.Load() {
		if e.key == k {
			return e
		}
	}
	return nil
}

// rehash doubles the segment's bucket array; caller holds the lock.
func (s *leaSegment) rehash() {
	old := *s.buckets.Load()
	nb := make([]atomic.Pointer[leaNode], 2*len(old))
	mask := uint64(len(nb) - 1)
	for i := range old {
		for e := old[i].Load(); e != nil; e = e.next.Load() {
			h := hashfn.Avalanche(e.key)
			n := &leaNode{key: e.key}
			n.val.Store(e.val.Load())
			n.next.Store(nb[h&mask].Load())
			nb[h&mask].Store(n)
		}
	}
	s.buckets.Store(&nb)
}

func (s *leaSegment) maybeRehash() {
	if uint64(s.count.Load()) > uint64(len(*s.buckets.Load()))*4 {
		s.rehash()
	}
}

// Insert implements tables.Handle.
func (t *LeaHash) Insert(k, d uint64) bool {
	h := hashfn.Avalanche(k)
	s := t.segment(h)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.findNode(h, k) != nil {
		return false
	}
	b := *s.buckets.Load()
	head := &b[h&uint64(len(b)-1)]
	n := &leaNode{key: k}
	n.val.Store(d)
	n.next.Store(head.Load())
	head.Store(n)
	s.count.Add(1)
	s.maybeRehash()
	return true
}

// Update implements tables.Handle.
func (t *LeaHash) Update(k, d uint64, up tables.UpdateFn) bool {
	h := hashfn.Avalanche(k)
	s := t.segment(h)
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.findNode(h, k)
	if e == nil {
		return false
	}
	e.val.Store(up(e.val.Load(), d))
	return true
}

// InsertOrUpdate implements tables.Handle.
func (t *LeaHash) InsertOrUpdate(k, d uint64, up tables.UpdateFn) bool {
	h := hashfn.Avalanche(k)
	s := t.segment(h)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.findNode(h, k); e != nil {
		e.val.Store(up(e.val.Load(), d))
		return false
	}
	b := *s.buckets.Load()
	head := &b[h&uint64(len(b)-1)]
	n := &leaNode{key: k}
	n.val.Store(d)
	n.next.Store(head.Load())
	head.Store(n)
	s.count.Add(1)
	s.maybeRehash()
	return true
}

// Find implements tables.Handle: lock-free, like Lea's get().
func (t *LeaHash) Find(k uint64) (uint64, bool) {
	h := hashfn.Avalanche(k)
	e := t.segment(h).findNode(h, k)
	if e == nil {
		return 0, false
	}
	return e.val.Load(), true
}

// Delete implements tables.Handle. The chain prefix is copied (Lea's
// deletion) so concurrent lock-free readers keep a consistent view.
func (t *LeaHash) Delete(k uint64) bool {
	h := hashfn.Avalanche(k)
	s := t.segment(h)
	s.mu.Lock()
	defer s.mu.Unlock()
	b := *s.buckets.Load()
	head := &b[h&uint64(len(b)-1)]
	var prefix []*leaNode
	e := head.Load()
	for e != nil && e.key != k {
		prefix = append(prefix, e)
		e = e.next.Load()
	}
	if e == nil {
		return false
	}
	// Rebuild the prefix on top of e.next.
	tail := e.next.Load()
	for i := len(prefix) - 1; i >= 0; i-- {
		n := &leaNode{key: prefix[i].key}
		n.val.Store(prefix[i].val.Load())
		n.next.Store(tail)
		tail = n
	}
	head.Store(tail)
	s.count.Add(-1)
	return true
}

func init() {
	tables.Register(tables.Capabilities{
		Name: "leahash", Plot: "H marker", StdInterface: "direct",
		Growing: "per-segment rehash", AtomicUpdates: "locked", Deletion: true,
		GeneralTypes: true, Reference: "Lea [16], segmented chaining, lock-free reads",
	}, func(capacity uint64) tables.Interface { return NewLeaHash(capacity) })
}
