package tables

import (
	"strings"
	"testing"
)

type fakeTable struct{ cap uint64 }

func (f *fakeTable) Handle() Handle { return nil }

func TestRegistryRoundtrip(t *testing.T) {
	Register(Capabilities{Name: "test-fake", Growing: "no", Reference: "test"},
		func(capacity uint64) Interface { return &fakeTable{cap: capacity} })
	caps, ok := Lookup("test-fake")
	if !ok || caps.Reference != "test" {
		t.Fatal("lookup failed")
	}
	tab, err := New("test-fake", 123)
	if err != nil {
		t.Fatal(err)
	}
	if tab.(*fakeTable).cap != 123 {
		t.Fatal("maker not invoked with capacity")
	}
	if _, err := New("no-such-table", 1); err == nil {
		t.Fatal("unknown name must return an error")
	} else if !strings.Contains(err.Error(), "no-such-table") ||
		!strings.Contains(err.Error(), "test-fake") {
		t.Fatalf("error should name the bad table and list registered ones, got: %v", err)
	}
	if _, ok := Lookup("no-such-table"); ok {
		t.Fatal("unknown lookup must fail")
	}
	found := false
	for _, c := range All() {
		if c.Name == "test-fake" {
			found = true
		}
	}
	if !found {
		t.Fatal("All() missing registration")
	}
}

func TestUpdateFns(t *testing.T) {
	if Overwrite(5, 9) != 9 {
		t.Fatal("Overwrite")
	}
	if AddFn(5, 9) != 14 {
		t.Fatal("AddFn")
	}
}
