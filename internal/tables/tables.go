// Package tables defines the common interface implemented by every hash
// table in this repository — the paper's own variants (folklore, the four
// xyGrow tables, tsxfolklore) and all reimplemented competitors — plus the
// capability registry behind Table 1 of the paper.
//
// The interface mirrors §4 of the paper:
//
//   - Insert(k,d): fails (returns false) if the key is present; exactly one
//     of multiple concurrent inserters of the same key succeeds.
//   - Update(k,d,up): fails if the key is absent; otherwise atomically
//     applies new = up(current, d).
//   - InsertOrUpdate(k,d,up): insert if absent, else atomic update; returns
//     true iff an insert happened.
//   - Find(k): returns a copy of the value (never a reference — §4's
//     "Lookup" discussion).
//   - Delete(k): removes the key (tombstone or physical, per table).
//
// Threads access tables through handles (§5.1): Handle() returns a
// per-goroutine accessor holding thread-local state (counters, cached
// table pointer). Handles must not be shared between goroutines.
package tables

import (
	"fmt"
	"strings"
)

// UpdateFn computes the new value from the current value and the operand,
// e.g. func(cur, d uint64) uint64 { return cur + d } for aggregation.
type UpdateFn func(current, d uint64) uint64

// Overwrite is the UpdateFn that replaces the stored value with d.
func Overwrite(_, d uint64) uint64 { return d }

// AddFn is the UpdateFn that adds d to the stored value (aggregation).
func AddFn(current, d uint64) uint64 { return current + d }

// Handle is a per-goroutine accessor to a shared table.
type Handle interface {
	// Insert stores ⟨k,d⟩ if k is absent. Returns true iff this call
	// inserted the element.
	Insert(k, d uint64) bool
	// Update atomically changes the value of k to up(current, d).
	// Returns false if k is absent.
	Update(k, d uint64, up UpdateFn) bool
	// InsertOrUpdate inserts ⟨k,d⟩ if absent, else updates like Update.
	// Returns true iff an insert was performed.
	InsertOrUpdate(k, d uint64, up UpdateFn) bool
	// Find returns the value stored at k and whether k is present.
	Find(k uint64) (uint64, bool)
	// Delete removes k. Returns true iff k was present.
	Delete(k uint64) bool
}

// Adder is implemented by handles offering a native fetch-and-add
// insert-or-increment (the paper's atomicUpdate template specialization,
// §4); the aggregation benchmark (Fig. 5) uses it when available.
type Adder interface {
	// InsertOrAdd inserts ⟨k,d⟩ if absent, else atomically adds d to the
	// stored value. Returns true iff an insert was performed.
	InsertOrAdd(k, d uint64) bool
}

// LoadDeleter is implemented by handles whose delete can report the
// removed value atomically (the tombstoning CAS/transaction observes the
// value word it clears). The typed facade's LoadAndDelete requires it —
// a find-then-delete emulation could return a value the delete never
// removed.
type LoadDeleter interface {
	// LoadAndDelete removes k and returns the value it held. ok is false
	// (with value 0) when k was absent.
	LoadAndDelete(k uint64) (uint64, bool)
}

// CompareAndDeleter is implemented by handles whose delete can be
// conditioned on the current value atomically (the tombstoning
// CAS/transaction compares the value word it clears). The typed facade's
// CompareAndDelete — and the cache layer's expiry/eviction races built
// on it — require it: a find-then-delete emulation could remove a value
// the comparison never saw.
type CompareAndDeleter interface {
	// CompareAndDelete removes k iff its current value equals want.
	// Returns true iff this call removed the element.
	CompareAndDelete(k, want uint64) bool
}

// Sizer is implemented by tables supporting the approximate size
// operation of §5.2.
type Sizer interface {
	// ApproxSize estimates the number of live elements.
	ApproxSize() uint64
}

// Ranger is implemented by tables supporting forall iteration (§4, Bulk
// Operations). Range must only be relied upon in quiescent states.
type Ranger interface {
	// Range calls f for every element until f returns false.
	Range(f func(k, v uint64) bool)
}

// Cursor is a resumable iteration position handed out by RangeFrom. Gen
// identifies the table generation the position is relative to; Pos is an
// implementation-private slot index within that generation. The zero
// Cursor means "start from the beginning". Cursors are plain values:
// they may be stored across calls and survive migrations — a cursor
// whose generation has been retired restarts from position zero in the
// live generation, so a resumed walk may re-visit keys but never skips
// a stable one.
type Cursor struct {
	Gen uint64
	Pos uint64
}

// CursorRanger is implemented by tables whose iteration can resume from
// a Cursor instead of restarting at slot zero. Like Range, results are
// only dependable in quiescent states.
type CursorRanger interface {
	// RangeFrom calls f for elements at or after cur until f returns
	// false or the table is exhausted. It returns the cursor to resume
	// from and whether the walk reached the end of the table (wrapped);
	// when wrapped is true the returned cursor restarts from the
	// beginning.
	RangeFrom(cur Cursor, f func(k, v uint64) bool) (next Cursor, wrapped bool)
}

// MemUser is implemented by tables that report the bytes of live backing
// memory, replacing the paper's malloc interposition in Fig. 10.
type MemUser interface {
	// MemBytes returns the current total size of backing arrays in bytes.
	MemBytes() uint64
}

// Interface is a shared concurrent hash table.
type Interface interface {
	// Handle returns a new per-goroutine accessor.
	Handle() Handle
}

// Closer is implemented by tables that own background resources (the
// dedicated migration pools of paGrow/psGrow).
type Closer interface {
	Close()
}

// Capabilities describes a table for Table 1 of the paper.
type Capabilities struct {
	Name          string // table name as used by the harness
	Plot          string // paper plot marker/color description
	StdInterface  string // access discipline: "handles", "direct", "qsbr function", ...
	Growing       string // "yes", "no", "const factor", "slow", ...
	AtomicUpdates string // "yes", "only overwrite", "locked", ...
	Deletion      bool
	GeneralTypes  bool // arbitrary key/value types
	Reference     string
}

// Maker constructs a table pre-sized for capacity elements.
type Maker func(capacity uint64) Interface

type registration struct {
	caps Capabilities
	mk   Maker
}

var registry []registration

// Register adds a table implementation to the global registry consumed by
// the conformance tests, the benchmark harness, and Table 1 printing.
// Call from package init functions.
func Register(caps Capabilities, mk Maker) {
	registry = append(registry, registration{caps, mk})
}

// All returns the capabilities of every registered table, in registration
// order.
func All() []Capabilities {
	out := make([]Capabilities, 0, len(registry))
	for _, r := range registry {
		out = append(out, r.caps)
	}
	return out
}

// New builds the named registered table. Unknown names return a
// descriptive error listing every registered table, so a typo in a
// benchmark flag or config fails loudly instead of yielding a nil map.
func New(name string, capacity uint64) (Interface, error) {
	for _, r := range registry {
		if r.caps.Name == name {
			return r.mk(capacity), nil
		}
	}
	return nil, fmt.Errorf("tables: unknown table %q (registered: %s)",
		name, strings.Join(Names(), ", "))
}

// Names returns every registered table name, in registration order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for _, r := range registry {
		out = append(out, r.caps.Name)
	}
	return out
}

// Lookup returns the capabilities for name; ok is false (with zero
// Capabilities) when name is not registered.
func Lookup(name string) (Capabilities, bool) {
	for _, r := range registry {
		if r.caps.Name == name {
			return r.caps, true
		}
	}
	return Capabilities{}, false
}
