package cache

// Tests pinning the cursor sweeper's complexity and safety properties:
// a full expiry cycle visits each stored entry about once (the resumable
// cursor replaced an O(n²/batch) prefix re-walk), and the conditional
// delete it fires remains item-pointer-CAS-safe when the walk's snapshot
// goes stale behind a concurrent write (the PR 5 regression, re-run
// through the cursor path).

import (
	"testing"
	"time"

	growt "repro"
)

// TestSweepFullCycleVisitsLinear expires n entries and drives SweepOnce
// in small batches until the cycle collects them all. The visited count
// must stay linear in n: the pre-cursor sweeper re-walked the table
// prefix every batch, costing ~n²/(2·batch) visits — at this n and
// batch that would be ~20n, far past the 3n ceiling asserted here.
func TestSweepFullCycleVisitsLinear(t *testing.T) {
	clk := newFakeClock()
	c := newTestCache[uint64, string](clk)
	defer c.Close()

	const (
		n     = 4000
		batch = 100
	)
	for i := uint64(1); i <= n; i++ {
		c.SetTTL(i, "v", time.Second)
	}
	clk.advance(2 * time.Second)

	removed := 0
	for ticks := 0; removed < n; ticks++ {
		if ticks > 10*n/batch {
			t.Fatalf("sweeper stalled: %d of %d removed after %d ticks", removed, n, ticks)
		}
		removed += c.SweepOnce(batch)
	}
	st := c.Stats()
	if st.Expired != n {
		t.Fatalf("expired = %d, want %d", st.Expired, n)
	}
	if st.SweepVisited > 3*n {
		t.Fatalf("full cycle visited %d entries for n=%d: super-linear (O(n²/batch) regression?)",
			st.SweepVisited, n)
	}
	if st.SweepRemoved != n {
		t.Fatalf("sweep removed = %d, want %d", st.SweepRemoved, n)
	}
}

// TestSweepPerTickStats checks the per-tick gauges: each tick reports
// its own visited/removed counts, capped by the budget.
func TestSweepPerTickStats(t *testing.T) {
	clk := newFakeClock()
	c := newTestCache[uint64, string](clk)
	defer c.Close()

	for i := uint64(1); i <= 100; i++ {
		c.SetTTL(i, "v", time.Second)
	}
	clk.advance(2 * time.Second)

	c.SweepOnce(30)
	st := c.Stats()
	if st.LastSweepVisited != 30 {
		t.Fatalf("last tick visited %d, want the 30 budget", st.LastSweepVisited)
	}
	if st.LastSweepRemoved != 30 {
		t.Fatalf("last tick removed %d, want 30 (all visited were expired)", st.LastSweepRemoved)
	}
	if st.Sweeps != 1 {
		t.Fatalf("sweeps = %d, want 1", st.Sweeps)
	}
}

// TestStaleSweepCADThroughCursor re-runs the stalled-sweeper CAS
// regression with the item pointer obtained the way the cursor sweeper
// obtains it — from a RangeFrom callback. A sweeper that sampled the
// entry via the cursor walk, stalled, and fires its conditional delete
// after a writer replaced the key must hit nothing.
func TestStaleSweepCADThroughCursor(t *testing.T) {
	clk := newFakeClock()
	c := newTestCache[uint64, string](clk)
	defer c.Close()

	c.SetTTL(1, "old", 10*time.Millisecond)
	var stale *item[string]
	c.m.RangeFrom(growt.Cursor{}, func(k uint64, it *item[string]) bool {
		stale = it
		return false // the stalled sweeper: sampled, then parked
	})
	if stale == nil {
		t.Fatal("setup: cursor walk saw no entry")
	}
	clk.advance(time.Hour)  // "old" is long expired...
	c.SetTTL(1, "fresh", 0) // ...and a writer replaced it meanwhile
	if c.m.CompareAndDelete(1, stale) {
		t.Fatal("stale cursor-walk CAD removed a fresh entry")
	}
	if v, ok := c.Get(1); !ok || v != "fresh" {
		t.Fatalf("fresh entry disturbed: %q, %v", v, ok)
	}

	// The sweeper's own path over the same state: a full sweep now must
	// keep the fresh immortal entry.
	for c.SweepOnce(1000) > 0 {
	}
	if v, ok := c.Get(1); !ok || v != "fresh" {
		t.Fatalf("sweep ate the fresh entry: %q, %v", v, ok)
	}
}

// TestMaxBytesBudget: a byte budget converts to an entry budget via the
// map's per-entry estimate and bounds the cache exactly like
// MaxEntries; when both are set the tighter wins.
func TestMaxBytesBudget(t *testing.T) {
	clk := newFakeClock()
	probe := growt.New[evKey, *item[string]]()
	per := probe.EntryBytes()
	probe.Close()
	if per == 0 {
		t.Fatal("generic route reported zero entry bytes")
	}
	const want = 64
	c := newTestCache[evKey, string](clk,
		growt.WithMaxBytes(want*per),
		growt.WithMaxEntries(100000)) // looser than the byte budget: bytes must win
	defer c.Close()
	if c.budget != want {
		t.Fatalf("effective budget = %d, want %d (MaxBytes/EntryBytes)", c.budget, want)
	}

	for i := evKey(0); i < 8*want; i++ {
		c.SetTTL(i, "v", 0)
	}
	if size := c.Len(); size > want+maxEvictPerWrite {
		t.Fatalf("size %d blew the byte-derived budget %d", size, want)
	}
	if st := c.Stats(); st.Evicted == 0 {
		t.Fatal("no evictions under the byte budget")
	}
}

// TestSessionMirrorsCache: the pinned-handle Session supports the whole
// cache surface with identical semantics, and its ops cost zero pool
// borrows.
func TestSessionMirrorsCache(t *testing.T) {
	clk := newFakeClock()
	c := newTestCache[uint64, string](clk)
	defer c.Close()

	s := c.NewSession()
	defer s.Close()
	base := c.PoolBorrows()

	s.SetTTL(1, "a", time.Minute)
	if v, ok := s.Get(1); !ok || v != "a" {
		t.Fatalf("session get = %q, %v", v, ok)
	}
	if swapped, _ := s.CompareAndSwap(1, "a", "b"); !swapped {
		t.Fatal("session CAS refused a match")
	}
	if d, ok := s.TTL(1); !ok || d != time.Minute {
		t.Fatalf("session ttl = %v, %v", d, ok)
	}
	if !s.Expire(1, time.Hour) {
		t.Fatal("session expire refused a live key")
	}
	if deleted, found := s.CompareAndDelete(1, "x"); deleted || !found {
		t.Fatalf("session mismatched CAD = %v, %v", deleted, found)
	}
	if deleted, _ := s.CompareAndDelete(1, "b"); !deleted {
		t.Fatal("session matched CAD refused")
	}
	s.Set(2, "imm")
	if !s.Delete(2) {
		t.Fatal("session delete refused")
	}
	if !s.Compute(3, "z", func(cur, d string) string { return cur + d }) {
		t.Fatal("session compute on absent key did not insert")
	}
	_ = s.Len()

	if got := c.PoolBorrows() - base; got != 0 {
		t.Fatalf("session ops borrowed %d pooled handles; want 0", got)
	}

	// Expiry semantics through the session match the cache's.
	s.SetTTL(4, "dying", time.Second)
	clk.advance(2 * time.Second)
	if _, ok := s.Get(4); ok {
		t.Fatal("expired entry observable through session")
	}

	s.Close() // idempotent with the deferred Close
	defer func() {
		if recover() == nil {
			t.Fatal("use of closed session did not panic")
		}
	}()
	s.Get(1)
}
