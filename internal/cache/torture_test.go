package cache

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	growt "repro"
)

// This file is the cache's -race torture rack: concurrent
// SETEX/GET/EXPIRE/DELETE traffic with a sweeping goroutine, run over a
// deliberately tiny initial table so the word core migrates constantly
// underneath (tombstones from expiry count toward the §5.4 migration
// trigger, so an expiring workload is migration churn by construction).
//
// The load-bearing invariant is encoded in the values: every write
// stores its own absolute expiry deadline as the value, so any Get hit
// can check "was this entry live when I started?" without any shared
// test state. A hit whose deadline precedes the Get's start time is an
// expired value escaping — the bug class this layer must exclude.

// tortureCache runs the mixed expiring workload over c for dur.
func tortureCache(t *testing.T, c *Cache[uint64, int64], keys uint64, dur time.Duration) {
	t.Helper()
	var stop atomic.Bool
	var wg sync.WaitGroup
	worker := func(body func(r *testRNG)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := newTestRNG(uint64(time.Now().UnixNano()))
			for !stop.Load() {
				body(r)
			}
		}()
	}

	// Writers: expiring stores whose value IS the stored deadline —
	// SetExpiry makes them exactly equal, so the read-side assertion has
	// no scheduling slack to tolerate.
	for i := 0; i < 3; i++ {
		worker(func(r *testRNG) {
			k := r.next() % keys
			ttl := time.Duration(1+r.next()%8) * time.Millisecond
			dl := time.Now().UnixNano() + int64(ttl)
			c.SetExpiry(k, dl, dl)
		})
	}
	// Readers: the expired-never-observable assertion.
	for i := 0; i < 3; i++ {
		worker(func(r *testRNG) {
			k := r.next() % keys
			before := time.Now().UnixNano()
			if dl, ok := c.Get(k); ok && before >= dl {
				stop.Store(true)
				t.Errorf("expired value escaped: deadline %d, read started %d (%.2fms late)",
					dl, before, float64(before-dl)/1e6)
			}
		})
	}
	// Deleters + deadline-shrinkers. Expire may only ever SHRINK a
	// deadline here: the stored value records the write's deadline, so
	// extending would invalidate the read-side assertion — and shrinking
	// still races Expire's update CAS against writers and the sweeper.
	worker(func(r *testRNG) {
		k := r.next() % keys
		if r.next()%2 == 0 {
			c.Delete(k)
		} else {
			_ = c.Expire(k, time.Nanosecond)
		}
	})
	// Sweeper: incremental proactive expiry in small slices.
	worker(func(r *testRNG) {
		c.SweepOnce(64)
		time.Sleep(200 * time.Microsecond)
	})

	time.AfterFunc(dur, func() { stop.Store(true) })
	wg.Wait()
}

// TestCacheTortureExpiredNeverObservable wires the rack to tiny growing
// tables (capacity 8, several strategies, with and without TSX) so
// migrations run continuously under the expiry races.
func TestCacheTortureExpiredNeverObservable(t *testing.T) {
	dur := 2 * time.Second
	if testing.Short() {
		dur = 300 * time.Millisecond
	}
	for _, tc := range []struct {
		name string
		opts []growt.Option
	}{
		{"uaGrow-cap8", []growt.Option{growt.WithCapacity(8)}},
		{"usGrow-cap8", []growt.Option{growt.WithStrategy(growt.USGrow), growt.WithCapacity(8)}},
		{"uaGrow-tsx-cap8", []growt.Option{growt.WithCapacity(8), growt.WithTSX()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := append(tc.opts, growt.WithSweepInterval(-1))
			c := New[uint64, int64](opts...)
			defer c.Close()
			tortureCache(t, c, 256, dur)
		})
	}
}

// TestCacheTortureExactCounters: concurrent Compute increments on
// immortal keys must stay exact while an expiring churn workload (and
// the sweeper) rages on a disjoint keyspace in the same table — the
// sweeper and the expiry races may never eat a live immortal entry.
func TestCacheTortureExactCounters(t *testing.T) {
	rounds := 2000
	if testing.Short() {
		rounds = 300
	}
	c := New[uint64, int64](growt.WithCapacity(8), growt.WithSweepInterval(-1))
	defer c.Close()

	const counters = 8
	const churnBase = uint64(1 << 20) // disjoint from counter keys
	var stop atomic.Bool
	var churnWG, addWG sync.WaitGroup

	// Churn: short-TTL writes + sweeps, forcing migrations under the
	// counters' feet.
	for i := 0; i < 2; i++ {
		churnWG.Add(1)
		go func(seed uint64) {
			defer churnWG.Done()
			r := newTestRNG(seed)
			for !stop.Load() {
				k := churnBase + r.next()%512
				c.SetTTL(k, 0, time.Duration(1+r.next()%4)*time.Millisecond)
				if r.next()%8 == 0 {
					c.SweepOnce(64)
				}
			}
		}(uint64(i) + 1)
	}

	const workers = 4
	add := func(cur, d int64) int64 { return cur + d }
	for w := 0; w < workers; w++ {
		addWG.Add(1)
		go func(w int) {
			defer addWG.Done()
			for i := 0; i < rounds; i++ {
				c.Compute(uint64((i+w)%counters), 1, add)
			}
		}(w)
	}
	addWG.Wait()
	stop.Store(true)
	churnWG.Wait()

	var total int64
	for k := uint64(0); k < counters; k++ {
		v, ok := c.Get(k)
		if !ok {
			t.Fatalf("immortal counter %d vanished", k)
		}
		total += v
	}
	if want := int64(workers * rounds); total != want {
		t.Fatalf("lost increments under churn: %d, want %d", total, want)
	}
}

// TestCacheTortureBudgetHolds: open-loop concurrent writes of distinct
// keys against a budget; the exact-counting generic route must stay
// within the budget plus bounded concurrency slack, and after the storm
// a single write pass must pull it back under budget + per-write bound.
func TestCacheTortureBudgetHolds(t *testing.T) {
	perWorker := 4000
	if testing.Short() {
		perWorker = 500
	}
	const budget = 512
	c := New[evKey, int64](growt.WithMaxEntries(budget), growt.WithSweepInterval(-1))
	defer c.Close()

	const workers = 8
	var wg sync.WaitGroup
	var over atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.SetTTL(evKey(uint64(w)<<32|uint64(i)), 0, 0)
				if s := int64(c.Len()) - (budget + workers*maxEvictPerWrite); s > over.Load() {
					over.Store(s) // racy max is fine: any positive is a report
				}
			}
		}(w)
	}
	wg.Wait()
	if o := over.Load(); o > 0 {
		t.Fatalf("budget overshot concurrency slack by %d entries", o)
	}
	// Quiescent: a few closing writes drain any transient excess.
	for i := 0; i < maxEvictPerWrite; i++ {
		c.SetTTL(evKey(1<<60+uint64(i)), 0, 0)
	}
	if size := c.Len(); size > budget+maxEvictPerWrite {
		t.Fatalf("quiescent size %d exceeds budget %d", size, budget)
	}
	if st := c.Stats(); st.Evicted == 0 {
		t.Fatal("no evictions under a 60× over-budget storm")
	}
}

// testRNG is a tiny splitmix64 so torture goroutines need no locking.
type testRNG struct{ s uint64 }

func newTestRNG(seed uint64) *testRNG { return &testRNG{s: seed | 1} }
func (r *testRNG) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
