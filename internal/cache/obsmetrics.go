package cache

import "repro/internal/obs"

// Process-wide obs mirrors of the cache counters. Each Cache instance
// keeps its own exact atomic counters (Stats() — tests and expvar
// depend on per-instance exactness); the increments below additionally
// land on obs.Default so growd's /metrics and STATS scrape expose the
// cache layer next to the server and core-migration series. With
// several Cache instances in one process the obs series are the sum —
// the right reading for a scrape surface.
var (
	obsHits         = obs.Default.Counter("growt_cache_hits_total")
	obsMisses       = obs.Default.Counter("growt_cache_misses_total")
	obsExpired      = obs.Default.Counter("growt_cache_expired_total")
	obsEvicted      = obs.Default.Counter("growt_cache_evicted_total")
	obsSweeps       = obs.Default.Counter("growt_cache_sweeps_total")
	obsSweepVisited = obs.Default.Counter("growt_cache_sweep_visited_total")
	obsSweepRemoved = obs.Default.Counter("growt_cache_sweep_removed_total")
)

// The counting helpers pair every per-instance increment with its
// process-wide mirror, so a new outcome path cannot bump one and miss
// the other.

func (c *Cache[K, V]) countHit() {
	c.hits.Add(1)
	obsHits.Add(1)
}

func (c *Cache[K, V]) countMiss() {
	c.misses.Add(1)
	obsMisses.Add(1)
}

func (c *Cache[K, V]) countExpired() {
	c.expired.Add(1)
	obsExpired.Add(1)
}

func (c *Cache[K, V]) countEvicted() {
	c.evicted.Add(1)
	obsEvicted.Add(1)
}
