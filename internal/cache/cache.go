// Package cache is the TTL-expiration + bounded-memory eviction layer
// over the typed map — the serving-side feature that turns growt from an
// immortal key-value store into a cache. It adds no locks and no global
// coordination of its own: every replacement decision is an element-wise
// CompareAndSwap/CompareAndDelete race that the core tables already
// prove safe under concurrent updates, deletions, and migrations.
//
// Entries wrap values with an expiry deadline and a last-access clock.
// Expiry is enforced twice over:
//
//   - lazily on read: a Get that finds an expired entry atomically
//     tombstones it via CompareAndDelete and reports a miss — an expired
//     value is never returned, even against a racing overwrite (the
//     conditional delete removes exactly the expired item or nothing);
//   - proactively by an incremental background sweeper that resumes a
//     RangeFrom cursor each tick, examining at most its batch of
//     entries, so a full cycle over n entries does O(n) callback work
//     (the cursor eliminates the former restart-from-zero skip-walk).
//
// Bounded memory is Redis-style sampled approximate-LRU: writes record
// their key in a lock-free sample ring; when ApproxSize exceeds the
// configured entry budget, the writer samples a handful of ring slots
// and CompareAndDeletes the least-recently-accessed live candidate. A
// candidate that was concurrently overwritten survives (the conditional
// delete sees a different item), so eviction can never lose a fresh
// write.
//
// Two access disciplines are offered, mirroring the typed map's. The
// Cache's own methods are handle-free: each op borrows a pooled map
// handle for its duration. A Session (NewSession/Close) pins one pooled
// handle for its lifetime and mirrors every Cache operation on it — the
// right shape for a connection or worker loop, where the per-op
// free-list hop is pure overhead. Sessions are not for concurrent use;
// the Cache itself is.
//
// The cache shares the root package's functional-option vocabulary:
// WithTTL, WithMaxEntries, WithMaxBytes, and WithSweepInterval
// configure this layer, and every other option (WithStrategy,
// WithCapacity, WithTSX, WithHasher, ...) passes through to the
// underlying growt.New.
//
// # Costs and deferrals
//
// MaxEntries bounds the live ENTRY count; MaxBytes is an approximate
// byte bound, converted to an entry budget by dividing through the
// map's static per-entry cost estimate (growt.Map.EntryBytes — cell
// words plus codec arena knowledge), so it inherits the entry budget's
// enforcement exactly and its precision is that of the estimate. On the
// generic key route (named types — the route growd's byte-string keys
// take) evicted and expired values are ordinary heap objects reclaimed
// by the GC; on the word and string key routes, wide values live in the
// codec's append-only arenas, whose slots are reclaimed only when the
// map itself is collected (the paper's §5.7 deferral) — a churn-heavy
// bounded cache over those routes trades memory growth for lock
// freedom. The sweeper visits at most its batch of entries per tick and
// resumes where it stopped; a cursor invalidated by a table migration
// restarts from the front, so a cycle spanning a migration may re-visit
// entries (never skip stable ones). The eviction sample ring covers
// min(budget rounded up, 2^22) recent writes — budgets beyond that get
// window-LRU over the newest writes.
package cache

import (
	"sync"
	"sync/atomic"
	"time"

	growt "repro"
	"repro/internal/obs/trace"
	"repro/internal/rng"
)

const (
	// defaultSweepInterval paces the background sweeper when
	// WithSweepInterval is not given.
	defaultSweepInterval = time.Second
	// defaultSweepBatch bounds the entries one sweep tick examines; the
	// resumable cursor makes a full cycle O(n) regardless, so the batch
	// only trades tick count against tick length.
	defaultSweepBatch = 1024
	// evictSamples is the Redis-style sample width: candidates examined
	// per eviction decision.
	evictSamples = 5
	// maxEvictPerWrite bounds how many evictions one write performs when
	// the cache is over budget, so no single SET stalls on a long purge.
	maxEvictPerWrite = 8
	// minRing/maxRing clamp the eviction sample ring (slots, power of 2).
	// The ring must cover the entry budget or eviction degrades toward
	// approximate-MRU: keys whose slots were overwritten become
	// invisible to sampling, leaving only recent writes evictable. 2^22
	// slots (32 MiB of pointers) covers budgets up to ~4M entries;
	// larger budgets get ring-window LRU over the newest 4M writes.
	minRing = 1 << 10
	maxRing = 1 << 22
)

// item is one cache entry: the value, its expiry deadline, and the
// access clock driving sampled LRU. val and expiry are immutable after
// construction — every logical update replaces the whole item, so the
// item pointer doubles as the entry's version for CompareAndSwap /
// CompareAndDelete races.
type item[V any] struct {
	val    V
	expiry int64        // unix nanos; 0 = immortal
	access atomic.Int64 // unix nanos of the last touch (sampled-LRU clock)
}

// Stats is a snapshot of the cache's counters.
type Stats struct {
	Hits    uint64 `json:"hits"`    // Get found a live entry
	Misses  uint64 `json:"misses"`  // Get found nothing live (includes expired)
	Expired uint64 `json:"expired"` // entries removed because their deadline passed
	Evicted uint64 `json:"evicted"` // live entries removed to hold the budget
	Sweeps  uint64 `json:"sweeps"`  // completed sweeper ticks

	// SweepVisited / SweepRemoved total the entries examined and
	// collected across all sweep ticks; LastSweepVisited /
	// LastSweepRemoved are the most recent tick alone (the per-tick
	// gauges growd publishes).
	SweepVisited     uint64 `json:"sweep_visited"`
	SweepRemoved     uint64 `json:"sweep_removed"`
	LastSweepVisited uint64 `json:"last_sweep_visited"`
	LastSweepRemoved uint64 `json:"last_sweep_removed"`
}

// Cache is a concurrent TTL + bounded-memory cache over a typed map.
// Safe for unrestricted concurrent use; the zero value is not usable —
// build with New.
type Cache[K comparable, V any] struct {
	m   *growt.Map[K, *item[V]]
	set growt.CacheSettings

	// budget is the effective entry budget: MaxEntries and the
	// entry-ized MaxBytes, whichever is tighter (0 = unbounded).
	budget uint64

	now func() int64 // clock, unix nanos; swappable for deterministic tests

	// ring is the eviction sample pool: a lock-free buffer of recently
	// written keys that evictOne samples uniformly. Slots hold *K so
	// concurrent record/sample stay race-free; stale slots (keys since
	// removed) are skipped at sampling time. nil when unbounded.
	//growt:atomic
	ring     []atomic.Pointer[K]
	ringMask uint64
	ringPos  atomic.Uint64
	seed     atomic.Uint64 // sampling stream selector

	// sweepCur is the resumable position the next sweep tick continues
	// from; sweepMu serializes concurrent SweepOnce callers so the
	// cursor advances coherently.
	sweepMu  sync.Mutex
	sweepCur growt.Cursor

	stop      chan struct{}
	sweepDone chan struct{}

	hits, misses, expired, evicted, sweeps atomic.Uint64

	sweepVisited, sweepRemoved         atomic.Uint64 // cumulative
	lastSweepVisited, lastSweepRemoved atomic.Uint64 // most recent tick
}

// New builds a cache. Cache-layer options (WithTTL, WithMaxEntries,
// WithSweepInterval) configure this facade; all options — including
// those — are forwarded to growt.New, which ignores the cache subset.
func New[K comparable, V any](opts ...growt.Option) *Cache[K, V] {
	return newCache[K, V](func() int64 { return time.Now().UnixNano() }, opts...)
}

// newCache is New with an injectable clock (deterministic expiry tests).
//
//growt:exclusive -- construction: the cache is unpublished
func newCache[K comparable, V any](now func() int64, opts ...growt.Option) *Cache[K, V] {
	c := &Cache[K, V]{
		m:   growt.New[K, *item[V]](opts...),
		set: growt.ResolveCacheSettings(opts...),
		now: now,
	}
	c.budget = c.set.MaxEntries
	if c.set.MaxBytes > 0 {
		per := c.m.EntryBytes()
		if per == 0 {
			per = 1
		}
		byBytes := c.set.MaxBytes / per
		if byBytes == 0 {
			byBytes = 1 // a nonzero byte budget must still bound the cache
		}
		if c.budget == 0 || byBytes < c.budget {
			c.budget = byBytes
		}
	}
	if c.budget > 0 {
		size := uint64(minRing)
		for size < c.budget && size < maxRing {
			size <<= 1
		}
		c.ring = make([]atomic.Pointer[K], size)
		c.ringMask = size - 1
		c.seed.Store(0x9E3779B97F4A7C15)
	}
	if c.set.SweepInterval >= 0 {
		every := c.set.SweepInterval
		if every == 0 {
			every = defaultSweepInterval
		}
		c.stop = make(chan struct{})
		c.sweepDone = make(chan struct{})
		go c.sweepLoop(every)
	}
	return c
}

// Close stops the background sweeper and releases the map's resources.
func (c *Cache[K, V]) Close() {
	if c.stop != nil {
		close(c.stop)
		<-c.sweepDone
		c.stop = nil
	}
	c.m.Close()
}

// Stats snapshots the counters.
func (c *Cache[K, V]) Stats() Stats {
	return Stats{
		Hits:             c.hits.Load(),
		Misses:           c.misses.Load(),
		Expired:          c.expired.Load(),
		Evicted:          c.evicted.Load(),
		Sweeps:           c.sweeps.Load(),
		SweepVisited:     c.sweepVisited.Load(),
		SweepRemoved:     c.sweepRemoved.Load(),
		LastSweepVisited: c.lastSweepVisited.Load(),
		LastSweepRemoved: c.lastSweepRemoved.Load(),
	}
}

// PoolBorrows counts the underlying map's handle-pool borrows (see
// growt.Map.PoolBorrows); tests use it to assert session discipline.
func (c *Cache[K, V]) PoolBorrows() uint64 { return c.m.PoolBorrows() }

// Len estimates the number of stored entries (live + not-yet-collected
// expired), via the map's §5.2 size estimator.
func (c *Cache[K, V]) Len() uint64 { return c.m.ApproxSize() }

// Generation returns the underlying map's completed-migration count
// (see growt.Map.Generation); the slow-op log stamps each entry with
// the generation it ran against so a stall can be tied to the exact
// migration that caused it.
func (c *Cache[K, V]) Generation() uint64 { return c.m.Generation() }

// deadline converts a ttl into an absolute expiry; ttl <= 0 = immortal.
func deadline(now int64, ttl time.Duration) int64 {
	if ttl <= 0 {
		return 0
	}
	return now + int64(ttl)
}

// dead reports whether it has expired as of now.
func dead[V any](it *item[V], now int64) bool {
	return it.expiry != 0 && now >= it.expiry
}

// newItem builds a fresh entry with its access clock primed.
func newItem[V any](v V, now int64, ttl time.Duration) *item[V] {
	it := &item[V]{val: v, expiry: deadline(now, ttl)}
	it.access.Store(now)
	return it
}

// view is the slice of the typed map's surface the cache operates
// through: both *growt.Map (handle-free, one pool borrow per op) and
// *growt.Session (one pinned handle) satisfy it at [K, *item[V]].
// Every operation core below is written against a view, so the public
// Cache methods and the Session methods share one implementation.
type view[K comparable, V any] interface {
	Load(k K) (*item[V], bool)
	Store(k K, it *item[V])
	Compute(k K, d *item[V], up func(cur, d *item[V]) *item[V]) bool
	Update(k K, d *item[V], up func(cur, d *item[V]) *item[V]) bool
	Delete(k K) bool
	LoadAndDelete(k K) (*item[V], bool)
	CompareAndSwap(k K, old, new *item[V]) bool
	CompareAndDelete(k K, old *item[V]) bool
}

// collect removes the expired item it from k if it is still the stored
// entry — the lazy half of expiry. The conditional delete is what makes
// the race against writers safe: if anything replaced it, the delete
// refuses and the replacement survives untouched.
func (c *Cache[K, V]) collect(v view[K, V], k K, it *item[V]) {
	if v.CompareAndDelete(k, it) {
		c.countExpired()
	}
}

// Get returns the live value at k. An expired entry is never returned:
// it reads as a miss and is collected in passing.
func (c *Cache[K, V]) Get(k K) (V, bool) { return c.get(c.m, k) }

func (c *Cache[K, V]) get(v view[K, V], k K) (V, bool) {
	now := c.now()
	it, ok := v.Load(k)
	if !ok {
		c.countMiss()
		var zv V
		return zv, false
	}
	if dead(it, now) {
		c.collect(v, k, it)
		c.countMiss()
		var zv V
		return zv, false
	}
	it.access.Store(now)
	c.countHit()
	return it.val, true
}

// Set stores ⟨k,v⟩ with the cache's default TTL (WithTTL; immortal if
// none was configured).
func (c *Cache[K, V]) Set(k K, v V) { c.SetTTL(k, v, c.set.TTL) }

// SetTTL stores ⟨k,v⟩ with an explicit time-to-live (ttl <= 0 =
// immortal), replacing any previous entry and deadline.
func (c *Cache[K, V]) SetTTL(k K, v V, ttl time.Duration) { c.setTTL(c.m, k, v, ttl) }

func (c *Cache[K, V]) setTTL(v view[K, V], k K, val V, ttl time.Duration) {
	now := c.now()
	v.Store(k, newItem(val, now, ttl))
	c.noteWrite(v, k, now)
}

// SetExpiry stores ⟨k,v⟩ with an absolute expiry deadline (zero =
// immortal) — for callers that compute deadlines externally, e.g. from
// an upstream's Expires header. at is unix nanoseconds on the cache's
// clock; a deadline already in the past stores an entry that is born
// expired (never observable).
func (c *Cache[K, V]) SetExpiry(k K, v V, at int64) { c.setExpiry(c.m, k, v, at) }

func (c *Cache[K, V]) setExpiry(v view[K, V], k K, val V, at int64) {
	now := c.now()
	it := &item[V]{val: val, expiry: at}
	it.access.Store(now)
	v.Store(k, it)
	c.noteWrite(v, k, now)
}

// Compute inserts ⟨k,d⟩ if k is absent or expired — stamping the
// cache's default TTL — and otherwise atomically replaces the live
// value with up(current, d), keeping the existing deadline (so e.g. a
// counter increment does not extend its own life). Returns true iff the
// call inserted (or revived an expired entry). The closure may run
// several times under contention; the map applies exactly its final
// invocation.
func (c *Cache[K, V]) Compute(k K, d V, up func(cur, d V) V) bool {
	return c.compute(c.m, k, d, up)
}

func (c *Cache[K, V]) compute(v view[K, V], k K, d V, up func(cur, d V) V) bool {
	now := c.now()
	fresh := newItem(d, now, c.set.TTL)
	revived := false
	inserted := v.Compute(k, fresh, func(cur, _ *item[V]) *item[V] {
		if dead(cur, now) {
			revived = true
			return fresh
		}
		revived = false
		ni := &item[V]{val: up(cur.val, d), expiry: cur.expiry}
		ni.access.Store(now)
		return ni
	})
	c.noteWrite(v, k, now)
	return inserted || revived
}

// CompareAndSwap replaces the live value of k with new iff it is
// currently old (compared with ==, like the map's CompareAndSwap — old
// must be of a comparable dynamic type or this panics). The entry keeps
// its deadline. found distinguishes a value mismatch (found=true) from
// an absent-or-expired key (found=false).
func (c *Cache[K, V]) CompareAndSwap(k K, old, new V) (swapped, found bool) {
	return c.compareAndSwap(c.m, k, old, new)
}

func (c *Cache[K, V]) compareAndSwap(v view[K, V], k K, old, new V) (swapped, found bool) {
	_ = any(old) == any(old) // documented uncomparable-value panic
	now := c.now()
	// Steady-refusal fast path: decide absent/expired/mismatch from a
	// plain read before touching Update. On the word and string routes a
	// closure that returns cur unchanged is still re-encoded by the
	// backend — one arena slot per refusal — so a hot mismatch loop must
	// not reach the closure at all. The authoritative verdict for a
	// *successful* swap remains the Update CAS below.
	it, ok := v.Load(k)
	if !ok {
		return false, false
	}
	if dead(it, now) {
		c.collect(v, k, it)
		return false, false
	}
	if any(it.val) != any(old) {
		return false, true
	}
	var expiredIt *item[V]
	matched := false
	applied := v.Update(k, nil, func(cur, _ *item[V]) *item[V] {
		if dead(cur, now) {
			expiredIt, matched = cur, false
			return cur
		}
		expiredIt = nil
		if any(cur.val) != any(old) {
			matched = false
			return cur
		}
		matched = true
		ni := &item[V]{val: new, expiry: cur.expiry}
		ni.access.Store(now)
		return ni
	})
	if expiredIt != nil {
		c.collect(v, k, expiredIt)
	}
	// Both conditions required, like the facade's casViaUpdate: the map
	// reports applied=false when its CAS lost to a concurrent delete
	// after the closure's final invocation — nothing was written then.
	swapped = applied && matched
	found = applied && expiredIt == nil
	if swapped {
		c.noteWrite(v, k, now)
	}
	return swapped, found
}

// CompareAndDelete removes k iff its live value is currently old
// (compared with ==, like CompareAndSwap — old must be of a comparable
// dynamic type or this panics). found distinguishes a value mismatch
// (found=true) from an absent-or-expired key (found=false). The verdict
// and the removal are one conditional delete on the stored item, so a
// concurrent overwrite between them survives untouched.
func (c *Cache[K, V]) CompareAndDelete(k K, old V) (deleted, found bool) {
	return c.compareAndDelete(c.m, k, old)
}

func (c *Cache[K, V]) compareAndDelete(v view[K, V], k K, old V) (deleted, found bool) {
	_ = any(old) == any(old) // documented uncomparable-value panic
	now := c.now()
	for {
		it, ok := v.Load(k)
		if !ok {
			return false, false
		}
		if dead(it, now) {
			c.collect(v, k, it)
			return false, false
		}
		if any(it.val) != any(old) {
			return false, true
		}
		// The item pointer is the entry's version: deleting exactly it
		// removes exactly the value that compared equal.
		if v.CompareAndDelete(k, it) {
			return true, true
		}
		// The entry changed underneath; re-examine the replacement.
	}
}

// Expire re-deadlines the live entry at k to now+ttl (ttl <= 0 =
// immortal). Returns false when k is absent or already expired — an
// expired entry cannot be revived by Expire, only by a write.
func (c *Cache[K, V]) Expire(k K, ttl time.Duration) bool { return c.expire(c.m, k, ttl) }

func (c *Cache[K, V]) expire(v view[K, V], k K, ttl time.Duration) bool {
	now := c.now()
	// Same steady-refusal fast path as CompareAndSwap: absent and
	// expired keys must not reach the re-encoding Update closure.
	it, ok := v.Load(k)
	if !ok {
		return false
	}
	if dead(it, now) {
		c.collect(v, k, it)
		return false
	}
	var expiredIt *item[V]
	applied := v.Update(k, nil, func(cur, _ *item[V]) *item[V] {
		if dead(cur, now) {
			expiredIt = cur
			return cur
		}
		expiredIt = nil
		ni := &item[V]{val: cur.val, expiry: deadline(now, ttl)}
		ni.access.Store(now)
		return ni
	})
	if expiredIt != nil {
		c.collect(v, k, expiredIt)
	}
	return applied && expiredIt == nil
}

// TTL returns the remaining time-to-live of the live entry at k.
// ok is false when k is absent or expired; a live immortal entry
// reports d < 0.
func (c *Cache[K, V]) TTL(k K) (d time.Duration, ok bool) { return c.ttl(c.m, k) }

func (c *Cache[K, V]) ttl(v view[K, V], k K) (d time.Duration, ok bool) {
	now := c.now()
	it, found := v.Load(k)
	if !found {
		return 0, false
	}
	if dead(it, now) {
		c.collect(v, k, it)
		return 0, false
	}
	if it.expiry == 0 {
		return -1, true
	}
	return time.Duration(it.expiry - now), true
}

// Delete removes k; true iff a live (non-expired) entry was removed.
func (c *Cache[K, V]) Delete(k K) bool { return c.del(c.m, k) }

func (c *Cache[K, V]) del(v view[K, V], k K) bool {
	it, ok := v.LoadAndDelete(k)
	if !ok {
		return false
	}
	if dead(it, c.now()) {
		c.countExpired()
		return false
	}
	return true
}

// Range calls fn for every live entry until fn returns false. Expired
// entries are skipped (never surfaced), not collected. Like every Range
// in this repository it is for quiescent use only.
func (c *Cache[K, V]) Range(fn func(k K, v V) bool) {
	now := c.now()
	c.m.Range(func(k K, it *item[V]) bool {
		if dead(it, now) {
			return true
		}
		return fn(k, it.val)
	})
}

// ---------------------------------------------------------------------
// Eviction: Redis-style sampled approximate LRU.

// noteWrite records k in the sample ring and enforces the entry budget.
// Called after every write that can grow the cache.
func (c *Cache[K, V]) noteWrite(v view[K, V], k K, now int64) {
	if c.ring == nil {
		return
	}
	kp := new(K)
	*kp = k
	c.ring[c.ringPos.Add(1)&c.ringMask].Store(kp)
	c.enforceBudget(v, now)
}

// enforceBudget evicts sampled-LRU entries while the cache is over its
// entry budget, bounded per call so a single write never stalls on a
// long purge (the sweeper keeps enforcing in the background).
func (c *Cache[K, V]) enforceBudget(v view[K, V], now int64) {
	max := c.budget
	if max == 0 {
		return
	}
	var evicted uint64
	for tries := 0; tries < maxEvictPerWrite && c.m.ApproxSize() > max; tries++ {
		if c.evictOne(v, now) {
			evicted++
		}
	}
	if evicted > 0 {
		trace.Emit(trace.KindEvictStorm, evicted, c.m.ApproxSize(), max)
	}
}

// evictOne samples evictSamples ring slots and removes the
// least-recently-accessed live candidate (expired candidates are
// collected on sight, which also counts as progress). The conditional
// delete makes the decision safe: a candidate overwritten since
// sampling is a different item and survives. Returns true if an entry
// was removed.
func (c *Cache[K, V]) evictOne(v view[K, V], now int64) bool {
	// Seeds advance by 1, NOT by splitmix's own golden-ratio increment:
	// a gamma-stride seed would make call n+1's probe sequence call n's
	// shifted by one, so every eviction re-probes the same slots. Unit
	// strides land on disjoint splitmix inputs and decorrelate fully.
	r := rng.NewSplitMix64(c.seed.Add(1))
	var bestK K
	var bestIt *item[V]
	sampled := 0
	for probe := 0; probe < 4*evictSamples && sampled < evictSamples; probe++ {
		kp := c.ring[r.Uint64()&c.ringMask].Load()
		if kp == nil {
			continue
		}
		it, ok := v.Load(*kp)
		if !ok {
			continue
		}
		if dead(it, now) {
			if v.CompareAndDelete(*kp, it) {
				c.countExpired()
				return true
			}
			continue
		}
		sampled++
		if bestIt == nil || it.access.Load() < bestIt.access.Load() {
			bestK, bestIt = *kp, it
		}
	}
	if bestIt == nil {
		return false
	}
	if v.CompareAndDelete(bestK, bestIt) {
		c.countEvicted()
		return true
	}
	return false
}

// ---------------------------------------------------------------------
// Proactive expiry: the incremental background sweeper.

// sweepLoop ticks SweepOnce until Close. It holds one cache Session for
// its whole life — the sweeper's conditional deletes ride a pinned
// handle instead of borrowing from the pool every tick.
func (c *Cache[K, V]) sweepLoop(every time.Duration) {
	defer close(c.sweepDone)
	s := c.NewSession()
	defer s.Close()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.sweepOnce(s.v, defaultSweepBatch)
		}
	}
}

// SweepOnce examines at most budget entries, resuming the cursor where
// the previous tick stopped, collecting expired entries, then enforces
// the entry budget. Exported so tests (and callers without a background
// sweeper) can drive expiry deterministically. Returns the number of
// entries removed. A full cycle over n entries costs O(n) callback work
// — the cursor resumes instead of re-skipping the prefix. Concurrent
// writers may be partially observed — the walk is best-effort;
// correctness is carried by the lazy read path.
func (c *Cache[K, V]) SweepOnce(budget int) int { return c.sweepOnce(c.m, budget) }

func (c *Cache[K, V]) sweepOnce(v view[K, V], budget int) int {
	now := c.now()
	seen := 0
	removed := 0
	c.sweepMu.Lock()
	next, _ := c.m.RangeFrom(c.sweepCur, func(k K, it *item[V]) bool {
		seen++
		if dead(it, now) {
			if v.CompareAndDelete(k, it) {
				c.countExpired()
				removed++
			}
		}
		return seen < budget
	})
	c.sweepCur = next
	c.sweepMu.Unlock()
	c.sweepVisited.Add(uint64(seen))
	c.sweepRemoved.Add(uint64(removed))
	c.lastSweepVisited.Store(uint64(seen))
	c.lastSweepRemoved.Store(uint64(removed))
	obsSweepVisited.Add(uint64(seen))
	obsSweepRemoved.Add(uint64(removed))
	if seen > 0 {
		trace.Emit(trace.KindSweepSlice, uint64(seen), uint64(removed), 0)
	}
	c.enforceBudget(v, now)
	c.sweeps.Add(1)
	obsSweeps.Add(1)
	return removed
}

// ---------------------------------------------------------------------
// Session: a pinned-handle view of the cache.

// Session is a pinned-handle view of a Cache: it borrows one pooled map
// handle at creation and reuses it for every operation until Close,
// mirroring the whole Cache surface without the per-op free-list hop.
// Like the map sessions it wraps, a Session must not be used
// concurrently — create one per connection or worker loop and Close it
// when done. Operations on a closed Session panic.
type Session[K comparable, V any] struct {
	c *Cache[K, V]
	v *growt.Session[K, *item[V]]
}

// NewSession pins one pooled map handle into a Session view. Callers
// own the release: every path must Close the Session (growvet's
// handleleak analyzer enforces the shape for in-package callers).
//
//growt:acquires Close
//growt:exclusive -- ownership transfer: the pinned map session is released by Session.Close, not here
func (c *Cache[K, V]) NewSession() *Session[K, V] {
	return &Session[K, V]{c: c, v: c.m.Session()}
}

// Close releases the pinned handle back to the map's free list. Close
// is idempotent; the Session is unusable afterwards.
func (s *Session[K, V]) Close() { s.v.Close() }

// Get returns the live value at k (see Cache.Get).
func (s *Session[K, V]) Get(k K) (V, bool) { return s.c.get(s.v, k) }

// Set stores ⟨k,v⟩ with the cache's default TTL (see Cache.Set).
func (s *Session[K, V]) Set(k K, v V) { s.SetTTL(k, v, s.c.set.TTL) }

// SetTTL stores ⟨k,v⟩ with an explicit time-to-live (see Cache.SetTTL).
func (s *Session[K, V]) SetTTL(k K, v V, ttl time.Duration) { s.c.setTTL(s.v, k, v, ttl) }

// SetExpiry stores ⟨k,v⟩ with an absolute expiry deadline (see
// Cache.SetExpiry).
func (s *Session[K, V]) SetExpiry(k K, v V, at int64) { s.c.setExpiry(s.v, k, v, at) }

// Compute inserts or atomically updates k (see Cache.Compute).
func (s *Session[K, V]) Compute(k K, d V, up func(cur, d V) V) bool {
	return s.c.compute(s.v, k, d, up)
}

// CompareAndSwap replaces the live value of k with new iff it is
// currently old (see Cache.CompareAndSwap).
func (s *Session[K, V]) CompareAndSwap(k K, old, new V) (swapped, found bool) {
	return s.c.compareAndSwap(s.v, k, old, new)
}

// CompareAndDelete removes k iff its live value is currently old (see
// Cache.CompareAndDelete).
func (s *Session[K, V]) CompareAndDelete(k K, old V) (deleted, found bool) {
	return s.c.compareAndDelete(s.v, k, old)
}

// Expire re-deadlines the live entry at k (see Cache.Expire).
func (s *Session[K, V]) Expire(k K, ttl time.Duration) bool { return s.c.expire(s.v, k, ttl) }

// TTL returns the remaining time-to-live of the live entry at k (see
// Cache.TTL).
func (s *Session[K, V]) TTL(k K) (d time.Duration, ok bool) { return s.c.ttl(s.v, k) }

// Delete removes k (see Cache.Delete).
func (s *Session[K, V]) Delete(k K) bool { return s.c.del(s.v, k) }

// Len reports the cache's approximate live element count (see
// Cache.Len). Size estimation is handle-free, so this neither uses nor
// needs the session's pinned handle.
func (s *Session[K, V]) Len() uint64 { return s.c.Len() }
