package cache

import (
	"sync/atomic"
	"testing"
	"time"

	growt "repro"
)

// fakeClock is the injectable deterministic clock: tests advance it and
// expiry verdicts follow with no sleeping and no timing tolerance.
type fakeClock struct{ t atomic.Int64 }

func newFakeClock() *fakeClock {
	c := &fakeClock{}
	c.t.Store(1) // nonzero so deadlines never collide with "immortal"
	return c
}
func (c *fakeClock) now() int64              { return c.t.Load() }
func (c *fakeClock) advance(d time.Duration) { c.t.Add(int64(d)) }

func newTestCache[K comparable, V any](clk *fakeClock, opts ...growt.Option) *Cache[K, V] {
	// Sweeping is driven explicitly via SweepOnce: a background ticker
	// reading a fake clock would only add noise.
	opts = append(opts, growt.WithSweepInterval(-1))
	return newCache[K, V](clk.now, opts...)
}

// storedLen counts stored entries exactly — including expired ones not
// yet collected — via the map's Range. Len/ApproxSize on the word key
// route is a buffered per-handle estimate (±flushSpan per handle, §5.2)
// and cannot anchor small-n assertions.
func (c *Cache[K, V]) storedLen() int {
	n := 0
	c.m.Range(func(K, *item[V]) bool { n++; return true })
	return n
}

// evKey is a named integer type: named types fall off the built-in
// word-codec fast path onto the generic route, whose size counter is
// exact — the same route the server's named-string Key takes. Tests
// that assert on sizes use it.
type evKey uint64

// TestExpiredNeverObservable is the lazy-path regression test: once the
// clock passes an entry's deadline, no Get may ever return it again —
// and reading it collects it.
func TestExpiredNeverObservable(t *testing.T) {
	clk := newFakeClock()
	c := newTestCache[uint64, string](clk)
	defer c.Close()

	c.SetTTL(1, "short", 100*time.Millisecond)
	c.SetTTL(2, "long", time.Hour)
	c.SetTTL(3, "immortal", 0)

	if v, ok := c.Get(1); !ok || v != "short" {
		t.Fatalf("pre-deadline get = %q, %v", v, ok)
	}
	clk.advance(100 * time.Millisecond) // exactly the deadline: expired
	if v, ok := c.Get(1); ok {
		t.Fatalf("expired entry observable: %q", v)
	}
	if v, ok := c.Get(2); !ok || v != "long" {
		t.Fatalf("unexpired entry lost: %q, %v", v, ok)
	}
	if v, ok := c.Get(3); !ok || v != "immortal" {
		t.Fatalf("immortal entry lost: %q, %v", v, ok)
	}
	// The expired read collected the entry (lazy expiry removes, not
	// just hides).
	if n := c.storedLen(); n != 2 {
		t.Fatalf("expired entry still stored: len %d", n)
	}
	st := c.Stats()
	if st.Expired != 1 || st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSweeperCollects drives the incremental sweeper deterministically:
// bounded batches per tick, full coverage over successive ticks.
func TestSweeperCollects(t *testing.T) {
	clk := newFakeClock()
	c := newTestCache[uint64, string](clk)
	defer c.Close()

	const n = 100
	for i := uint64(0); i < n; i++ {
		c.SetTTL(i, "v", time.Second)
	}
	c.SetTTL(1000, "survivor", time.Hour)
	clk.advance(2 * time.Second)

	// Budget 30 per tick: the sweep must need several ticks and never
	// exceed its budget in one.
	total := 0
	for tick := 0; tick < 10 && total < n; tick++ {
		removed := c.SweepOnce(30)
		if removed > 30 {
			t.Fatalf("tick %d removed %d > budget", tick, removed)
		}
		total += removed
	}
	if total != n {
		t.Fatalf("sweeper collected %d of %d expired entries", total, n)
	}
	if v, ok := c.Get(1000); !ok || v != "survivor" {
		t.Fatalf("sweeper ate a live entry: %q, %v", v, ok)
	}
	if n := c.storedLen(); n != 1 {
		t.Fatalf("stored entries after sweep = %d, want 1", n)
	}
}

// TestStaleCollectNeverResurrectsOrKills is the sweeper-vs-writer CAS
// regression test, deterministically: a sweeper that sampled an entry,
// stalled, and fires its conditional delete after a writer replaced the
// key must hit nothing — the fresh value survives.
func TestStaleCollectNeverResurrectsOrKills(t *testing.T) {
	clk := newFakeClock()
	c := newTestCache[uint64, string](clk)
	defer c.Close()

	c.SetTTL(1, "old", 10*time.Millisecond)
	stale, ok := c.m.Load(1) // the item a stalled sweeper would hold
	if !ok {
		t.Fatal("setup: entry missing")
	}
	clk.advance(time.Hour) // "old" is long expired
	c.SetTTL(1, "fresh", 0)

	c.collect(c.m, 1, stale) // the stalled sweeper finally fires
	if v, okg := c.Get(1); !okg || v != "fresh" {
		t.Fatalf("stale collect disturbed the fresh entry: %q, %v", v, okg)
	}
	if st := c.Stats(); st.Expired != 0 {
		t.Fatalf("stale collect counted a removal: %+v", st)
	}

	// And the mirrored order: collect the genuinely-stored expired item,
	// then a write revives the key independently.
	c.SetTTL(2, "old", 10*time.Millisecond)
	it2, _ := c.m.Load(2)
	clk.advance(time.Hour)
	c.collect(c.m, 2, it2)
	if _, okg := c.m.Load(2); okg {
		t.Fatal("expired entry survived its collect")
	}
	c.SetTTL(2, "fresh2", 0)
	if v, okg := c.Get(2); !okg || v != "fresh2" {
		t.Fatalf("revived entry = %q, %v", v, okg)
	}
}

// TestComputeSemantics: live entries update in place keeping their
// deadline; absent and expired entries (re)insert with the default TTL.
func TestComputeSemantics(t *testing.T) {
	clk := newFakeClock()
	c := newTestCache[uint64, uint64](clk, growt.WithTTL(time.Minute))
	defer c.Close()
	add := func(cur, d uint64) uint64 { return cur + d }

	if !c.Compute(1, 5, add) {
		t.Fatal("compute on absent key did not insert")
	}
	if c.Compute(1, 3, add) {
		t.Fatal("compute on live key claimed an insert")
	}
	if v, _ := c.Get(1); v != 8 {
		t.Fatalf("compute sum = %d, want 8", v)
	}
	// The update kept the original deadline: advancing past it expires
	// the entry even though the second Compute happened later.
	clk.advance(30 * time.Second)
	c.Compute(1, 1, add) // live update at t+30s; deadline unchanged
	clk.advance(31 * time.Second)
	if _, ok := c.Get(1); ok {
		t.Fatal("update extended the entry's life")
	}
	// Expired entry: Compute restarts from the operand, not the corpse.
	c.SetTTL(2, 100, time.Second)
	clk.advance(2 * time.Second)
	if !c.Compute(2, 7, add) {
		t.Fatal("compute on expired key did not report insert")
	}
	if v, _ := c.Get(2); v != 7 {
		t.Fatalf("compute over expired = %d, want 7 (not 107)", v)
	}
}

// TestCompareAndSwapSemantics: value-level CAS preserves the deadline
// and treats expired entries as absent.
func TestCompareAndSwapSemantics(t *testing.T) {
	clk := newFakeClock()
	c := newTestCache[uint64, string](clk)
	defer c.Close()

	c.SetTTL(1, "a", time.Minute)
	if swapped, found := c.CompareAndSwap(1, "x", "b"); swapped || !found {
		t.Fatalf("mismatched CAS = %v, %v", swapped, found)
	}
	if swapped, found := c.CompareAndSwap(1, "a", "b"); !swapped || !found {
		t.Fatalf("matched CAS = %v, %v", swapped, found)
	}
	if v, _ := c.Get(1); v != "b" {
		t.Fatalf("CAS left %q", v)
	}
	if swapped, found := c.CompareAndSwap(9, "a", "b"); swapped || found {
		t.Fatalf("absent CAS = %v, %v", swapped, found)
	}
	// The swap kept the deadline.
	clk.advance(2 * time.Minute)
	if _, ok := c.Get(1); ok {
		t.Fatal("CAS extended the entry's life")
	}
	// Expired entries are absent to CAS — and collected in passing.
	c.SetTTL(2, "a", time.Second)
	clk.advance(2 * time.Second)
	if swapped, found := c.CompareAndSwap(2, "a", "b"); swapped || found {
		t.Fatalf("expired CAS = %v, %v", swapped, found)
	}
	if _, ok := c.m.Load(2); ok {
		t.Fatal("expired entry survived the CAS probe")
	}
}

// TestExpireAndTTL covers re-deadlining and TTL introspection.
func TestExpireAndTTL(t *testing.T) {
	clk := newFakeClock()
	c := newTestCache[uint64, string](clk)
	defer c.Close()

	c.SetTTL(1, "v", time.Minute)
	if d, ok := c.TTL(1); !ok || d != time.Minute {
		t.Fatalf("ttl = %v, %v", d, ok)
	}
	if !c.Expire(1, time.Hour) {
		t.Fatal("expire refused a live key")
	}
	if d, _ := c.TTL(1); d != time.Hour {
		t.Fatalf("re-deadlined ttl = %v", d)
	}
	if !c.Expire(1, 0) { // 0 = immortal
		t.Fatal("expire-to-immortal refused")
	}
	if d, ok := c.TTL(1); !ok || d >= 0 {
		t.Fatalf("immortal ttl = %v, %v", d, ok)
	}
	if c.Expire(9, time.Minute) {
		t.Fatal("expire invented a key")
	}
	// Expire cannot revive the dead.
	c.SetTTL(2, "v", time.Second)
	clk.advance(2 * time.Second)
	if c.Expire(2, time.Hour) {
		t.Fatal("expire revived an expired entry")
	}
	if _, ok := c.TTL(2); ok {
		t.Fatal("ttl of an expired entry reported ok")
	}
}

// TestDeleteExpired: deleting an expired entry reports "was absent" but
// still collects it.
func TestDeleteExpired(t *testing.T) {
	clk := newFakeClock()
	c := newTestCache[uint64, string](clk)
	defer c.Close()

	c.SetTTL(1, "v", time.Second)
	clk.advance(2 * time.Second)
	if c.Delete(1) {
		t.Fatal("delete of an expired entry returned true")
	}
	if c.storedLen() != 0 {
		t.Fatal("expired entry survived delete")
	}
	if st := c.Stats(); st.Expired != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestEvictionBudget: under sustained over-budget insertion the cache
// holds its size near the configured bound and prefers cold entries.
// evKey rides the generic route, whose size counter is exact, so the
// bound can be asserted tightly.
func TestEvictionBudget(t *testing.T) {
	clk := newFakeClock()
	const budget = 128
	c := newTestCache[evKey, string](clk, growt.WithMaxEntries(budget))
	defer c.Close()

	// Fill to budget with immortal entries...
	for i := evKey(0); i < budget; i++ {
		c.SetTTL(i, "cold", 0)
	}
	// ...make the first half hot (much later access clock)...
	clk.advance(time.Hour)
	for i := evKey(0); i < budget/2; i++ {
		c.Get(i)
	}
	// ...then push 4× the budget of fresh keys through.
	for i := evKey(1000); i < 1000+4*budget; i++ {
		c.SetTTL(i, "new", 0)
	}
	if size := c.Len(); size > budget+maxEvictPerWrite {
		t.Fatalf("size %d blew the budget %d", size, budget)
	}
	st := c.Stats()
	if st.Evicted == 0 {
		t.Fatal("no evictions recorded")
	}
	// Approximate LRU: hot survivors must not lose to cold survivors.
	hot, cold := 0, 0
	for i := evKey(0); i < budget/2; i++ {
		if _, ok := c.m.Load(i); ok {
			hot++
		}
	}
	for i := evKey(budget / 2); i < budget; i++ {
		if _, ok := c.m.Load(i); ok {
			cold++
		}
	}
	if hot < cold {
		t.Fatalf("sampled LRU evicted hot before cold: %d hot vs %d cold survivors", hot, cold)
	}
}

// TestRangeSkipsExpired: Range surfaces only live entries.
func TestRangeSkipsExpired(t *testing.T) {
	clk := newFakeClock()
	c := newTestCache[uint64, string](clk)
	defer c.Close()
	c.SetTTL(1, "live", 0)
	c.SetTTL(2, "dying", time.Second)
	clk.advance(2 * time.Second)
	seen := map[uint64]string{}
	c.Range(func(k uint64, v string) bool { seen[k] = v; return true })
	if len(seen) != 1 || seen[1] != "live" {
		t.Fatalf("range saw %v", seen)
	}
}

// TestCacheRoutes smoke-tests the cache over the string and generic key
// routes (the server rides the generic route via its named-string Key).
func TestCacheRoutes(t *testing.T) {
	type namedKey string
	clk := newFakeClock()
	t.Run("generic", func(t *testing.T) {
		c := newTestCache[namedKey, string](clk)
		defer c.Close()
		c.SetTTL("a", "1", time.Minute)
		if v, ok := c.Get("a"); !ok || v != "1" {
			t.Fatalf("get = %q, %v", v, ok)
		}
		clk.advance(2 * time.Minute)
		if _, ok := c.Get("a"); ok {
			t.Fatal("expired generic-route entry observable")
		}
	})
	t.Run("string", func(t *testing.T) {
		c := newTestCache[string, string](clk)
		defer c.Close()
		c.SetTTL("a", "1", time.Minute)
		if v, ok := c.Get("a"); !ok || v != "1" {
			t.Fatalf("get = %q, %v", v, ok)
		}
		clk.advance(2 * time.Minute)
		if _, ok := c.Get("a"); ok {
			t.Fatal("expired string-route entry observable")
		}
	})
}

// TestDefaultTTLFromOptions: Set uses WithTTL's default; SetTTL
// overrides per entry; ResolveCacheSettings reads back the knobs.
func TestDefaultTTLFromOptions(t *testing.T) {
	set := growt.ResolveCacheSettings(
		growt.WithTTL(time.Minute),
		growt.WithMaxEntries(10),
		growt.WithSweepInterval(time.Second),
	)
	if set.TTL != time.Minute || set.MaxEntries != 10 || set.SweepInterval != time.Second {
		t.Fatalf("resolved settings = %+v", set)
	}

	clk := newFakeClock()
	c := newTestCache[uint64, string](clk, growt.WithTTL(time.Minute))
	defer c.Close()
	c.Set(1, "default-ttl")
	c.SetTTL(2, "longer", time.Hour)
	clk.advance(2 * time.Minute)
	if _, ok := c.Get(1); ok {
		t.Fatal("default TTL not applied by Set")
	}
	if _, ok := c.Get(2); !ok {
		t.Fatal("per-entry TTL overridden by default")
	}
}

// TestBackgroundSweeper exercises the real ticker loop end to end (real
// clock; generous deadline so CI timing noise cannot bite).
func TestBackgroundSweeper(t *testing.T) {
	c := New[evKey, string](growt.WithSweepInterval(10 * time.Millisecond))
	defer c.Close()
	for i := evKey(0); i < 50; i++ {
		c.SetTTL(i, "v", 20*time.Millisecond)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.storedLen() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sweeper left %d expired entries after 5s", c.storedLen())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := c.Stats(); st.Expired != 50 || st.Sweeps == 0 {
		t.Fatalf("stats after background sweep = %+v", st)
	}
}
