// Package linearize records concurrent operation histories against a hash
// table and decides whether they are linearizable with respect to the
// sequential map specification.
//
// # Why this exists
//
// The paper's central correctness claim (§5.3.2, "Marking Moved Elements")
// is that marking every cell before copying makes asynchronous migration
// lose no update. Assertions sprinkled through stress tests ("this insert
// must succeed") only catch violations that happen to trip the asserted
// op; a linearizability checker catches *any* lost or reordered effect,
// including ones only visible through a later find. The torture tests in
// internal/core drive the growing tables through forced migrations while
// every goroutine records its operations here, and the checker validates
// the full history afterwards.
//
// # Model
//
// A history is a set of operations, each with an invocation and a response
// timestamp drawn from one global atomic counter (a logical clock whose
// increments are themselves linearizable, so the recorded order is
// consistent with real time). The checked specification is the sequential
// map over uint64 keys: per-key state is either absent or present(value),
// and every operation's recorded return value must match the state at its
// linearization point.
//
// Because operations on distinct keys commute in the sequential map
// specification, a history is linearizable iff each per-key subhistory is
// linearizable (locality, Herlihy & Wing). The checker therefore
// partitions by key and runs a Wing–Gong style search per key with Lowe's
// memoization of visited (linearized-set, state) configurations — the same
// structure used by Porcupine and by Lowe's "Testing for linearizability".
//
// Recorders are goroutine-private (mirroring the paper's §5.1 handle
// design); History aggregates them at check time.
package linearize

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// OpKind identifies the table operation an Op records.
type OpKind uint8

const (
	// OpInsert: Insert(key, val) → Ok reports "newly inserted"
	// (false = key was already present; the table is unchanged).
	OpInsert OpKind = iota
	// OpDelete: Delete(key) → Ok reports "was present and is now deleted".
	OpDelete
	// OpUpdate: Update(key, val) with overwrite semantics → Ok reports
	// "was present and now holds val".
	OpUpdate
	// OpUpsert: InsertOrUpdate(key, val) with overwrite semantics →
	// Ok reports "inserted" (false = updated). Always takes effect.
	OpUpsert
	// OpAdd: InsertOrAdd(key, val) → Ok reports "inserted" (false =
	// val was added to the present value). Always takes effect.
	OpAdd
	// OpFind: Find(key) → (Out, Ok).
	OpFind
)

// String returns the operation name.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "Insert"
	case OpDelete:
		return "Delete"
	case OpUpdate:
		return "Update"
	case OpUpsert:
		return "InsertOrUpdate"
	case OpAdd:
		return "InsertOrAdd"
	case OpFind:
		return "Find"
	}
	return "?"
}

// Op is one recorded operation. Start and End are ticks of the history's
// global clock: Start is taken immediately before the table call, End
// immediately after it returns, so [Start, End] covers the call's real-time
// extent. End == 0 marks an operation that never returned.
type Op struct {
	Kind  OpKind
	Key   uint64
	Val   uint64 // input value (insert/update/upsert/add)
	Out   uint64 // output value (find)
	Ok    bool
	Start int64
	End   int64
}

func (o Op) String() string {
	switch o.Kind {
	case OpFind:
		return fmt.Sprintf("[%d,%d] Find(%d) = (%d,%v)", o.Start, o.End, o.Key, o.Out, o.Ok)
	case OpDelete:
		return fmt.Sprintf("[%d,%d] Delete(%d) = %v", o.Start, o.End, o.Key, o.Ok)
	default:
		return fmt.Sprintf("[%d,%d] %s(%d,%d) = %v", o.Start, o.End, o.Kind, o.Key, o.Val, o.Ok)
	}
}

// History owns the global clock and aggregates per-goroutine recorders.
type History struct {
	clock atomic.Int64
	mu    sync.Mutex
	recs  []*Recorder
}

// NewHistory returns an empty history.
func NewHistory() *History { return &History{} }

// Recorder returns a new goroutine-private recorder attached to h.
func (h *History) Recorder() *Recorder {
	r := &Recorder{h: h}
	h.mu.Lock()
	h.recs = append(h.recs, r)
	h.mu.Unlock()
	return r
}

// Ops collects every recorded operation (call after all recorders are
// quiescent).
func (h *History) Ops() []Op {
	h.mu.Lock()
	defer h.mu.Unlock()
	var ops []Op
	for _, r := range h.recs {
		ops = append(ops, r.ops...)
	}
	return ops
}

// Recorder records the operations of one goroutine. Not safe for
// concurrent use — create one per goroutine, like a table handle.
type Recorder struct {
	h   *History
	ops []Op
}

// Invoke records the invocation of an operation and returns its index for
// the matching Return call.
func (r *Recorder) Invoke(kind OpKind, key, val uint64) int {
	r.ops = append(r.ops, Op{
		Kind:  kind,
		Key:   key,
		Val:   val,
		Start: r.h.clock.Add(1),
	})
	return len(r.ops) - 1
}

// Return records the response of the operation at index i.
func (r *Recorder) Return(i int, out uint64, ok bool) {
	r.ops[i].Out = out
	r.ops[i].Ok = ok
	r.ops[i].End = r.h.clock.Add(1)
}

// Check reports whether the recorded history is linearizable; the error
// describes the first offending key otherwise.
func (h *History) Check() error { return CheckOps(h.Ops()) }

// CheckOps checks an explicit operation list (exported for hand-written
// histories in tests). Operations with End == 0 never returned; they are
// rejected — the recording harness must complete every call before
// checking.
func CheckOps(ops []Op) error {
	byKey := make(map[uint64][]Op)
	for _, op := range ops {
		if op.End == 0 {
			return fmt.Errorf("linearize: incomplete operation %v (End=0): complete every call before checking", op)
		}
		if op.End < op.Start {
			return fmt.Errorf("linearize: operation %v responds before it is invoked", op)
		}
		byKey[op.Key] = append(byKey[op.Key], op)
	}
	// Deterministic key order so failures reproduce identically.
	keys := make([]uint64, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if err := checkKeyHistory(k, byKey[k]); err != nil {
			return err
		}
	}
	return nil
}
