package linearize

import (
	"fmt"
	"sort"
	"strings"
)

// kstate is the sequential specification's per-key state.
type kstate struct {
	present bool
	val     uint64
}

// step applies op to s and reports whether op's recorded result is legal
// at this linearization point, returning the successor state.
func step(s kstate, op Op) (kstate, bool) {
	switch op.Kind {
	case OpInsert:
		if s.present {
			return s, !op.Ok // refused insert: state unchanged
		}
		if !op.Ok {
			return s, false // insert into absent key must succeed
		}
		return kstate{true, op.Val}, true
	case OpDelete:
		if !s.present {
			return s, !op.Ok
		}
		if !op.Ok {
			return s, false
		}
		return kstate{}, true
	case OpUpdate:
		if !s.present {
			return s, !op.Ok
		}
		if !op.Ok {
			return s, false
		}
		return kstate{true, op.Val}, true
	case OpUpsert:
		if op.Ok != !s.present {
			return s, false // Ok must report "inserted"
		}
		return kstate{true, op.Val}, true
	case OpAdd:
		if op.Ok != !s.present {
			return s, false
		}
		if s.present {
			return kstate{true, s.val + op.Val}, true
		}
		return kstate{true, op.Val}, true
	case OpFind:
		if op.Ok != s.present {
			return s, false
		}
		if s.present && op.Out != s.val {
			return s, false
		}
		return s, true
	}
	return s, false
}

// entry is one node of the time-ordered event list: a call event holding a
// pointer to its return event, or a return event (match == nil).
type entry struct {
	op         Op
	id         int    // index into the per-key op slice (call entries)
	match      *entry // call → its return; nil for return entries
	time       int64
	prev, next *entry
}

// makeEntries builds the interleaved call/return event list sorted by
// time and returns its head sentinel-free first element.
func makeEntries(ops []Op) *entry {
	events := make([]*entry, 0, 2*len(ops))
	for i, op := range ops {
		ret := &entry{op: op, id: i, time: op.End}
		call := &entry{op: op, id: i, match: ret, time: op.Start}
		events = append(events, call, ret)
	}
	sort.Slice(events, func(i, j int) bool { return events[i].time < events[j].time })
	var head *entry
	var prev *entry
	for _, e := range events {
		e.prev = prev
		if prev != nil {
			prev.next = e
		} else {
			head = e
		}
		prev = e
	}
	return head
}

// lift removes a call entry and its return from the event list (the op has
// been tentatively linearized).
func lift(e *entry) {
	e.prev.next = e.next // a sentinel head guarantees e.prev != nil
	if e.next != nil {
		e.next.prev = e.prev
	}
	m := e.match
	m.prev.next = m.next
	if m.next != nil {
		m.next.prev = m.prev
	}
}

// unlift reverses lift during backtracking.
func unlift(e *entry) {
	m := e.match
	m.prev.next = m
	if m.next != nil {
		m.next.prev = m
	}
	e.prev.next = e
	if e.next != nil {
		e.next.prev = e
	}
}

// bitset is a fixed-capacity bit vector over op ids.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)     { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) clear(i int)   { b[i/64] &^= 1 << (uint(i) % 64) }
func (b bitset) clone() bitset { c := make(bitset, len(b)); copy(c, b); return c }
func (b bitset) equals(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

func (b bitset) hashWith(s kstate) uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	for _, w := range b {
		h = (h ^ w) * 1099511628211
	}
	h = (h ^ s.val) * 1099511628211
	if s.present {
		h = (h ^ 1) * 1099511628211
	}
	return h
}

type cacheEntry struct {
	linearized bitset
	state      kstate
}

// checkKeyHistory runs the Wing–Gong search with Lowe's visited-state
// cache over one key's subhistory (Porcupine's algorithm structure).
func checkKeyHistory(key uint64, ops []Op) error {
	n := len(ops)
	if n == 0 {
		return nil
	}
	// Sentinel head so lift/unlift never touch a nil prev.
	sentinel := &entry{}
	sentinel.next = makeEntries(ops)
	sentinel.next.prev = sentinel

	state := kstate{}
	linearized := newBitset(n)
	cache := make(map[uint64][]cacheEntry)
	type frame struct {
		e     *entry
		state kstate
	}
	var calls []frame
	maxLinearized := 0

	seen := func(b bitset, s kstate) bool {
		h := b.hashWith(s)
		for _, ce := range cache[h] {
			if ce.state == s && ce.linearized.equals(b) {
				return true
			}
		}
		cache[h] = append(cache[h], cacheEntry{b.clone(), s})
		return false
	}

	// backtrack undoes the most recent tentative linearization and resumes
	// the scan just after it; reports false when nothing is left to undo
	// (the history is not linearizable).
	backtrack := func(e **entry) bool {
		if len(calls) == 0 {
			return false
		}
		f := calls[len(calls)-1]
		calls = calls[:len(calls)-1]
		state = f.state
		linearized.clear(f.e.id)
		unlift(f.e)
		*e = f.e.next
		return true
	}

	e := sentinel.next
	for sentinel.next != nil {
		if e != nil && e.match != nil {
			// Call event: try to linearize this op next.
			if ns, ok := step(state, e.op); ok {
				linearized.set(e.id)
				if !seen(linearized, ns) {
					calls = append(calls, frame{e, state})
					if len(calls) > maxLinearized {
						maxLinearized = len(calls)
					}
					state = ns
					lift(e)
					e = sentinel.next
					continue
				}
				linearized.clear(e.id)
			}
			e = e.next
			continue
		}
		// Reached a return event of an unlinearized op (nothing later may
		// linearize before it, and it could not be linearized itself), or
		// ran off the end of the remaining events: backtrack.
		if !backtrack(&e) {
			return nonLinearizableError(key, ops, maxLinearized)
		}
	}
	return nil
}

// nonLinearizableError formats a readable counterexample report.
func nonLinearizableError(key uint64, ops []Op, maxPrefix int) error {
	sorted := make([]Op, len(ops))
	copy(sorted, ops)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	var b strings.Builder
	fmt.Fprintf(&b, "linearize: history for key %d is NOT linearizable (%d ops, longest linearizable prefix %d):\n",
		key, len(ops), maxPrefix)
	const maxShow = 48
	for i, op := range sorted {
		if i == maxShow {
			fmt.Fprintf(&b, "  ... %d more ops elided\n", len(sorted)-maxShow)
			break
		}
		fmt.Fprintf(&b, "  %v\n", op)
	}
	return fmt.Errorf("%s", b.String())
}
