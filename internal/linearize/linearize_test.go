package linearize

import (
	"math/rand"
	"sync"
	"testing"
)

// mkOp builds a completed op for hand-written histories.
func mkOp(kind OpKind, key, val, out uint64, ok bool, start, end int64) Op {
	return Op{Kind: kind, Key: key, Val: val, Out: out, Ok: ok, Start: start, End: end}
}

// --- Acceptance: legal histories ---

func TestSequentialHistoryAccepted(t *testing.T) {
	ops := []Op{
		mkOp(OpInsert, 1, 10, 0, true, 1, 2),
		mkOp(OpFind, 1, 0, 10, true, 3, 4),
		mkOp(OpUpdate, 1, 20, 0, true, 5, 6),
		mkOp(OpFind, 1, 0, 20, true, 7, 8),
		mkOp(OpDelete, 1, 0, 0, true, 9, 10),
		mkOp(OpFind, 1, 0, 0, false, 11, 12),
		mkOp(OpInsert, 1, 30, 0, true, 13, 14), // tombstone revival
		mkOp(OpFind, 1, 0, 30, true, 15, 16),
	}
	if err := CheckOps(ops); err != nil {
		t.Fatalf("legal sequential history rejected: %v", err)
	}
}

func TestConcurrentReorderingAccepted(t *testing.T) {
	// Find overlaps the insert and already observes its value: legal,
	// because the insert may linearize first within the overlap.
	ops := []Op{
		mkOp(OpFind, 7, 0, 42, true, 1, 5),
		mkOp(OpInsert, 7, 42, 0, true, 2, 6),
	}
	if err := CheckOps(ops); err != nil {
		t.Fatalf("overlap reordering rejected: %v", err)
	}
	// The mirror image: find overlapping a delete may still see the value.
	ops = []Op{
		mkOp(OpInsert, 7, 42, 0, true, 1, 2),
		mkOp(OpDelete, 7, 0, 0, true, 3, 7),
		mkOp(OpFind, 7, 0, 42, true, 4, 6),
	}
	if err := CheckOps(ops); err != nil {
		t.Fatalf("find overlapping delete rejected: %v", err)
	}
}

func TestConcurrentInsertRaceAccepted(t *testing.T) {
	// Two overlapping inserts: exactly one may win.
	ops := []Op{
		mkOp(OpInsert, 3, 1, 0, true, 1, 5),
		mkOp(OpInsert, 3, 2, 0, false, 2, 6),
		mkOp(OpFind, 3, 0, 1, true, 7, 8),
	}
	if err := CheckOps(ops); err != nil {
		t.Fatalf("insert race rejected: %v", err)
	}
}

func TestInsertOrAddHistoryAccepted(t *testing.T) {
	ops := []Op{
		mkOp(OpAdd, 9, 5, 0, true, 1, 2),
		mkOp(OpAdd, 9, 3, 0, false, 3, 4),
		mkOp(OpFind, 9, 0, 8, true, 5, 6),
		mkOp(OpUpsert, 9, 100, 0, false, 7, 8),
		mkOp(OpFind, 9, 0, 100, true, 9, 10),
	}
	if err := CheckOps(ops); err != nil {
		t.Fatalf("add/upsert history rejected: %v", err)
	}
}

// --- Rejection: protocol violations the checker must catch ---

func TestLostInsertRejected(t *testing.T) {
	// Insert completed before the find began, yet the find missed it:
	// exactly what a lost op during migration looks like.
	ops := []Op{
		mkOp(OpInsert, 5, 77, 0, true, 1, 2),
		mkOp(OpFind, 5, 0, 0, false, 3, 4),
	}
	if err := CheckOps(ops); err == nil {
		t.Fatal("lost insert accepted")
	}
}

func TestLostDeleteRejected(t *testing.T) {
	// Delete succeeded, then a later insert of the same key reported
	// "already present": the delete's effect was rolled back.
	ops := []Op{
		mkOp(OpInsert, 5, 77, 0, true, 1, 2),
		mkOp(OpDelete, 5, 0, 0, true, 3, 4),
		mkOp(OpInsert, 5, 88, 0, false, 5, 6),
	}
	if err := CheckOps(ops); err == nil {
		t.Fatal("lost delete accepted")
	}
}

func TestStaleFindRejected(t *testing.T) {
	ops := []Op{
		mkOp(OpInsert, 5, 1, 0, true, 1, 2),
		mkOp(OpUpdate, 5, 2, 0, true, 3, 4),
		mkOp(OpFind, 5, 0, 1, true, 5, 6), // observes overwritten value
	}
	if err := CheckOps(ops); err == nil {
		t.Fatal("stale find accepted")
	}
}

func TestDoubleInsertSuccessRejected(t *testing.T) {
	ops := []Op{
		mkOp(OpInsert, 5, 1, 0, true, 1, 2),
		mkOp(OpInsert, 5, 2, 0, true, 3, 4), // second success without delete
	}
	if err := CheckOps(ops); err == nil {
		t.Fatal("double insert success accepted")
	}
}

func TestLostUpdateRejected(t *testing.T) {
	// Two sequential adds; the sum is missing one addend.
	ops := []Op{
		mkOp(OpAdd, 5, 5, 0, true, 1, 2),
		mkOp(OpAdd, 5, 3, 0, false, 3, 4),
		mkOp(OpAdd, 5, 2, 0, false, 5, 6),
		mkOp(OpFind, 5, 0, 7, true, 7, 8), // 5+3+2 = 10, not 7
	}
	if err := CheckOps(ops); err == nil {
		t.Fatal("lost add accepted")
	}
}

func TestIncompleteOpRejected(t *testing.T) {
	ops := []Op{mkOp(OpInsert, 1, 1, 0, true, 1, 0)}
	if err := CheckOps(ops); err == nil {
		t.Fatal("incomplete op accepted")
	}
}

// --- Self-test: the checker catches a deliberately seeded protocol bug ---

// buggyTable reproduces, in miniature and deterministically, the exact bug
// family the torture harness exists to catch: a migration that copies
// cells without marking them first (the paper's §5.3.2 protocol with the
// mark omitted), so a writer racing the copy can have its update silently
// overwritten by the migrated copy of the old value.
type buggyTable struct {
	mu  sync.Mutex
	cur map[uint64]uint64
}

func newBuggyTable() *buggyTable { return &buggyTable{cur: map[uint64]uint64{}} }

func (b *buggyTable) get(k uint64) (uint64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.cur[k]
	return v, ok
}

func (b *buggyTable) put(k, v uint64) {
	b.mu.Lock()
	b.cur[k] = v
	b.mu.Unlock()
}

func (b *buggyTable) del(k uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.cur[k]
	delete(b.cur, k)
	return ok
}

// migrateWithoutMarking snapshots the table (the unmarked "copy"), lets
// the caller run racing writes via the barrier channels, then installs the
// snapshot — clobbering whatever the racing writes changed.
func (b *buggyTable) migrateWithoutMarking(copied, installed chan struct{}) {
	b.mu.Lock()
	snap := make(map[uint64]uint64, len(b.cur))
	for k, v := range b.cur {
		snap[k] = v
	}
	b.mu.Unlock()
	close(copied) // snapshot taken; racing writers may now run
	<-installed   // wait until the racing write has completed
	b.mu.Lock()
	b.cur = snap // install the stale copy: the racing write is lost
	b.mu.Unlock()
}

func TestCheckerCatchesSeededMigrationBug(t *testing.T) {
	b := newBuggyTable()
	h := NewHistory()

	// Seed the table.
	r0 := h.Recorder()
	i := r0.Invoke(OpInsert, 1, 100)
	b.put(1, 100)
	r0.Return(i, 0, true)

	copied := make(chan struct{})
	installed := make(chan struct{})
	done := make(chan struct{})

	// Writer: deletes key 1 strictly between the migration's copy and its
	// install — a real interleaving of the unmarked protocol.
	go func() {
		defer close(done)
		r := h.Recorder()
		<-copied
		i := r.Invoke(OpDelete, 1, 0)
		ok := b.del(1)
		r.Return(i, 0, ok)
		close(installed)
	}()

	b.migrateWithoutMarking(copied, installed)
	<-done

	// Post-migration read observes the resurrected value.
	i = r0.Invoke(OpFind, 1, 0)
	v, ok := b.get(1)
	r0.Return(i, v, ok)

	err := h.Check()
	if err == nil {
		t.Fatal("checker failed to catch the seeded unmarked-migration bug (lost delete)")
	}
	t.Logf("checker correctly rejected the seeded bug:\n%v", err)
}

// --- Soundness under real concurrency: a correct table must pass ---

// lockedMap is a trivially linearizable table (one mutex around every op).
type lockedMap struct {
	mu sync.Mutex
	m  map[uint64]uint64
}

func TestConcurrentCorrectTableAccepted(t *testing.T) {
	lm := &lockedMap{m: map[uint64]uint64{}}
	h := NewHistory()
	const goroutines = 8
	const opsPerG = 400
	const keys = 16 // few keys → heavy per-key contention → hard histories
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := h.Recorder()
			rnd := rand.New(rand.NewSource(seed))
			for n := 0; n < opsPerG; n++ {
				k := uint64(rnd.Intn(keys)) + 1
				v := uint64(rnd.Intn(1000)) + 1
				switch rnd.Intn(6) {
				case 0:
					i := r.Invoke(OpInsert, k, v)
					lm.mu.Lock()
					_, present := lm.m[k]
					if !present {
						lm.m[k] = v
					}
					lm.mu.Unlock()
					r.Return(i, 0, !present)
				case 1:
					i := r.Invoke(OpDelete, k, 0)
					lm.mu.Lock()
					_, present := lm.m[k]
					delete(lm.m, k)
					lm.mu.Unlock()
					r.Return(i, 0, present)
				case 2:
					i := r.Invoke(OpUpdate, k, v)
					lm.mu.Lock()
					_, present := lm.m[k]
					if present {
						lm.m[k] = v
					}
					lm.mu.Unlock()
					r.Return(i, 0, present)
				case 3:
					i := r.Invoke(OpUpsert, k, v)
					lm.mu.Lock()
					_, present := lm.m[k]
					lm.m[k] = v
					lm.mu.Unlock()
					r.Return(i, 0, !present)
				case 4:
					i := r.Invoke(OpAdd, k, v)
					lm.mu.Lock()
					old, present := lm.m[k]
					if present {
						lm.m[k] = old + v
					} else {
						lm.m[k] = v
					}
					lm.mu.Unlock()
					r.Return(i, 0, !present)
				case 5:
					i := r.Invoke(OpFind, k, 0)
					lm.mu.Lock()
					out, present := lm.m[k]
					lm.mu.Unlock()
					r.Return(i, out, present)
				}
			}
		}(int64(g * 7919))
	}
	wg.Wait()
	if err := h.Check(); err != nil {
		t.Fatalf("correct concurrent table rejected: %v", err)
	}
}

// TestCheckerPerKeyPartition: violations on one key are reported even when
// thousands of ops on other keys are fine.
func TestCheckerPerKeyPartition(t *testing.T) {
	var ops []Op
	tick := int64(1)
	for k := uint64(1); k <= 200; k++ {
		ops = append(ops, mkOp(OpInsert, k, k, 0, true, tick, tick+1))
		tick += 2
		ops = append(ops, mkOp(OpFind, k, 0, k, true, tick, tick+1))
		tick += 2
	}
	// One poisoned key.
	ops = append(ops, mkOp(OpFind, 999, 0, 1, true, tick, tick+1))
	if err := CheckOps(ops); err == nil {
		t.Fatal("poisoned key accepted")
	}
	if err := CheckOps(ops[:len(ops)-1]); err != nil {
		t.Fatalf("clean multi-key history rejected: %v", err)
	}
}
