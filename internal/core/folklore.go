package core

import (
	"sync/atomic"

	"repro/internal/tables"
)

// Folklore is the bounded, non-growing lock-free linear-probing table of
// §4 — the baseline all growing variants build on. Capacity is fixed at
// construction (rounded to the next power of two at least twice the
// expected number of elements, §7); overflowing it panics, mirroring the
// bounded C++ table's contract.
//
// Supported: insert, update (with arbitrary update functions, including a
// native fetch-and-add specialization), insertOrUpdate, wait-free find,
// tombstone deletion (§5.4; dead cells are not reclaimed — that is what
// the growing variants' migration adds), approximate size, range.
type Folklore struct {
	t *Table
	c counters
}

// NewFolklore builds a bounded table with capacity ≥ 2·expected rounded
// up to a power of two (the paper's sizing rule, §7: 2n ≤ size ≤ 4n).
func NewFolklore(expected uint64) *Folklore {
	return &Folklore{t: NewTable(2 * expected)}
}

// NewFolkloreExact builds a bounded table with the given capacity
// (rounded up to a power of two), for experiments that sweep memory
// footprint (Fig. 10).
func NewFolkloreExact(capacity uint64) *Folklore {
	return &Folklore{t: NewTable(capacity)}
}

// Capacity returns the cell count.
func (f *Folklore) Capacity() uint64 { return f.t.capacity }

// MemBytes reports backing memory (tables.MemUser).
func (f *Folklore) MemBytes() uint64 { return f.t.MemBytes() }

// ApproxSize estimates the number of live elements (§5.2).
func (f *Folklore) ApproxSize() uint64 { return f.c.approxLive() }

// Range iterates all live elements; quiescent use only.
func (f *Folklore) Range(fn func(k, v uint64) bool) { f.t.rangeCore(fn) }

// Handle returns a goroutine-private accessor (§5.1).
func (f *Folklore) Handle() tables.Handle {
	return &folkloreHandle{f: f, lc: newLocalCounter(handleSeed())}
}

var _ tables.Interface = (*Folklore)(nil)
var _ tables.Sizer = (*Folklore)(nil)
var _ tables.Ranger = (*Folklore)(nil)
var _ tables.MemUser = (*Folklore)(nil)

// handleSeedCtr derives distinct seeds for handle-local RNGs.
var handleSeedCtr atomic.Uint64

func handleSeed() uint64 { return handleSeedCtr.Add(0x9E3779B97F4A7C15) }

type folkloreHandle struct {
	f  *Folklore
	lc localCounter
}

func (h *folkloreHandle) Insert(k, d uint64) bool {
	checkKey(k)
	checkValue(d)
	switch h.f.t.insertCore(k, d) {
	case statusInserted:
		h.lc.bumpIns(&h.f.c)
		return true
	case statusPresent:
		return false
	default:
		panic("core: folklore table full — size it to ≥2n as the paper does (§7), or use a growing variant")
	}
}

func (h *folkloreHandle) Update(k, d uint64, up tables.UpdateFn) bool {
	checkKey(k)
	return h.f.t.updateCore(k, d, up) == statusUpdated
}

func (h *folkloreHandle) InsertOrUpdate(k, d uint64, up tables.UpdateFn) bool {
	checkKey(k)
	checkValue(d)
	switch h.f.t.insertOrUpdateCore(k, d, up) {
	case statusInserted:
		h.lc.bumpIns(&h.f.c)
		return true
	case statusUpdated:
		return false
	default:
		panic("core: folklore table full — size it to ≥2n as the paper does (§7), or use a growing variant")
	}
}

// InsertOrAdd is the fetch-and-add specialization (§4's atomicUpdate
// specialization); legal on the bounded table because it never marks.
func (h *folkloreHandle) InsertOrAdd(k, d uint64) bool {
	checkKey(k)
	checkValue(d)
	switch h.f.t.insertOrAddCore(k, d) {
	case statusInserted:
		h.lc.bumpIns(&h.f.c)
		return true
	case statusUpdated:
		return false
	default:
		panic("core: folklore table full — size it to ≥2n as the paper does (§7), or use a growing variant")
	}
}

// CompareAndDelete implements tables.CompareAndDeleter: the element is
// tombstoned iff the conditional CAS observes exactly want.
func (h *folkloreHandle) CompareAndDelete(k, want uint64) bool {
	checkKey(k)
	checkValue(want)
	if h.f.t.compareAndDeleteCore(k, want) == statusUpdated {
		h.lc.bumpDel(&h.f.c)
		return true
	}
	return false
}

func (h *folkloreHandle) Find(k uint64) (uint64, bool) {
	checkKey(k)
	return h.f.t.findCore(k)
}

func (h *folkloreHandle) Delete(k uint64) bool {
	_, ok := h.LoadAndDelete(k)
	return ok
}

// LoadAndDelete implements tables.LoadDeleter: the removed value is the
// one observed by the tombstoning CAS, so it is exact.
func (h *folkloreHandle) LoadAndDelete(k uint64) (uint64, bool) {
	checkKey(k)
	if v, st := h.f.t.deleteCore(k); st == statusUpdated {
		h.lc.bumpDel(&h.f.c)
		return v, true
	}
	return 0, false
}
