package core

import "repro/internal/tables"

// init registers the paper's own tables in the capability registry
// (Table 1 rows for the xyGrow family, folklore, and tsxfolklore).
func init() {
	tables.Register(tables.Capabilities{
		Name: "folklore", Plot: "open circle", StdInterface: "handles",
		Growing: "no", AtomicUpdates: "yes", Deletion: true,
		GeneralTypes: false, Reference: "§4 bounded lock-free linear probing",
	}, func(capacity uint64) tables.Interface { return NewFolkloreExact(2 * capacity) })

	tables.Register(tables.Capabilities{
		Name: "tsxfolklore", Plot: "open circle (tsx)", StdInterface: "handles",
		Growing: "no", AtomicUpdates: "transactional", Deletion: true,
		GeneralTypes: false, Reference: "§6 transaction-assisted folklore",
	}, func(capacity uint64) tables.Interface { return NewTSXFolkloreExact(2 * capacity) })

	for _, s := range []Strategy{UA, US, PA, PS} {
		s := s
		tables.Register(tables.Capabilities{
			Name: s.String(), Plot: "filled circle", StdInterface: "handles",
			Growing: "yes", AtomicUpdates: atomicCaps(s), Deletion: true,
			GeneralTypes: false, Reference: "§5/§7 growing folklore (" + s.String() + ")",
		}, func(capacity uint64) tables.Interface { return NewGrow(s, capacity) })
	}
	for _, s := range []Strategy{UA, US} {
		s := s
		tables.Register(tables.Capabilities{
			Name: s.String() + "-tsx", Plot: "filled circle (tsx)", StdInterface: "handles",
			Growing: "yes", AtomicUpdates: "transactional", Deletion: true,
			GeneralTypes: false, Reference: "§6/§7 TSX-instantiated growing folklore",
		}, func(capacity uint64) tables.Interface { return NewGrowTSX(s, capacity) })
	}
}

func atomicCaps(s Strategy) string {
	if s.synchronized() {
		return "yes (native fetch-and-add)"
	}
	return "yes (CAS loop)"
}
