package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/htm"
	"repro/internal/obs/trace"
	"repro/internal/pad"
	"repro/internal/tables"
)

// Strategy selects one of the four growing hash table variants of §7 —
// the cross product of the migration-thread recruitment policy and the
// consistency protocol of §5.3.2.
type Strategy uint8

const (
	// UA: user threads are enslaved for migration; consistency by
	// asynchronously marking cells before copying.
	UA Strategy = iota
	// US: user threads migrate; consistency by synchronizing update and
	// grow phases with busy flags (enables native fetch-and-add updates).
	US
	// PA: a dedicated pool of migration goroutines; marking.
	PA
	// PS: a dedicated pool; synchronized.
	PS
)

// String returns the paper's name for the variant.
func (s Strategy) String() string {
	switch s {
	case UA:
		return "uaGrow"
	case US:
		return "usGrow"
	case PA:
		return "paGrow"
	case PS:
		return "psGrow"
	}
	return "unknown"
}

func (s Strategy) synchronized() bool { return s == US || s == PS }
func (s Strategy) pooled() bool       { return s == PA || s == PS }

// growFillNum/growFillDen: a migration is triggered when the estimated
// number of nonempty cells reaches 60% of capacity (§7).
const (
	growFillNum = 3
	growFillDen = 5
)

// Grow is the adaptively sized table of §5: a folklore generation plus
// the scalable cluster migration, in any of the four strategy variants.
type Grow struct {
	strategy Strategy
	cur      atomic.Pointer[Table]
	mig      atomic.Pointer[migration]

	// gen counts completed migrations: the generation index of cur.
	// Monotone; advanced in onDone after the table pointer flips.
	gen atomic.Uint64

	// tx, when non-nil, routes all write operations (and migration
	// marking) through emulated restricted transactions — the TSX-based
	// instantiation of §7 measured in Fig. 9b.
	tx *htm.TxRegion

	// busy flags of all live handles; only used by synchronized variants.
	busyMu sync.Mutex
	busys  []*pad.Bool

	// migration pool (p-variants).
	poolCh chan *migration
	closed atomic.Bool
}

// NewGrow builds a growing table with the given strategy and initial
// capacity (the growing benchmarks of the paper start at 4096).
func NewGrow(strategy Strategy, initialCapacity uint64) *Grow {
	g := &Grow{strategy: strategy}
	g.cur.Store(NewTable(initialCapacity))
	if strategy.pooled() {
		n := runtime.GOMAXPROCS(0)
		g.poolCh = make(chan *migration, n)
		for i := 0; i < n; i++ {
			go g.poolWorker()
		}
	}
	return g
}

// NewGrowTSX builds a growing table whose write operations run inside
// emulated restricted transactions (tsxfolklore as the underlying
// bounded table, §7/Fig. 9b).
func NewGrowTSX(strategy Strategy, initialCapacity uint64) *Grow {
	g := NewGrow(strategy, initialCapacity)
	g.tx = htm.NewTxRegion()
	return g
}

// TxStats returns the emulated-HTM statistics (zero for non-TSX tables).
func (g *Grow) TxStats() (commits, aborts, fallbacks uint64) {
	if g.tx == nil {
		return 0, 0, 0
	}
	return g.tx.Stats()
}

// Strategy returns the variant.
func (g *Grow) Strategy() Strategy { return g.strategy }

// Generation returns the number of completed migrations — the
// generation index of the current table (0 for the initial one).
func (g *Grow) Generation() uint64 { return g.gen.Load() }

// Capacity returns the current generation's cell count.
func (g *Grow) Capacity() uint64 { return g.cur.Load().capacity }

// MemBytes reports the backing memory of the current generation plus any
// in-flight migration target (tables.MemUser, Fig. 10).
func (g *Grow) MemBytes() uint64 {
	b := g.cur.Load().MemBytes()
	if m := g.mig.Load(); m != nil {
		b += m.dst.MemBytes()
	}
	return b
}

// ApproxSize estimates the number of live elements (§5.2), read from the
// current generation's counters.
func (g *Grow) ApproxSize() uint64 { return g.cur.Load().c.approxLive() }

// Range iterates live elements; quiescent use only.
func (g *Grow) Range(fn func(k, v uint64) bool) { g.cur.Load().rangeCore(fn) }

// Close shuts down the migration pool (p-variants). The table must be
// quiescent. Implements tables.Closer.
func (g *Grow) Close() {
	if g.strategy.pooled() && g.closed.CompareAndSwap(false, true) {
		close(g.poolCh)
	}
}

func (g *Grow) poolWorker() {
	for m := range g.poolCh {
		m.help()
	}
}

var _ tables.Interface = (*Grow)(nil)
var _ tables.Sizer = (*Grow)(nil)
var _ tables.Ranger = (*Grow)(nil)
var _ tables.MemUser = (*Grow)(nil)
var _ tables.Closer = (*Grow)(nil)

// initiate starts a migration away from src unless one is already
// running. newCap is chosen from the live estimate: double when at least
// a third of the capacity is live, keep the size for pure tombstone
// cleanup (γ=1, §5.4), halve when almost empty (shrinking).
func (g *Grow) initiate(src *Table) {
	if g.mig.Load() != nil || g.cur.Load() != src {
		return
	}
	live := src.c.approxLive()
	newCap := src.capacity * 2
	if live < src.capacity/3 {
		newCap = src.capacity // cleanup only
	}
	if live < src.capacity/8 && src.capacity > 64 {
		newCap = src.capacity / 2 // shrink
	}
	m := g.migrationTo(src, NewTable(newCap))
	if !g.arm(m) {
		return // lost the slot or the generation race; ops help/wait and retry
	}
	g.launch(m)
}

// migrationTo builds a migration from src into dst whose completion seeds
// dst's per-generation counters with the exact moved element count and
// publishes dst as the current generation. Completion also records the
// migration event (trigger, wall duration, elements copied) on the
// process-wide obs registry; an aborted migration never reaches onDone
// and records nothing.
func (g *Grow) migrationTo(src, dst *Table) *migration {
	trigger := classifyTrigger(src.capacity, dst.capacity)
	start := time.Now()
	m := newMigration(src, dst, !g.strategy.synchronized(), func(moved uint64) {
		// moved is exact (the copy visited every live element), so it is
		// the new generation's counter base; deltas still pending in
		// handles were earned on src and flush (or drop) against src.c.
		dst.c.ins.Store(moved)
		g.cur.Store(dst)
		g.mig.Store(nil)
		newGen := g.gen.Add(1)
		trace.Emit(trace.KindMigFlip, moved, newGen, 0)
		recordMigration(trigger, start, moved)
	})
	m.tx = g.tx
	return m
}

// arm claims the migration slot for m, then re-validates that m.src is
// still the current generation.
//
// The re-validation is what makes migration arming safe: the pre-arm guard
// (mig == nil && cur == src) and the slot CAS are not one atomic step, so
// an entire migration cycle — arm, copy, publish — can complete between
// them (small tables migrate in a single block, so the window is wide in
// practice). A CAS that succeeds after such an intervening cycle would arm
// a migration whose src is a *retired* generation; running it would
// republish a snapshot of that old generation as the current table,
// silently rolling back every operation applied since the flip. This was
// the root cause of the rare lost insert/delete under concurrent growth
// (see TestStaleMigrationArmRefused for the deterministic replay).
//
// Once the CAS has succeeded the re-check is decisive: cur changes only in
// an armed migration's onDone, and we hold the only slot, so cur == m.src
// cannot be invalidated afterwards.
func (g *Grow) arm(m *migration) bool {
	if !g.mig.CompareAndSwap(nil, m) {
		return false // someone else's migration is in flight
	}
	if g.cur.Load() != m.src {
		g.mig.Store(nil) // release the slot first: stop new adoptions
		m.abort()        // then release threads that already adopted m
		return false
	}
	trace.Emit(trace.KindMigArm, m.src.capacity, m.dst.capacity, 0)
	return true
}

// launch starts an armed migration per the strategy's recruitment policy.
func (g *Grow) launch(m *migration) {
	if g.strategy.synchronized() {
		g.drainBusy()
	}
	close(m.started)
	if g.strategy.pooled() {
		n := cap(g.poolCh)
		for i := 0; i < n; i++ {
			g.poolCh <- m
		}
		return
	}
	// User-thread recruitment (§5.3.2): the triggering access is itself
	// enslaved, guaranteeing the migration makes progress even if no other
	// thread touches the table. Its stall is a growth pause like any
	// helper's — even a single-threaded forced resize records one.
	begin := time.Now()
	m.help()
	migAssist.ObserveSince(begin)
}

// drainBusy waits until every registered handle's busy flag has been
// observed unset at least once (§5.3.2 "Prevent Concurrent Updates"). The
// migration pointer is already published, so no handle can re-enter an
// operation without seeing it.
func (g *Grow) drainBusy() {
	g.busyMu.Lock()
	flags := make([]*pad.Bool, len(g.busys))
	copy(flags, g.busys)
	g.busyMu.Unlock()
	for _, f := range flags {
		for spins := 0; f.Load(); spins++ {
			if spins > 64 {
				runtime.Gosched()
			}
		}
	}
	trace.Emit(trace.KindMigDrain, uint64(len(flags)), 0, 0)
}

// assist is called by an operation that cannot proceed (marked cell, full
// table, or armed migration). It helps or waits per the strategy, then
// the caller retries on the (eventually new) current table. The stall —
// copying blocks or waiting on the pool — is the per-op growth pause,
// recorded into the assist histogram (its count is the helper-op
// count; its p99 is the figure the amortized-migration work targets).
func (g *Grow) assist() {
	m := g.mig.Load()
	if m == nil {
		return // already finished; retry will load the new table
	}
	begin := time.Now()
	if g.strategy.pooled() {
		m.wait()
	} else {
		m.help()
	}
	migAssist.ObserveSince(begin)
}

// maybeTrigger checks the fill trigger after a counter flush.
func (g *Grow) maybeTrigger() {
	t := g.cur.Load()
	if g.mig.Load() != nil {
		return
	}
	if t.c.approxNonempty()*growFillDen >= t.capacity*growFillNum {
		g.initiate(t)
	}
}

// ShrinkToFit migrates into a table sized for the current live count
// (≥ 2·live, power of two). Quiescent callers only in the bounded sense
// that concurrent operations remain correct but may prolong the shrink.
func (g *Grow) ShrinkToFit() {
	src := g.cur.Load()
	if g.mig.Load() != nil {
		g.assist()
		src = g.cur.Load()
	}
	live := src.c.approxLive()
	target := NewTable(2*live + 16)
	if target.capacity >= src.capacity {
		return
	}
	m := g.migrationTo(src, target)
	if !g.arm(m) {
		g.assist()
		return
	}
	g.launch(m)
	m.wait()
}

// Handle returns a goroutine-private accessor (§5.1).
func (g *Grow) Handle() tables.Handle {
	h := &growHandle{g: g, lc: newLocalCounter(handleSeed())}
	if g.strategy.synchronized() {
		h.busy = &pad.Bool{}
		g.busyMu.Lock()
		g.busys = append(g.busys, h.busy)
		g.busyMu.Unlock()
	}
	return h
}

type growHandle struct {
	g    *Grow
	lc   localCounter
	gen  *Table    // generation the pending lc deltas were earned on
	busy *pad.Bool // synchronized variants only
}

// bumpIns/bumpDel credit a successful operation to the generation it ran
// on. Deltas still pending from an older generation are dropped first:
// the migration that retired that generation counted every live element
// exactly (the moved total seeding the successor's counters), so those
// deltas are already represented and flushing them anywhere would
// double-count — the overcount that used to push ApproxSize above the
// exact element count.
func (h *growHandle) bumpIns(t *Table) bool {
	h.retag(t)
	return h.lc.bumpIns(&t.c)
}

func (h *growHandle) bumpDel(t *Table) bool {
	h.retag(t)
	return h.lc.bumpDel(&t.c)
}

func (h *growHandle) retag(t *Table) {
	if h.gen != t {
		h.lc.drop()
		h.gen = t
	}
}

// enter begins an operation: in synchronized mode it raises the busy flag
// and backs off if a migration is armed. Returns the table to operate on
// and false if the caller must assist and retry.
func (h *growHandle) enter() (*Table, bool) {
	if h.busy != nil {
		h.busy.Store(true)
		if h.g.mig.Load() != nil {
			h.busy.Store(false)
			h.g.assist()
			return nil, false
		}
	}
	return h.g.cur.Load(), true
}

// exit ends an operation and, if the counter flushed, checks the grow
// trigger (outside the busy section to keep drainBusy deadlock-free).
func (h *growHandle) exit(flushed bool) {
	if h.busy != nil {
		h.busy.Store(false)
	}
	if flushed {
		h.g.maybeTrigger()
	}
}

// doInsert/doUpdate/doUpsert/doDelete dispatch between the atomic and the
// transactional (TSX) code paths.
func (h *growHandle) doInsert(t *Table, k, d uint64) opStatus {
	if h.g.tx != nil {
		return t.insertTSX(h.g.tx, k, d)
	}
	return t.insertCore(k, d)
}

func (h *growHandle) doUpdate(t *Table, k, d uint64, up tables.UpdateFn) opStatus {
	if h.g.tx != nil {
		return t.updateTSX(h.g.tx, k, d, up)
	}
	return t.updateCore(k, d, up)
}

func (h *growHandle) doUpsert(t *Table, k, d uint64, up tables.UpdateFn) opStatus {
	if h.g.tx != nil {
		return t.insertOrUpdateTSX(h.g.tx, k, d, up)
	}
	return t.insertOrUpdateCore(k, d, up)
}

func (h *growHandle) doDelete(t *Table, k uint64) (uint64, opStatus) {
	if h.g.tx != nil {
		return t.deleteTSX(h.g.tx, k)
	}
	return t.deleteCore(k)
}

func (h *growHandle) Insert(k, d uint64) bool {
	checkKey(k)
	checkValue(d)
	for {
		t, ok := h.enter()
		if !ok {
			continue
		}
		switch h.doInsert(t, k, d) {
		case statusInserted:
			h.exit(h.bumpIns(t))
			return true
		case statusPresent:
			h.exit(false)
			return false
		case statusMarked:
			h.exit(false)
			h.g.assist()
		case statusFull:
			h.exit(false)
			h.g.initiate(t)
			h.g.assist()
		default:
			h.exit(false)
			panic("core: insert returned a status outside its contract")
		}
	}
}

func (h *growHandle) Update(k, d uint64, up tables.UpdateFn) bool {
	checkKey(k)
	for {
		t, ok := h.enter()
		if !ok {
			continue
		}
		switch h.doUpdate(t, k, d, up) {
		case statusUpdated:
			h.exit(false)
			return true
		case statusAbsent:
			h.exit(false)
			return false
		case statusMarked:
			h.exit(false)
			h.g.assist()
		default:
			h.exit(false)
			panic("core: update returned a status outside its contract")
		}
	}
}

func (h *growHandle) InsertOrUpdate(k, d uint64, up tables.UpdateFn) bool {
	checkKey(k)
	checkValue(d)
	for {
		t, ok := h.enter()
		if !ok {
			continue
		}
		switch h.doUpsert(t, k, d, up) {
		case statusInserted:
			h.exit(h.bumpIns(t))
			return true
		case statusUpdated:
			h.exit(false)
			return false
		case statusMarked:
			h.exit(false)
			h.g.assist()
		case statusFull:
			h.exit(false)
			h.g.initiate(t)
			h.g.assist()
		default:
			h.exit(false)
			panic("core: upsert returned a status outside its contract")
		}
	}
}

// InsertOrAdd is the aggregation fast path (tables.Adder). The
// synchronized variants use a native fetch-and-add (updates and growing
// cannot overlap, §5.3.2); the marking variants fall back to the CAS loop
// because fetch-and-add cannot coexist with marker bits (§8.4 makes the
// same distinction between usGrow and uaGrow).
func (h *growHandle) InsertOrAdd(k, d uint64) bool {
	checkKey(k)
	checkValue(d)
	for {
		t, ok := h.enter()
		if !ok {
			continue
		}
		var st opStatus
		switch {
		case h.g.tx != nil:
			st = t.insertOrUpdateTSX(h.g.tx, k, d, tables.AddFn)
		case h.g.strategy.synchronized():
			st = t.insertOrAddCore(k, d)
		default:
			st = t.insertOrUpdateCore(k, d, tables.AddFn)
		}
		switch st {
		case statusInserted:
			h.exit(h.bumpIns(t))
			return true
		case statusUpdated:
			h.exit(false)
			return false
		case statusMarked:
			h.exit(false)
			h.g.assist()
		case statusFull:
			h.exit(false)
			h.g.initiate(t)
			h.g.assist()
		default:
			h.exit(false)
			panic("core: insert-or-add returned a status outside its contract")
		}
	}
}

func (h *growHandle) Find(k uint64) (uint64, bool) {
	checkKey(k)
	for {
		t, ok := h.enter()
		if !ok {
			continue
		}
		v, found := t.findCore(k)
		h.exit(false)
		return v, found
	}
}

func (h *growHandle) Delete(k uint64) bool {
	_, ok := h.LoadAndDelete(k)
	return ok
}

// CompareAndDelete implements tables.CompareAndDeleter. A conditional
// delete that loses to a migration mark retries in the successor
// generation like Delete; the verdict is decided by the conditional CAS
// that finally lands.
func (h *growHandle) CompareAndDelete(k, want uint64) bool {
	checkKey(k)
	checkValue(want)
	for {
		t, ok := h.enter()
		if !ok {
			continue
		}
		var st opStatus
		if h.g.tx != nil {
			st = t.compareAndDeleteTSX(h.g.tx, k, want)
		} else {
			st = t.compareAndDeleteCore(k, want)
		}
		switch st {
		case statusUpdated:
			h.exit(h.bumpDel(t))
			return true
		case statusAbsent, statusMismatch:
			h.exit(false)
			return false
		case statusMarked:
			h.exit(false)
			h.g.assist()
		default:
			h.exit(false)
			panic("core: compare-and-delete returned a status outside its contract")
		}
	}
}

// LoadAndDelete implements tables.LoadDeleter. A delete that loses to a
// migration mark retries in the successor generation like Delete; the
// value returned is the one removed by the CAS that finally wins.
func (h *growHandle) LoadAndDelete(k uint64) (uint64, bool) {
	checkKey(k)
	for {
		t, ok := h.enter()
		if !ok {
			continue
		}
		v, st := h.doDelete(t, k)
		switch st {
		case statusUpdated:
			h.exit(h.bumpDel(t))
			return v, true
		case statusAbsent:
			h.exit(false)
			return 0, false
		case statusMarked:
			h.exit(false)
			h.g.assist()
		default:
			h.exit(false)
			panic("core: delete returned a status outside its contract")
		}
	}
}
