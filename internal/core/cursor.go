package core

import "repro/internal/tables"

// Resumable iteration (tables.CursorRanger) for the cell-protocol
// tables. A cursor is a generation-tagged slot index: resuming against
// the generation it was taken from continues exactly where the previous
// walk stopped; resuming after a migration retired that generation
// restarts from slot zero of the live generation. The restart may
// re-visit elements already seen but never skips a stable one — the
// guarantee the cache sweeper and other long walks rely on.

// cursorInto resumes a walk over t from cur, translating between the
// public cursor and the raw slot position.
func cursorInto(t *Table, cur tables.Cursor, fn func(k, v uint64) bool) (tables.Cursor, bool) {
	pos := uint64(0)
	if cur.Gen == t.gen {
		pos = cur.Pos
	}
	next, wrapped := t.rangeFromCore(pos, fn)
	return tables.Cursor{Gen: t.gen, Pos: next}, wrapped
}

// RangeFrom resumes iteration from cur (tables.CursorRanger); quiescent
// use only, like Range.
func (f *Folklore) RangeFrom(cur tables.Cursor, fn func(k, v uint64) bool) (tables.Cursor, bool) {
	return cursorInto(f.t, cur, fn)
}

// RangeFrom resumes iteration from cur (tables.CursorRanger); quiescent
// use only, like Range.
func (f *TSXFolklore) RangeFrom(cur tables.Cursor, fn func(k, v uint64) bool) (tables.Cursor, bool) {
	return cursorInto(f.t, cur, fn)
}

// RangeFrom resumes iteration from cur against the current generation
// (tables.CursorRanger). A cursor taken before a migration carries the
// retired generation's id and restarts from slot zero of the new
// generation; quiescent use only, like Range.
func (g *Grow) RangeFrom(cur tables.Cursor, fn func(k, v uint64) bool) (tables.Cursor, bool) {
	return cursorInto(g.cur.Load(), cur, fn)
}

var _ tables.CursorRanger = (*Folklore)(nil)
var _ tables.CursorRanger = (*TSXFolklore)(nil)
var _ tables.CursorRanger = (*Grow)(nil)
