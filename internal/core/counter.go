package core

import (
	"repro/internal/pad"
	"repro/internal/rng"
)

// counters is the approximate element count of §5.2: handles accumulate
// insertions/deletions locally and flush to the padded global counters
// after a randomized number of local events (randomized between 1 and
// flushSpan, the paper's trick to provably de-contend the global word).
// The estimate I−D undercounts by at most O(p·flushSpan) = O(p²).
type counters struct {
	//growt:atomic
	ins pad.Uint64 // I: global insertions (= nonempty cells incl. tombstones)
	//growt:atomic
	del pad.Uint64 // D: global deletions
}

// flushSpan is Θ(p); 64 covers the machine sizes the paper targets while
// keeping the estimate error small on little machines.
const flushSpan = 64

// approxNonempty estimates the number of nonempty cells (live+tombstones)
// — the quantity §5.4 says must drive migration triggering.
func (c *counters) approxNonempty() uint64 { return c.ins.Load() }

// approxLive estimates the number of live elements.
func (c *counters) approxLive() uint64 {
	i, d := c.ins.Load(), c.del.Load()
	if d > i {
		return 0
	}
	return i - d
}

// localCounter is the per-handle side. Not goroutine safe (handles are
// goroutine private, §5.1).
type localCounter struct {
	ins       uint64
	del       uint64
	threshold uint64
	rnd       rng.SplitMix64
}

func newLocalCounter(seed uint64) localCounter {
	lc := localCounter{rnd: *rng.NewSplitMix64(seed)}
	lc.reroll()
	return lc
}

func (lc *localCounter) reroll() { lc.threshold = 1 + lc.rnd.Uint64n(flushSpan) }

// bumpIns records one successful insertion; returns true if the local
// counters were flushed to the globals (the caller then re-checks the
// migration trigger).
func (lc *localCounter) bumpIns(g *counters) bool {
	lc.ins++
	if lc.ins+lc.del >= lc.threshold {
		lc.flush(g)
		return true
	}
	return false
}

// bumpDel records one successful deletion.
func (lc *localCounter) bumpDel(g *counters) bool {
	lc.del++
	if lc.ins+lc.del >= lc.threshold {
		lc.flush(g)
		return true
	}
	return false
}

func (lc *localCounter) flush(g *counters) {
	if lc.ins > 0 {
		g.ins.Add(lc.ins)
		lc.ins = 0
	}
	if lc.del > 0 {
		g.del.Add(lc.del)
		lc.del = 0
	}
	lc.reroll()
}

// drop discards accumulated deltas without flushing them anywhere. Used
// by the growing handles when their pending deltas were earned on a
// generation that has since been migrated: the migration counted every
// live element exactly, so the successor generation's counter base
// already includes these events and flushing them would double-count.
func (lc *localCounter) drop() {
	lc.ins = 0
	lc.del = 0
}
