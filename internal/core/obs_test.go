package core

import (
	"testing"

	"repro/internal/obs"
)

// TestMigrationObservability forces real growth migrations and checks
// that the obs.Default series record them: a completed migration must
// land a trigger-classified count, a nonzero wall-time observation,
// the copied-cell total, and assist time for the operations that were
// enslaved into helping. obs.Default is process-wide, so the test
// asserts on the window delta (other tests' migrations only add — the
// delta stays ≥ what this test generated).
func TestMigrationObservability(t *testing.T) {
	before := obs.Default.Snapshot()

	g := NewGrow(UA, 64)
	defer g.Close()
	h := g.Handle()
	gen0 := g.Generation()

	const n = 20000 // 64 cells -> many doublings
	for k := uint64(1); k <= n; k++ {
		if !h.Insert(k, k) {
			t.Fatalf("insert %d failed", k)
		}
	}
	if g.Capacity() < n {
		t.Fatalf("table did not grow: cap %d", g.Capacity())
	}

	win := obs.Default.Snapshot().Sub(before)

	if g.Generation() == gen0 {
		t.Error("generation did not advance across growth")
	}
	if got := win.Counter(`growt_migrations_total{trigger="grow"}`); got == 0 {
		t.Error("no grow migrations recorded")
	}
	wall := win.Hist("growt_migration_wall_nanos")
	if wall.Count == 0 || wall.Sum == 0 {
		t.Errorf("migration wall histogram empty: count %d sum %d", wall.Count, wall.Sum)
	}
	if wall.Max == 0 {
		t.Error("migration wall max is zero — pauses were not timed")
	}
	if got := win.Counter("growt_migration_cells_copied_total"); got == 0 {
		t.Error("no copied cells recorded")
	}
	// The sequential inserter is itself enslaved into every migration it
	// triggers, so assist time must be present too.
	assist := win.Hist("growt_migration_assist_nanos")
	if assist.Count == 0 {
		t.Error("no assist observations — helper ops were not timed")
	}

	// Generation counting matches the event counters: each completed
	// migration bumps the generation exactly once. Other tests share
	// obs.Default but not this Grow, so compare against the instance.
	if gens := g.Generation() - gen0; gens == 0 {
		t.Errorf("generation delta %d despite recorded migrations", gens)
	}
}
