package core

import (
	"sync"

	"repro/internal/hashfn"
	"repro/internal/htm"
	"repro/internal/obs/trace"
	"repro/internal/pad"
)

// migBlockCells is the migration work grain: blocks of 4096 cells are
// dealt to migrating threads with a single fetch-and-add (§7).
const migBlockCells = 4096

// frozenKey is the reserved key pattern a migrator CASes into an *empty*
// cell's key word so that no insert can claim it after the cell has been
// examined. A frozen cell is permanently empty for migration purposes but
// is treated as occupied-by-a-foreign-key by probe loops, so probing
// simply walks over it. This is the split-word equivalent of the paper's
// marking of empty cells (§5.3.2): with 128-bit CAS one mark freezes both
// words at once, here the key word of empty cells needs its own freeze.
const frozenKey = keyMask // all 63 key bits set; user keys are < frozenKey

type kv struct{ k, v uint64 }

// migration coordinates moving all elements of src into dst. One
// migration object exists per growing/cleanup/shrink step; threads join
// via help (block dealing) or wait on finished.
type migration struct {
	src, dst *Table
	// marking selects the asynchronous consistency protocol (§5.3.2
	// "Marking Moved Elements"): every cell is marked before it is copied
	// so no late write can be lost. The synchronized variants (usGrow,
	// psGrow) pass false: writers are excluded, no marking needed.
	marking bool
	// tx, when non-nil, serializes marking against the transactional
	// writers of the TSX-instantiated tables (their bodies use plain
	// stores, so the mark must be applied inside the same stripes).
	tx *htm.TxRegion

	nextBlock   pad.Uint64 // block dealer (fetch-and-add)
	doneBlocks  pad.Uint64
	totalBlocks uint64
	moved       pad.Uint64 // live elements placed into dst

	// started gates helpers: closed immediately for asynchronous
	// migrations, closed after the busy-flag drain for synchronized ones.
	started  chan struct{}
	finished chan struct{}

	// onDone publishes dst (flips the table pointer, resets counters).
	// Called exactly once, by the thread completing the last block.
	onDone func(moved uint64)

	// shrink phase 2: elements that did not fit their target block are
	// re-inserted by the finalizer after the block barrier (§5.3.1
	// Shrinking).
	leftMu   sync.Mutex
	leftover []kv
}

func newMigration(src, dst *Table, marking bool, onDone func(moved uint64)) *migration {
	// The caller closes started: immediately for marking (asynchronous)
	// migrations, after the busy-flag drain for synchronized ones.
	return &migration{
		src:         src,
		dst:         dst,
		marking:     marking,
		totalBlocks: (src.capacity + migBlockCells - 1) / migBlockCells,
		started:     make(chan struct{}),
		finished:    make(chan struct{}),
		onDone:      onDone,
	}
}

// grows reports whether this migration grows or keeps the capacity
// (cluster algorithm) as opposed to shrinking (two-phase algorithm).
func (m *migration) grows() bool { return m.dst.capacity >= m.src.capacity }

// help joins the migration: deal blocks until exhausted, then wait for
// completion. Returns after dst has been published.
func (m *migration) help() {
	<-m.started
	trace.Emit(trace.KindMigAdopt, m.totalBlocks, m.doneBlocks.Load(), 0)
	for {
		b := m.nextBlock.Add(1) - 1
		if b >= m.totalBlocks {
			break
		}
		var moved uint64
		if m.grows() {
			moved = m.processGrowBlock(b)
		} else {
			moved = m.processShrinkBlock(b)
		}
		trace.Emit(trace.KindMigCopySlice, b, moved, 0)
		if moved > 0 {
			m.moved.Add(moved)
		}
		if m.doneBlocks.Add(1) == m.totalBlocks {
			m.finalize()
		}
	}
	<-m.finished
}

// wait blocks until the migration has been published (used by application
// threads in the pool variants, §5.3.2 "Using a Dedicated Thread Pool").
func (m *migration) wait() { <-m.finished }

// abort cancels an armed migration that must not run because its source is
// a retired generation (Grow.arm detected the stale-src race after winning
// the slot CAS). Threads that already adopted the migration through the
// published pointer are released: presetting the block dealer past the end
// makes help() fall through without dealing a block, so finalize/onDone
// never run and the current-table pointer is untouched. The caller must
// release the migration slot before calling abort. Must be called at most
// once, before started is closed.
func (m *migration) abort() {
	m.nextBlock.Store(m.totalBlocks) // no block will ever be dealt
	trace.Emit(trace.KindMigAbort, m.src.capacity, 0, 0)
	close(m.started)
	close(m.finished)
}

// finalize runs after the block barrier: shrink leftovers are inserted
// (phase 2), counters initialized, the table pointer flipped.
func (m *migration) finalize() {
	if m.grows() && m.moved.Load() == 0 {
		// Degenerate case: a 100% full table has no empty cell, hence no
		// cluster start, and the block scan copies nothing (this can only
		// happen when inserts outran the fill trigger on a tiny table).
		// Any live element would have been inside a started cluster, so
		// moved==0 proves no cluster start existed; re-copy serially.
		m.fallbackFullCopy()
	}
	if len(m.leftover) > 0 {
		// Exclusive access: every other helper is past the block loop.
		for _, e := range m.leftover {
			if m.dst.insertCore(e.k, e.v) == statusInserted {
				m.moved.Add(1)
			}
		}
	}
	m.onDone(m.moved.Load())
	close(m.finished)
}

// fallbackFullCopy reinserts every live element sequentially (first free
// cell at or after its home, the plain linear-probing insertion rule,
// which maintains the probe invariant for any insertion order). Runs
// exclusively in the finalizer, after the block barrier.
func (m *migration) fallbackFullCopy() {
	src := m.src
	for i := uint64(0); i < src.capacity; i++ {
		k, v, empty := m.stabilize(i)
		if empty || v&liveBit == 0 {
			continue
		}
		if m.dst.insertCore(k, v&valueMask) == statusInserted {
			m.moved.Add(1)
		}
	}
}

// stabilize pins down the final pre-migration state of source cell i and
// returns it. In marking mode it (idempotently) marks the value word,
// freezes empty key words, and waits out in-flight inserts, after which
// the cell can never change again. Multiple threads may stabilize the
// same cell; they all observe the same final state.
func (m *migration) stabilize(i uint64) (key, val uint64, empty bool) {
	src := m.src
	if m.marking && m.tx != nil {
		// Transactional tables: apply mark and freeze inside the cell's
		// stripe so they cannot interleave with a transactional writer's
		// plain stores. TSX writers never use the pending bit.
		m.tx.Begin(i)
		v := src.loadVal(i)
		if v&markedBit == 0 {
			src.storeVal(i, v|markedBit)
		}
		kw := src.loadKey(i)
		if kw == 0 {
			src.storeKey(i, frozenKey)
			kw = frozenKey
		}
		val = src.loadVal(i)
		m.tx.End(i)
		if kw == frozenKey {
			return 0, 0, true
		}
		if kw&pendingBit != 0 {
			kw = src.waitKey(i)
		}
		return kw, val, false
	}
	if m.marking {
		for {
			v := src.loadVal(i)
			if v&markedBit != 0 {
				break
			}
			if src.casVal(i, v, v|markedBit) {
				break
			}
		}
		kw := src.loadKey(i)
		if kw == 0 {
			if src.casKey(i, 0, frozenKey) {
				return 0, 0, true
			}
			kw = src.loadKey(i)
		}
		if kw&pendingBit != 0 {
			kw = src.waitKey(i)
		}
		if kw == frozenKey {
			return 0, 0, true
		}
		return kw, src.loadVal(i), false
	}
	// Synchronized mode: writers are excluded, plain stable reads.
	kw := src.loadKey(i)
	if kw == 0 || kw == frozenKey {
		return 0, 0, true
	}
	if kw&pendingBit != 0 {
		kw = src.waitKey(i)
	}
	return kw, src.loadVal(i), false
}

// processGrowBlock migrates the clusters *starting* in block b (Lemma 1):
// a cluster is a maximal run of nonempty cells; because the scaled index
// mapping preserves order, distinct clusters have disjoint target ranges,
// so each cluster is copied without any synchronization on the target.
func (m *migration) processGrowBlock(b uint64) uint64 {
	src := m.src
	c := src.capacity
	begin := b * migBlockCells
	end := begin + migBlockCells
	if end > c {
		end = c
	}
	var moved uint64

	i := begin
	// If the cell before the block is occupied, the cluster covering the
	// block's first cells started earlier and belongs to a previous
	// block's owner; skip to the first empty cell ("implicitly moving the
	// block border", Fig. 1b).
	if _, _, prevEmpty := m.stabilize((begin + c - 1) & (c - 1)); !prevEmpty {
		for i < end {
			_, _, empty := m.stabilize(i)
			i++
			if empty {
				break
			}
		}
		if i == end {
			if _, _, empty := m.stabilize(end - 1); !empty {
				// The whole block is interior to a foreign cluster.
				return 0
			}
		}
	}
	for i < end {
		_, _, empty := m.stabilize(i)
		if empty {
			i++
			continue
		}
		consumed, mv := m.copyCluster(i)
		moved += mv
		i += consumed // may run past end; the tail belongs to this block's cluster
	}
	return moved
}

// copyCluster copies the cluster starting at src cell `start` into dst by
// order-preserving sequential reinsertion: each live element is placed at
// the first free dst cell at or after its scaled home position. Lemma 1
// guarantees the touched dst range is exclusive to this cluster, so plain
// (atomic, unsynchronized) stores suffice. Dead cells (tombstones) are
// dropped — this is the §5.4 cleanup. Returns the number of source cells
// consumed (including the terminating empty cell) and elements moved.
func (m *migration) copyCluster(start uint64) (consumed, moved uint64) {
	src, dst := m.src, m.dst
	smask := src.capacity - 1
	dmask := dst.capacity - 1
	diff := dst.logCap - src.logCap
	base := start << diff
	for {
		pos := (start + consumed) & smask
		k, v, empty := m.stabilize(pos)
		consumed++
		if empty {
			return consumed, moved
		}
		if v&liveBit == 0 {
			if consumed > src.capacity {
				panic("core: migration found no empty cell — load invariant broken")
			}
			continue
		}
		tpos := dst.index(hashfn.Hash64(k))
		u := tpos
		if u < base {
			// Element of a cluster wrapping the end of the table: its
			// target wraps too; continue in unwrapped coordinates.
			u += dst.capacity
		}
		// First free target cell at or after the home position. Only this
		// thread writes this cluster's target range, so the scan is exact.
		for dst.loadKey(u&dmask) != 0 {
			u++
		}
		d := u & dmask
		// Plain stores are safe here (marking-race audit): dst is not yet
		// published, application writers only reach it after onDone flips
		// the table pointer — which happens after the block barrier, hence
		// after every copy store — and Lemma 1 makes this cluster's target
		// range exclusive to this thread even among migrators. Value before
		// key, as in the claim protocol, so a published key always has its
		// value visible.
		dst.storeVal(d, v&valueMask|liveBit)
		dst.storeKey(d, k)
		moved++
		if consumed > src.capacity {
			panic("core: migration found no empty cell — load invariant broken")
		}
	}
}

// processShrinkBlock is phase 1 of the shrinking algorithm (§5.3.1): the
// source block maps onto a disjoint target block; elements are placed at
// the first free cell at or after their home position inside the target
// block, and elements that do not fit are deferred to phase 2 (finalize).
//
// Each element's placement scan starts at its *own* home position, never
// at a shared monotone cursor. A cursor would assume that source index
// order implies nondecreasing target homes — which tombstone dropping
// breaks: a key displaced far past its home (the cells in between were
// occupied when it was inserted, then deleted to tombstones) can follow a
// later-homed key in source order, and a cursor would place it past empty
// target cells, making it unreachable by probing from its home (a
// deterministic lost element; caught by the sliding-window torture suite).
// Scanning from the home cell maintains the probe invariant for any
// placement order, exactly like copyCluster's target scan.
func (m *migration) processShrinkBlock(b uint64) uint64 {
	src, dst := m.src, m.dst
	begin := b * migBlockCells
	end := begin + migBlockCells
	if end > src.capacity {
		end = src.capacity
	}
	diff := src.logCap - dst.logCap
	tb := begin >> diff
	te := end >> diff
	var moved uint64
	var left []kv
	for i := begin; i < end; i++ {
		k, v, empty := m.stabilize(i)
		if empty || v&liveBit == 0 {
			continue
		}
		tpos := dst.index(hashfn.Hash64(k))
		if tpos < tb || tpos >= te {
			// Home outside this block's exclusive target range (the
			// element's cluster crosses a block boundary, or wraps around
			// the table end). Phase 1 must not write outside [tb, te), so
			// defer to the exclusive phase 2, which probes the whole table.
			left = append(left, kv{k, v & valueMask})
			continue
		}
		pos := tpos
		for pos < te && dst.loadKey(pos) != 0 {
			pos++
		}
		if pos >= te {
			left = append(left, kv{k, v & valueMask})
			continue
		}
		dst.storeVal(pos, v&valueMask|liveBit)
		dst.storeKey(pos, k)
		moved++
	}
	if len(left) > 0 {
		m.leftMu.Lock()
		m.leftover = append(m.leftover, left...)
		m.leftMu.Unlock()
	}
	return moved
}
