package core

import (
	"sort"
	"sync"

	"repro/internal/hashfn"
)

// This file implements the bulk operations of §5.5: building a table from
// n elements in O(n/p) time by integer-sorting the batch by hash value,
// which sidesteps contention entirely — duplicate keys collapse during
// the sorted pass instead of fighting over cells (cf. Müller et al. [25],
// "hashing is sorting").

// KV is one element of a bulk batch.
type KV struct {
	Key uint64
	Val uint64
}

// BuildFolklore constructs a bounded folklore table holding elems using p
// parallel builders. Duplicate keys keep their first occurrence (insert
// semantics; §5.5's batch semantics would keep the last — flip the
// comparison below to get it). The returned table is fully constructed
// and ready for concurrent use.
func BuildFolklore(elems []KV, p int) *Folklore {
	f := NewFolklore(uint64(len(elems)) + 1)
	bulkFill(f.t, elems, p)
	f.c.ins.Store(f.t.countLive())
	return f
}

// BuildGrow constructs a growing table from the batch (same placement,
// grow wrapper on top).
func BuildGrow(strategy Strategy, elems []KV, p int) *Grow {
	g := NewGrow(strategy, 2*uint64(len(elems))+16)
	t := g.cur.Load()
	bulkFill(t, elems, p)
	t.c.ins.Store(t.countLive())
	return g
}

// bulkFill implements the sorted parallel placement on a fresh, private
// table t (no concurrent operations yet — this is construction).
func bulkFill(t *Table, elems []KV, p int) {
	if p < 1 {
		p = 1
	}
	n := len(elems)
	if n == 0 {
		return
	}
	// Sort a copy of the batch by hash (ascending) — elements then map to
	// monotonically nondecreasing home cells, so contiguous batch slices
	// fill disjoint table regions.
	type hkv struct {
		h   uint64
		e   KV
		idx int // original batch position: ties keep the first occurrence
	}
	sorted := make([]hkv, n)
	for i, e := range elems {
		checkKey(e.Key)
		checkValue(e.Val)
		sorted[i] = hkv{hashfn.Hash64(e.Key), e, i}
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].h != sorted[j].h {
			return sorted[i].h < sorted[j].h
		}
		if sorted[i].e.Key != sorted[j].e.Key {
			return sorted[i].e.Key < sorted[j].e.Key
		}
		return sorted[i].idx < sorted[j].idx
	})
	// Drop duplicates (first occurrence wins; ties in hash with distinct
	// keys survive).
	w := 0
	for i := range sorted {
		if i > 0 && sorted[i].e.Key == sorted[w-1].e.Key && sorted[i].h == sorted[w-1].h {
			continue
		}
		sorted[w] = sorted[i]
		w++
	}
	sorted = sorted[:w]

	// Partition the table into p cell ranges and the batch at the
	// matching hash boundaries; each worker fills its range sequentially
	// (first free cell at or after home). Elements whose probe chain
	// would spill past the range boundary are deferred to a sequential
	// phase 2, mirroring the shrink migration's two-phase scheme.
	var spillMu sync.Mutex
	var spill []KV
	var wg sync.WaitGroup
	for worker := 0; worker < p; worker++ {
		cellLo := t.capacity * uint64(worker) / uint64(p)
		cellHi := t.capacity * uint64(worker+1) / uint64(p)
		lo := sort.Search(len(sorted), func(i int) bool { return t.index(sorted[i].h) >= cellLo })
		hi := sort.Search(len(sorted), func(i int) bool { return t.index(sorted[i].h) >= cellHi })
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(part []hkv, cellHi uint64) {
			defer wg.Done()
			var local []KV
			for _, x := range part {
				pos := t.index(x.h)
				for pos < cellHi && t.loadKey(pos) != 0 {
					pos++
				}
				if pos >= cellHi {
					local = append(local, x.e)
					continue
				}
				// Exclusion proof: t is private to this bulkFill call (the
				// Build* constructors hand it a freshly allocated table with
				// no published handles and no migration object), and worker
				// cell ranges [cellLo, cellHi) are disjoint, so no other
				// writer — in particular no marking migrator — can touch
				// this value word. The CAS (instead of the former plain
				// store) enforces that proof at runtime: if the exclusion is
				// ever broken, a concurrently set markedBit makes the CAS
				// fail loudly here instead of being silently overwritten,
				// which would detach the cell from the migration protocol
				// and lose the element (the lost-op bug family).
				if !t.casVal(pos, 0, x.e.Val|liveBit) {
					panic("core: bulkFill value CAS failed — builder tables must be private until construction completes")
				}
				t.storeKey(pos, x.e.Key)
			}
			if len(local) > 0 {
				spillMu.Lock()
				spill = append(spill, local...)
				spillMu.Unlock()
			}
		}(sorted[lo:hi], cellHi)
	}
	wg.Wait()
	for _, e := range spill {
		t.insertCore(e.Key, e.Val)
	}
}

// ForAll applies f to every live element in parallel over p goroutines,
// splitting the table between them (§4 "Bulk Operations": forall is
// embarrassingly parallel). Quiescent use only.
func (f *Folklore) ForAll(p int, fn func(k, v uint64)) { forAll(f.t, p, fn) }

// ForAll applies f to every live element in parallel; quiescent use only.
func (g *Grow) ForAll(p int, fn func(k, v uint64)) { forAll(g.cur.Load(), p, fn) }

func forAll(t *Table, p int, fn func(k, v uint64)) {
	if p < 1 {
		p = 1
	}
	var wg sync.WaitGroup
	for worker := 0; worker < p; worker++ {
		lo := t.capacity * uint64(worker) / uint64(p)
		hi := t.capacity * uint64(worker+1) / uint64(p)
		wg.Add(1)
		go func(lo, hi uint64) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				kw := t.loadKey(i)
				if kw == 0 || kw&pendingBit != 0 || kw == frozenKey {
					continue
				}
				v := t.loadVal(i)
				if v&liveBit == 0 {
					continue
				}
				fn(kw, v&valueMask)
			}
		}(lo, hi)
	}
	wg.Wait()
}
