package core

import (
	"sort"
	"sync"

	"repro/internal/tables"
)

// FullKeys restores the complete 64-bit key space over a core table
// (§5.6). The core reserves key 0 (empty), the top bit (pending) and the
// all-ones pattern (frozen); FullKeys lifts all three restrictions with
// the paper's two devices:
//
//   - two subtables t0/t1 store keys with the top bit clear/set, the bit
//     itself removed before storing — "storing the lost bit implicitly";
//   - the handful of keys that collide with reserved patterns after the
//     bit strip (0 and 2^63-1) live in dedicated special slots on the
//     global object ("two special slots in the global hash table data
//     structure").
//
// Values keep the core's 62-bit domain.
type FullKeys struct {
	t0, t1 tables.Interface

	mu      sync.RWMutex
	special map[uint64]uint64 // the ≤4 reserved-pattern keys
}

// NewFullKeys wraps a pair of tables built by mk (one per key half-space).
func NewFullKeys(mk func() tables.Interface) *FullKeys {
	return &FullKeys{t0: mk(), t1: mk(), special: make(map[uint64]uint64, 4)}
}

const fullTopBit = uint64(1) << 63

// split maps a user key to (subtable index, stored core key, isSpecial).
func split(k uint64) (hi bool, core uint64, special bool) {
	hi = k&fullTopBit != 0
	core = k &^ fullTopBit
	if core == 0 || core >= frozenKey {
		return hi, 0, true
	}
	return hi, core, false
}

// Generation sums the completed-migration counts of the two growing
// subtables (a bounded subtable has no generations and contributes
// zero). Monotone: every finished migration in either half advances it
// by one, so an operation stamped with the value it read ran against a
// table state the next migration retired.
func (f *FullKeys) Generation() uint64 {
	var n uint64
	if g, ok := f.t0.(interface{ Generation() uint64 }); ok {
		n += g.Generation()
	}
	if g, ok := f.t1.(interface{ Generation() uint64 }); ok {
		n += g.Generation()
	}
	return n
}

// Handle returns a goroutine-private accessor.
func (f *FullKeys) Handle() tables.Handle {
	return &fullKeysHandle{f: f, h0: f.t0.Handle(), h1: f.t1.Handle()}
}

var _ tables.Interface = (*FullKeys)(nil)

// ApproxSize sums the subtables' estimates plus the special slots.
func (f *FullKeys) ApproxSize() uint64 {
	var n uint64
	if s, ok := f.t0.(tables.Sizer); ok {
		n += s.ApproxSize()
	}
	if s, ok := f.t1.(tables.Sizer); ok {
		n += s.ApproxSize()
	}
	f.mu.RLock()
	n += uint64(len(f.special))
	f.mu.RUnlock()
	return n
}

// Range iterates the full-key map (quiescent use only, like every Range
// in this repository): subtable keys are re-widened — t1 keys get the
// stripped top bit restored — and the special slots are appended last.
func (f *FullKeys) Range(fn func(k, v uint64) bool) {
	stopped := false
	if r, ok := f.t0.(tables.Ranger); ok {
		r.Range(func(k, v uint64) bool {
			if !fn(k, v) {
				stopped = true
			}
			return !stopped
		})
	}
	if stopped {
		return
	}
	if r, ok := f.t1.(tables.Ranger); ok {
		r.Range(func(k, v uint64) bool {
			if !fn(k|fullTopBit, v) {
				stopped = true
			}
			return !stopped
		})
	}
	if stopped {
		return
	}
	// Snapshot the ≤4 special slots before calling fn, so a callback that
	// mutates a special key (taking f.mu.Lock) cannot self-deadlock.
	f.mu.RLock()
	special := make(map[uint64]uint64, len(f.special))
	for k, v := range f.special {
		special[k] = v
	}
	f.mu.RUnlock()
	for k, v := range special {
		if !fn(k, v) {
			return
		}
	}
}

var _ tables.Ranger = (*FullKeys)(nil)

// fkSegShift packs the walk phase into the top two bits of Cursor.Pos:
// 0 = t0, 1 = t1, 2 = the special slots. The low 62 bits are the
// phase's own resumable position (a slot index, far below 2^62).
const fkSegShift = 62

// rangeSeg walks one subtable phase from inner, widening stored keys
// with the given bit. It reports where to resume, whether fn stopped
// the walk, and whether the phase was exhausted. A subtable without
// CursorRanger support degrades to restart-at-phase-start on an early
// stop: re-visits are possible, skips are not.
func rangeSeg(sub tables.Interface, inner tables.Cursor, widen uint64, fn func(k, v uint64) bool) (next tables.Cursor, stopped, wrapped bool) {
	wrap := func(k, v uint64) bool {
		if !fn(k|widen, v) {
			stopped = true
		}
		return !stopped
	}
	if cr, ok := sub.(tables.CursorRanger); ok {
		next, wrapped = cr.RangeFrom(inner, wrap)
		return next, stopped, wrapped
	}
	if r, ok := sub.(tables.Ranger); ok {
		r.Range(wrap)
	}
	return tables.Cursor{}, stopped, !stopped
}

// RangeFrom resumes the three-phase walk of Range from cur
// (tables.CursorRanger; quiescent use only). The special slots are
// snapshotted and walked in ascending key order so their positions are
// deterministic across calls.
func (f *FullKeys) RangeFrom(cur tables.Cursor, fn func(k, v uint64) bool) (tables.Cursor, bool) {
	seg := cur.Pos >> fkSegShift
	inner := tables.Cursor{Gen: cur.Gen, Pos: cur.Pos & (1<<fkSegShift - 1)}
	if seg > 2 {
		seg, inner = 0, tables.Cursor{}
	}

	if seg == 0 {
		next, stopped, wrapped := rangeSeg(f.t0, inner, 0, fn)
		switch {
		case stopped && wrapped:
			return tables.Cursor{Pos: 1 << fkSegShift}, false
		case stopped:
			return next, false
		}
		seg, inner = 1, tables.Cursor{}
	}
	if seg == 1 {
		next, stopped, wrapped := rangeSeg(f.t1, inner, fullTopBit, fn)
		switch {
		case stopped && wrapped:
			return tables.Cursor{Pos: 2 << fkSegShift}, false
		case stopped:
			return tables.Cursor{Gen: next.Gen, Pos: next.Pos | 1<<fkSegShift}, false
		}
		inner = tables.Cursor{}
	}

	// Phase 2: the ≤4 special slots, snapshotted like Range does so fn
	// may mutate them without self-deadlock.
	f.mu.RLock()
	type kv struct{ k, v uint64 }
	snap := make([]kv, 0, len(f.special))
	for k, v := range f.special {
		snap = append(snap, kv{k, v})
	}
	f.mu.RUnlock()
	sort.Slice(snap, func(i, j int) bool { return snap[i].k < snap[j].k })
	for i := inner.Pos; i < uint64(len(snap)); i++ {
		if !fn(snap[i].k, snap[i].v) {
			if i+1 >= uint64(len(snap)) {
				return tables.Cursor{}, true
			}
			return tables.Cursor{Pos: 2<<fkSegShift | (i + 1)}, false
		}
	}
	return tables.Cursor{}, true
}

var _ tables.CursorRanger = (*FullKeys)(nil)

// Close closes the subtables if they own resources.
func (f *FullKeys) Close() {
	if c, ok := f.t0.(tables.Closer); ok {
		c.Close()
	}
	if c, ok := f.t1.(tables.Closer); ok {
		c.Close()
	}
}

type fullKeysHandle struct {
	f      *FullKeys
	h0, h1 tables.Handle
}

func (h *fullKeysHandle) sub(hi bool) tables.Handle {
	if hi {
		return h.h1
	}
	return h.h0
}

func (h *fullKeysHandle) Insert(k, d uint64) bool {
	hi, core, special := split(k)
	if special {
		h.f.mu.Lock()
		defer h.f.mu.Unlock()
		if _, ok := h.f.special[k]; ok {
			return false
		}
		h.f.special[k] = d
		return true
	}
	return h.sub(hi).Insert(core, d)
}

func (h *fullKeysHandle) Update(k, d uint64, up tables.UpdateFn) bool {
	hi, core, special := split(k)
	if special {
		h.f.mu.Lock()
		defer h.f.mu.Unlock()
		cur, ok := h.f.special[k]
		if !ok {
			return false
		}
		h.f.special[k] = up(cur, d)
		return true
	}
	return h.sub(hi).Update(core, d, up)
}

func (h *fullKeysHandle) InsertOrUpdate(k, d uint64, up tables.UpdateFn) bool {
	hi, core, special := split(k)
	if special {
		h.f.mu.Lock()
		defer h.f.mu.Unlock()
		if cur, ok := h.f.special[k]; ok {
			h.f.special[k] = up(cur, d)
			return false
		}
		h.f.special[k] = d
		return true
	}
	return h.sub(hi).InsertOrUpdate(core, d, up)
}

func (h *fullKeysHandle) Find(k uint64) (uint64, bool) {
	hi, core, special := split(k)
	if special {
		h.f.mu.RLock()
		defer h.f.mu.RUnlock()
		v, ok := h.f.special[k]
		return v, ok
	}
	return h.sub(hi).Find(core)
}

func (h *fullKeysHandle) Delete(k uint64) bool {
	hi, core, special := split(k)
	if special {
		h.f.mu.Lock()
		defer h.f.mu.Unlock()
		if _, ok := h.f.special[k]; !ok {
			return false
		}
		delete(h.f.special, k)
		return true
	}
	return h.sub(hi).Delete(core)
}

// CompareAndDelete implements tables.CompareAndDeleter. Every core
// handle a FullKeys wraps in this repository is a CompareAndDeleter; for
// a foreign subtable without the capability it falls back to
// find-then-delete, which can delete a value the comparison never saw
// against a concurrent overwrite.
func (h *fullKeysHandle) CompareAndDelete(k, want uint64) bool {
	hi, core, special := split(k)
	if special {
		h.f.mu.Lock()
		defer h.f.mu.Unlock()
		if v, ok := h.f.special[k]; ok && v == want {
			delete(h.f.special, k)
			return true
		}
		return false
	}
	sub := h.sub(hi)
	if cd, ok := sub.(tables.CompareAndDeleter); ok {
		return cd.CompareAndDelete(core, want)
	}
	for {
		v, ok := sub.Find(core)
		if !ok || v != want {
			return false
		}
		if sub.Delete(core) {
			return true
		}
	}
}

// LoadAndDelete implements tables.LoadDeleter. Every core handle a
// FullKeys wraps in this repository is a LoadDeleter; for a foreign
// subtable without the capability it falls back to find-then-delete,
// which can misreport the value against a concurrent overwrite.
func (h *fullKeysHandle) LoadAndDelete(k uint64) (uint64, bool) {
	hi, core, special := split(k)
	if special {
		h.f.mu.Lock()
		defer h.f.mu.Unlock()
		v, ok := h.f.special[k]
		if ok {
			delete(h.f.special, k)
		}
		return v, ok
	}
	sub := h.sub(hi)
	if ld, ok := sub.(tables.LoadDeleter); ok {
		return ld.LoadAndDelete(core)
	}
	for {
		v, ok := sub.Find(core)
		if !ok {
			return 0, false
		}
		if sub.Delete(core) {
			return v, true
		}
	}
}
