package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/linearize"
	"repro/internal/tables"
)

// This file is the migration torture suite: tests that force the
// mark/claim/arm interleavings of the growing protocol as hard as
// possible and validate the results with exact assertions and with the
// linearizability checker of repro/internal/linearize.
//
// The historical bug this suite was built around: initiate's pre-arm
// guard and the migration-slot CAS are separate steps, so an entire
// migration cycle could complete between them and a late CAS would arm a
// migration of a retired generation, republishing its snapshot as the
// current table (lost inserts and deletes at ~2–5% per run of the old
// TestConcurrentDeleteInsert under -race). Grow.arm now re-validates the
// generation after the CAS; TestStaleMigrationArmRefused replays the
// interleaving deterministically.

// TestConcurrentDeleteInsert: concurrent alternating insert/delete on a
// sliding window from several goroutines with disjoint key ranges —
// table-driven across all four strategies and initial capacities, so every
// combination of recruitment policy × consistency protocol is tortured
// from "migrating constantly" (capacity 8) to "migrating occasionally"
// (capacity 4096). The full matrix runs by default (tier-1); -short trims
// to one capacity per strategy.
func TestConcurrentDeleteInsert(t *testing.T) {
	capacities := []uint64{8, 64, 4096}
	if testing.Short() {
		capacities = []uint64{64}
	}
	for _, s := range allStrategies() {
		for _, c := range capacities {
			s, c := s, c
			t.Run(fmt.Sprintf("%s/cap%d", s, c), func(t *testing.T) {
				g := NewGrow(s, c)
				defer g.Close()
				const goroutines = 4
				const perG = 6000
				const window = 256
				errs := make(chan error, goroutines)
				var wg sync.WaitGroup
				for i := 0; i < goroutines; i++ {
					wg.Add(1)
					go func(id uint64) {
						defer wg.Done()
						h := g.Handle()
						base := id * 10_000_000
						for j := uint64(1); j <= perG; j++ {
							if !h.Insert(base+j, j) {
								errs <- fmt.Errorf("goroutine %d: insert %d failed (key spuriously present)", id, j)
								return
							}
							if j > window {
								if !h.Delete(base + j - window) {
									errs <- fmt.Errorf("goroutine %d: delete %d failed (insert was lost)", id, j-window)
									return
								}
							}
						}
					}(uint64(i))
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Error(err)
				}
				if t.Failed() {
					t.FailNow()
				}
				h := g.Handle()
				for i := uint64(0); i < goroutines; i++ {
					base := i * 10_000_000
					for j := uint64(perG - window + 1); j <= perG; j++ {
						if v, ok := h.Find(base + j); !ok || v != j {
							t.Fatalf("goroutine %d window key %d missing after the dust settled", i, j)
						}
					}
					if _, ok := h.Find(base + 1); ok {
						t.Fatalf("goroutine %d deleted key resurrected", i)
					}
				}
			})
		}
	}
}

// TestStaleMigrationArmRefused deterministically replays the lost-op race:
// a thread passes initiate's guard (cur==src, mig==nil), a complete
// migration cycle runs before its slot CAS, and the thread then tries to
// arm a migration of the now-retired generation. arm must refuse, release
// the slot, leave every operation intact, and not wedge helpers or later
// migrations.
func TestStaleMigrationArmRefused(t *testing.T) {
	for _, s := range allStrategies() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			g := NewGrow(s, 64)
			defer g.Close()
			h := g.Handle()
			h.Insert(1, 1)
			src := g.cur.Load() // T1 passes the guard here, then stalls

			// Intervening full cycle by another thread.
			g.initiate(src)
			g.assist()
			if g.cur.Load() == src {
				t.Fatal("setup: migration did not flip the table")
			}
			// An op lands in the new generation; the old code's stale
			// migration would roll it back.
			h.Insert(2, 2)

			// T1 resumes exactly where initiate's guard left off.
			m := g.migrationTo(src, NewTable(src.capacity))
			if g.arm(m) {
				t.Fatal("stale-src migration was armed — generation re-validation missing")
			}
			if g.mig.Load() != nil {
				t.Fatal("aborted arm leaked the migration slot")
			}
			// Liveness: a thread that adopted the aborted migration (via
			// assist's g.mig.Load()) must not block on it.
			m.help()
			m.wait()

			for k, want := range map[uint64]uint64{1: 1, 2: 2} {
				if v, ok := h.Find(k); !ok || v != want {
					t.Fatalf("key %d lost or corrupted after refused stale arm: (%d,%v)", k, v, ok)
				}
			}
			// The table must still migrate normally afterwards.
			g.initiate(g.cur.Load())
			g.assist()
			for k, want := range map[uint64]uint64{1: 1, 2: 2} {
				if v, ok := h.Find(k); !ok || v != want {
					t.Fatalf("key %d lost in the follow-up migration: (%d,%v)", k, v, ok)
				}
			}
		})
	}
}

// tortureLinearizable drives mixed operations plus a forced-migration
// churn goroutine against g, recording everything, and checks the full
// history for linearizability.
func tortureLinearizable(t *testing.T, g *Grow, goroutines, opsPerG, keys int) {
	t.Helper()
	hist := linearize.NewHistory()
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
				g.initiate(g.cur.Load())
				g.assist()
				// Let the op-recording goroutines run between migrations.
				// Without this the churn loop re-initiates the instant the
				// previous migration finishes, and on low-core hosts the
				// channel-handoff wakeups can keep scheduling only the
				// churn/pool-worker pair, starving the workers and hanging
				// the suite.
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := g.Handle()
			r := hist.Recorder()
			rnd := rand.New(rand.NewSource(seed))
			for n := 0; n < opsPerG; n++ {
				k := uint64(rnd.Intn(keys)) + 1
				v := uint64(rnd.Intn(1000)) + 1
				switch rnd.Intn(6) {
				case 0:
					i := r.Invoke(linearize.OpInsert, k, v)
					r.Return(i, 0, h.Insert(k, v))
				case 1:
					i := r.Invoke(linearize.OpDelete, k, 0)
					r.Return(i, 0, h.Delete(k))
				case 2:
					i := r.Invoke(linearize.OpUpdate, k, v)
					r.Return(i, 0, h.Update(k, v, tables.Overwrite))
				case 3:
					i := r.Invoke(linearize.OpUpsert, k, v)
					r.Return(i, 0, h.InsertOrUpdate(k, v, tables.Overwrite))
				case 4:
					i := r.Invoke(linearize.OpAdd, k, v)
					r.Return(i, 0, h.(tables.Adder).InsertOrAdd(k, v))
				case 5:
					i := r.Invoke(linearize.OpFind, k, 0)
					out, ok := h.Find(k)
					r.Return(i, out, ok)
				}
			}
		}(int64(i*7919 + 13))
	}
	wg.Wait()
	close(stop)
	churn.Wait()
	if err := hist.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestMigrationTortureLinearizable is the proof the ISSUE demands: under
// continuously forced migrations on tiny tables — the regime where the
// mark/claim/arm interleavings are densest — every recorded history of
// every strategy must be linearizable.
func TestMigrationTortureLinearizable(t *testing.T) {
	opsPerG := 500
	if testing.Short() {
		opsPerG = 150
	}
	for _, s := range allStrategies() {
		for _, c := range []uint64{8, 64} {
			s, c := s, c
			t.Run(fmt.Sprintf("%s/cap%d", s, c), func(t *testing.T) {
				g := NewGrow(s, c)
				defer g.Close()
				tortureLinearizable(t, g, 6, opsPerG, 32)
			})
		}
	}
}

// TestMigrationTortureGOMAXPROCS sweeps scheduler parallelism: P=1 forces
// long preemption windows (the stale-arm bug's natural habitat), larger P
// forces true parallel mark/claim collisions.
func TestMigrationTortureGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("GOMAXPROCS sweep skipped in -short mode")
	}
	procs := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		procs = append(procs, n)
	}
	for _, p := range procs {
		p := p
		t.Run(fmt.Sprintf("procs%d", p), func(t *testing.T) {
			prev := runtime.GOMAXPROCS(p)
			defer runtime.GOMAXPROCS(prev)
			g := NewGrow(UA, 8)
			defer g.Close()
			tortureLinearizable(t, g, 4, 400, 16)
		})
	}
}

// TestTSXMigrationTortureLinearizable covers the transactional write path
// (plain stores inside stripes) against the same forced-migration churn.
func TestTSXMigrationTortureLinearizable(t *testing.T) {
	opsPerG := 400
	if testing.Short() {
		opsPerG = 120
	}
	for _, s := range []Strategy{UA, US} {
		s := s
		t.Run(s.String()+"-tsx", func(t *testing.T) {
			g := NewGrowTSX(s, 8)
			defer g.Close()
			tortureLinearizable(t, g, 4, opsPerG, 16)
		})
	}
}

// TestShrinkPlacementReachability is the regression matrix for the
// second lost-op bug this suite uncovered: phase 1 of the shrink
// migration placed elements with a shared monotone cursor instead of
// probing from each element's own home. Two displacement sources break
// the cursor's ordering assumption: keys displaced past since-tombstoned
// neighbours, and — in the pooled strategies, where writers keep
// operating while the pool migrates — keys displaced past
// migration-frozen cells. Either way the cursor could place a key beyond
// empty target cells, making it unreachable from its home (deterministic
// lost op; the paGrow cases below failed on the unfixed code).
func TestShrinkPlacementReachability(t *testing.T) {
	for _, cfg := range []struct{ cap, n, window uint64 }{
		{1 << 12, 4500, 256},
		{1 << 12, 4500, 128},
		{1 << 11, 3000, 256},
		{1 << 12, 6000, 256},
	} {
		for _, s := range []Strategy{UA, PA} {
			cfg, s := cfg, s
			t.Run(fmt.Sprintf("%s/cap%d/n%d/w%d", s, cfg.cap, cfg.n, cfg.window), func(t *testing.T) {
				g := NewGrow(s, cfg.cap)
				defer g.Close()
				h := g.Handle()
				for j := uint64(1); j <= cfg.n; j++ {
					if !h.Insert(j, j) {
						t.Fatalf("insert %d failed (key spuriously present)", j)
					}
					if j > cfg.window {
						if !h.Delete(j - cfg.window) {
							t.Fatalf("delete %d failed (insert was lost)", j-cfg.window)
						}
					}
				}
				for j := cfg.n - cfg.window + 1; j <= cfg.n; j++ {
					if v, ok := h.Find(j); !ok || v != j {
						t.Fatalf("window key %d unreachable after shrink migrations", j)
					}
				}
			})
		}
	}
}
