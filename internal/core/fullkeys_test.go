package core

import (
	"testing"
	"testing/quick"

	"repro/internal/tables"
)

func newFull() *FullKeys {
	return NewFullKeys(func() tables.Interface { return NewGrow(UA, 64) })
}

// TestFullKeysReservedPatterns: every key the core reserves must work
// through the wrapper, including 0, the frozen pattern, the pending bit
// and all-ones.
func TestFullKeysReservedPatterns(t *testing.T) {
	f := newFull()
	defer f.Close()
	h := f.Handle()
	keys := []uint64{
		0,
		frozenKey,         // 2^63-1
		frozenKey | 1<<63, // all ones
		1 << 63,           // only top bit
		(1 << 63) | 12345, // high half-space ordinary
		42,                // low half-space ordinary
		MaxKey, MaxKey | 1<<63,
	}
	for i, k := range keys {
		if !h.Insert(k, uint64(i)+1) {
			t.Fatalf("insert %#x failed", k)
		}
	}
	for i, k := range keys {
		if v, ok := h.Find(k); !ok || v != uint64(i)+1 {
			t.Fatalf("find %#x: got %d,%v", k, v, ok)
		}
	}
	for _, k := range keys {
		if h.Insert(k, 9) {
			t.Fatalf("duplicate insert %#x succeeded", k)
		}
	}
	// The four reserved-pattern keys live in exactly-counted special
	// slots; subtable counts may lag by the unflushed local counters.
	if n := f.ApproxSize(); n < 4 || n > uint64(len(keys)) {
		t.Fatalf("approx size %d", n)
	}
	for _, k := range keys {
		if !h.Delete(k) {
			t.Fatalf("delete %#x failed", k)
		}
		if _, ok := h.Find(k); ok {
			t.Fatalf("key %#x present after delete", k)
		}
	}
}

// TestFullKeysHalfSpacesIndependent: the same 63-bit pattern in both
// half-spaces must address distinct elements.
func TestFullKeysHalfSpacesIndependent(t *testing.T) {
	f := newFull()
	defer f.Close()
	h := f.Handle()
	h.Insert(7, 100)
	h.Insert(7|1<<63, 200)
	if v, _ := h.Find(7); v != 100 {
		t.Fatal("low half-space damaged")
	}
	if v, _ := h.Find(7 | 1<<63); v != 200 {
		t.Fatal("high half-space damaged")
	}
	h.Delete(7)
	if _, ok := h.Find(7 | 1<<63); !ok {
		t.Fatal("delete crossed half-spaces")
	}
}

// TestFullKeysQuickModel: differential test over the full 64-bit domain.
func TestFullKeysQuickModel(t *testing.T) {
	f := func(ops []modelOp, topBits []bool) bool {
		fk := newFull()
		defer fk.Close()
		h := fk.Handle()
		model := map[uint64]uint64{}
		for i, op := range ops {
			k := uint64(op.Key)
			if i < len(topBits) && topBits[i] {
				k |= 1 << 63
			}
			v := uint64(op.Val) + 1
			switch op.Kind % 4 {
			case 0:
				_, present := model[k]
				if h.Insert(k, v) == present {
					t.Fatalf("insert(%#x) mismatch", k)
				}
				if !present {
					model[k] = v
				}
			case 1:
				want, present := model[k]
				got, ok := h.Find(k)
				if ok != present || (ok && got != want) {
					t.Fatalf("find(%#x) mismatch", k)
				}
			case 2:
				_, present := model[k]
				if h.InsertOrUpdate(k, v, tables.AddFn) == present {
					t.Fatalf("upsert(%#x) mismatch", k)
				}
				if present {
					model[k] += v
				} else {
					model[k] = v
				}
			case 3:
				_, present := model[k]
				if h.Delete(k) != present {
					t.Fatalf("delete(%#x) mismatch", k)
				}
				delete(model, k)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTSXFolkloreBasics(t *testing.T) {
	f := NewTSXFolklore(1000)
	h := f.Handle()
	for k := uint64(1); k <= 1000; k++ {
		if !h.Insert(k, k*3) {
			t.Fatalf("insert %d", k)
		}
	}
	for k := uint64(1); k <= 1000; k++ {
		if v, ok := h.Find(k); !ok || v != k*3 {
			t.Fatalf("find %d", k)
		}
	}
	if h.Insert(5, 9) {
		t.Fatal("duplicate insert")
	}
	if !h.Update(5, 100, tables.Overwrite) {
		t.Fatal("update")
	}
	if v, _ := h.Find(5); v != 100 {
		t.Fatal("update value")
	}
	if !h.Delete(5) || h.Delete(5) {
		t.Fatal("delete")
	}
	if !h.Insert(5, 7) { // revive
		t.Fatal("revive")
	}
	commits, _, _ := f.TxStats()
	if commits == 0 {
		t.Fatal("no transactions recorded")
	}
	if f.Capacity() < 2000 || f.MemBytes() == 0 || f.ApproxSize() == 0 {
		t.Fatal("accessors")
	}
	n := 0
	f.Range(func(k, v uint64) bool { n++; return true })
	if n != 1000 {
		t.Fatalf("range %d", n)
	}
}

func TestTSXQuickModel(t *testing.T) {
	f := func(ops []modelOp) bool {
		fl := NewTSXFolklore(2048)
		runDifferential(t, fl.Handle(), ops)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTSXGrowAllStrategies(t *testing.T) {
	const n = 30000
	for _, s := range allStrategies() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			g := NewGrowTSX(s, 64)
			defer g.Close()
			h := g.Handle()
			for k := uint64(1); k <= n; k++ {
				if !h.Insert(k, k+1) {
					t.Fatalf("insert %d", k)
				}
			}
			for k := uint64(1); k <= n; k++ {
				if v, ok := h.Find(k); !ok || v != k+1 {
					t.Fatalf("find %d after growth", k)
				}
			}
			commits, _, _ := g.TxStats()
			if commits == 0 {
				t.Fatal("TSX grow did not run transactions")
			}
		})
	}
}

func TestTSXGrowConcurrent(t *testing.T) {
	for _, s := range []Strategy{UA, US} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			g := NewGrowTSX(s, 64)
			defer g.Close()
			done := make(chan uint64, 8)
			const keys = 15000
			for i := 0; i < 8; i++ {
				go func(id uint64) {
					h := g.Handle()
					var wins uint64
					for k := uint64(1); k <= keys; k++ {
						if h.Insert(k, k) {
							wins++
						}
					}
					done <- wins
				}(uint64(i))
			}
			var total uint64
			for i := 0; i < 8; i++ {
				total += <-done
			}
			if total != keys {
				t.Fatalf("insert successes %d, want %d", total, keys)
			}
		})
	}
}
