package core

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestBuildFolkloreBasic(t *testing.T) {
	elems := make([]KV, 10000)
	for i := range elems {
		elems[i] = KV{Key: uint64(i) + 1, Val: uint64(i) * 3}
	}
	f := BuildFolklore(elems, 4)
	h := f.Handle()
	for _, e := range elems {
		if v, ok := h.Find(e.Key); !ok || v != e.Val {
			t.Fatalf("key %d: got %d,%v want %d", e.Key, v, ok, e.Val)
		}
	}
	if f.ApproxSize() != 10000 {
		t.Fatalf("size %d", f.ApproxSize())
	}
}

func TestBuildFolkloreDuplicatesFirstWins(t *testing.T) {
	elems := []KV{{1, 10}, {2, 20}, {1, 99}, {3, 30}, {2, 88}}
	f := BuildFolklore(elems, 2)
	h := f.Handle()
	for k, want := range map[uint64]uint64{1: 10, 2: 20, 3: 30} {
		if v, _ := h.Find(k); v != want {
			t.Fatalf("key %d: %d want %d (first occurrence must win)", k, v, want)
		}
	}
	if f.ApproxSize() != 3 {
		t.Fatalf("size %d", f.ApproxSize())
	}
}

func TestBuildEmptyAndTiny(t *testing.T) {
	f := BuildFolklore(nil, 4)
	if f.ApproxSize() != 0 {
		t.Fatal("empty build")
	}
	f = BuildFolklore([]KV{{5, 50}}, 8)
	if v, ok := f.Handle().Find(5); !ok || v != 50 {
		t.Fatal("tiny build")
	}
}

// TestBuildMatchesIncremental: bulk construction must produce exactly the
// table contents that element-wise insertion would.
func TestBuildMatchesIncremental(t *testing.T) {
	f := func(rawKeys []uint16, pByte uint8) bool {
		p := int(pByte)%8 + 1
		elems := make([]KV, len(rawKeys))
		for i, rk := range rawKeys {
			elems[i] = KV{Key: uint64(rk) + 1, Val: uint64(i) + 1}
		}
		bulk := BuildFolklore(elems, p)
		incr := NewFolklore(uint64(len(elems)) + 1)
		hi := incr.Handle()
		for _, e := range elems {
			hi.Insert(e.Key, e.Val)
		}
		got := map[uint64]uint64{}
		bulk.Range(func(k, v uint64) bool { got[k] = v; return true })
		want := map[uint64]uint64{}
		incr.Range(func(k, v uint64) bool { want[k] = v; return true })
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestBuildProbeInvariant: every bulk-placed element must be findable
// (the two-phase placement must not break probe chains), including under
// heavy duplicate pressure and random keys.
func TestBuildProbeInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	elems := make([]KV, 50000)
	for i := range elems {
		elems[i] = KV{Key: uint64(r.Intn(30000)) + 1, Val: uint64(i) + 1}
	}
	f := BuildFolklore(elems, 8)
	h := f.Handle()
	seen := map[uint64]bool{}
	for _, e := range elems {
		if _, ok := h.Find(e.Key); !ok {
			t.Fatalf("key %d unreachable after bulk build", e.Key)
		}
		seen[e.Key] = true
	}
	if f.ApproxSize() != uint64(len(seen)) {
		t.Fatalf("size %d want %d", f.ApproxSize(), len(seen))
	}
}

func TestBuildGrowThenGrow(t *testing.T) {
	elems := make([]KV, 5000)
	for i := range elems {
		elems[i] = KV{Key: uint64(i) + 1, Val: uint64(i)}
	}
	g := BuildGrow(UA, elems, 4)
	defer g.Close()
	h := g.Handle()
	// The built table must keep working through subsequent growth.
	for k := uint64(5001); k <= 40000; k++ {
		if !h.Insert(k, k) {
			t.Fatalf("post-build insert %d", k)
		}
	}
	for k := uint64(1); k <= 40000; k += 111 {
		want := k
		if k <= 5000 {
			want = k - 1
		}
		if v, ok := h.Find(k); !ok || v != want {
			t.Fatalf("key %d after growth: %d,%v", k, v, ok)
		}
	}
}

func TestForAll(t *testing.T) {
	elems := make([]KV, 20000)
	for i := range elems {
		elems[i] = KV{Key: uint64(i) + 1, Val: 1}
	}
	f := BuildFolklore(elems, 4)
	var count, sum atomic.Uint64
	f.ForAll(8, func(k, v uint64) {
		count.Add(1)
		sum.Add(v)
	})
	if count.Load() != 20000 || sum.Load() != 20000 {
		t.Fatalf("forall visited %d sum %d", count.Load(), sum.Load())
	}
	g := BuildGrow(US, elems, 4)
	defer g.Close()
	count.Store(0)
	g.ForAll(3, func(k, v uint64) { count.Add(1) })
	if count.Load() != 20000 {
		t.Fatalf("grow forall visited %d", count.Load())
	}
}
