package core

import (
	"time"

	"repro/internal/obs"
)

// Migration observability: the growth-pause baseline the amortized
// per-bucket migration work (ROADMAP) will be judged against. Series
// are registered on obs.Default at package init — one set per process,
// shared by every Grow instance, which matches how the figures are
// read: growd serves exactly one table, and in-process benchmarks
// subtract snapshots around their measured window.
//
// The event model: a migration that completes (arm → copy → publish)
// records one growt_migrations_total{trigger=...} increment, its wall
// duration (including the synchronized variants' busy-flag drain —
// that wait is part of the pause users feel), and the elements it
// copied. Aborted migrations (stale-src arm) record nothing. Every
// stretch a user operation spends helping or waiting on a migration
// lands in growt_migration_assist_nanos — its count is the helper-op
// count, its quantiles are the per-op growth pause of §8's tail story.
var (
	migGrows    = obs.Default.Counter("growt_migrations_total", "trigger", "grow")
	migShrinks  = obs.Default.Counter("growt_migrations_total", "trigger", "shrink")
	migCleanups = obs.Default.Counter("growt_migrations_total", "trigger", "cleanup")

	migWall        = obs.Default.Hist("growt_migration_wall_nanos")
	migCellsCopied = obs.Default.Counter("growt_migration_cells_copied_total")
	migAssist      = obs.Default.Hist("growt_migration_assist_nanos")
)

// migTrigger classifies a migration by its capacity change. The name
// doubles as the trigger label value.
type migTrigger uint8

const (
	triggerGrow migTrigger = iota
	triggerShrink
	triggerCleanup
)

// classifyTrigger derives the trigger from the capacity step.
func classifyTrigger(srcCap, dstCap uint64) migTrigger {
	switch {
	case dstCap > srcCap:
		return triggerGrow
	case dstCap < srcCap:
		return triggerShrink
	}
	return triggerCleanup
}

func (t migTrigger) counter() *obs.Counter {
	switch t {
	case triggerGrow:
		return migGrows
	case triggerShrink:
		return migShrinks
	}
	return migCleanups
}

// recordMigration is called from a completed migration's onDone, after
// the new generation is published: exactly once per migration, by the
// helper that finished the last block.
func recordMigration(trigger migTrigger, start time.Time, moved uint64) {
	trigger.counter().Add(1)
	migWall.ObserveSince(start)
	migCellsCopied.Add(moved)
}
