// Package core implements the paper's primary contribution: the folklore
// bounded lock-free linear-probing hash table (§4) and its generalization
// to adaptively sized tables via scalable cluster migration (§5), in the
// four strategy combinations uaGrow / usGrow / paGrow / psGrow (§7), plus
// the transaction-assisted tsxfolklore variant (§6).
//
// # Cell protocol
//
// The paper's C++ implementation manipulates a 128-bit ⟨key,value⟩ cell
// with cmpxchg16b. Go has no 128-bit CAS, so cells here are two adjacent
// uint64 words with a split-word protocol (cf. §2's remark that the table
// can be ported to machines without wide CAS by reserving special values):
//
//	key word:   [63: pending][62..0: key]      (0 = empty cell)
//	value word: [63: marked][62: live][61..0: value]
//
// The key word is written at most twice, by the unique claiming inserter:
// CAS(0 → key|pending), then Store(key) after the value is published. It
// never changes afterwards, so all post-insert mutation — updates,
// deletions (clearing the live bit), and migration marking — happens on
// the single value word with ordinary 64-bit CAS. This gives the same
// linearization structure as the paper's wide-CAS cells with no cross-word
// write races. Probe chains treat any published key as occupying its cell
// (a dead cell — live bit clear — is the paper's tombstone and is scanned
// over, §5.4); re-inserting a key that owns a tombstone revives the cell
// in place with a value CAS.
//
// Keys are therefore 63-bit (0 reserved) and values 62-bit; the FullKeys
// wrapper (fullkeys.go) restores the complete 64-bit key space with the
// two-subtable construction of §5.6.
package core

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync/atomic"

	"repro/internal/hashfn"
)

const (
	pendingBit = uint64(1) << 63
	keyMask    = pendingBit - 1

	markedBit = uint64(1) << 63
	liveBit   = uint64(1) << 62
	valueMask = liveBit - 1

	// MaxKey is the largest key storable without the FullKeys wrapper
	// (keyMask itself is the reserved frozen-cell sentinel, migrate.go).
	MaxKey = keyMask - 1
	// MaxValue is the largest storable value.
	MaxValue = valueMask
)

// opStatus is the outcome of a low-level cell operation.
type opStatus uint8

const (
	statusInserted opStatus = iota // new element written
	statusUpdated                  // existing element changed
	statusPresent                  // insert refused: key already live
	statusAbsent                   // update/delete/find refused: key not live
	statusMarked                   // hit a marked cell: help migration, retry in new table
	statusFull                     // probe limit exceeded: table (locally) full
)

// longProbeLimit bounds the probe distance before an insert reports the
// table full. The paper sizes the folklore table to ≥2n so expected probe
// distances stay O(1); hitting this limit either signals a mis-sized
// bounded table or triggers a migration in the growing variants.
const longProbeLimit = 4096

// Table is one bounded, fixed-capacity folklore table generation. The
// growing variants chain generations through migrations; the Folklore
// wrapper uses a single generation forever.
type Table struct {
	cells    []uint64 // interleaved: cells[2i] key word, cells[2i+1] value word
	capacity uint64
	shift    uint // index = hash >> shift (scaled mapping, §5.3.1)
	logCap   uint
	probeCap uint64 // min(capacity, longProbeLimit)
}

// NewTable allocates a zeroed generation with capacity rounded up to a
// power of two (§7 restricts capacities to powers of two so the modulo
// becomes a shift).
func NewTable(capacity uint64) *Table {
	if capacity < 8 {
		capacity = 8
	}
	logCap := uint(bits.Len64(capacity - 1))
	capacity = uint64(1) << logCap
	t := &Table{
		cells:    make([]uint64, 2*capacity),
		capacity: capacity,
		shift:    64 - logCap,
		logCap:   logCap,
		probeCap: min(capacity, longProbeLimit),
	}
	return t
}

func min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// Capacity returns the number of cells.
func (t *Table) Capacity() uint64 { return t.capacity }

// MemBytes returns the size of the backing array.
func (t *Table) MemBytes() uint64 { return uint64(len(t.cells)) * 8 }

// index maps a hash to its home cell using the high bits, preserving the
// order required by the cluster migration lemma (Lemma 1).
func (t *Table) index(h uint64) uint64 { return h >> t.shift }

func (t *Table) loadKey(i uint64) uint64 { return atomic.LoadUint64(&t.cells[2*i]) }
func (t *Table) loadVal(i uint64) uint64 { return atomic.LoadUint64(&t.cells[2*i+1]) }
func (t *Table) storeKey(i, k uint64)    { atomic.StoreUint64(&t.cells[2*i], k) }
func (t *Table) storeVal(i, v uint64)    { atomic.StoreUint64(&t.cells[2*i+1], v) }
func (t *Table) casKey(i, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&t.cells[2*i], old, new)
}
func (t *Table) casVal(i, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&t.cells[2*i+1], old, new)
}
func (t *Table) addVal(i, d uint64) uint64 { return atomic.AddUint64(&t.cells[2*i+1], d) }

// waitKey spins until the cell's key word is no longer pending and
// returns it. The pending window is two store instructions wide; Gosched
// keeps the spin polite if the claiming goroutine was preempted.
func (t *Table) waitKey(i uint64) uint64 {
	for spins := 0; ; spins++ {
		kw := t.loadKey(i)
		if kw&pendingBit == 0 {
			return kw
		}
		if spins > 64 {
			runtime.Gosched()
		}
	}
}

// checkKey panics on keys outside the 63-bit core domain. The public
// wrappers either document the restriction or lift it (§5.6).
func checkKey(k uint64) {
	if k == 0 || k > MaxKey {
		panic(fmt.Sprintf("core: key %#x outside the core domain 1..2^63-1; use the FullKeys wrapper (§5.6)", k))
	}
}

func checkValue(v uint64) {
	if v > MaxValue {
		panic(fmt.Sprintf("core: value %#x exceeds 62 bits", v))
	}
}

// insertCore attempts to insert ⟨k,d⟩. Precondition: checkKey/checkValue.
func (t *Table) insertCore(k, d uint64) opStatus {
	h := hashfn.Hash64(k)
	i := t.index(h)
	mask := t.capacity - 1
	for probes := uint64(0); probes <= t.probeCap; probes++ {
		kw := t.loadKey(i)
		if kw == 0 {
			if t.casKey(i, 0, k|pendingBit) {
				// Publish the value, then the key. The CAS fails only if a
				// migrator marked this empty cell first.
				if t.casVal(i, 0, d|liveBit) {
					t.storeKey(i, k)
					return statusInserted
				}
				// Marked mid-claim: publish the key as a dead cell so that
				// probers never spin on our pending bit, then retry in the
				// next generation (the marked dead cell migrates to nothing).
				t.storeKey(i, k)
				return statusMarked
			}
			// Lost the claim race: re-examine this same cell (Alg. 1, i--).
			kw = t.loadKey(i)
		}
		if kw&pendingBit != 0 {
			if kw&keyMask != k {
				// Foreign in-flight insert occupies the cell; move on.
				i = (i + 1) & mask
				continue
			}
			kw = t.waitKey(i)
		}
		if kw == k {
			for {
				v := t.loadVal(i)
				if v&markedBit != 0 {
					return statusMarked
				}
				if v&liveBit != 0 {
					return statusPresent
				}
				// Tombstone owned by k: revive in place.
				if t.casVal(i, v, d|liveBit) {
					return statusInserted
				}
			}
		}
		i = (i + 1) & mask
	}
	return statusFull
}

// updateCore applies up to the element with key k.
func (t *Table) updateCore(k, d uint64, up func(cur, d uint64) uint64) opStatus {
	h := hashfn.Hash64(k)
	i := t.index(h)
	mask := t.capacity - 1
	for probes := uint64(0); probes <= t.probeCap; probes++ {
		kw := t.loadKey(i)
		if kw == 0 {
			return statusAbsent
		}
		if kw&keyMask == k {
			if kw&pendingBit != 0 {
				// In-flight insert of k: linearize this update before it.
				return statusAbsent
			}
			for {
				v := t.loadVal(i)
				if v&markedBit != 0 {
					return statusMarked
				}
				if v&liveBit == 0 {
					return statusAbsent
				}
				nv := up(v&valueMask, d)&valueMask | liveBit
				if t.casVal(i, v, nv) {
					return statusUpdated
				}
			}
		}
		i = (i + 1) & mask
	}
	return statusAbsent
}

// insertOrUpdateCore implements Algorithm 1 of the paper.
func (t *Table) insertOrUpdateCore(k, d uint64, up func(cur, d uint64) uint64) opStatus {
	h := hashfn.Hash64(k)
	i := t.index(h)
	mask := t.capacity - 1
	for probes := uint64(0); probes <= t.probeCap; probes++ {
		kw := t.loadKey(i)
		if kw == 0 {
			if t.casKey(i, 0, k|pendingBit) {
				if t.casVal(i, 0, d|liveBit) {
					t.storeKey(i, k)
					return statusInserted
				}
				t.storeKey(i, k)
				return statusMarked
			}
			kw = t.loadKey(i)
		}
		if kw&pendingBit != 0 {
			if kw&keyMask != k {
				i = (i + 1) & mask
				continue
			}
			// Concurrent insert of the same key: our update must apply to
			// it (insertOrUpdate cannot fail), so wait for publication.
			kw = t.waitKey(i)
		}
		if kw == k {
			for {
				v := t.loadVal(i)
				if v&markedBit != 0 {
					return statusMarked
				}
				if v&liveBit == 0 {
					if t.casVal(i, v, d|liveBit) {
						return statusInserted
					}
					continue
				}
				nv := up(v&valueMask, d)&valueMask | liveBit
				if t.casVal(i, v, nv) {
					return statusUpdated
				}
			}
		}
		i = (i + 1) & mask
	}
	return statusFull
}

// insertOrAddCore is the fetch-and-add specialization of insertOrUpdate
// used by the synchronized variants (usGrow/psGrow), mirroring the
// paper's partial template specialization of atomicUpdate (§4). It must
// only be called when migration marking cannot run concurrently.
func (t *Table) insertOrAddCore(k, d uint64) opStatus {
	h := hashfn.Hash64(k)
	i := t.index(h)
	mask := t.capacity - 1
	for probes := uint64(0); probes <= t.probeCap; probes++ {
		kw := t.loadKey(i)
		if kw == 0 {
			if t.casKey(i, 0, k|pendingBit) {
				if t.casVal(i, 0, d|liveBit) {
					t.storeKey(i, k)
					return statusInserted
				}
				t.storeKey(i, k)
				return statusMarked
			}
			kw = t.loadKey(i)
		}
		if kw&pendingBit != 0 {
			if kw&keyMask != k {
				i = (i + 1) & mask
				continue
			}
			kw = t.waitKey(i)
		}
		if kw == k {
			for {
				v := t.loadVal(i)
				if v&liveBit == 0 {
					if v&markedBit != 0 {
						return statusMarked
					}
					if t.casVal(i, v, d|liveBit) {
						return statusInserted
					}
					continue
				}
				// Live: unconditional fetch-and-add on the value word. A
				// racing delete can clear the live bit first; the result
				// tells us and we compensate by retrying on the dead cell.
				nv := t.addVal(i, d)
				if nv&liveBit != 0 {
					return statusUpdated
				}
				// Our addend landed in a tombstone; it is invisible (dead
				// cells' value bits are ignored). Retry the revive path.
			}
		}
		i = (i + 1) & mask
	}
	return statusFull
}

// findCore looks up k. Wait-free: never spins, never writes. Marked cells
// remain readable during migration (§5.3.2).
func (t *Table) findCore(k uint64) (uint64, bool) {
	h := hashfn.Hash64(k)
	i := t.index(h)
	mask := t.capacity - 1
	for probes := uint64(0); probes <= t.probeCap; probes++ {
		kw := t.loadKey(i)
		if kw == 0 {
			return 0, false
		}
		if kw == k { // pending bit clear and key match
			v := t.loadVal(i)
			if v&liveBit == 0 {
				return 0, false
			}
			return v & valueMask, true
		}
		if kw&keyMask == k {
			// Pending insert of k: linearize the find before it.
			return 0, false
		}
		i = (i + 1) & mask
	}
	return 0, false
}

// deleteCore tombstones k (§5.4): the key word stays, the live bit is
// cleared, probe chains scan over the dead cell.
func (t *Table) deleteCore(k uint64) opStatus {
	h := hashfn.Hash64(k)
	i := t.index(h)
	mask := t.capacity - 1
	for probes := uint64(0); probes <= t.probeCap; probes++ {
		kw := t.loadKey(i)
		if kw == 0 {
			return statusAbsent
		}
		if kw&keyMask == k {
			if kw&pendingBit != 0 {
				// Linearize before the in-flight insert.
				return statusAbsent
			}
			for {
				v := t.loadVal(i)
				if v&markedBit != 0 {
					return statusMarked
				}
				if v&liveBit == 0 {
					return statusAbsent
				}
				if t.casVal(i, v, v&^liveBit) {
					return statusUpdated
				}
			}
		}
		i = (i + 1) & mask
	}
	return statusAbsent
}

// rangeCore calls f on every live element; quiescent use only.
func (t *Table) rangeCore(f func(k, v uint64) bool) {
	for i := uint64(0); i < t.capacity; i++ {
		kw := t.loadKey(i)
		if kw == 0 || kw&pendingBit != 0 {
			continue
		}
		v := t.loadVal(i)
		if v&liveBit == 0 {
			continue
		}
		if !f(kw, v&valueMask) {
			return
		}
	}
}

// countLive scans the table counting live elements (exact size in absence
// of concurrent modification, §5.2's exact-count extension).
func (t *Table) countLive() uint64 {
	var n uint64
	for i := uint64(0); i < t.capacity; i++ {
		kw := t.loadKey(i)
		if kw == 0 || kw&pendingBit != 0 {
			continue
		}
		if t.loadVal(i)&liveBit != 0 {
			n++
		}
	}
	return n
}
