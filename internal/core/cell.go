// Package core implements the paper's primary contribution: the folklore
// bounded lock-free linear-probing hash table (§4) and its generalization
// to adaptively sized tables via scalable cluster migration (§5), in the
// four strategy combinations uaGrow / usGrow / paGrow / psGrow (§7), plus
// the transaction-assisted tsxfolklore variant (§6).
//
// # Cell protocol
//
// The paper's C++ implementation manipulates a 128-bit ⟨key,value⟩ cell
// with cmpxchg16b. Go has no 128-bit CAS, so cells here are two adjacent
// uint64 words with a split-word protocol (cf. §2's remark that the table
// can be ported to machines without wide CAS by reserving special values):
//
//	key word:   [63: pending][62..0: key]      (0 = empty cell)
//	value word: [63: marked][62: live][61..0: value]
//
// The key word is written at most twice, by the unique claiming inserter:
// CAS(0 → key|pending), then Store(key) after the value is published. It
// never changes afterwards, so all post-insert mutation — updates,
// deletions (clearing the live bit), and migration marking — happens on
// the single value word with ordinary 64-bit CAS. This gives the same
// linearization structure as the paper's wide-CAS cells with no cross-word
// write races. Probe chains treat any published key as occupying its cell
// (a dead cell — live bit clear — is the paper's tombstone and is scanned
// over, §5.4); re-inserting a key that owns a tombstone revives the cell
// in place with a value CAS.
//
// Keys are therefore 63-bit (0 reserved) and values 62-bit; the FullKeys
// wrapper (fullkeys.go) restores the complete 64-bit key space with the
// two-subtable construction of §5.6.
//
// # Cell state machine
//
// Key word states: E = 0 (empty), P = k|pending (claim in flight),
// K = k (published), F = frozenKey (migration-frozen empty cell).
// Value word states: Z = 0, L = live (liveBit set, marked clear),
// T = tombstone (liveBit and markedBit clear, key published),
// M = marked (markedBit set, any other bits).
//
// Legal transitions and the only writer allowed to perform each:
//
//	key word                             value word
//	E ─casKey──▶ P   claiming inserter   Z ─casVal──▶ L   the cell's claiming inserter
//	P ─storeKey▶ K   same inserter       L ─casVal──▶ L'  any updater (update/upsert/add)
//	E ─casKey──▶ F   migrator            L ─casVal──▶ T   any deleter (clears liveBit)
//	                                     T ─casVal──▶ L   any inserter (tombstone revival)
//	                                     v ─casVal──▶ v|M migrator (mark; idempotent)
//
// K and F are terminal for the key word; M is terminal for the value word.
// Invariants the protocol rests on:
//
//  1. The key word is written at most twice, both times by the unique
//     claiming inserter (or once, by the unique freezing migrator). Once
//     published or frozen it never changes, so a value-word CAS loop that
//     validated the key beforehand can never act on a foreign cell.
//  2. Every non-mark value mutation is a CAS whose expected value was
//     loaded after checking markedBit, so it fails if a migrator marked
//     the cell in between — no update can land after (or be lost by) the
//     migration copy, which reads the value only after setting the mark.
//  3. A claim that loses the value-word race against a mark (casVal(Z→L)
//     fails) publishes its key anyway and leaves the cell dead AND marked
//     (key K, value M with liveBit clear): probe chains treat it as a
//     tombstone, stabilize treats it as consumed-by-migration, and the
//     insert retries in the next generation. Both views agree the element
//     is absent from this generation.
//  4. Value words of unpublished cells (key E or P) are written only by
//     the cell's claiming inserter and the marking migrator — so a failed
//     casVal(Z→L) proves markedBit was set, which insertCore asserts.
//
// Migration arming (grow.go) has its own generation invariant: a
// migration may only be armed for the table that is *still current* once
// the migration slot is held, re-validated after the slot CAS (see
// Grow.arm). Violating it republishes a retired generation's snapshot and
// silently rolls back operations — the historical lost-op bug.
package core

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync/atomic"

	"repro/internal/hashfn"
)

const (
	pendingBit = uint64(1) << 63
	keyMask    = pendingBit - 1

	markedBit = uint64(1) << 63
	liveBit   = uint64(1) << 62
	valueMask = liveBit - 1

	// MaxKey is the largest key storable without the FullKeys wrapper
	// (keyMask itself is the reserved frozen-cell sentinel, migrate.go).
	MaxKey = keyMask - 1
	// MaxValue is the largest storable value.
	MaxValue = valueMask
)

// opStatus is the outcome of a low-level cell operation. Handlers
// switch over it; growvet's statusswitch analyzer keeps those switches
// exhaustive so a new status cannot silently fall through a retry loop.
type opStatus uint8

//growt:enum opstatus
const (
	statusInserted opStatus = iota // new element written
	statusUpdated                  // existing element changed
	statusPresent                  // insert refused: key already live
	statusAbsent                   // update/delete/find refused: key not live
	statusMarked                   // hit a marked cell: help migration, retry in new table
	statusFull                     // probe limit exceeded: table (locally) full
	statusMismatch                 // conditional delete refused: value differs
)

// longProbeLimit bounds the probe distance before an insert reports the
// table full. The paper sizes the folklore table to ≥2n so expected probe
// distances stay O(1); hitting this limit either signals a mis-sized
// bounded table or triggers a migration in the growing variants.
const longProbeLimit = 4096

// Table is one bounded, fixed-capacity folklore table generation. The
// growing variants chain generations through migrations; the Folklore
// wrapper uses a single generation forever.
type Table struct {
	// cells holds the split-word cell array concurrent goroutines race
	// on; every access must go through the atomic accessors below
	// (growvet: atomiccell).
	//growt:atomic
	cells    []uint64 // interleaved: cells[2i] key word, cells[2i+1] value word
	capacity uint64
	shift    uint // index = hash >> shift (scaled mapping, §5.3.1)
	logCap   uint
	probeCap uint64 // min(capacity, longProbeLimit)
	gen      uint64 // process-unique generation id for resumable cursors

	// c is this generation's approximate element count (§5.2), owned by
	// the Grow wrapper. Counters live per generation — not on Grow — so a
	// migration can seed the new generation with the exact moved count
	// while late flushes of deltas earned on the retired generation land
	// harmlessly in the retired generation's counters. A single shared
	// counter would have to be destructively reset at the flip, and any
	// handle flushing a pre-flip delta afterwards would double-count
	// elements already included in the moved total (overcounting breaks
	// the estimate's undercount-only guarantee). The bounded wrappers
	// (Folklore, TSXFolklore) keep their own counters and leave this one
	// zero.
	c counters
}

// NewTable allocates a zeroed generation with capacity rounded up to a
// power of two (§7 restricts capacities to powers of two so the modulo
// becomes a shift).
//
//growt:exclusive -- construction: the table is unpublished, no concurrent readers
func NewTable(capacity uint64) *Table {
	if capacity < 8 {
		capacity = 8
	}
	logCap := uint(bits.Len64(capacity - 1))
	capacity = uint64(1) << logCap
	t := &Table{
		cells:    make([]uint64, 2*capacity),
		capacity: capacity,
		shift:    64 - logCap,
		logCap:   logCap,
		probeCap: min(capacity, longProbeLimit),
		gen:      tableGen.Add(1),
	}
	return t
}

// tableGen hands every Table a process-unique, nonzero generation id, so
// a tables.Cursor can detect that the generation it was taken against has
// been retired by a migration (id 0 is reserved for "no cursor").
var tableGen atomic.Uint64

func min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// Capacity returns the number of cells.
func (t *Table) Capacity() uint64 { return t.capacity }

// MemBytes returns the size of the backing array.
func (t *Table) MemBytes() uint64 { return uint64(len(t.cells)) * 8 }

// index maps a hash to its home cell using the high bits, preserving the
// order required by the cluster migration lemma (Lemma 1).
func (t *Table) index(h uint64) uint64 { return h >> t.shift }

func (t *Table) loadKey(i uint64) uint64 { return atomic.LoadUint64(&t.cells[2*i]) }
func (t *Table) loadVal(i uint64) uint64 { return atomic.LoadUint64(&t.cells[2*i+1]) }
func (t *Table) storeKey(i, k uint64)    { atomic.StoreUint64(&t.cells[2*i], k) }
func (t *Table) storeVal(i, v uint64)    { atomic.StoreUint64(&t.cells[2*i+1], v) }
func (t *Table) casKey(i, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&t.cells[2*i], old, new)
}
func (t *Table) casVal(i, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&t.cells[2*i+1], old, new)
}
func (t *Table) addVal(i, d uint64) uint64 { return atomic.AddUint64(&t.cells[2*i+1], d) }

// waitKey spins until the cell's key word is no longer pending and
// returns it. The pending window is two store instructions wide; Gosched
// keeps the spin polite if the claiming goroutine was preempted.
//
//growt:hotpath
func (t *Table) waitKey(i uint64) uint64 {
	for spins := 0; ; spins++ {
		kw := t.loadKey(i)
		if kw&pendingBit == 0 {
			return kw
		}
		if spins > 64 {
			runtime.Gosched()
		}
	}
}

// checkKey panics on keys outside the 63-bit core domain. The public
// wrappers either document the restriction or lift it (§5.6).
func checkKey(k uint64) {
	if k == 0 || k > MaxKey {
		panic(fmt.Sprintf("core: key %#x outside the core domain 1..2^63-1; use the FullKeys wrapper (§5.6)", k))
	}
}

func checkValue(v uint64) {
	if v > MaxValue {
		panic(fmt.Sprintf("core: value %#x exceeds 62 bits", v))
	}
}

// insertCore attempts to insert ⟨k,d⟩. Precondition: checkKey/checkValue.
//
//growt:hotpath
func (t *Table) insertCore(k, d uint64) opStatus {
	h := hashfn.Hash64(k)
	i := t.index(h)
	mask := t.capacity - 1
	for probes := uint64(0); probes <= t.probeCap; probes++ {
		kw := t.loadKey(i)
		if kw == 0 {
			if t.casKey(i, 0, k|pendingBit) {
				// Publish the value, then the key. Only the marking migrator
				// may write the value word of an unpublished cell (protocol
				// invariant 4), so this CAS fails only against a mark.
				if t.casVal(i, 0, d|liveBit) {
					t.storeKey(i, k)
					return statusInserted
				}
				// Marked mid-claim: the consumed cell must end dead AND
				// marked (protocol invariant 3) so that probe chains (which
				// see a tombstone) and stabilize (which sees a consumed,
				// dead cell it will not copy) agree the element is absent
				// here. Publishing the key also guarantees probers never
				// spin on our pending bit. The insert then retries in the
				// next generation.
				if t.loadVal(i)&markedBit == 0 {
					panic("core: claim value CAS failed on an unmarked cell — cell protocol violated")
				}
				t.storeKey(i, k)
				return statusMarked
			}
			// Lost the claim race: re-examine this same cell (Alg. 1, i--).
			kw = t.loadKey(i)
		}
		if kw&pendingBit != 0 {
			if kw&keyMask != k {
				// Foreign in-flight insert occupies the cell; move on.
				i = (i + 1) & mask
				continue
			}
			kw = t.waitKey(i)
		}
		if kw == k {
			for {
				v := t.loadVal(i)
				if v&markedBit != 0 {
					return statusMarked
				}
				if v&liveBit != 0 {
					return statusPresent
				}
				// Tombstone owned by k: revive in place.
				if t.casVal(i, v, d|liveBit) {
					return statusInserted
				}
				t.recheckKey(i, k)
			}
		}
		i = (i + 1) & mask
	}
	return statusFull
}

// recheckKey re-validates, after a failed value-word CAS, that cell i
// still belongs to key k. Today this can never fire: a published key word
// is terminal (state machine above), so a value CAS can only lose against
// other value-word writers of the same key's cell. The re-check pins that
// assumption down — if cell reuse or key-word recycling is ever
// introduced, every update/delete/revive loop fails loudly here instead
// of silently acting on a cell that was re-claimed between its key load
// and its value CAS. It sits on CAS-failure paths only, so it costs
// nothing on uncontended operations.
func (t *Table) recheckKey(i, k uint64) {
	if kw := t.loadKey(i) & keyMask; kw != k {
		panic(fmt.Sprintf("core: cell %d changed owner %#x → %#x under a value CAS — published key words must be immutable", i, k, kw))
	}
}

// updateCore applies up to the element with key k.
//
//growt:hotpath
func (t *Table) updateCore(k, d uint64, up func(cur, d uint64) uint64) opStatus {
	h := hashfn.Hash64(k)
	i := t.index(h)
	mask := t.capacity - 1
	for probes := uint64(0); probes <= t.probeCap; probes++ {
		kw := t.loadKey(i)
		if kw == 0 {
			return statusAbsent
		}
		if kw&keyMask == k {
			if kw&pendingBit != 0 {
				// In-flight insert of k: linearize this update before it.
				return statusAbsent
			}
			for {
				v := t.loadVal(i)
				if v&markedBit != 0 {
					return statusMarked
				}
				if v&liveBit == 0 {
					return statusAbsent
				}
				nv := up(v&valueMask, d)&valueMask | liveBit
				if t.casVal(i, v, nv) {
					return statusUpdated
				}
				t.recheckKey(i, k)
			}
		}
		i = (i + 1) & mask
	}
	return statusAbsent
}

// insertOrUpdateCore implements Algorithm 1 of the paper.
//
//growt:hotpath
func (t *Table) insertOrUpdateCore(k, d uint64, up func(cur, d uint64) uint64) opStatus {
	h := hashfn.Hash64(k)
	i := t.index(h)
	mask := t.capacity - 1
	for probes := uint64(0); probes <= t.probeCap; probes++ {
		kw := t.loadKey(i)
		if kw == 0 {
			if t.casKey(i, 0, k|pendingBit) {
				if t.casVal(i, 0, d|liveBit) {
					t.storeKey(i, k)
					return statusInserted
				}
				// Marked mid-claim: leave the cell dead AND marked, exactly
				// as insertCore does (protocol invariant 3).
				if t.loadVal(i)&markedBit == 0 {
					panic("core: claim value CAS failed on an unmarked cell — cell protocol violated")
				}
				t.storeKey(i, k)
				return statusMarked
			}
			kw = t.loadKey(i)
		}
		if kw&pendingBit != 0 {
			if kw&keyMask != k {
				i = (i + 1) & mask
				continue
			}
			// Concurrent insert of the same key: our update must apply to
			// it (insertOrUpdate cannot fail), so wait for publication.
			kw = t.waitKey(i)
		}
		if kw == k {
			for {
				v := t.loadVal(i)
				if v&markedBit != 0 {
					return statusMarked
				}
				if v&liveBit == 0 {
					if t.casVal(i, v, d|liveBit) {
						return statusInserted
					}
					t.recheckKey(i, k)
					continue
				}
				nv := up(v&valueMask, d)&valueMask | liveBit
				if t.casVal(i, v, nv) {
					return statusUpdated
				}
				t.recheckKey(i, k)
			}
		}
		i = (i + 1) & mask
	}
	return statusFull
}

// insertOrAddCore is the fetch-and-add specialization of insertOrUpdate
// used by the synchronized variants (usGrow/psGrow), mirroring the
// paper's partial template specialization of atomicUpdate (§4). It must
// only be called when migration marking cannot run concurrently: the
// unconditional addVal below cannot lose against a mark the way a CAS
// does, so an addend landing after the mark would corrupt the marked
// value word and be silently dropped by the copy — the same bug family as
// the stale-arm migration race. The exclusion holds today because every
// caller is either the bounded Folklore table (never marks) or a
// synchronized growing variant (writers drained via busy flags before
// marking-free migration, §5.3.2 "Prevent Concurrent Updates"); the
// marking variants route InsertOrAdd through the CAS-loop
// insertOrUpdateCore instead. The addVal result is asserted below so any
// future violation of this contract fails loudly rather than losing the
// update.
//
//growt:hotpath
func (t *Table) insertOrAddCore(k, d uint64) opStatus {
	h := hashfn.Hash64(k)
	i := t.index(h)
	mask := t.capacity - 1
	for probes := uint64(0); probes <= t.probeCap; probes++ {
		kw := t.loadKey(i)
		if kw == 0 {
			if t.casKey(i, 0, k|pendingBit) {
				if t.casVal(i, 0, d|liveBit) {
					t.storeKey(i, k)
					return statusInserted
				}
				// Marked mid-claim (protocol invariant 3): dead AND marked.
				if t.loadVal(i)&markedBit == 0 {
					panic("core: claim value CAS failed on an unmarked cell — cell protocol violated")
				}
				t.storeKey(i, k)
				return statusMarked
			}
			kw = t.loadKey(i)
		}
		if kw&pendingBit != 0 {
			if kw&keyMask != k {
				i = (i + 1) & mask
				continue
			}
			kw = t.waitKey(i)
		}
		if kw == k {
			for {
				v := t.loadVal(i)
				if v&liveBit == 0 {
					if v&markedBit != 0 {
						return statusMarked
					}
					if t.casVal(i, v, d|liveBit) {
						return statusInserted
					}
					t.recheckKey(i, k)
					continue
				}
				// Live: unconditional fetch-and-add on the value word. A
				// racing delete can clear the live bit first; the pre-add
				// word (nv - d is exact: addVal returns old + our d) tells
				// us which case we hit.
				nv := t.addVal(i, d)
				pre := nv - d
				if nv&markedBit != 0 {
					if pre&markedBit != 0 {
						// The addend landed on an already-marked word; the
						// migration copy may already have read the value, so
						// the update would be lost. The caller broke the
						// writers-excluded contract above.
						panic("core: insertOrAddCore raced a marking migration — synchronized-mode exclusion violated")
					}
					// The sum itself carried out of the 62-bit value domain
					// through the live bit into the marked bit. The pre-fix
					// code silently corrupted the cell in this case; failing
					// loudly is the only honest option short of saturating
					// arithmetic.
					panic(fmt.Sprintf("core: InsertOrAdd sum overflowed the 62-bit value domain for key %#x", k))
				}
				if pre&liveBit != 0 {
					// The cell was live when the add landed; nv's live bit
					// is still set (a carry out of the value bits would have
					// reached markedBit and panicked above).
					return statusUpdated
				}
				// The addend landed in a tombstone: it is invisible only
				// while the dead cell's value bits stay below the live bit.
				// A large residue (earlier adds that also landed dead) plus
				// d can carry INTO the live bit, making the dead cell read
				// as live with a garbage value — a silent resurrection the
				// old code's "retry the revive path" comment overlooked.
				// Undoing the add races other writers, so fail loudly; the
				// benign no-carry case retries the revive path as before.
				if nv&liveBit != 0 {
					panic(fmt.Sprintf("core: InsertOrAdd addend carried into the live bit of a tombstone for key %#x (value domain overflow on a dead cell)", k))
				}
			}
		}
		i = (i + 1) & mask
	}
	return statusFull
}

// findCore looks up k. Wait-free: never spins, never writes. Marked cells
// remain readable during migration (§5.3.2).
//
//growt:hotpath
func (t *Table) findCore(k uint64) (uint64, bool) {
	h := hashfn.Hash64(k)
	i := t.index(h)
	mask := t.capacity - 1
	for probes := uint64(0); probes <= t.probeCap; probes++ {
		kw := t.loadKey(i)
		if kw == 0 {
			return 0, false
		}
		if kw == k { // pending bit clear and key match
			v := t.loadVal(i)
			if v&liveBit == 0 {
				return 0, false
			}
			return v & valueMask, true
		}
		if kw&keyMask == k {
			// Pending insert of k: linearize the find before it.
			return 0, false
		}
		i = (i + 1) & mask
	}
	return 0, false
}

// deleteCore tombstones k (§5.4): the key word stays, the live bit is
// cleared, probe chains scan over the dead cell. On statusUpdated the
// first return is the value the winning CAS removed — the tombstoning
// CAS is the linearization point, so the value is exact, which is what
// backs the facade's LoadAndDelete.
//
//growt:hotpath
func (t *Table) deleteCore(k uint64) (uint64, opStatus) {
	h := hashfn.Hash64(k)
	i := t.index(h)
	mask := t.capacity - 1
	for probes := uint64(0); probes <= t.probeCap; probes++ {
		kw := t.loadKey(i)
		if kw == 0 {
			return 0, statusAbsent
		}
		if kw&keyMask == k {
			if kw&pendingBit != 0 {
				// Linearize before the in-flight insert.
				return 0, statusAbsent
			}
			for {
				v := t.loadVal(i)
				if v&markedBit != 0 {
					return 0, statusMarked
				}
				if v&liveBit == 0 {
					return 0, statusAbsent
				}
				if t.casVal(i, v, v&^liveBit) {
					return v & valueMask, statusUpdated
				}
				t.recheckKey(i, k)
			}
		}
		i = (i + 1) & mask
	}
	return 0, statusAbsent
}

// compareAndDeleteCore tombstones k iff its current value equals want.
// The conditional tombstoning CAS is the linearization point: on
// statusUpdated the removed value was exactly want at the instant of
// removal. statusMismatch reports a live element holding a different
// value (nothing written).
//
//growt:hotpath
func (t *Table) compareAndDeleteCore(k, want uint64) opStatus {
	h := hashfn.Hash64(k)
	i := t.index(h)
	mask := t.capacity - 1
	for probes := uint64(0); probes <= t.probeCap; probes++ {
		kw := t.loadKey(i)
		if kw == 0 {
			return statusAbsent
		}
		if kw&keyMask == k {
			if kw&pendingBit != 0 {
				// Linearize before the in-flight insert.
				return statusAbsent
			}
			for {
				v := t.loadVal(i)
				if v&markedBit != 0 {
					return statusMarked
				}
				if v&liveBit == 0 {
					return statusAbsent
				}
				if v&valueMask != want {
					return statusMismatch
				}
				if t.casVal(i, v, v&^liveBit) {
					return statusUpdated
				}
				t.recheckKey(i, k)
			}
		}
		i = (i + 1) & mask
	}
	return statusAbsent
}

// rangeCore calls f on every live element; quiescent use only.
func (t *Table) rangeCore(f func(k, v uint64) bool) {
	for i := uint64(0); i < t.capacity; i++ {
		kw := t.loadKey(i)
		if kw == 0 || kw&pendingBit != 0 {
			continue
		}
		v := t.loadVal(i)
		if v&liveBit == 0 {
			continue
		}
		if !f(kw, v&valueMask) {
			return
		}
	}
}

// rangeFromCore resumes rangeCore at slot pos. It returns the slot to
// resume from next and whether the walk reached the end of the cell
// array (in which case the returned position restarts at zero).
// Quiescent use only, like rangeCore.
func (t *Table) rangeFromCore(pos uint64, f func(k, v uint64) bool) (uint64, bool) {
	for i := pos; i < t.capacity; i++ {
		kw := t.loadKey(i)
		if kw == 0 || kw&pendingBit != 0 {
			continue
		}
		v := t.loadVal(i)
		if v&liveBit == 0 {
			continue
		}
		if !f(kw, v&valueMask) {
			if i+1 >= t.capacity {
				return 0, true
			}
			return i + 1, false
		}
	}
	return 0, true
}

// countLive scans the table counting live elements (exact size in absence
// of concurrent modification, §5.2's exact-count extension).
func (t *Table) countLive() uint64 {
	var n uint64
	for i := uint64(0); i < t.capacity; i++ {
		kw := t.loadKey(i)
		if kw == 0 || kw&pendingBit != 0 {
			continue
		}
		if t.loadVal(i)&liveBit != 0 {
			n++
		}
	}
	return n
}
