package core

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/tables"
)

func allStrategies() []Strategy { return []Strategy{UA, US, PA, PS} }

func newGrowSmall(s Strategy) *Grow { return NewGrow(s, 64) }

// --- Folklore basics ---

func TestFolkloreInsertFind(t *testing.T) {
	f := NewFolklore(1000)
	h := f.Handle()
	for k := uint64(1); k <= 1000; k++ {
		if !h.Insert(k, k*3) {
			t.Fatalf("insert %d failed", k)
		}
	}
	for k := uint64(1); k <= 1000; k++ {
		v, ok := h.Find(k)
		if !ok || v != k*3 {
			t.Fatalf("find %d: got %d,%v", k, v, ok)
		}
	}
	if _, ok := h.Find(5000); ok {
		t.Fatal("found absent key")
	}
}

func TestFolkloreDuplicateInsert(t *testing.T) {
	f := NewFolklore(100)
	h := f.Handle()
	if !h.Insert(7, 1) || h.Insert(7, 2) {
		t.Fatal("duplicate insert must fail")
	}
	if v, _ := h.Find(7); v != 1 {
		t.Fatal("duplicate insert must not overwrite")
	}
}

func TestFolkloreUpdate(t *testing.T) {
	f := NewFolklore(100)
	h := f.Handle()
	if h.Update(3, 9, tables.Overwrite) {
		t.Fatal("update of absent key must fail")
	}
	h.Insert(3, 1)
	if !h.Update(3, 9, tables.Overwrite) {
		t.Fatal("update failed")
	}
	if v, _ := h.Find(3); v != 9 {
		t.Fatalf("got %d", v)
	}
	h.Update(3, 5, tables.AddFn)
	if v, _ := h.Find(3); v != 14 {
		t.Fatalf("AddFn: got %d", v)
	}
}

func TestFolkloreInsertOrUpdate(t *testing.T) {
	f := NewFolklore(100)
	h := f.Handle()
	if !h.InsertOrUpdate(5, 10, tables.AddFn) {
		t.Fatal("first insertOrUpdate must report insert")
	}
	if h.InsertOrUpdate(5, 10, tables.AddFn) {
		t.Fatal("second insertOrUpdate must report update")
	}
	if v, _ := h.Find(5); v != 20 {
		t.Fatalf("got %d", v)
	}
}

// TestInsertOrAddOverflowPanics: a fetch-and-add whose sum leaves the
// 62-bit value domain must fail loudly (it used to silently corrupt the
// cell's live/marked bits), and the panic must name overflow — not the
// migration-exclusion violation that shares the detection bit.
func TestInsertOrAddOverflowPanics(t *testing.T) {
	f := NewFolklore(16)
	h := f.Handle().(*folkloreHandle)
	h.InsertOrAdd(5, 1<<61)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("overflowing InsertOrAdd did not panic")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "overflowed") {
			t.Fatalf("wrong panic for overflow: %v", msg)
		}
	}()
	h.InsertOrAdd(5, 1<<61) // 2^61 + 2^61 = 2^62 > MaxValue
}

func TestFolkloreInsertOrAdd(t *testing.T) {
	f := NewFolklore(100)
	h := f.Handle().(*folkloreHandle)
	if !h.InsertOrAdd(5, 7) || h.InsertOrAdd(5, 3) {
		t.Fatal("InsertOrAdd insert/update reporting wrong")
	}
	if v, _ := h.Find(5); v != 10 {
		t.Fatalf("got %d", v)
	}
}

func TestFolkloreDelete(t *testing.T) {
	f := NewFolklore(100)
	h := f.Handle()
	h.Insert(1, 10)
	h.Insert(2, 20)
	if !h.Delete(1) {
		t.Fatal("delete failed")
	}
	if h.Delete(1) {
		t.Fatal("double delete must fail")
	}
	if _, ok := h.Find(1); ok {
		t.Fatal("deleted key still found")
	}
	if v, ok := h.Find(2); !ok || v != 20 {
		t.Fatal("unrelated key damaged by delete")
	}
	// Tombstone revival: re-insert the same key.
	if !h.Insert(1, 11) {
		t.Fatal("re-insert after delete failed")
	}
	if v, _ := h.Find(1); v != 11 {
		t.Fatal("revived value wrong")
	}
}

func TestFolkloreUpdateAfterDelete(t *testing.T) {
	f := NewFolklore(100)
	h := f.Handle()
	h.Insert(1, 10)
	h.Delete(1)
	if h.Update(1, 5, tables.Overwrite) {
		t.Fatal("update of tombstoned key must fail")
	}
	if !h.InsertOrUpdate(1, 5, tables.AddFn) {
		t.Fatal("insertOrUpdate on tombstone must insert (revive)")
	}
	if v, _ := h.Find(1); v != 5 {
		t.Fatal("revive value wrong")
	}
}

func TestFolkloreRangeAndSize(t *testing.T) {
	f := NewFolklore(1000)
	h := f.Handle()
	for k := uint64(1); k <= 500; k++ {
		h.Insert(k, k)
	}
	for k := uint64(1); k <= 100; k++ {
		h.Delete(k)
	}
	var n uint64
	f.Range(func(k, v uint64) bool {
		if k != v || k <= 100 || k > 500 {
			t.Fatalf("range produced unexpected element %d=%d", k, v)
		}
		n++
		return true
	})
	if n != 400 {
		t.Fatalf("range visited %d elements, want 400", n)
	}
	if got := f.t.countLive(); got != 400 {
		t.Fatalf("countLive %d", got)
	}
}

func TestFolkloreRangeEarlyStop(t *testing.T) {
	f := NewFolklore(100)
	h := f.Handle()
	for k := uint64(1); k <= 50; k++ {
		h.Insert(k, k)
	}
	n := 0
	f.Range(func(k, v uint64) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestFolkloreFullPanics(t *testing.T) {
	f := NewFolkloreExact(8)
	h := f.Handle()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when bounded table overflows")
		}
	}()
	for k := uint64(1); k <= 100; k++ {
		h.Insert(k, k)
	}
}

func TestKeyDomainChecks(t *testing.T) {
	f := NewFolklore(10)
	h := f.Handle()
	for _, bad := range []uint64{0, frozenKey, frozenKey + 1, ^uint64(0)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("key %#x must panic", bad)
				}
			}()
			h.Insert(bad, 1)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("oversized value must panic")
			}
		}()
		h.Insert(1, MaxValue+1)
	}()
	// Boundary legal values.
	if !h.Insert(MaxKey, MaxValue) {
		t.Fatal("max key/value must be storable")
	}
	if v, ok := h.Find(MaxKey); !ok || v != MaxValue {
		t.Fatal("max key/value roundtrip failed")
	}
}

// --- Differential property test vs a model map ---

type opSeq struct {
	Ops []modelOp
}

type modelOp struct {
	Kind uint8 // 0 insert, 1 update, 2 insertOrUpdate, 3 find, 4 delete
	Key  uint16
	Val  uint16
}

func runDifferential(t *testing.T, h tables.Handle, ops []modelOp) {
	t.Helper()
	model := map[uint64]uint64{}
	for i, op := range ops {
		k := uint64(op.Key)%512 + 1
		v := uint64(op.Val) + 1
		switch op.Kind % 5 {
		case 0:
			_, present := model[k]
			if got := h.Insert(k, v); got == present {
				t.Fatalf("op %d: insert(%d) returned %v, model present=%v", i, k, got, present)
			}
			if !present {
				model[k] = v
			}
		case 1:
			_, present := model[k]
			if got := h.Update(k, v, tables.AddFn); got != present {
				t.Fatalf("op %d: update(%d) returned %v, model present=%v", i, k, got, present)
			}
			if present {
				model[k] += v
			}
		case 2:
			_, present := model[k]
			if got := h.InsertOrUpdate(k, v, tables.AddFn); got == present {
				t.Fatalf("op %d: insertOrUpdate(%d) returned %v, present=%v", i, k, got, present)
			}
			if present {
				model[k] += v
			} else {
				model[k] = v
			}
		case 3:
			want, present := model[k]
			got, ok := h.Find(k)
			if ok != present || (ok && got != want) {
				t.Fatalf("op %d: find(%d)=(%d,%v), model (%d,%v)", i, k, got, ok, want, present)
			}
		case 4:
			_, present := model[k]
			if got := h.Delete(k); got != present {
				t.Fatalf("op %d: delete(%d) returned %v, present=%v", i, k, got, present)
			}
			delete(model, k)
		}
	}
	// Final sweep.
	for k, want := range model {
		if got, ok := h.Find(k); !ok || got != want {
			t.Fatalf("final: find(%d)=(%d,%v), want %d", k, got, ok, want)
		}
	}
}

func TestQuickFolkloreMatchesModel(t *testing.T) {
	f := func(ops []modelOp) bool {
		fl := NewFolklore(2048)
		runDifferential(t, fl.Handle(), ops)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGrowMatchesModel(t *testing.T) {
	for _, s := range allStrategies() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			f := func(ops []modelOp) bool {
				g := newGrowSmall(s)
				defer g.Close()
				runDifferential(t, g.Handle(), ops)
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// --- Growing across migrations (sequential) ---

func TestGrowManyInsertsAllStrategies(t *testing.T) {
	const n = 50000
	for _, s := range allStrategies() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			g := newGrowSmall(s) // forces many doublings from 64 cells
			defer g.Close()
			h := g.Handle()
			for k := uint64(1); k <= n; k++ {
				if !h.Insert(k, k^0xABCD) {
					t.Fatalf("insert %d failed", k)
				}
			}
			if g.Capacity() < n {
				t.Fatalf("table did not grow: cap %d", g.Capacity())
			}
			for k := uint64(1); k <= n; k++ {
				v, ok := h.Find(k)
				if !ok || v != k^0xABCD {
					t.Fatalf("find %d after growth: %d,%v", k, v, ok)
				}
			}
			// Size estimate within the paper's O(p²) bound — here sequential,
			// so within one flush span.
			if sz := g.ApproxSize(); sz+2*flushSpan < n || sz > n+2*flushSpan {
				t.Fatalf("approx size %d far from %d", sz, n)
			}
		})
	}
}

func TestGrowDeleteCleanup(t *testing.T) {
	for _, s := range allStrategies() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			g := NewGrow(s, 1<<14)
			defer g.Close()
			h := g.Handle()
			// Alternating insert+delete with a sliding window (the Fig. 6
			// workload shape): table must reclaim tombstones via cleanup
			// migrations instead of overflowing.
			const window = 1 << 12
			const total = 1 << 16
			for k := uint64(1); k <= total; k++ {
				if !h.Insert(k, k) {
					t.Fatalf("insert %d failed", k)
				}
				if k > window {
					if !h.Delete(k - window) {
						t.Fatalf("delete %d failed", k-window)
					}
				}
			}
			// Capacity must stay bounded near the window size, far below
			// the total insert count (tombstones were reclaimed).
			if g.Capacity() >= total {
				t.Fatalf("tombstones not reclaimed: cap %d after %d inserts of window %d",
					g.Capacity(), total, window)
			}
			for k := uint64(total - window + 1); k <= total; k++ {
				if v, ok := h.Find(k); !ok || v != k {
					t.Fatalf("window element %d missing", k)
				}
			}
			if _, ok := h.Find(1); ok {
				t.Fatal("deleted element resurrected")
			}
		})
	}
}

func TestShrinkToFit(t *testing.T) {
	for _, s := range allStrategies() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			g := NewGrow(s, 64)
			defer g.Close()
			h := g.Handle()
			const n = 1 << 15
			for k := uint64(1); k <= n; k++ {
				h.Insert(k, k)
			}
			for k := uint64(1); k <= n; k++ {
				if k%64 != 0 {
					h.Delete(k)
				}
			}
			before := g.Capacity()
			g.ShrinkToFit()
			after := g.Capacity()
			if after >= before {
				t.Fatalf("shrink did not reduce capacity: %d -> %d", before, after)
			}
			for k := uint64(64); k <= n; k += 64 {
				if v, ok := h.Find(k); !ok || v != k {
					t.Fatalf("survivor %d lost in shrink", k)
				}
			}
			if _, ok := h.Find(1); ok {
				t.Fatal("deleted key present after shrink")
			}
		})
	}
}

// --- Concurrency ---

// TestConcurrentUniqueInsert: p goroutines race to insert the same keys;
// exactly one insert per key must succeed (the §4 contract).
func TestConcurrentUniqueInsert(t *testing.T) {
	const goroutines = 8
	const keys = 20000
	for _, s := range allStrategies() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			g := newGrowSmall(s)
			defer g.Close()
			var wins [goroutines]uint64
			var wg sync.WaitGroup
			for i := 0; i < goroutines; i++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					h := g.Handle()
					for k := uint64(1); k <= keys; k++ {
						if h.Insert(k, uint64(id)+1) {
							wins[id]++
						}
					}
				}(i)
			}
			wg.Wait()
			var total uint64
			for _, w := range wins {
				total += w
			}
			if total != keys {
				t.Fatalf("insert successes %d, want exactly %d", total, keys)
			}
			h := g.Handle()
			for k := uint64(1); k <= keys; k++ {
				if v, ok := h.Find(k); !ok || v < 1 || v > goroutines {
					t.Fatalf("key %d: value %d ok=%v", k, v, ok)
				}
			}
		})
	}
}

// TestConcurrentAggregation: insert-or-increment from many goroutines
// must lose no updates (Fig. 5 semantics), across migrations.
func TestConcurrentAggregation(t *testing.T) {
	const goroutines = 8
	const perG = 30000
	const keys = 512
	for _, s := range allStrategies() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			g := newGrowSmall(s)
			defer g.Close()
			var wg sync.WaitGroup
			for i := 0; i < goroutines; i++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					h := g.Handle().(*growHandle)
					r := rand.New(rand.NewSource(int64(id)))
					for j := 0; j < perG; j++ {
						k := uint64(r.Intn(keys)) + 1
						h.InsertOrAdd(k, 1)
					}
				}(i)
			}
			wg.Wait()
			h := g.Handle()
			var sum uint64
			for k := uint64(1); k <= keys; k++ {
				v, _ := h.Find(k)
				sum += v
			}
			if sum != goroutines*perG {
				t.Fatalf("lost updates: sum %d want %d", sum, goroutines*perG)
			}
		})
	}
}

// TestConcurrentInsertFindPublication: finders must never observe a torn
// or unpublished value; values are derived from keys so any mismatch is
// detectable.
func TestConcurrentInsertFindPublication(t *testing.T) {
	for _, s := range allStrategies() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			g := newGrowSmall(s)
			defer g.Close()
			const keys = 30000
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for i := 0; i < 4; i++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					h := g.Handle()
					r := rand.New(rand.NewSource(seed))
					for {
						select {
						case <-stop:
							return
						default:
						}
						k := uint64(r.Intn(keys)) + 1
						if v, ok := h.Find(k); ok && v != k*2+1 {
							panic("torn read: wrong value observed")
						}
					}
				}(int64(i))
			}
			h := g.Handle()
			for k := uint64(1); k <= keys; k++ {
				h.Insert(k, k*2+1)
			}
			close(stop)
			wg.Wait()
		})
	}
}

// TestConcurrentDeleteInsert was promoted into the table-driven migration
// torture suite in torture_test.go (same name, wider matrix).

// TestConcurrentMixedChaos exercises every operation at once under
// forced migrations and validates per-key invariants: each key's value is
// always one of the values some goroutine could legally have written.
func TestConcurrentMixedChaos(t *testing.T) {
	for _, s := range allStrategies() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			g := newGrowSmall(s)
			defer g.Close()
			const keys = 256
			var wg sync.WaitGroup
			for i := 0; i < 6; i++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					h := g.Handle()
					r := rand.New(rand.NewSource(seed))
					for j := 0; j < 20000; j++ {
						k := uint64(r.Intn(keys)) + 1
						switch r.Intn(5) {
						case 0:
							h.Insert(k, k*1000)
						case 1:
							h.Update(k, k*1000, tables.Overwrite)
						case 2:
							h.InsertOrUpdate(k, k*1000, tables.Overwrite)
						case 3:
							if v, ok := h.Find(k); ok && v != k*1000 {
								panic("invariant violated: foreign value")
							}
						case 4:
							h.Delete(k)
						}
					}
				}(int64(i * 31))
			}
			wg.Wait()
		})
	}
}

// --- Approximate counting ---

func TestApproxCountErrorBound(t *testing.T) {
	g := NewGrow(UA, 1<<16)
	defer g.Close()
	const goroutines = 8
	const perG = 10000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			h := g.Handle()
			for j := uint64(1); j <= perG; j++ {
				h.Insert(base+j, j)
			}
		}(uint64(i) * 1_000_000)
	}
	wg.Wait()
	exact := uint64(goroutines * perG)
	approx := g.ApproxSize()
	slack := uint64(goroutines * flushSpan)
	if approx > exact || approx+slack < exact {
		t.Fatalf("approx %d outside [%d-%d, %d]", approx, exact, slack, exact)
	}
}

func TestLocalCounterFlushing(t *testing.T) {
	var c counters
	lc := newLocalCounter(1)
	flushes := 0
	for i := 0; i < 10*flushSpan; i++ {
		if lc.bumpIns(&c) {
			flushes++
		}
	}
	if flushes < 5 {
		t.Fatalf("too few flushes: %d", flushes)
	}
	lc.flush(&c)
	if c.ins.Load() != 10*flushSpan {
		t.Fatalf("flushed total %d", c.ins.Load())
	}
	for i := 0; i < 3; i++ {
		lc.bumpDel(&c)
	}
	lc.flush(&c)
	if c.approxLive() != 10*flushSpan-3 {
		t.Fatalf("live %d", c.approxLive())
	}
}

func TestCountersUnderflowClamp(t *testing.T) {
	var c counters
	c.del.Add(5)
	if c.approxLive() != 0 {
		t.Fatal("live estimate must clamp at 0")
	}
}

// --- Migration internals ---

// TestMigrationPreservesExactMultiset fills a table with random keys,
// deletes a random subset, forces a cleanup or growth, and compares the
// full element multiset before and after.
func TestMigrationPreservesExactMultiset(t *testing.T) {
	for _, s := range []Strategy{UA, US} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			r := rand.New(rand.NewSource(99))
			g := NewGrow(s, 1<<10)
			defer g.Close()
			h := g.Handle()
			want := map[uint64]uint64{}
			for i := 0; i < 5000; i++ {
				k := uint64(r.Intn(1<<20)) + 1
				v := uint64(r.Intn(1 << 30))
				if h.Insert(k, v) {
					want[k] = v
				}
			}
			for k := range want {
				if r.Intn(3) == 0 {
					h.Delete(k)
					delete(want, k)
				}
			}
			// Force a migration regardless of fill.
			g.initiate(g.cur.Load())
			g.assist()
			got := map[uint64]uint64{}
			g.Range(func(k, v uint64) bool { got[k] = v; return true })
			if len(got) != len(want) {
				t.Fatalf("element count %d != %d", len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("key %d: %d != %d", k, got[k], v)
				}
			}
		})
	}
}

// TestClusterLemmaProperty: after any migration, every element must be
// reachable by probing from its home cell without crossing an empty cell
// — the linear-probing invariant Lemma 1's order-preserving copy must
// maintain.
func TestClusterLemmaProperty(t *testing.T) {
	f := func(seed int64, nOps uint16) bool {
		r := rand.New(rand.NewSource(seed))
		g := NewGrow(UA, 256)
		defer g.Close()
		h := g.Handle()
		live := map[uint64]bool{}
		for i := 0; i < int(nOps)+100; i++ {
			k := uint64(r.Intn(4096)) + 1
			if r.Intn(4) == 0 {
				h.Delete(k)
				delete(live, k)
			} else {
				h.Insert(k, k)
				live[k] = true
			}
		}
		g.initiate(g.cur.Load())
		g.assist()
		for k := range live {
			if _, ok := h.Find(k); !ok {
				t.Logf("key %d unreachable after migration (probe invariant broken)", k)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestMigrationConcurrentWriters drives writers against repeated forced
// migrations (marking mode) and checks no element or update is lost.
func TestMigrationConcurrentWriters(t *testing.T) {
	g := NewGrow(UA, 1<<10)
	defer g.Close()
	const keys = 4000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Churn: force migrations continuously.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				g.initiate(g.cur.Load())
				g.assist()
			}
		}
	}()
	var wgW sync.WaitGroup
	for i := 0; i < 4; i++ {
		wgW.Add(1)
		go func(id uint64) {
			defer wgW.Done()
			h := g.Handle()
			for k := uint64(1); k <= keys; k++ {
				h.InsertOrUpdate(k, id+1, func(cur, d uint64) uint64 { return cur | 1<<d })
			}
		}(uint64(i))
	}
	wgW.Wait()
	close(stop)
	wg.Wait()
	h := g.Handle()
	for k := uint64(1); k <= keys; k++ {
		v, ok := h.Find(k)
		if !ok {
			t.Fatalf("key %d lost across migrations", k)
		}
		// Value is either a bitmask of updater bits or an initial id+1.
		if v == 0 || v > (1|2|4|8|16|32) {
			t.Fatalf("key %d has impossible value %d", k, v)
		}
	}
}

func TestStrategyString(t *testing.T) {
	names := map[Strategy]string{UA: "uaGrow", US: "usGrow", PA: "paGrow", PS: "psGrow", Strategy(9): "unknown"}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("%v", s)
		}
	}
}

func TestTableSizing(t *testing.T) {
	for _, tc := range []struct{ in, wantCap uint64 }{
		{0, 8}, {1, 8}, {8, 8}, {9, 16}, {4096, 4096}, {4097, 8192},
	} {
		if got := NewTable(tc.in).capacity; got != tc.wantCap {
			t.Errorf("NewTable(%d).capacity = %d, want %d", tc.in, got, tc.wantCap)
		}
	}
	f := NewFolklore(1000) // ≥ 2n rule
	if f.Capacity() < 2000 {
		t.Fatalf("folklore sizing rule violated: %d", f.Capacity())
	}
}

func TestMemBytes(t *testing.T) {
	f := NewFolkloreExact(1024)
	if f.MemBytes() != 1024*16 {
		t.Fatalf("MemBytes %d", f.MemBytes())
	}
	g := NewGrow(UA, 1024)
	defer g.Close()
	if g.MemBytes() != 1024*16 {
		t.Fatalf("grow MemBytes %d", g.MemBytes())
	}
}
