package core

import (
	"repro/internal/hashfn"
	"repro/internal/htm"
	"repro/internal/tables"
)

// This file implements the transaction-assisted variants of §6: the
// bounded tsxfolklore table and the TSX-instantiated growing variants
// (§7: "All of these versions can also be instantiated using the TSX
// based non-growing table as a basis"). Write operations execute their
// cell mutation inside an emulated restricted transaction (see
// repro/internal/htm for the substitution notes); inside a transaction
// the CAS loops of the atomic code path collapse into plain loads and
// stores, mirroring the paper's observation that the sequential bodies
// are simpler than the cmpxchg16b versions. Reads stay wait-free and
// never touch transaction state.
//
// Marking-race audit: every plain storeVal below executes inside
// r.Begin(i)/r.End(i) for the written cell and re-checks markedBit inside
// the transaction before storing. Migration marking of TSX tables takes
// the same per-cell stripe (migration.stabilize's tx branch), so a mark
// can never interleave between a transactional writer's markedBit check
// and its store — the plain stores here are therefore immune to the
// mark-overwrite race that the atomic path prevents with value CAS
// ordering (cell.go protocol invariant 2).

// insertTSX is the transactional version of insertCore. Never uses the
// pending bit: publication order (value before key) inside the stripe
// plus the wait-free readers' torn-read semantics make it unnecessary.
//
//growt:hotpath
func (t *Table) insertTSX(r *htm.TxRegion, k, d uint64) opStatus {
	h := hashIndex(t, k)
	i := h
	mask := t.capacity - 1
	for probes := uint64(0); probes <= t.probeCap; probes++ {
		kw := t.loadKey(i)
		if kw == 0 {
			r.Begin(i)
			kw = t.loadKey(i) // revalidate inside the transaction
			if kw == 0 {
				if t.loadVal(i)&markedBit != 0 {
					r.End(i)
					return statusMarked
				}
				t.storeVal(i, d|liveBit)
				t.storeKey(i, k)
				r.End(i)
				return statusInserted
			}
			r.End(i)
		}
		if kw&keyMask == k {
			if kw&pendingBit != 0 {
				kw = t.waitKey(i)
			}
			r.Begin(i)
			v := t.loadVal(i)
			switch {
			case v&markedBit != 0:
				r.End(i)
				return statusMarked
			case v&liveBit != 0:
				r.End(i)
				return statusPresent
			default: // tombstone owned by k: revive
				t.storeVal(i, d|liveBit)
				r.End(i)
				return statusInserted
			}
		}
		i = (i + 1) & mask
	}
	return statusFull
}

// updateTSX is the transactional update.
//
//growt:hotpath
func (t *Table) updateTSX(r *htm.TxRegion, k, d uint64, up func(cur, d uint64) uint64) opStatus {
	i := hashIndex(t, k)
	mask := t.capacity - 1
	for probes := uint64(0); probes <= t.probeCap; probes++ {
		kw := t.loadKey(i)
		if kw == 0 {
			return statusAbsent
		}
		if kw&keyMask == k {
			if kw&pendingBit != 0 {
				return statusAbsent
			}
			r.Begin(i)
			v := t.loadVal(i)
			switch {
			case v&markedBit != 0:
				r.End(i)
				return statusMarked
			case v&liveBit == 0:
				r.End(i)
				return statusAbsent
			}
			t.storeVal(i, up(v&valueMask, d)&valueMask|liveBit)
			r.End(i)
			return statusUpdated
		}
		i = (i + 1) & mask
	}
	return statusAbsent
}

// insertOrUpdateTSX is the transactional Algorithm 1.
//
//growt:hotpath
func (t *Table) insertOrUpdateTSX(r *htm.TxRegion, k, d uint64, up func(cur, d uint64) uint64) opStatus {
	i := hashIndex(t, k)
	mask := t.capacity - 1
	for probes := uint64(0); probes <= t.probeCap; probes++ {
		kw := t.loadKey(i)
		if kw == 0 {
			r.Begin(i)
			kw = t.loadKey(i)
			if kw == 0 {
				if t.loadVal(i)&markedBit != 0 {
					r.End(i)
					return statusMarked
				}
				t.storeVal(i, d|liveBit)
				t.storeKey(i, k)
				r.End(i)
				return statusInserted
			}
			r.End(i)
		}
		if kw&keyMask == k {
			if kw&pendingBit != 0 {
				kw = t.waitKey(i)
			}
			r.Begin(i)
			v := t.loadVal(i)
			switch {
			case v&markedBit != 0:
				r.End(i)
				return statusMarked
			case v&liveBit == 0:
				t.storeVal(i, d|liveBit)
				r.End(i)
				return statusInserted
			}
			t.storeVal(i, up(v&valueMask, d)&valueMask|liveBit)
			r.End(i)
			return statusUpdated
		}
		i = (i + 1) & mask
	}
	return statusFull
}

// deleteTSX is the transactional tombstoning delete. Like deleteCore it
// returns the removed value on statusUpdated (the transaction is the
// linearization point, so the value is exact).
//
//growt:hotpath
func (t *Table) deleteTSX(r *htm.TxRegion, k uint64) (uint64, opStatus) {
	i := hashIndex(t, k)
	mask := t.capacity - 1
	for probes := uint64(0); probes <= t.probeCap; probes++ {
		kw := t.loadKey(i)
		if kw == 0 {
			return 0, statusAbsent
		}
		if kw&keyMask == k {
			if kw&pendingBit != 0 {
				return 0, statusAbsent
			}
			r.Begin(i)
			v := t.loadVal(i)
			switch {
			case v&markedBit != 0:
				r.End(i)
				return 0, statusMarked
			case v&liveBit == 0:
				r.End(i)
				return 0, statusAbsent
			}
			t.storeVal(i, v&^liveBit)
			r.End(i)
			return v & valueMask, statusUpdated
		}
		i = (i + 1) & mask
	}
	return 0, statusAbsent
}

// compareAndDeleteTSX is the transactional conditional delete: it
// tombstones k iff the value read inside the transaction equals want, so
// the verdict and the removal are one atomic step.
//
//growt:hotpath
func (t *Table) compareAndDeleteTSX(r *htm.TxRegion, k, want uint64) opStatus {
	i := hashIndex(t, k)
	mask := t.capacity - 1
	for probes := uint64(0); probes <= t.probeCap; probes++ {
		kw := t.loadKey(i)
		if kw == 0 {
			return statusAbsent
		}
		if kw&keyMask == k {
			if kw&pendingBit != 0 {
				return statusAbsent
			}
			r.Begin(i)
			v := t.loadVal(i)
			switch {
			case v&markedBit != 0:
				r.End(i)
				return statusMarked
			case v&liveBit == 0:
				r.End(i)
				return statusAbsent
			case v&valueMask != want:
				r.End(i)
				return statusMismatch
			}
			t.storeVal(i, v&^liveBit)
			r.End(i)
			return statusUpdated
		}
		i = (i + 1) & mask
	}
	return statusAbsent
}

// TSXFolklore is the bounded folklore table with transactional writers
// (§6, Fig. 9a). Reads are identical to Folklore's.
type TSXFolklore struct {
	t  *Table
	tx *htm.TxRegion
	c  counters
}

// NewTSXFolklore builds a bounded transactional table sized like
// NewFolklore.
func NewTSXFolklore(expected uint64) *TSXFolklore {
	return &TSXFolklore{t: NewTable(2 * expected), tx: htm.NewTxRegion()}
}

// NewTSXFolkloreExact builds with an exact (rounded-up) capacity.
func NewTSXFolkloreExact(capacity uint64) *TSXFolklore {
	return &TSXFolklore{t: NewTable(capacity), tx: htm.NewTxRegion()}
}

// Capacity returns the cell count.
func (f *TSXFolklore) Capacity() uint64 { return f.t.capacity }

// MemBytes reports backing memory.
func (f *TSXFolklore) MemBytes() uint64 { return f.t.MemBytes() }

// ApproxSize estimates the live element count.
func (f *TSXFolklore) ApproxSize() uint64 { return f.c.approxLive() }

// Range iterates live elements; quiescent use only.
func (f *TSXFolklore) Range(fn func(k, v uint64) bool) { f.t.rangeCore(fn) }

// TxStats exposes commit/abort/fallback counts of the emulated HTM.
func (f *TSXFolklore) TxStats() (commits, aborts, fallbacks uint64) { return f.tx.Stats() }

// Handle returns a goroutine-private accessor.
func (f *TSXFolklore) Handle() tables.Handle {
	return &tsxFolkloreHandle{f: f, lc: newLocalCounter(handleSeed())}
}

var _ tables.Interface = (*TSXFolklore)(nil)
var _ tables.Sizer = (*TSXFolklore)(nil)
var _ tables.Ranger = (*TSXFolklore)(nil)
var _ tables.MemUser = (*TSXFolklore)(nil)

type tsxFolkloreHandle struct {
	f  *TSXFolklore
	lc localCounter
}

func (h *tsxFolkloreHandle) Insert(k, d uint64) bool {
	checkKey(k)
	checkValue(d)
	switch h.f.t.insertTSX(h.f.tx, k, d) {
	case statusInserted:
		h.lc.bumpIns(&h.f.c)
		return true
	case statusPresent:
		return false
	default:
		panic("core: tsxfolklore table full — size it to ≥2n (§7)")
	}
}

func (h *tsxFolkloreHandle) Update(k, d uint64, up tables.UpdateFn) bool {
	checkKey(k)
	return h.f.t.updateTSX(h.f.tx, k, d, up) == statusUpdated
}

func (h *tsxFolkloreHandle) InsertOrUpdate(k, d uint64, up tables.UpdateFn) bool {
	checkKey(k)
	checkValue(d)
	switch h.f.t.insertOrUpdateTSX(h.f.tx, k, d, up) {
	case statusInserted:
		h.lc.bumpIns(&h.f.c)
		return true
	case statusUpdated:
		return false
	default:
		panic("core: tsxfolklore table full — size it to ≥2n (§7)")
	}
}

// InsertOrAdd implements tables.Adder via the transactional add body.
func (h *tsxFolkloreHandle) InsertOrAdd(k, d uint64) bool {
	return h.InsertOrUpdate(k, d, tables.AddFn)
}

func (h *tsxFolkloreHandle) Find(k uint64) (uint64, bool) {
	checkKey(k)
	return h.f.t.findCore(k)
}

func (h *tsxFolkloreHandle) Delete(k uint64) bool {
	_, ok := h.LoadAndDelete(k)
	return ok
}

// LoadAndDelete implements tables.LoadDeleter: the removed value is read
// inside the transaction that tombstones it, so it is exact.
func (h *tsxFolkloreHandle) LoadAndDelete(k uint64) (uint64, bool) {
	checkKey(k)
	if v, st := h.f.t.deleteTSX(h.f.tx, k); st == statusUpdated {
		h.lc.bumpDel(&h.f.c)
		return v, true
	}
	return 0, false
}

// CompareAndDelete implements tables.CompareAndDeleter: the value
// comparison happens inside the tombstoning transaction.
func (h *tsxFolkloreHandle) CompareAndDelete(k, want uint64) bool {
	checkKey(k)
	checkValue(want)
	if h.f.t.compareAndDeleteTSX(h.f.tx, k, want) == statusUpdated {
		h.lc.bumpDel(&h.f.c)
		return true
	}
	return false
}

// hashIndex is a small helper shared by the TSX paths.
func hashIndex(t *Table, k uint64) uint64 {
	return t.index(hashfn.Hash64(k))
}
