// Package pad provides cache-line padding primitives used to keep
// per-thread hot data (handle counters, busy flags, block cursors) on
// distinct cache lines. The paper (§5.1, footnote 3) highlights false
// sharing as one of the performance pitfalls its handle design avoids.
package pad

import "sync/atomic"

// CacheLineSize is the assumed coherence granularity in bytes. 64 is
// correct for every x86 and most ARM server parts; Apple M-series uses
// 128, so we pad to 128 to be safe on both.
const CacheLineSize = 128

// Uint64 is a uint64 alone on its own cache line(s).
type Uint64 struct {
	_ [CacheLineSize - 8]byte
	v atomic.Uint64
	_ [CacheLineSize - 8]byte
}

// Load atomically reads the value.
func (p *Uint64) Load() uint64 { return p.v.Load() }

// Store atomically writes the value.
func (p *Uint64) Store(x uint64) { p.v.Store(x) }

// Add atomically adds delta and returns the new value.
func (p *Uint64) Add(delta uint64) uint64 { return p.v.Add(delta) }

// CompareAndSwap performs an atomic compare-and-swap.
func (p *Uint64) CompareAndSwap(old, new uint64) bool { return p.v.CompareAndSwap(old, new) }

// Int64 is an int64 alone on its own cache line(s).
type Int64 struct {
	_ [CacheLineSize - 8]byte
	v atomic.Int64
	_ [CacheLineSize - 8]byte
}

// Load atomically reads the value.
func (p *Int64) Load() int64 { return p.v.Load() }

// Store atomically writes the value.
func (p *Int64) Store(x int64) { p.v.Store(x) }

// Add atomically adds delta and returns the new value.
func (p *Int64) Add(delta int64) int64 { return p.v.Add(delta) }

// Bool is an atomic boolean flag alone on its own cache line(s); used for
// the per-handle busy flags of the synchronized growing protocol (§5.3.2).
type Bool struct {
	_ [CacheLineSize - 4]byte
	v atomic.Uint32
	_ [CacheLineSize - 4]byte
}

// Load atomically reads the flag.
func (p *Bool) Load() bool { return p.v.Load() != 0 }

// Store atomically writes the flag.
func (p *Bool) Store(x bool) {
	if x {
		p.v.Store(1)
	} else {
		p.v.Store(0)
	}
}
