package pad

import (
	"sync"
	"testing"
	"unsafe"
)

func TestSizes(t *testing.T) {
	if s := unsafe.Sizeof(Uint64{}); s < 2*CacheLineSize-8 {
		t.Fatalf("Uint64 size %d too small to isolate a cache line", s)
	}
	if s := unsafe.Sizeof(Bool{}); s < 2*CacheLineSize-4 {
		t.Fatalf("Bool size %d too small to isolate a cache line", s)
	}
}

func TestUint64Ops(t *testing.T) {
	var p Uint64
	if p.Load() != 0 {
		t.Fatal("zero value not zero")
	}
	p.Store(5)
	if p.Load() != 5 {
		t.Fatal("store/load")
	}
	if p.Add(3) != 8 {
		t.Fatal("add")
	}
	if !p.CompareAndSwap(8, 10) || p.Load() != 10 {
		t.Fatal("cas success path")
	}
	if p.CompareAndSwap(8, 11) {
		t.Fatal("cas must fail on stale expected value")
	}
}

func TestInt64Ops(t *testing.T) {
	var p Int64
	p.Store(-5)
	if p.Load() != -5 {
		t.Fatal("store/load")
	}
	if p.Add(-3) != -8 {
		t.Fatal("add")
	}
}

func TestBool(t *testing.T) {
	var b Bool
	if b.Load() {
		t.Fatal("zero value must be false")
	}
	b.Store(true)
	if !b.Load() {
		t.Fatal("store true")
	}
	b.Store(false)
	if b.Load() {
		t.Fatal("store false")
	}
}

func TestUint64Concurrent(t *testing.T) {
	var p Uint64
	var wg sync.WaitGroup
	const g, per = 8, 10000
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				p.Add(1)
			}
		}()
	}
	wg.Wait()
	if p.Load() != g*per {
		t.Fatalf("lost updates: %d != %d", p.Load(), g*per)
	}
}
