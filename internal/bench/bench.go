// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§8). Each experiment follows the
// paper's methodology (§8.3):
//
//   - keys are precomputed before timing starts, uniform keys with the
//     64-bit Mersenne twister, skewed keys with a Zipf sampler;
//   - work is dealt dynamically in blocks of 4096 operations through a
//     shared atomic counter;
//   - each data point is the average of Repeat runs;
//   - speedups are absolute, against the hand-optimized sequential table.
//
// The same scenario functions back the growbench CLI and the testing.B
// benchmarks in bench_test.go.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rng"
	"repro/internal/tables"
	"repro/internal/zipfgen"
)

// BlockOps is the work-dealing grain of §8.3.
const BlockOps = 4096

// Config parametrizes an experiment run.
type Config struct {
	N       uint64 // operations (the paper uses 10^8; scaled down by default)
	Threads []int  // goroutine counts to sweep
	Tables  []string
	Skews   []float64 // Zipf exponents for the contention experiments
	WPs     []int     // write percentages for the mix experiment
	Repeat  int
	Out     io.Writer
}

// Defaults fills unset fields.
func (c *Config) Defaults() {
	if c.N == 0 {
		c.N = 1 << 20
	}
	if len(c.Threads) == 0 {
		p := runtime.GOMAXPROCS(0)
		c.Threads = []int{1, 2, 4, p * 2}
		if p == 1 {
			c.Threads = []int{1, 2, 4, 8}
		}
	}
	if len(c.Skews) == 0 {
		c.Skews = []float64{0.25, 0.5, 0.75, 0.85, 0.95, 1.05, 1.25, 1.5, 2.0}
	}
	if len(c.WPs) == 0 {
		c.WPs = []int{10, 20, 30, 40, 50, 60, 70, 80}
	}
	if c.Repeat == 0 {
		c.Repeat = 3
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
}

// UniformKeys generates n keys uniformly from 1..2^62 with MT19937
// (§8.3), deterministic per seed.
func UniformKeys(n uint64, seed uint64) []uint64 {
	m := rng.NewMT19937(seed)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = m.Uint64()>>2 | 1 // nonzero, within every table's domain
	}
	return keys
}

// ZipfKeys generates n keys from a Zipf distribution over 1..universe
// with exponent s (§8.3: universe 10^8, s sweeps 0.25..2).
func ZipfKeys(n uint64, universe uint64, s float64, seed uint64) []uint64 {
	z := zipfgen.New(universe, s, rng.NewSplitMix64(seed))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = z.Next()
	}
	return keys
}

// run deals blocks of BlockOps indices in [0,total) to p goroutines; op
// receives a per-goroutine handle index and the op index. Returns wall
// time.
func run(p int, total uint64, body func(worker int, lo, hi uint64)) time.Duration {
	var cursor atomic.Uint64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			<-start
			for {
				lo := cursor.Add(BlockOps) - BlockOps
				if lo >= total {
					return
				}
				hi := lo + BlockOps
				if hi > total {
					hi = total
				}
				body(worker, lo, hi)
			}
		}(w)
	}
	begin := time.Now()
	close(start)
	wg.Wait()
	return time.Since(begin)
}

// Result is one measured data point. Seconds and MOps average the
// Repeat runs (§8.3); Samples keeps each repeat's raw wall time so
// BENCH_*.json reports serialize losslessly and comparisons can use
// the median instead of the mean.
type Result struct {
	Exp     string
	Table   string
	Threads int
	Param   float64 // skew s, write percentage, or capacity, per experiment
	MOps    float64
	Seconds float64
	Samples []float64 // per-repeat wall seconds, unaveraged
	Bytes   uint64    // live backing memory if measured (fig10), else 0
	Extra   string
}

// header prints the result table header.
func header(out io.Writer, exp, paramName string) {
	fmt.Fprintf(out, "\n== %s ==\n%-16s %8s %10s %12s %10s  %s\n",
		exp, "table", "threads", paramName, "MOps/s", "seconds", "notes")
}

func (r Result) print(out io.Writer, paramFmt string) {
	fmt.Fprintf(out, "%-16s %8d %10s %12.2f %10.3f  %s\n",
		r.Table, r.Threads, fmt.Sprintf(paramFmt, r.Param), r.MOps, r.Seconds, r.Extra)
}

// newTable builds a registered table, failing loudly on unknown names.
func newTable(name string, capacity uint64) tables.Interface {
	t, err := tables.New(name, capacity)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	return t
}

// closeTable releases pool resources if any.
func closeTable(t tables.Interface) {
	if c, ok := t.(tables.Closer); ok {
		c.Close()
	}
}

// handlesFor premakes one handle per worker (handles are goroutine
// private, §5.1; premaking avoids measuring handle registration).
func handlesFor(t tables.Interface, p int) []tables.Handle {
	hs := make([]tables.Handle, p)
	for i := range hs {
		hs[i] = t.Handle()
	}
	return hs
}

// prefill inserts keys[0:n] sequentially through one handle.
func prefill(t tables.Interface, keys []uint64) {
	h := t.Handle()
	for _, k := range keys {
		h.Insert(k, k)
	}
}

// measure runs f repeat times and returns the average seconds plus
// the raw per-repeat samples.
func measure(repeat int, f func() time.Duration) (float64, []float64) {
	samples := make([]float64, repeat)
	var total time.Duration
	for i := 0; i < repeat; i++ {
		d := f()
		total += d
		samples[i] = d.Seconds()
	}
	return total.Seconds() / float64(repeat), samples
}
