package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/tables"
)

// Table sets per experiment, mirroring §8.1's grouping.
var (
	// AllTables: everything registered that takes part in the headline
	// comparisons.
	AllTables = []string{
		"folklore", "uaGrow", "usGrow", "tsxfolklore",
		"phase", "hopscotch", "leahash",
		"folly", "cuckoo", "junctionlinear", "splitorder",
		"lockedchain", "shardedmap", "syncmap", "mutexmap",
	}
	// GrowingTables can grow efficiently from 4096 cells (§8.1.1), plus
	// the semi-growers started at half size (§8.1.2).
	GrowingTables = []string{
		"uaGrow", "usGrow", "paGrow", "psGrow",
		"junctionlinear", "splitorder", "leahash",
		"lockedchain", "shardedmap", "syncmap", "mutexmap",
		"cuckoo", "folly",
	}
	// SemiGrowers are initialized with half the target size (§8.1.2).
	SemiGrowers = map[string]bool{"folly": true}
	// AggTables support dependent atomic updates (insert-or-increment,
	// Fig. 5; the paper excludes tables whose interface cannot express it).
	AggTables = []string{
		"folklore", "uaGrow", "usGrow", "folly", "cuckoo",
		"lockedchain", "shardedmap", "syncmap", "mutexmap",
		"leahash", "splitorder", "junctionlinear",
	}
	// DelTables support deletion with memory reclamation (Fig. 6).
	DelTables = []string{
		"uaGrow", "usGrow", "cuckoo", "hopscotch", "splitorder",
		"junctionlinear", "leahash", "lockedchain",
		"shardedmap", "syncmap", "mutexmap",
	}
	// PoolTables compares user-thread vs pool migration (Fig. 8).
	PoolTables = []string{"uaGrow", "usGrow", "paGrow", "psGrow"}
	// TSXPresized compares the bounded tables (Fig. 9a).
	TSXPresized = []string{"folklore", "tsxfolklore"}
	// TSXGrowing compares the growing instantiations (Fig. 9b).
	TSXGrowing = []string{"uaGrow", "usGrow", "uaGrow-tsx", "usGrow-tsx"}
)

// seqInsertSeconds measures the sequential baseline for speedup columns.
func seqInsertSeconds(cfg *Config, keys []uint64, presized bool) (float64, []float64) {
	return measure(cfg.Repeat, func() time.Duration {
		capacity := uint64(4096)
		if presized {
			capacity = cfg.N
		}
		t := newTable("seq", capacity)
		h := t.Handle()
		begin := time.Now()
		for _, k := range keys {
			h.Insert(k, k)
		}
		return time.Since(begin)
	})
}

// insertScenario is the core of Figs. 2a/2b/8a/9a/9b/11a.
func insertScenario(cfg *Config, exp string, tableSet []string, presized bool) []Result {
	cfg.Defaults()
	keys := UniformKeys(cfg.N, 12345)
	seqS, seqSamples := seqInsertSeconds(cfg, keys, presized)
	header(cfg.Out, exp, "—")
	results := []Result{{Exp: exp, Table: "seq", Threads: 1,
		MOps: float64(cfg.N) / seqS / 1e6, Seconds: seqS, Samples: seqSamples, Extra: "baseline"}}
	results[0].print(cfg.Out, "%.0f")
	for _, name := range tableSet {
		for _, p := range cfg.Threads {
			secs, samples := measure(cfg.Repeat, func() time.Duration {
				capacity := uint64(4096)
				if presized {
					capacity = cfg.N
				} else if SemiGrowers[name] {
					capacity = cfg.N / 2
				}
				t := newTable(name, capacity)
				defer closeTable(t)
				hs := handlesFor(t, p)
				return run(p, cfg.N, func(w int, lo, hi uint64) {
					h := hs[w]
					for i := lo; i < hi; i++ {
						h.Insert(keys[i], keys[i])
					}
				})
			})
			r := Result{Exp: exp, Table: name, Threads: p,
				MOps: float64(cfg.N) / secs / 1e6, Seconds: secs, Samples: samples,
				Extra: fmt.Sprintf("speedup %.2fx", seqS/secs)}
			r.print(cfg.Out, "%.0f")
			results = append(results, r)
		}
	}
	return results
}

// Fig2aInsertPresized — insert 10^8 uniform keys, pre-sized table.
func Fig2aInsertPresized(cfg *Config) []Result {
	cfg.Defaults()
	return insertScenario(cfg, "fig2a insert (pre-sized)", cfg.tableSet(AllTables), true)
}

// Fig2bInsertGrowing — insert into a table starting at 4096 cells.
func Fig2bInsertGrowing(cfg *Config) []Result {
	cfg.Defaults()
	return insertScenario(cfg, "fig2b insert (growing)", cfg.tableSet(GrowingTables), false)
}

// findScenario backs Figs. 3a/3b/11b.
func findScenario(cfg *Config, exp string, hit bool) []Result {
	cfg.Defaults()
	keys := UniformKeys(cfg.N, 12345)
	var lookups []uint64
	if hit {
		lookups = append([]uint64(nil), keys...)
		r := rand.New(rand.NewSource(7))
		r.Shuffle(len(lookups), func(i, j int) { lookups[i], lookups[j] = lookups[j], lookups[i] })
	} else {
		lookups = UniformKeys(cfg.N, 777) // fresh keys: almost surely absent
	}
	// Sequential baseline.
	seqS, seqSamples := measure(cfg.Repeat, func() time.Duration {
		t := newTable("seq", cfg.N)
		prefill(t, keys)
		h := t.Handle()
		begin := time.Now()
		var sink uint64
		for _, k := range lookups {
			v, _ := h.Find(k)
			sink += v
		}
		_ = sink
		return time.Since(begin)
	})
	header(cfg.Out, exp, "—")
	results := []Result{{Exp: exp, Table: "seq", Threads: 1,
		MOps: float64(cfg.N) / seqS / 1e6, Seconds: seqS, Samples: seqSamples, Extra: "baseline"}}
	results[0].print(cfg.Out, "%.0f")
	for _, name := range cfg.tableSet(AllTables) {
		t := newTable(name, cfg.N)
		prefill(t, keys)
		for _, p := range cfg.Threads {
			hs := handlesFor(t, p)
			secs, samples := measure(cfg.Repeat, func() time.Duration {
				return run(p, cfg.N, func(w int, lo, hi uint64) {
					h := hs[w]
					var sink uint64
					for i := lo; i < hi; i++ {
						v, _ := h.Find(lookups[i])
						sink += v
					}
					_ = sink
				})
			})
			r := Result{Exp: exp, Table: name, Threads: p,
				MOps: float64(cfg.N) / secs / 1e6, Seconds: secs, Samples: samples,
				Extra: fmt.Sprintf("speedup %.2fx", seqS/secs)}
			r.print(cfg.Out, "%.0f")
			results = append(results, r)
		}
		closeTable(t)
	}
	return results
}

// Fig3aFindSuccess — successful finds on a filled table.
func Fig3aFindSuccess(cfg *Config) []Result { return findScenario(cfg, "fig3a find (hit)", true) }

// Fig3bFindMiss — unsuccessful finds.
func Fig3bFindMiss(cfg *Config) []Result { return findScenario(cfg, "fig3b find (miss)", false) }

// contentionScenario backs Figs. 4a/4b: the table holds 1..U; the op
// stream is Zipf-skewed with exponent s.
func contentionScenario(cfg *Config, exp string, update bool) []Result {
	cfg.Defaults()
	universe := cfg.N
	p := cfg.Threads[len(cfg.Threads)-1]
	header(cfg.Out, exp, "skew s")
	var results []Result
	fill := make([]uint64, universe)
	for i := range fill {
		fill[i] = uint64(i) + 1
	}
	for _, name := range cfg.tableSet(AllTables) {
		t := newTable(name, universe)
		prefill(t, fill)
		hs := handlesFor(t, p)
		for _, s := range cfg.Skews {
			zipf := ZipfKeys(cfg.N, universe, s, uint64(s*1000)+3)
			secs, samples := measure(cfg.Repeat, func() time.Duration {
				return run(p, cfg.N, func(w int, lo, hi uint64) {
					h := hs[w]
					if update {
						for i := lo; i < hi; i++ {
							h.Update(zipf[i], i, tables.Overwrite)
						}
					} else {
						var sink uint64
						for i := lo; i < hi; i++ {
							v, _ := h.Find(zipf[i])
							sink += v
						}
						_ = sink
					}
				})
			})
			r := Result{Exp: exp, Table: name, Threads: p, Param: s,
				MOps: float64(cfg.N) / secs / 1e6, Seconds: secs, Samples: samples}
			r.print(cfg.Out, "%.2f")
			results = append(results, r)
		}
		closeTable(t)
	}
	return results
}

// Fig4aUpdateContention — overwrite updates under Zipf skew.
func Fig4aUpdateContention(cfg *Config) []Result {
	return contentionScenario(cfg, "fig4a update (contention)", true)
}

// Fig4bFindContention — reads under Zipf skew (contended reads profit
// from caching; the paper's 5×/10× sequential lines).
func Fig4bFindContention(cfg *Config) []Result {
	return contentionScenario(cfg, "fig4b find (contention)", false)
}

// aggScenario backs Figs. 5a/5b: insert-or-increment over a Zipf stream.
func aggScenario(cfg *Config, exp string, presized bool) []Result {
	cfg.Defaults()
	universe := cfg.N
	p := cfg.Threads[len(cfg.Threads)-1]
	header(cfg.Out, exp, "skew s")
	var results []Result
	for _, name := range cfg.tableSet(AggTables) {
		if caps, ok := tables.Lookup(name); !presized && ok && caps.Growing == "no" {
			continue // bounded tables cannot run the growing variant
		}
		for _, s := range cfg.Skews {
			zipf := ZipfKeys(cfg.N, universe, s, uint64(s*1000)+11)
			secs, samples := measure(cfg.Repeat, func() time.Duration {
				capacity := uint64(4096)
				if presized {
					capacity = universe
				} else if SemiGrowers[name] {
					capacity = universe / 2
				}
				t := newTable(name, capacity)
				defer closeTable(t)
				hs := handlesFor(t, p)
				return run(p, cfg.N, func(w int, lo, hi uint64) {
					h := hs[w]
					if a, ok := h.(tables.Adder); ok {
						for i := lo; i < hi; i++ {
							a.InsertOrAdd(zipf[i], 1)
						}
						return
					}
					for i := lo; i < hi; i++ {
						h.InsertOrUpdate(zipf[i], 1, tables.AddFn)
					}
				})
			})
			r := Result{Exp: exp, Table: name, Threads: p, Param: s,
				MOps: float64(cfg.N) / secs / 1e6, Seconds: secs, Samples: samples}
			r.print(cfg.Out, "%.2f")
			results = append(results, r)
		}
	}
	return results
}

// Fig5aAggPresized — aggregation into a pre-sized table.
func Fig5aAggPresized(cfg *Config) []Result {
	return aggScenario(cfg, "fig5a aggregation (pre-sized)", true)
}

// Fig5bAggGrowing — aggregation with growing from 4096 cells.
func Fig5bAggGrowing(cfg *Config) []Result {
	return aggScenario(cfg, "fig5b aggregation (growing)", false)
}

// deleteScenario backs Figs. 6/8b: a sliding window of live keys —
// each op is one insert plus one delete, the table size stays ~window.
func deleteScenario(cfg *Config, exp string, tableSet []string, includePhase bool) []Result {
	cfg.Defaults()
	window := cfg.N / 10
	if window < BlockOps {
		window = BlockOps
	}
	keys := UniformKeys(cfg.N+window, 4242)
	header(cfg.Out, exp, "—")
	var results []Result
	for _, name := range tableSet {
		for _, p := range cfg.Threads {
			secs, samples := measure(cfg.Repeat, func() time.Duration {
				t := newTable(name, window*3/2) // 1.5× window, §8.4
				defer closeTable(t)
				prefill(t, keys[:window])
				hs := handlesFor(t, p)
				return run(p, cfg.N, func(w int, lo, hi uint64) {
					h := hs[w]
					for i := lo; i < hi; i++ {
						h.Insert(keys[window+i], i)
						h.Delete(keys[i])
					}
				})
			})
			r := Result{Exp: exp, Table: name, Threads: p,
				MOps: float64(cfg.N) / secs / 1e6, Seconds: secs, Samples: samples,
				Extra: "1 op = insert+delete"}
			r.print(cfg.Out, "%.0f")
			results = append(results, r)
		}
	}
	// The phase-concurrent table runs the same workload in globally
	// synchronized alternating phases (its concurrency model, §8.1.3).
	if includePhase {
		results = append(results, phaseDeleteRuns(cfg, exp, keys, window)...)
	}
	return results
}

// phaseDeleteRuns measures the phase-concurrent table on the sliding
// window workload with phase barriers between insert and delete rounds.
func phaseDeleteRuns(cfg *Config, exp string, keys []uint64, window uint64) []Result {
	var results []Result
	// One phase round inserts `round` keys before the matching deletes;
	// it must fit the 1.5×window capacity alongside the live window.
	round := window
	for _, p := range cfg.Threads {
		secs, samples := measure(cfg.Repeat, func() time.Duration {
			t := newTable("phase", window*3/2)
			prefill(t, keys[:window])
			hs := handlesFor(t, p)
			begin := time.Now()
			for base := uint64(0); base < cfg.N; base += round {
				end := base + round
				if end > cfg.N {
					end = cfg.N
				}
				// Insert phase.
				run(p, end-base, func(w int, lo, hi uint64) {
					h := hs[w]
					for i := base + lo; i < base+hi; i++ {
						h.Insert(keys[window+i], i)
					}
				})
				// Delete phase.
				run(p, end-base, func(w int, lo, hi uint64) {
					h := hs[w]
					for i := base + lo; i < base+hi; i++ {
						h.Delete(keys[i])
					}
				})
			}
			return time.Since(begin)
		})
		r := Result{Exp: exp, Table: "phase", Threads: p,
			MOps: float64(cfg.N) / secs / 1e6, Seconds: secs, Samples: samples,
			Extra: "phased rounds"}
		r.print(cfg.Out, "%.0f")
		results = append(results, r)
	}
	return results
}

// Fig6Delete — the deletion benchmark.
func Fig6Delete(cfg *Config) []Result {
	cfg.Defaults()
	return deleteScenario(cfg, "fig6 insert+delete window", cfg.tableSet(DelTables), true)
}

// mixScenario backs Figs. 7a/7b: wp% inserts, the rest finds of keys
// inserted ≥ 8192·p operations earlier (§8.4 "Mixed Insertions and
// Finds").
func mixScenario(cfg *Config, exp string, presized bool) []Result {
	cfg.Defaults()
	p := cfg.Threads[len(cfg.Threads)-1]
	pre := uint64(8192 * p)
	insertKeys := UniformKeys(cfg.N+pre, 900)
	rnd := rand.New(rand.NewSource(31))
	header(cfg.Out, exp, "wp %")
	var results []Result
	set := cfg.tableSet(AllTables)
	for _, name := range set {
		if name == "phase" {
			continue // mixed op kinds violate phase concurrency
		}
		if caps, ok := tables.Lookup(name); !presized && ok && caps.Growing == "no" {
			continue // bounded tables cannot run the growing variant
		}
		for _, wp := range cfg.WPs {
			// Precompute the op stream: kind + key.
			type op struct {
				insert bool
				key    uint64
			}
			ops := make([]op, cfg.N)
			inserted := pre
			for i := range ops {
				if rnd.Intn(100) < wp {
					ops[i] = op{insert: true, key: insertKeys[inserted]}
					inserted++
				} else {
					// A key inserted at least `pre` ops earlier.
					j := uint64(rnd.Int63n(int64(inserted-pre) + 1))
					ops[i] = op{key: insertKeys[j]}
				}
			}
			secs, samples := measure(cfg.Repeat, func() time.Duration {
				capacity := pre + uint64(float64(wp)/100*float64(cfg.N))
				if !presized {
					if SemiGrowers[name] {
						capacity = capacity / 2
					} else {
						capacity = 4096
					}
				}
				t := newTable(name, capacity)
				defer closeTable(t)
				prefill(t, insertKeys[:pre])
				hs := handlesFor(t, p)
				return run(p, cfg.N, func(w int, lo, hi uint64) {
					h := hs[w]
					var sink uint64
					for i := lo; i < hi; i++ {
						if ops[i].insert {
							h.Insert(ops[i].key, i)
						} else {
							v, _ := h.Find(ops[i].key)
							sink += v
						}
					}
					_ = sink
				})
			})
			r := Result{Exp: exp, Table: name, Threads: p, Param: float64(wp),
				MOps: float64(cfg.N) / secs / 1e6, Seconds: secs, Samples: samples}
			r.print(cfg.Out, "%.0f")
			results = append(results, r)
		}
	}
	return results
}

// Fig7aMixPresized — mixed finds/inserts, pre-sized.
func Fig7aMixPresized(cfg *Config) []Result {
	return mixScenario(cfg, "fig7a mixed ops (pre-sized)", true)
}

// Fig7bMixGrowing — mixed finds/inserts with growing.
func Fig7bMixGrowing(cfg *Config) []Result {
	return mixScenario(cfg, "fig7b mixed ops (growing)", false)
}

// Fig8aPoolInsert — dedicated-pool vs enslavement migration, growing
// inserts.
func Fig8aPoolInsert(cfg *Config) []Result {
	cfg.Defaults()
	return insertScenario(cfg, "fig8a pool vs user migration (insert)", PoolTables, false)
}

// Fig8bPoolDelete — dedicated-pool vs enslavement on the deletion
// workload (frequent small migrations stress pool wakeups, §8.4).
func Fig8bPoolDelete(cfg *Config) []Result {
	cfg.Defaults()
	return deleteScenario(cfg, "fig8b pool vs user migration (delete)", PoolTables, false)
}

// Fig9aTSXPresized — tsxfolklore vs folklore, pre-sized inserts.
func Fig9aTSXPresized(cfg *Config) []Result {
	cfg.Defaults()
	return insertScenario(cfg, "fig9a TSX (pre-sized insert)", TSXPresized, true)
}

// Fig9bTSXGrowing — TSX-instantiated growing variants.
func Fig9bTSXGrowing(cfg *Config) []Result {
	cfg.Defaults()
	return insertScenario(cfg, "fig9b TSX (growing insert)", TSXGrowing, false)
}

// Fig10Memory — unsuccessful-find throughput vs memory footprint for a
// sweep of initial sizes (§8.4 "Memory Consumption").
func Fig10Memory(cfg *Config) []Result {
	cfg.Defaults()
	keys := UniformKeys(cfg.N, 12345)
	misses := UniformKeys(cfg.N, 888)
	p := cfg.Threads[len(cfg.Threads)-1]
	factors := []float64{0.5, 1.0, 1.25, 1.5, 2.0, 2.5, 3.0}
	header(cfg.Out, "fig10 memory vs miss-find throughput", "size factor")
	var results []Result
	for _, name := range cfg.tableSet(AllTables) {
		caps, _ := tables.Lookup(name)
		grower := caps.Growing != "no" && caps.Growing != "const factor"
		sweep := factors
		if grower {
			sweep = append([]float64{0}, factors...) // 0 ⇒ start at 4096 (dashed lines)
		} else {
			// Bounded tables need headroom above the element count; with
			// power-of-two N the 0.5× point would be exactly full.
			sweep = factors[1:]
		}
		for _, f := range sweep {
			capacity := uint64(4096)
			if f > 0 {
				capacity = uint64(f * float64(cfg.N))
			}
			t := newTable(name, capacity)
			prefill(t, keys)
			var bytes uint64
			if mu, ok := t.(tables.MemUser); ok {
				bytes = mu.MemBytes()
			}
			hs := handlesFor(t, p)
			secs, samples := measure(cfg.Repeat, func() time.Duration {
				return run(p, cfg.N, func(w int, lo, hi uint64) {
					h := hs[w]
					var sink uint64
					for i := lo; i < hi; i++ {
						v, _ := h.Find(misses[i])
						sink += v
					}
					_ = sink
				})
			})
			// Param is the deterministic sweep factor (the independent
			// variable), so data points keep stable identities across
			// reports; the measured footprint rides along in Bytes.
			extra := fmt.Sprintf("%.3f GiB", float64(bytes)/(1<<30))
			if bytes == 0 {
				extra = "no byte accounting"
			}
			if f == 0 {
				extra += ", grown from 4096"
			}
			r := Result{Exp: "fig10", Table: name, Threads: p, Param: f, Bytes: bytes,
				MOps: float64(cfg.N) / secs / 1e6, Seconds: secs, Samples: samples, Extra: extra}
			r.print(cfg.Out, "%.2f")
			results = append(results, r)
			closeTable(t)
		}
	}
	return results
}

// Fig11aManyThreads — growing inserts over a wide thread sweep (the
// paper's 4-socket machine; here GOMAXPROCS oversubscription).
func Fig11aManyThreads(cfg *Config) []Result {
	cfg.Defaults()
	cfg.Threads = []int{1, 2, 4, 8, 16, 32, 64}
	return insertScenario(cfg, "fig11a insert growing (wide sweep)", cfg.tableSet(GrowingTables), false)
}

// Fig11bManyThreads — unsuccessful finds over a wide thread sweep.
func Fig11bManyThreads(cfg *Config) []Result {
	cfg.Defaults()
	cfg.Threads = []int{1, 2, 4, 8, 16, 32, 64}
	return findScenario(cfg, "fig11b find miss (wide sweep)", false)
}

// Table1 prints the functionality matrix (Table 1 of the paper).
func Table1(cfg *Config) []Result {
	cfg.Defaults()
	fmt.Fprintf(cfg.Out, "\n== Table 1: table functionalities ==\n")
	fmt.Fprintf(cfg.Out, "%-16s %-24s %-22s %-28s %-9s %-9s %s\n",
		"name", "interface", "growing", "atomic updates", "deletion", "generic", "reference")
	for _, c := range tables.All() {
		del, gen := "-", "-"
		if c.Deletion {
			del = "yes"
		}
		if c.GeneralTypes {
			gen = "yes"
		}
		fmt.Fprintf(cfg.Out, "%-16s %-24s %-22s %-28s %-9s %-9s %s\n",
			c.Name, c.StdInterface, c.Growing, c.AtomicUpdates, del, gen, c.Reference)
	}
	return nil
}

// tableSet intersects the configured table filter with a default set.
func (c *Config) tableSet(def []string) []string {
	if len(c.Tables) == 0 {
		return def
	}
	var out []string
	for _, want := range c.Tables {
		for _, d := range def {
			if want == d {
				out = append(out, want)
				break
			}
		}
	}
	if len(out) == 0 {
		return c.Tables // explicit names outside the default set
	}
	return out
}

// Experiments maps experiment ids to their runners.
var Experiments = map[string]func(*Config) []Result{
	"table1": Table1,
	"fig2a":  Fig2aInsertPresized,
	"fig2b":  Fig2bInsertGrowing,
	"fig3a":  Fig3aFindSuccess,
	"fig3b":  Fig3bFindMiss,
	"fig4a":  Fig4aUpdateContention,
	"fig4b":  Fig4bFindContention,
	"fig5a":  Fig5aAggPresized,
	"fig5b":  Fig5bAggGrowing,
	"fig6":   Fig6Delete,
	"fig7a":  Fig7aMixPresized,
	"fig7b":  Fig7bMixGrowing,
	"fig8a":  Fig8aPoolInsert,
	"fig8b":  Fig8bPoolDelete,
	"fig9a":  Fig9aTSXPresized,
	"fig9b":  Fig9bTSXGrowing,
	"fig10":  Fig10Memory,
	"fig11a": Fig11aManyThreads,
	"fig11b": Fig11bManyThreads,
	"sweep":  SweepCycle,
}

// Order is the canonical experiment order for "-exp all".
var Order = []string{
	"table1", "fig2a", "fig2b", "fig3a", "fig3b", "fig4a", "fig4b",
	"fig5a", "fig5b", "fig6", "fig7a", "fig7b", "fig8a", "fig8b",
	"fig9a", "fig9b", "fig10", "fig11a", "fig11b", "sweep",
}
