package bench

import (
	"strings"
	"testing"
	"time"

	_ "repro/internal/baselines"
	_ "repro/internal/core"
)

// small returns a config sized for test runtime.
func small() *Config {
	c := &Config{
		N:       1 << 14,
		Threads: []int{2},
		Skews:   []float64{0.5, 1.25},
		WPs:     []int{30},
		Repeat:  1,
		Tables:  []string{"uaGrow", "usGrow", "mutexmap"},
	}
	c.Defaults()
	return c
}

// TestEveryExperimentRuns executes each experiment end to end at a tiny
// scale — a smoke test that the harness regenerates every figure.
func TestEveryExperimentRuns(t *testing.T) {
	for _, id := range Order {
		id := id
		t.Run(id, func(t *testing.T) {
			cfg := small()
			var sb strings.Builder
			cfg.Out = &sb
			results := Experiments[id](cfg)
			if id == "table1" {
				if !strings.Contains(sb.String(), "uaGrow") {
					t.Fatal("table1 output missing rows")
				}
				return
			}
			if len(results) == 0 {
				t.Fatal("no results")
			}
			for _, r := range results {
				if r.Seconds <= 0 || r.MOps <= 0 {
					t.Fatalf("%s %s: degenerate measurement %+v", id, r.Table, r)
				}
				// Every data point must carry its raw repeats so BENCH
				// reports serialize losslessly.
				if len(r.Samples) != cfg.Repeat {
					t.Fatalf("%s %s: %d samples, want Repeat=%d", id, r.Table, len(r.Samples), cfg.Repeat)
				}
				for _, s := range r.Samples {
					if s <= 0 {
						t.Fatalf("%s %s: non-positive sample %v", id, r.Table, r.Samples)
					}
				}
			}
		})
	}
}

// TestExperimentsCoverPaper: every figure and table of §8 has a runner.
func TestExperimentsCoverPaper(t *testing.T) {
	want := []string{"table1", "fig2a", "fig2b", "fig3a", "fig3b", "fig4a",
		"fig4b", "fig5a", "fig5b", "fig6", "fig7a", "fig7b", "fig8a",
		"fig8b", "fig9a", "fig9b", "fig10", "fig11a", "fig11b",
		"sweep"} // the cache sweeper cycle rides along with the §8 figures
	for _, id := range want {
		if _, ok := Experiments[id]; !ok {
			t.Errorf("experiment %s missing", id)
		}
	}
	if len(Order) != len(want) {
		t.Fatalf("Order has %d entries, want %d", len(Order), len(want))
	}
}

func TestUniformKeysDeterministic(t *testing.T) {
	a := UniformKeys(1000, 7)
	b := UniformKeys(1000, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("keys not deterministic")
		}
		if a[i] == 0 {
			t.Fatal("zero key generated")
		}
	}
	c := UniformKeys(1000, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 2 {
		t.Fatal("different seeds produced same keys")
	}
}

func TestZipfKeysRange(t *testing.T) {
	keys := ZipfKeys(10000, 500, 1.1, 3)
	for _, k := range keys {
		if k < 1 || k > 500 {
			t.Fatalf("key %d out of range", k)
		}
	}
}

func TestMeasureKeepsSamples(t *testing.T) {
	durs := []time.Duration{time.Second, 3 * time.Second, 2 * time.Second}
	i := 0
	avg, samples := measure(len(durs), func() time.Duration {
		d := durs[i]
		i++
		return d
	})
	if avg != 2 {
		t.Fatalf("avg %v, want 2", avg)
	}
	want := []float64{1, 3, 2}
	for j := range want {
		if samples[j] != want[j] {
			t.Fatalf("samples %v, want %v (order preserved, unaveraged)", samples, want)
		}
	}
}

func TestRunDealsAllOps(t *testing.T) {
	var hit = make([]uint64, 3*BlockOps+17)
	run(4, uint64(len(hit)), func(w int, lo, hi uint64) {
		for i := lo; i < hi; i++ {
			hit[i]++
		}
	})
	for i, h := range hit {
		if h != 1 {
			t.Fatalf("op %d executed %d times", i, h)
		}
	}
}
