// Package lathist is a fixed-footprint concurrent latency histogram for
// the service load generator: geometric buckets (7% wide) from 1µs to
// ~45 minutes, recorded with one atomic add per sample, so many
// connection callbacks can feed one histogram without coordination.
// Quantiles are read in quiescence and are exact up to the bucket
// resolution (≤7% relative error), which is far below run-to-run
// network jitter.
package lathist

import (
	"math"
	"sync/atomic"
	"time"
)

const (
	// base is the upper bound of bucket 0.
	base = time.Microsecond
	// ratio is the geometric bucket growth factor.
	ratio = 1.07
	// buckets spans base·ratio^320 ≈ 45 min; slower samples clamp into
	// the last bucket.
	buckets = 320
)

var invLogRatio = 1 / math.Log(ratio)

// H is a concurrent latency histogram. The zero value is ready to use.
type H struct {
	n   atomic.Uint64
	sum atomic.Int64 // nanoseconds; saturation is ~292 years of latency
	b   [buckets]atomic.Uint64
}

// index maps a duration to its bucket.
func index(d time.Duration) int {
	if d <= base {
		return 0
	}
	i := int(math.Log(float64(d)/float64(base))*invLogRatio) + 1
	if i >= buckets {
		return buckets - 1
	}
	return i
}

// upper is the inclusive upper bound of bucket i.
func upper(i int) time.Duration {
	return time.Duration(float64(base) * math.Pow(ratio, float64(i)))
}

// Record adds one sample. Safe for concurrent use.
func (h *H) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.b[index(d)].Add(1)
	h.n.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of recorded samples.
func (h *H) Count() uint64 { return h.n.Load() }

// Mean returns the average sample.
func (h *H) Mean() time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(uint64(h.sum.Load()) / n)
}

// Quantile returns the q-quantile (0 < q ≤ 1) as the upper bound of the
// bucket holding the q·Count-th sample. Call in quiescence: concurrent
// Records give a harmless approximate answer.
func (h *H) Quantile(q float64) time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	target := uint64(q * float64(n))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := 0; i < buckets; i++ {
		cum += h.b[i].Load()
		if cum >= target {
			return upper(i)
		}
	}
	return upper(buckets - 1)
}
