package lathist

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestQuantileAccuracy(t *testing.T) {
	var h H
	r := rand.New(rand.NewSource(1))
	samples := make([]time.Duration, 100000)
	for i := range samples {
		// Log-uniform over ~1µs..1s, the latency range of interest.
		d := time.Duration(float64(time.Microsecond) * math.Pow(10, r.Float64()*6))
		samples[i] = d
		h.Record(d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	if h.Count() != uint64(len(samples)) {
		t.Fatalf("count %d want %d", h.Count(), len(samples))
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		exact := samples[int(q*float64(len(samples)))-1]
		got := h.Quantile(q)
		// The histogram answers the bucket upper bound: within one bucket
		// (7%) of the exact order statistic, plus one-off-by-rank slack.
		if got < time.Duration(float64(exact)*0.90) || got > time.Duration(float64(exact)*1.16) {
			t.Fatalf("q%.2f = %v, exact %v (outside bucket tolerance)", q, got, exact)
		}
	}
}

func TestEdgeCases(t *testing.T) {
	var h H
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must answer zero")
	}
	h.Record(-time.Second) // clamps to 0
	h.Record(0)
	h.Record(time.Nanosecond)
	if got := h.Quantile(1); got != base {
		t.Fatalf("sub-base samples land in bucket 0 (upper %v), got %v", base, got)
	}
	h.Record(24 * time.Hour) // clamps into the last bucket
	if got := h.Quantile(1); got != upper(buckets-1) {
		t.Fatalf("oversized sample must clamp to last bucket, got %v", got)
	}
}

func TestConcurrentRecord(t *testing.T) {
	var h H
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(w+1) * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("lost samples: %d want %d", h.Count(), workers*per)
	}
	med := h.Quantile(0.5)
	if med < 3*time.Millisecond || med > 6*time.Millisecond {
		t.Fatalf("median %v outside [3ms, 6ms]", med)
	}
}
