package report

import (
	"fmt"
	"io"
)

// DefaultTolerance is the fractional MOps drop a data point may show
// before it counts as a regression. Smoke-scale runs (small -n, shared
// CI hosts) are noisy even with median-of-repeats, so the default is
// deliberately loose; tighten it per invocation once variance data for
// a given environment accumulates.
const DefaultTolerance = 0.35

// Status classifies one compared data point.
type Status string

const (
	StatusOK           Status = "ok"            // within tolerance
	StatusRegression   Status = "regression"    // slower than baseline beyond tolerance
	StatusImproved     Status = "improved"      // faster than baseline beyond tolerance
	StatusBaselineOnly Status = "baseline-only" // in baseline, not measured now
	StatusCurrentOnly  Status = "current-only"  // measured now, not in baseline
)

// Verdict is the per-scenario outcome of a comparison.
type Verdict struct {
	Key      string  `json:"key"`
	Exp      string  `json:"exp"`
	Table    string  `json:"table"`
	Threads  int     `json:"threads"`
	Param    float64 `json:"param,omitempty"`
	BaseMOps float64 `json:"base_mops,omitempty"` // median-of-repeats
	CurMOps  float64 `json:"cur_mops,omitempty"`  // median-of-repeats
	Ratio    float64 `json:"ratio,omitempty"`     // cur/base; <1 is slower
	Status   Status  `json:"status"`
}

// Comparison is the result of comparing a current report against a
// baseline. Only matched keys can regress; keys present on one side
// only are reported but never fail the gate (the smoke set is a
// deliberate subset of the full sweep).
type Comparison struct {
	Tolerance    float64   `json:"tolerance"`
	Verdicts     []Verdict `json:"verdicts"`
	Matched      int       `json:"matched"`
	Regressions  int       `json:"regressions"`
	Improvements int       `json:"improvements"`
	Warnings     []string  `json:"warnings,omitempty"`
}

// OK reports whether the gate passes: at least one data point matched
// and none regressed beyond tolerance. Zero matches means the two
// reports measured disjoint scenario cells — passing that silently
// would make a misconfigured gate look green.
func (c *Comparison) OK() bool { return c.Matched > 0 && c.Regressions == 0 }

// Compare evaluates cur against base with the given fractional
// tolerance (<=0 selects DefaultTolerance). Throughput on both sides
// is the median of repeats. Config divergence (different N, Repeat, or
// thread sweep) does not abort — rates mostly cancel op counts — but
// is surfaced as warnings since it weakens the comparison.
func Compare(base, cur *Report, tolerance float64) *Comparison {
	if tolerance <= 0 {
		tolerance = DefaultTolerance
	}
	c := &Comparison{Tolerance: tolerance}
	if base.Config.N != cur.Config.N {
		c.Warnings = append(c.Warnings, fmt.Sprintf(
			"baseline ran -n %d, current -n %d: growing/migration costs differ", base.Config.N, cur.Config.N))
	}
	if base.Config.Repeat != cur.Config.Repeat {
		c.Warnings = append(c.Warnings, fmt.Sprintf(
			"baseline ran -repeat %d, current -repeat %d: medians have different robustness",
			base.Config.Repeat, cur.Config.Repeat))
	}
	if base.Env.NumCPU != cur.Env.NumCPU || base.Env.CPUModel != cur.Env.CPUModel {
		c.Warnings = append(c.Warnings, fmt.Sprintf(
			"environments differ (baseline %d×%q, current %d×%q): absolute rates are not comparable across hardware",
			base.Env.NumCPU, base.Env.CPUModel, cur.Env.NumCPU, cur.Env.CPUModel))
	}

	baseByKey := make(map[string]Record, len(base.Results))
	for _, r := range base.Results {
		baseByKey[r.Key()] = r
	}
	seen := make(map[string]bool, len(cur.Results))
	for _, r := range cur.Results {
		key := r.Key()
		v := Verdict{Key: key, Exp: r.Exp, Table: r.Table, Threads: r.Threads, Param: r.Param}
		b, ok := baseByKey[key]
		if !ok {
			v.CurMOps = r.MedianMOps()
			v.Status = StatusCurrentOnly
			c.Verdicts = append(c.Verdicts, v)
			continue
		}
		seen[key] = true
		c.Matched++
		v.BaseMOps = b.MedianMOps()
		v.CurMOps = r.MedianMOps()
		switch {
		case v.BaseMOps <= 0:
			v.Status = StatusOK // degenerate baseline point cannot gate
		default:
			v.Ratio = v.CurMOps / v.BaseMOps
			switch {
			case v.Ratio < 1-tolerance:
				v.Status = StatusRegression
				c.Regressions++
			case v.Ratio > 1+tolerance:
				v.Status = StatusImproved
				c.Improvements++
			default:
				v.Status = StatusOK
			}
		}
		c.Verdicts = append(c.Verdicts, v)
	}
	for _, r := range base.Results {
		if key := r.Key(); !seen[key] {
			c.Verdicts = append(c.Verdicts, Verdict{
				Key: key, Exp: r.Exp, Table: r.Table, Threads: r.Threads, Param: r.Param,
				BaseMOps: r.MedianMOps(), Status: StatusBaselineOnly,
			})
		}
	}
	if c.Matched == 0 {
		c.Warnings = append(c.Warnings,
			"no data points matched the baseline: check -exp/-tables/-threads against the baseline's recorded command")
	}
	return c
}

// Format renders the comparison as the human-readable gate log.
func (c *Comparison) Format(w io.Writer) {
	for _, warn := range c.Warnings {
		fmt.Fprintf(w, "warning: %s\n", warn)
	}
	fmt.Fprintf(w, "%-44s %-16s %10s %10s %7s  %s\n",
		"experiment", "table", "base", "current", "ratio", "verdict")
	for _, v := range c.Verdicts {
		cell := v.Table
		if v.Param != 0 {
			cell = fmt.Sprintf("%s@%g", v.Table, v.Param)
		}
		if v.Threads != 0 {
			cell = fmt.Sprintf("%s t%d", cell, v.Threads)
		}
		switch v.Status {
		case StatusBaselineOnly:
			fmt.Fprintf(w, "%-44s %-16s %10.2f %10s %7s  %s\n", v.Exp, cell, v.BaseMOps, "—", "—", v.Status)
		case StatusCurrentOnly:
			fmt.Fprintf(w, "%-44s %-16s %10s %10.2f %7s  %s\n", v.Exp, cell, "—", v.CurMOps, "—", v.Status)
		default:
			fmt.Fprintf(w, "%-44s %-16s %10.2f %10.2f %7.3f  %s\n",
				v.Exp, cell, v.BaseMOps, v.CurMOps, v.Ratio, v.Status)
		}
	}
	fmt.Fprintf(w, "matched %d, regressions %d, improvements %d (tolerance ±%.0f%%)\n",
		c.Matched, c.Regressions, c.Improvements, c.Tolerance*100)
}
