// Package report defines the versioned, machine-readable benchmark
// report format (BENCH_*.json) for the §8 evaluation suite, plus the
// noise-tolerant comparator behind `growbench -compare` and the CI
// bench-smoke gate.
//
// A report captures everything needed to interpret a number months
// later: the exact run configuration, the environment it ran in (go
// version, GOMAXPROCS, CPU model, git SHA), the command that produced
// it, and per-scenario results carrying the raw per-repeat samples so
// comparisons can use the median instead of a mean that one noisy
// repeat can drag.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/bench"
)

// SchemaVersion is bumped on any incompatible change to the JSON
// layout. Load rejects files written by a different major schema so a
// stale baseline fails loudly instead of comparing garbage.
const SchemaVersion = 1

// Report is the root of a BENCH_*.json file.
type Report struct {
	SchemaVersion int         `json:"schema_version"`
	GeneratedAt   string      `json:"generated_at,omitempty"` // RFC 3339 UTC
	Command       string      `json:"command,omitempty"`      // how to regenerate this file
	Env           Environment `json:"env"`
	Config        RunConfig   `json:"config"`
	Results       []Record    `json:"results"`
}

// Environment records where a report was measured. Throughput numbers
// are only comparable within similar environments; the comparator
// warns when configs diverge but cannot see hardware drift — that is
// what these fields are for.
type Environment struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	CPUModel   string `json:"cpu_model,omitempty"`
	GitSHA     string `json:"git_sha,omitempty"`
	Hostname   string `json:"hostname,omitempty"`
}

// RunConfig is the serializable subset of bench.Config.
type RunConfig struct {
	N       uint64    `json:"n"`
	Threads []int     `json:"threads"`
	Tables  []string  `json:"tables,omitempty"` // explicit filter, empty = scenario defaults
	Skews   []float64 `json:"skews,omitempty"`
	WPs     []int     `json:"wps,omitempty"`
	Repeat  int       `json:"repeat"`
}

// KindService marks records measured through the network service layer
// (growd + growload) rather than in-process: MOps is end-to-end served
// throughput and the latency percentiles are populated. Table-scenario
// records leave Kind empty. The comparator needs no special case — the
// throughput gate works identically on both kinds.
const KindService = "service"

// Record is one measured data point — a lossless serialization of
// bench.Result. SampleSecs holds the unaveraged wall time of each
// repeat; Seconds and MOps are the harness's mean-of-repeats values.
// Service-kind records additionally carry client-observed latency
// percentiles in microseconds.
type Record struct {
	Kind       string    `json:"kind,omitempty"` // "" = table scenario, KindService = served
	Exp        string    `json:"exp"`
	Table      string    `json:"table"`
	Threads    int       `json:"threads"`
	Param      float64   `json:"param,omitempty"`
	ParamName  string    `json:"param_name,omitempty"` // skew | wp | size factor
	MOps       float64   `json:"mops"`
	Seconds    float64   `json:"seconds"`
	SampleSecs []float64 `json:"sample_secs,omitempty"`
	Bytes      uint64    `json:"bytes,omitempty"` // live backing memory (fig10)
	Extra      string    `json:"extra,omitempty"`

	// ExtraMap carries machine-readable auxiliary figures keyed by
	// name — growload records the server-side stats it scrapes over
	// the STATS opcode here (per-opcode exec p99s, migration counts
	// and pause percentiles, sweeper progress). Additive in schema v1:
	// absent in older files, ignored by older readers.
	ExtraMap map[string]float64 `json:"extra_map,omitempty"`

	// Latency percentiles and mean, microseconds (service records only).
	P50us  float64 `json:"p50_us,omitempty"`
	P95us  float64 `json:"p95_us,omitempty"`
	P99us  float64 `json:"p99_us,omitempty"`
	MeanUs float64 `json:"mean_us,omitempty"`
}

// Key identifies a data point across reports: two records with equal
// keys measure the same scenario cell and may be compared. Kind is part
// of the key so a service record can never gate against an in-process
// record that happens to share its exp/table/threads/param.
func (r Record) Key() string {
	return fmt.Sprintf("%s|%s|%s|t%d|p%g", r.Kind, r.Exp, r.Table, r.Threads, r.Param)
}

// MedianMOps recomputes throughput from the median repeat instead of
// the mean. With the usual Repeat=3 this discards a single noisy run
// entirely, which is what makes smoke-scale comparisons tolerable.
// Falls back to the stored mean when samples are absent or degenerate.
func (r Record) MedianMOps() float64 {
	if len(r.SampleSecs) == 0 || r.Seconds <= 0 {
		return r.MOps
	}
	s := append([]float64(nil), r.SampleSecs...)
	sort.Float64s(s)
	med := s[len(s)/2]
	if len(s)%2 == 0 {
		med = (s[len(s)/2-1] + s[len(s)/2]) / 2
	}
	if med <= 0 {
		return r.MOps
	}
	// MOps·Seconds is the op count in millions; re-divide by the median.
	return r.MOps * r.Seconds / med
}

// paramName labels the Param axis per experiment family, so a report
// is self-describing without the harness's table headers.
func paramName(exp string) string {
	switch {
	case strings.HasPrefix(exp, "fig4"), strings.HasPrefix(exp, "fig5"):
		return "skew"
	case strings.HasPrefix(exp, "fig7"):
		return "wp"
	case strings.HasPrefix(exp, "fig10"):
		return "size factor"
	}
	return ""
}

// FromResults converts harness results into records.
func FromResults(results []bench.Result) []Record {
	recs := make([]Record, 0, len(results))
	for _, r := range results {
		recs = append(recs, Record{
			Exp:        r.Exp,
			Table:      r.Table,
			Threads:    r.Threads,
			Param:      r.Param,
			ParamName:  paramName(r.Exp),
			MOps:       r.MOps,
			Seconds:    r.Seconds,
			SampleSecs: append([]float64(nil), r.Samples...),
			Bytes:      r.Bytes,
			Extra:      r.Extra,
		})
	}
	return recs
}

// New assembles a report from a run: config snapshot, captured
// environment, current timestamp, and the converted results. command
// records how to regenerate the file (satellite requirement: the
// committed baseline must carry its generation command).
func New(cfg *bench.Config, results []bench.Result, command string) *Report {
	return NewFromRecords(RunConfig{
		N:       cfg.N,
		Threads: cfg.Threads,
		Tables:  cfg.Tables,
		Skews:   cfg.Skews,
		WPs:     cfg.WPs,
		Repeat:  cfg.Repeat,
	}, FromResults(results), command)
}

// NewFromRecords assembles a report from already-built records — the
// entry point for producers that are not the §8 harness (growload's
// service scenarios). Schema versioning, environment capture, and
// timestamping stay in exactly one place.
func NewFromRecords(cfg RunConfig, recs []Record, command string) *Report {
	return &Report{
		SchemaVersion: SchemaVersion,
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		Command:       command,
		Env:           CaptureEnv(),
		Config:        cfg,
		Results:       recs,
	}
}

// Write serializes the report as indented JSON (stable field order,
// trailing newline) so committed baselines diff cleanly.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Save writes the report to path, creating or truncating it.
func (r *Report) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads and validates a report file.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("report %s: %v", path, err)
	}
	if r.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("report %s: schema version %d, this binary reads %d — regenerate the file",
			path, r.SchemaVersion, SchemaVersion)
	}
	return &r, nil
}
