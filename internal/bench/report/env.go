package report

import (
	"os"
	"os/exec"
	"runtime"
	"strings"
)

// CaptureEnv snapshots the current process environment. Every field
// beyond the runtime ones is best-effort: a missing git binary or an
// unreadable /proc/cpuinfo leaves the field empty rather than failing
// the run.
func CaptureEnv() Environment {
	env := Environment{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CPUModel:   cpuModel(),
		GitSHA:     gitSHA(),
	}
	if host, err := os.Hostname(); err == nil {
		env.Hostname = host
	}
	return env
}

// cpuModel extracts the first "model name" line from /proc/cpuinfo
// (linux only; other platforms report empty).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

// gitSHA resolves HEAD of the working tree the benchmark runs in,
// with a "-dirty" suffix when tracked files are modified.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	sha := strings.TrimSpace(string(out))
	// Untracked files (a freshly built binary, a report about to be
	// written) don't change what code was measured — only tracked
	// modifications make the SHA lie.
	if status, err := exec.Command("git", "status", "--porcelain", "--untracked-files=no").Output(); err == nil &&
		len(strings.TrimSpace(string(status))) > 0 {
		sha += "-dirty"
	}
	return sha
}
