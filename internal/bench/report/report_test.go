package report

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/bench"
)

func sampleReport() *Report {
	return &Report{
		SchemaVersion: SchemaVersion,
		GeneratedAt:   "2026-07-29T12:00:00Z",
		Command:       "growbench -exp fig2a -json out.json",
		Env: Environment{
			GoVersion: "go1.22.0", GOOS: "linux", GOARCH: "amd64",
			GOMAXPROCS: 8, NumCPU: 8, CPUModel: "Test CPU", GitSHA: "deadbeef",
		},
		Config: RunConfig{N: 1 << 16, Threads: []int{2, 4}, Repeat: 3,
			Tables: []string{"uaGrow"}, Skews: []float64{0.5}, WPs: []int{30}},
		Results: []Record{
			{Exp: "fig2a insert (pre-sized)", Table: "uaGrow", Threads: 2,
				MOps: 50, Seconds: 0.0013, SampleSecs: []float64{0.0012, 0.0013, 0.0014},
				Extra: "speedup 2.00x"},
			{Exp: "fig4a update (contention)", Table: "uaGrow", Threads: 4, Param: 1.25,
				ParamName: "skew", MOps: 40, Seconds: 0.0016,
				SampleSecs: []float64{0.0016, 0.0016, 0.0016}},
		},
	}
}

// TestRoundTrip: Save then Load must reproduce the report exactly.
func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_rt.json")
	want := sampleReport()
	if err := want.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestLoadRejectsSchemaMismatch: a future/old schema must fail loudly.
func TestLoadRejectsSchemaMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_v99.json")
	r := sampleReport()
	r.SchemaVersion = 99
	data, _ := json.Marshal(r)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Fatalf("want schema version error, got %v", err)
	}
}

// TestFromResults: bench results serialize losslessly, including the
// raw repeat samples and the param axis name.
func TestFromResults(t *testing.T) {
	in := []bench.Result{{Exp: "fig7a mixed ops (pre-sized)", Table: "usGrow", Threads: 4,
		Param: 30, MOps: 12, Seconds: 0.005, Samples: []float64{0.004, 0.005, 0.006},
		Bytes: 1 << 20, Extra: "x"}}
	recs := FromResults(in)
	if len(recs) != 1 {
		t.Fatalf("want 1 record, got %d", len(recs))
	}
	r := recs[0]
	if r.ParamName != "wp" {
		t.Errorf("fig7a param name = %q, want wp", r.ParamName)
	}
	if !reflect.DeepEqual(r.SampleSecs, in[0].Samples) {
		t.Errorf("samples not preserved: %v", r.SampleSecs)
	}
	if r.Exp != in[0].Exp || r.Table != in[0].Table || r.Threads != in[0].Threads ||
		r.Param != in[0].Param || r.MOps != in[0].MOps || r.Seconds != in[0].Seconds ||
		r.Bytes != in[0].Bytes || r.Extra != in[0].Extra {
		t.Errorf("lossy conversion: %+v", r)
	}
}

// TestMedianMOps: the median must shrug off one outlier repeat that
// would drag the mean.
func TestMedianMOps(t *testing.T) {
	// 3 repeats of 1s, 1s, 10s over 4 Mops of work: mean 4s → 1 MOps,
	// median 1s → 4 MOps.
	r := Record{MOps: 1, Seconds: 4, SampleSecs: []float64{1, 10, 1}}
	if got := r.MedianMOps(); math.Abs(got-4) > 1e-9 {
		t.Errorf("median MOps = %v, want 4", got)
	}
	// No samples: fall back to the stored mean.
	if got := (Record{MOps: 7, Seconds: 1}).MedianMOps(); got != 7 {
		t.Errorf("fallback MOps = %v, want 7", got)
	}
}

// compareOne builds two single-record reports with the given median
// throughputs and compares them at tolerance tol.
func compareOne(t *testing.T, baseMOps, curMOps, tol float64) *Comparison {
	t.Helper()
	mk := func(mops float64) *Report {
		r := sampleReport()
		r.Results = []Record{{Exp: "fig2a", Table: "uaGrow", Threads: 2,
			MOps: mops, Seconds: 1, SampleSecs: []float64{1, 1, 1}}}
		return r
	}
	return Compare(mk(baseMOps), mk(curMOps), tol)
}

// TestCompareVerdicts: at, under, and over the tolerance boundary.
func TestCompareVerdicts(t *testing.T) {
	cases := []struct {
		name           string
		base, cur, tol float64
		status         Status
		regressions    int
	}{
		{"unchanged", 100, 100, 0.25, StatusOK, 0},
		{"drop within tolerance", 100, 80, 0.25, StatusOK, 0},
		{"drop at boundary stays ok", 100, 75.0000001, 0.25, StatusOK, 0},
		{"drop beyond tolerance", 100, 74, 0.25, StatusRegression, 1},
		{"halved", 100, 50, 0.25, StatusRegression, 1},
		{"speedup", 100, 130, 0.25, StatusImproved, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := compareOne(t, tc.base, tc.cur, tc.tol)
			if c.Matched != 1 {
				t.Fatalf("matched %d, want 1", c.Matched)
			}
			if c.Verdicts[0].Status != tc.status {
				t.Errorf("status %s, want %s", c.Verdicts[0].Status, tc.status)
			}
			if c.Regressions != tc.regressions {
				t.Errorf("regressions %d, want %d", c.Regressions, tc.regressions)
			}
			if (c.Regressions == 0) != c.OK() {
				t.Error("OK() disagrees with regression count")
			}
		})
	}
}

// TestCompareUnmatchedKeys: one-sided records inform but never gate.
func TestCompareUnmatchedKeys(t *testing.T) {
	base, cur := sampleReport(), sampleReport()
	cur.Results = []Record{
		base.Results[0], // matched
		{Exp: "fig3a find (hit)", Table: "usGrow", Threads: 2, MOps: 5, Seconds: 1},
	}
	c := Compare(base, cur, 0.25)
	if !c.OK() {
		t.Fatal("unmatched keys must not regress the gate")
	}
	var currentOnly, baselineOnly int
	for _, v := range c.Verdicts {
		switch v.Status {
		case StatusCurrentOnly:
			currentOnly++
		case StatusBaselineOnly:
			baselineOnly++
		}
	}
	if currentOnly != 1 || baselineOnly != 1 {
		t.Errorf("current-only %d baseline-only %d, want 1 and 1", currentOnly, baselineOnly)
	}
}

// TestCompareZeroMatchedFails: disjoint reports must not pass the gate
// vacuously — a misconfigured -exp/-tables would otherwise look green.
func TestCompareZeroMatchedFails(t *testing.T) {
	base, cur := sampleReport(), sampleReport()
	cur.Results = []Record{{Exp: "fig6 insert+delete window", Table: "cuckoo", Threads: 2, MOps: 1, Seconds: 1}}
	c := Compare(base, cur, 0.25)
	if c.Matched != 0 {
		t.Fatalf("matched %d, want 0", c.Matched)
	}
	if c.OK() {
		t.Fatal("zero-match comparison passed the gate")
	}
	found := false
	for _, w := range c.Warnings {
		if strings.Contains(w, "no data points matched") {
			found = true
		}
	}
	if !found {
		t.Errorf("no zero-match warning in %v", c.Warnings)
	}
}

// TestCompareUsesMedian: a single noisy repeat in the current run must
// not trip the gate when the median is unchanged.
func TestCompareUsesMedian(t *testing.T) {
	base, cur := sampleReport(), sampleReport()
	base.Results = base.Results[:1]
	cur.Results = []Record{base.Results[0]}
	// Same median repeat (0.0013s) but one 10× outlier drags the mean.
	cur.Results[0].SampleSecs = []float64{0.0013, 0.013, 0.0013}
	cur.Results[0].Seconds = 0.0052
	cur.Results[0].MOps = base.Results[0].MOps / 4
	if c := Compare(base, cur, 0.25); !c.OK() {
		t.Fatalf("median comparison tripped on a single outlier: %+v", c.Verdicts)
	}
}

// TestRegressionFixture: the committed known-slower fixture must fail
// the gate against its baseline fixture — the contract the CI
// bench-smoke job relies on.
func TestRegressionFixture(t *testing.T) {
	base, err := Load(filepath.Join("testdata", "fixture_base.json"))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Load(filepath.Join("testdata", "fixture_slow.json"))
	if err != nil {
		t.Fatal(err)
	}
	c := Compare(base, slow, 0.25)
	if c.OK() {
		t.Fatal("known-slower fixture passed the gate")
	}
	// The 2× slower uaGrow row regresses; the 5% slower mutexmap row
	// stays within tolerance.
	for _, v := range c.Verdicts {
		want := StatusOK
		if v.Table == "uaGrow" {
			want = StatusRegression
		}
		if v.Status != want {
			t.Errorf("%s: status %s, want %s", v.Key, v.Status, want)
		}
	}
	// The same file compared against itself must pass.
	if c := Compare(base, base, 0.25); !c.OK() {
		t.Fatal("identical reports failed the gate")
	}
}

// TestCompareWarnsOnConfigDivergence: different -n must be surfaced.
func TestCompareWarnsOnConfigDivergence(t *testing.T) {
	base, cur := sampleReport(), sampleReport()
	cur.Config.N = base.Config.N * 2
	c := Compare(base, cur, 0.25)
	found := false
	for _, w := range c.Warnings {
		if strings.Contains(w, "-n") {
			found = true
		}
	}
	if !found {
		t.Errorf("no -n divergence warning in %v", c.Warnings)
	}
}

// TestFormatMentionsVerdicts: the gate log names every status.
func TestFormatMentionsVerdicts(t *testing.T) {
	c := compareOne(t, 100, 50, 0.25)
	var sb strings.Builder
	c.Format(&sb)
	out := sb.String()
	for _, want := range []string{"regression", "regressions 1", "tolerance"} {
		if !strings.Contains(out, want) {
			t.Errorf("format output missing %q:\n%s", want, out)
		}
	}
}

// TestServiceRecordRoundTrip: the service-kind record (growload) with
// its latency percentiles must survive Save/Load and gate through the
// comparator exactly like table-scenario records.
func TestServiceRecordRoundTrip(t *testing.T) {
	svc := Record{
		Kind: KindService, Exp: "svc-mixed", Table: "growd", Threads: 64,
		Param: 0.99, ParamName: "skew", MOps: 1.25, Seconds: 4.0,
		SampleSecs: []float64{4.0},
		Extra:      "mode=closed depth=16 wp=10 val=32B keys=100000",
		P50us:      180, P95us: 410, P99us: 950, MeanUs: 210,
	}
	rep := NewFromRecords(RunConfig{N: 5_000_000, Threads: []int{64},
		Skews: []float64{0.99}, WPs: []int{10}, Repeat: 1},
		[]Record{svc}, "growload -conns 4 -depth 16")
	path := filepath.Join(t.TempDir(), "BENCH_svc.json")
	if err := rep.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Results, rep.Results) {
		t.Fatalf("service record mangled:\n got %+v\nwant %+v", got.Results, rep.Results)
	}
	if got.Results[0].Kind != KindService || got.Results[0].P99us != 950 {
		t.Fatalf("latency fields lost: %+v", got.Results[0])
	}

	// The throughput gate sees service records like any other: a 2x
	// slowdown must regress, a matching run must pass.
	slower := *rep
	slowRec := svc
	slowRec.MOps /= 2
	slowRec.SampleSecs = []float64{8.0}
	slowRec.Seconds = 8.0
	slower.Results = []Record{slowRec}
	if c := Compare(rep, &slower, 0.25); c.OK() || c.Regressions != 1 {
		t.Fatalf("service regression not gated: %+v", c)
	}
	if c := Compare(rep, rep, 0.25); !c.OK() || c.Matched != 1 {
		t.Fatalf("identical service reports must pass: %+v", c)
	}
}
