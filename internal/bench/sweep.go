package bench

// The sweep scenario exercises the cache layer rather than a bare
// table: it measures the background expiry sweeper's full cycle over an
// already-expired population. The interesting number is not throughput
// but the visited count riding in Extra — the resumable cursor makes a
// full cycle visit each entry about once (O(n)), where the pre-cursor
// sweeper re-walked the table prefix every batch (O(n²/batch)), a
// regression this scenario makes visible as visits/entry growing with n.

import (
	"fmt"
	"time"

	growt "repro"
	"repro/internal/cache"
)

// sweepBatch is the per-SweepOnce entry budget, matching the background
// sweeper's tick batch order of magnitude.
const sweepBatch = 1024

// SweepCycle expires n entries and sweeps the cache empty in
// sweepBatch-sized increments, for several n, recording wall time and
// the per-cycle visited/removed counts.
func SweepCycle(cfg *Config) []Result {
	cfg.Defaults()
	header(cfg.Out, "sweep full expiry cycle (cache cursor sweeper)", "entries")
	var results []Result
	for _, div := range []uint64{16, 4, 1} {
		n := cfg.N / div
		if n == 0 {
			continue
		}
		var visited, removed uint64
		secs, samples := measure(cfg.Repeat, func() time.Duration {
			// Build and fill outside the timed window: the scenario times
			// the sweep, not the inserts. Every entry is stored already
			// expired (epoch deadline), so the first full cycle must
			// collect all n.
			c := cache.New[uint64, uint64](growt.WithSweepInterval(-1))
			for k := uint64(1); k <= n; k++ {
				c.SetExpiry(k, k, 1)
			}
			before := c.Stats()
			t0 := time.Now()
			for c.Stats().Expired-before.Expired < n {
				if c.SweepOnce(sweepBatch) == 0 && c.Len() == 0 {
					break
				}
			}
			elapsed := time.Since(t0)
			after := c.Stats()
			visited = after.SweepVisited - before.SweepVisited
			removed = after.Expired - before.Expired
			c.Close()
			return elapsed
		})
		r := Result{Exp: "sweep", Table: "cache", Threads: 1, Param: float64(n),
			MOps: float64(n) / secs / 1e6, Seconds: secs, Samples: samples,
			Extra: fmt.Sprintf("visited=%d removed=%d visits/entry=%.2f",
				visited, removed, float64(visited)/float64(n))}
		r.print(cfg.Out, "%.0f")
		results = append(results, r)
	}
	return results
}
