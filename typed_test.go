package growt_test

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"

	growt "repro"
)

// point is the struct-key instantiation exercised by the conformance
// suite: it takes the generic hash-codec route with the default
// (fingerprint) hasher, and its string values ride the indirection arena.
type point struct{ X, Y int32 }

// nodeID is a named integer type; named types fall off the built-in fast
// paths onto the generic route, optionally with a user hasher.
type nodeID uint64

// conformance drives one typed map instantiation through every primitive
// of §4 plus the facade's handle-free methods, against a model map.
func conformance[K comparable, V comparable](t *testing.T, m *growt.Map[K, V],
	key func(i int) K, val func(i int) V) {
	t.Helper()
	defer m.Close()
	const n = 300
	h := m.Handle()

	// Insert wins once; duplicate inserts refuse.
	for i := 0; i < n; i++ {
		if !h.Insert(key(i), val(i)) {
			t.Fatalf("insert %v", key(i))
		}
	}
	for i := 0; i < n; i++ {
		if h.Insert(key(i), val(i+1)) {
			t.Fatalf("duplicate insert %v succeeded", key(i))
		}
	}

	// Find returns stored values; absent keys miss.
	for i := 0; i < n; i++ {
		if v, ok := h.Find(key(i)); !ok || v != val(i) {
			t.Fatalf("find %v = %v,%v want %v", key(i), v, ok, val(i))
		}
	}
	for i := n; i < n+20; i++ {
		if _, ok := h.Find(key(i)); ok {
			t.Fatalf("find absent %v succeeded", key(i))
		}
	}

	// ApproxSize is within the §5.2 estimator's tolerance (string and
	// generic routes are exact, the word route is approximate).
	if s := m.ApproxSize(); s < n/2 || s > 2*n {
		t.Fatalf("approx size %d for %d elements", s, n)
	}

	// Functional update (§4): present keys update, absent keys refuse.
	for i := 0; i < n; i++ {
		if !h.Update(key(i), val(i+1), growt.Replace[V]) {
			t.Fatalf("update %v", key(i))
		}
		if v, _ := h.Find(key(i)); v != val(i+1) {
			t.Fatalf("update %v left %v want %v", key(i), v, val(i+1))
		}
	}
	if h.Update(key(n+5), val(0), growt.Replace[V]) {
		t.Fatal("update of absent key succeeded")
	}

	// InsertOrUpdate: update path on present keys, insert path on absent.
	for i := 0; i < n; i++ {
		if h.InsertOrUpdate(key(i), val(i), growt.Replace[V]) {
			t.Fatalf("insertOrUpdate %v reported insert for present key", key(i))
		}
	}
	if !h.InsertOrUpdate(key(n), val(n), growt.Replace[V]) {
		t.Fatal("insertOrUpdate of absent key reported update")
	}

	// Range sees exactly the live elements, with their current values.
	seen := map[K]V{}
	m.Range(func(k K, v V) bool { seen[k] = v; return true })
	if len(seen) != n+1 {
		t.Fatalf("range saw %d elements, want %d", len(seen), n+1)
	}
	for i := 0; i <= n; i++ {
		if seen[key(i)] != val(i) {
			t.Fatalf("range %v = %v want %v", key(i), seen[key(i)], val(i))
		}
	}

	// Early-exit Range stops.
	calls := 0
	m.Range(func(K, V) bool { calls++; return false })
	if calls != 1 {
		t.Fatalf("range after false continued: %d calls", calls)
	}

	// Delete removes; double delete refuses; deleted keys revive.
	for i := 0; i < n; i += 2 {
		if !h.Delete(key(i)) {
			t.Fatalf("delete %v", key(i))
		}
		if h.Delete(key(i)) {
			t.Fatalf("double delete %v succeeded", key(i))
		}
		if _, ok := h.Find(key(i)); ok {
			t.Fatalf("deleted %v still found", key(i))
		}
	}
	if !h.Insert(key(0), val(7)) {
		t.Fatal("re-insert of deleted key refused")
	}
	if v, ok := h.Find(key(0)); !ok || v != val(7) {
		t.Fatalf("revived key(0) = %v,%v", v, ok)
	}

	// CompareAndSwap: wrong old refuses and leaves the value, right old
	// swaps, absent key refuses.
	if h.CompareAndSwap(key(1), val(999), val(5)) {
		t.Fatal("cas with wrong old value succeeded")
	}
	if v, _ := h.Find(key(1)); v != val(1) {
		t.Fatalf("failed cas changed the value to %v", v)
	}
	if !h.CompareAndSwap(key(1), val(1), val(5)) {
		t.Fatal("cas with right old value refused")
	}
	if v, _ := h.Find(key(1)); v != val(5) {
		t.Fatalf("cas left %v want %v", v, val(5))
	}
	if h.CompareAndSwap(key(n+50), val(0), val(1)) {
		t.Fatal("cas of absent key succeeded")
	}

	// LoadAndDelete: returns the removed value; absent keys miss; the
	// key is gone afterwards.
	if v, ok := h.LoadAndDelete(key(1)); !ok || v != val(5) {
		t.Fatalf("loadAndDelete = %v,%v want %v,true", v, ok, val(5))
	}
	if _, ok := h.Find(key(1)); ok {
		t.Fatal("loadAndDelete left the key")
	}
	if _, ok := h.LoadAndDelete(key(1)); ok {
		t.Fatal("loadAndDelete of absent key succeeded")
	}

	// Handle-free sync.Map-shaped surface.
	m.Store(key(n+1), val(1))
	if v, ok := m.Load(key(n + 1)); !ok || v != val(1) {
		t.Fatalf("store/load = %v,%v", v, ok)
	}
	m.Store(key(n+1), val(2)) // overwrite
	if v, _ := m.Load(key(n + 1)); v != val(2) {
		t.Fatalf("store overwrite left %v", v)
	}
	if actual, loaded := m.LoadOrStore(key(n+1), val(3)); !loaded || actual != val(2) {
		t.Fatalf("loadOrStore present = %v,%v", actual, loaded)
	}
	if actual, loaded := m.LoadOrStore(key(n+2), val(3)); loaded || actual != val(3) {
		t.Fatalf("loadOrStore absent = %v,%v", actual, loaded)
	}
	if !m.Compute(key(n+3), val(4), growt.Replace[V]) {
		t.Fatal("compute insert path")
	}
	if m.Compute(key(n+3), val(5), growt.Replace[V]) {
		t.Fatal("compute update path reported insert")
	}
	if v, _ := m.Load(key(n + 3)); v != val(5) {
		t.Fatalf("compute left %v", v)
	}
	if !m.Delete(key(n + 3)) {
		t.Fatal("handle-free delete")
	}
	m.Store(key(n+4), val(1))
	if !m.CompareAndSwap(key(n+4), val(1), val(2)) {
		t.Fatal("handle-free cas refused")
	}
	if v, ok := m.LoadAndDelete(key(n + 4)); !ok || v != val(2) {
		t.Fatalf("handle-free loadAndDelete = %v,%v", v, ok)
	}
	if _, ok := m.LoadAndDelete(key(n + 4)); ok {
		t.Fatal("handle-free loadAndDelete of absent key succeeded")
	}
}

func TestTypedConformance(t *testing.T) {
	u64key := func(i int) uint64 { return uint64(i) * 0x9E3779B9 } // includes 0
	u64val := func(i int) uint64 { return uint64(i) + 1 }
	strkey := func(i int) string { return fmt.Sprintf("key-%d", i) }
	ptkey := func(i int) point { return point{X: int32(i), Y: int32(-i)} }
	strval := func(i int) string { return fmt.Sprintf("value-%d", i) }

	t.Run("uint64-uint64-default", func(t *testing.T) {
		conformance(t, growt.New[uint64, uint64](), u64key, u64val)
	})
	t.Run("uint64-uint64-usgrow", func(t *testing.T) {
		conformance(t, growt.New[uint64, uint64](growt.WithStrategy(growt.USGrow)), u64key, u64val)
	})
	t.Run("uint64-uint64-pool", func(t *testing.T) {
		conformance(t, growt.New[uint64, uint64](growt.WithStrategy(growt.PSGrow)), u64key, u64val)
	})
	t.Run("uint64-uint64-bounded", func(t *testing.T) {
		conformance(t, growt.New[uint64, uint64](growt.WithBounded(2000)), u64key, u64val)
	})
	t.Run("uint64-uint64-tsx", func(t *testing.T) {
		conformance(t, growt.New[uint64, uint64](growt.WithTSX()), u64key, u64val)
	})
	t.Run("string-uint64", func(t *testing.T) {
		conformance(t, growt.New[string, uint64](), strkey, u64val)
	})
	t.Run("string-string-arena-values", func(t *testing.T) {
		conformance(t, growt.New[string, string](growt.WithBounded(2000)), strkey, strval)
	})
	t.Run("struct-string", func(t *testing.T) {
		conformance(t, growt.New[point, string](), ptkey, strval)
	})
	t.Run("struct-struct", func(t *testing.T) {
		conformance(t, growt.New[point, point](), ptkey, func(i int) point {
			return point{X: int32(i + 1), Y: int32(i + 2)}
		})
	})
	t.Run("named-key-with-hasher", func(t *testing.T) {
		m := growt.New[nodeID, uint64](growt.WithHasher(func(k nodeID) uint64 {
			return uint64(k) * 0xff51afd7ed558ccd
		}))
		conformance(t, m, func(i int) nodeID { return nodeID(i) }, u64val)
	})
	t.Run("int32-int16", func(t *testing.T) {
		conformance(t, growt.New[int32, int16](),
			func(i int) int32 { return int32(i - 150) }, // negative keys
			func(i int) int16 { return int16(i - 200) }) // negative values
	})
	t.Run("bool-key", func(t *testing.T) {
		m := growt.New[bool, int]()
		defer m.Close()
		m.Store(true, 1)
		m.Store(false, 2)
		if v, _ := m.Load(true); v != 1 {
			t.Fatal("bool key true")
		}
		if v, _ := m.Load(false); v != 2 {
			t.Fatal("bool key false")
		}
	})
}

// TestTypedWideIntegerValues drives the inline/arena escape split: 64-bit
// values above 2^61 (and all negatives) must survive the indirection.
func TestTypedWideIntegerValues(t *testing.T) {
	t.Run("uint64", func(t *testing.T) {
		m := growt.New[uint64, uint64]()
		defer m.Close()
		for _, v := range []uint64{0, 1, 1<<61 - 1, 1 << 61, 1 << 62, 1 << 63, ^uint64(0)} {
			m.Store(42, v)
			if got, ok := m.Load(42); !ok || got != v {
				t.Fatalf("roundtrip %#x = %#x,%v", v, got, ok)
			}
		}
	})
	t.Run("int64-negative", func(t *testing.T) {
		m := growt.New[int64, int64]()
		defer m.Close()
		for _, v := range []int64{-1, -1 << 62, 9e18, -9e18, 0, 5} {
			k := v * 3 // negative keys too (full-key wrapper)
			m.Store(k, v)
			if got, ok := m.Load(k); !ok || got != v {
				t.Fatalf("roundtrip k=%d v=%d = %d,%v", k, v, got, ok)
			}
		}
	})
	t.Run("escaped-update", func(t *testing.T) {
		// Atomic aggregation across the inline/escape boundary.
		m := growt.New[uint64, uint64]()
		defer m.Close()
		m.Store(1, 1<<61-2)
		for i := 0; i < 4; i++ {
			m.Compute(1, 1, growt.Add) // crosses 2^61 on the 2nd add
		}
		if v, _ := m.Load(1); v != 1<<61+2 {
			t.Fatalf("escaped aggregation = %#x", v)
		}
	})
}

// TestTypedFloatZeroStructKey: ±0.0 compare equal, so struct keys
// containing a negative-zero float must hash onto the same entry as
// their positive-zero twin (regression: the fmt-fingerprint hasher
// printed "{0}" vs "{-0}").
func TestTypedFloatZeroStructKey(t *testing.T) {
	type fkey struct{ F float64 }
	negZero := math.Copysign(0, -1)
	m := growt.New[fkey, int]()
	defer m.Close()
	m.Store(fkey{0}, 1)
	if v, ok := m.Load(fkey{negZero}); !ok || v != 1 {
		t.Fatalf("Load({-0}) = %v,%v after Store({+0}, 1)", v, ok)
	}
	m.Store(fkey{negZero}, 2) // must overwrite, not duplicate
	n := 0
	m.Range(func(fkey, int) bool { n++; return true })
	if n != 1 {
		t.Fatalf("±0 keys split into %d entries", n)
	}
	if !m.Delete(fkey{0}) {
		t.Fatal("delete via +0 after store via -0")
	}
	if _, ok := m.Load(fkey{negZero}); ok {
		t.Fatal("key survived delete")
	}
}

// TestTypedInterfaceKeys: interface types satisfy comparable as type
// arguments (Go 1.20+); ==-equal interface keys must hash onto one entry
// even across float ±0 (regression: the fmt fallback printed "0" vs
// "-0" for any-boxed floats).
func TestTypedInterfaceKeys(t *testing.T) {
	m := growt.New[any, int]()
	defer m.Close()
	m.Store(any(0.0), 1)
	if v, ok := m.Load(any(math.Copysign(0, -1))); !ok || v != 1 {
		t.Fatalf("Load(any(-0)) = %v,%v after Store(any(+0))", v, ok)
	}
	m.Store(any("s"), 2)
	m.Store(any(uint64(7)), 3)
	m.Store(any(nil), 4)
	if v, _ := m.Load(any("s")); v != 2 {
		t.Fatal("string-typed any key")
	}
	if v, _ := m.Load(any(uint64(7))); v != 3 {
		t.Fatal("uint64-typed any key")
	}
	if v, _ := m.Load(any(nil)); v != 4 {
		t.Fatal("nil any key")
	}
	// int(7) and uint64(7) are different dynamic types, hence different keys.
	if _, ok := m.Load(any(int(7))); ok {
		t.Fatal("int(7) must not alias uint64(7)")
	}
	n := 0
	m.Range(func(any, int) bool { n++; return true })
	if n != 4 {
		t.Fatalf("range saw %d entries, want 4", n)
	}
}

// TestTypedRangeMutation: a Range callback may mutate the map, including
// the full-key wrapper's special-slot keys (0, 2^63-1, ...) — regression
// for Range holding the special-slot lock across the callback.
func TestTypedRangeMutation(t *testing.T) {
	m := growt.New[uint64, uint64]()
	defer m.Close()
	m.Store(0, 1) // key 0 lives in a FullKeys special slot
	m.Store(^uint64(0), 2)
	deleted := 0
	m.Range(func(k, _ uint64) bool {
		if m.Delete(k) {
			deleted++
		}
		return true
	})
	if deleted != 2 {
		t.Fatalf("deleted %d of 2 during Range", deleted)
	}
	if s := m.ApproxSize(); s != 0 {
		t.Fatalf("size %d after deleting everything", s)
	}
}

// TestTypedHasherMismatch checks the descriptive panic when WithHasher's
// key type disagrees with the map's.
func TestTypedHasherMismatch(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("no panic for mismatched hasher")
		}
	}()
	growt.New[point, int](growt.WithHasher(func(k uint64) uint64 { return k }))
}

// raceSmoke hammers the handle-free Load/Store/Compute/Delete path from
// many goroutines on overlapping keys; run with -race this is the data
// race check of the pooled-handle discipline and both codec layers. The
// per-key increment totals are verified exactly.
func raceSmoke[K comparable](t *testing.T, m *growt.Map[K, uint64], key func(i int) K) {
	t.Helper()
	defer m.Close()
	const (
		workers = 8
		keys    = 64
		rounds  = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := key((r + w) % keys)
				m.Compute(k, 1, growt.Add)
				m.Load(k)
				if r%16 == w%16 {
					// Churn a private key so deletes never disturb the
					// counted increments.
					priv := key(keys + w)
					m.Store(priv, uint64(r))
					m.LoadOrStore(priv, 1)
					m.Delete(priv)
				}
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for i := 0; i < keys; i++ {
		v, ok := m.Load(key(i))
		if !ok {
			t.Fatalf("counter %d lost", i)
		}
		total += v
	}
	if want := uint64(workers * rounds); total != want {
		t.Fatalf("lost updates: total %d want %d", total, want)
	}
}

func TestTypedConcurrentSmoke(t *testing.T) {
	t.Run("uint64", func(t *testing.T) {
		raceSmoke(t, growt.New[uint64, uint64](), func(i int) uint64 { return uint64(i) })
	})
	t.Run("string", func(t *testing.T) {
		raceSmoke(t, growt.New[string, uint64](), func(i int) string {
			return fmt.Sprintf("counter-%d", i)
		})
	})
	t.Run("struct", func(t *testing.T) {
		raceSmoke(t, growt.New[point, uint64](), func(i int) point {
			return point{X: int32(i), Y: int32(i * 7)}
		})
	})
	t.Run("uint64-tsx", func(t *testing.T) {
		raceSmoke(t, growt.New[uint64, uint64](growt.WithTSX()), func(i int) uint64 { return uint64(i) })
	})
}

// loadAndDeleteTokens proves LoadAndDelete is atomic, not find-then-
// delete: one inserter feeds unique tokens through a single key (Insert
// succeeds only while the key is absent), several deleters race
// LoadAndDelete on it. Every token must be collected exactly once — a
// non-atomic implementation can return token A while its delete
// actually removes a later token B, which collects A twice and B never.
func loadAndDeleteTokens[K comparable](t *testing.T, m *growt.Map[K, uint64], k K) {
	t.Helper()
	defer m.Close()
	const (
		tokens   = 2000
		deleters = 3
	)
	coll := make(chan uint64, tokens)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // inserter
		defer wg.Done()
		h := m.Handle()
		for tok := uint64(1); tok <= tokens; {
			if h.Insert(k, tok) {
				tok++
			} else {
				// The token is still unclaimed; hand the CPU to a deleter
				// (on GOMAXPROCS=1 a tight spin starves them for whole
				// scheduler slices).
				runtime.Gosched()
			}
		}
	}()
	for d := 0; d < deleters; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := m.Handle()
			for {
				select {
				case <-done:
					return
				default:
				}
				if v, ok := h.LoadAndDelete(k); ok {
					coll <- v
				} else {
					runtime.Gosched()
				}
			}
		}()
	}
	seen := make(map[uint64]bool, tokens)
	for i := 0; i < tokens; i++ {
		v := <-coll
		if seen[v] {
			t.Errorf("token %d collected twice — LoadAndDelete returned a value it did not remove", v)
			break
		}
		seen[v] = true
	}
	close(done)
	wg.Wait()
	if len(seen) != tokens {
		t.Fatalf("collected %d unique tokens, want %d", len(seen), tokens)
	}
}

func TestTypedLoadAndDeleteAtomic(t *testing.T) {
	t.Run("word", func(t *testing.T) {
		loadAndDeleteTokens(t, growt.New[uint64, uint64](), uint64(12345))
	})
	t.Run("word-special-slot", func(t *testing.T) {
		// Key 0 lives in the full-key wrapper's mutex-backed special slot.
		loadAndDeleteTokens(t, growt.New[uint64, uint64](), uint64(0))
	})
	t.Run("word-bounded", func(t *testing.T) {
		loadAndDeleteTokens(t, growt.New[uint64, uint64](growt.WithBounded(64)), uint64(7))
	})
	t.Run("word-tsx", func(t *testing.T) {
		loadAndDeleteTokens(t, growt.New[uint64, uint64](growt.WithTSX()), uint64(7))
	})
	t.Run("string", func(t *testing.T) {
		loadAndDeleteTokens(t, growt.New[string, uint64](), "the-key")
	})
	t.Run("generic", func(t *testing.T) {
		loadAndDeleteTokens(t, growt.New[point, uint64](), point{X: 3, Y: 4})
	})
}

// casCounter drives an optimistic-concurrency counter entirely through
// CompareAndSwap: each success is one unique transition, so the final
// value counts them exactly; lost or phantom swaps change the total.
func casCounter[K comparable](t *testing.T, m *growt.Map[K, uint64], k K) {
	t.Helper()
	defer m.Close()
	const (
		workers   = 4
		swapsEach = 500
	)
	m.Store(k, 0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := m.Handle()
			for done := 0; done < swapsEach; {
				cur, ok := h.Find(k)
				if !ok {
					t.Error("counter key vanished")
					return
				}
				if h.CompareAndSwap(k, cur, cur+1) {
					done++
				}
			}
		}()
	}
	wg.Wait()
	if v, _ := m.Load(k); v != workers*swapsEach {
		t.Fatalf("cas transitions lost: %d want %d", v, workers*swapsEach)
	}
}

func TestTypedCompareAndSwapAtomic(t *testing.T) {
	t.Run("word", func(t *testing.T) {
		casCounter(t, growt.New[uint64, uint64](), uint64(99))
	})
	t.Run("word-tsx", func(t *testing.T) {
		casCounter(t, growt.New[uint64, uint64](growt.WithTSX()), uint64(99))
	})
	t.Run("string", func(t *testing.T) {
		casCounter(t, growt.New[string, uint64](), "ctr")
	})
	t.Run("generic", func(t *testing.T) {
		casCounter(t, growt.New[point, uint64](), point{X: 1, Y: 2})
	})
}

// TestTypedCompareAndSwapArenaValues drives CAS across the inline/arena
// escape boundary: values ≥ 2^61 live behind the indirection arena, so
// equality must be decided on decoded values, not on slot references.
func TestTypedCompareAndSwapArenaValues(t *testing.T) {
	m := growt.New[uint64, uint64]()
	defer m.Close()
	big := uint64(1)<<61 + 7 // escapes to the arena
	m.Store(1, big)
	if !m.CompareAndSwap(1, big, big+1) {
		t.Fatal("cas on arena-escaped value refused despite equal decoded values")
	}
	if v, _ := m.Load(1); v != big+1 {
		t.Fatalf("cas left %#x", v)
	}
	if m.CompareAndSwap(1, big, big+2) {
		t.Fatal("cas with stale arena value succeeded")
	}
	// And string values (always arena-backed).
	s := growt.New[uint64, string]()
	defer s.Close()
	s.Store(1, "alpha")
	if !s.CompareAndSwap(1, "alpha", "beta") {
		t.Fatal("cas on string value refused")
	}
	if v, ok := s.LoadAndDelete(1); !ok || v != "beta" {
		t.Fatalf("loadAndDelete string = %q,%v", v, ok)
	}
}

// TestTypedCompareAndSwapUncomparablePanics: sync.Map parity — CAS with
// an uncomparable old value panics. The panic must fire before any
// table lock or TSX stripe is entered and must not strand the pooled
// handle, so the map stays fully usable after recovering.
func TestTypedCompareAndSwapUncomparablePanics(t *testing.T) {
	m := growt.New[uint64, []byte](growt.WithTSX())
	defer m.Close()
	m.Store(1, []byte("x"))
	for i := 0; i < 3; i++ { // repeated panics must not leak pooled handles
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic for uncomparable old value")
				}
			}()
			m.CompareAndSwap(1, []byte("x"), []byte("y"))
		}()
	}
	// No stripe lock or handle was stranded: normal ops still work.
	m.Store(1, []byte("z"))
	if v, ok := m.Load(1); !ok || string(v) != "z" {
		t.Fatalf("map unusable after recovered panics: %q, %v", v, ok)
	}
	if v, ok := m.LoadAndDelete(1); !ok || string(v) != "z" {
		t.Fatalf("loadAndDelete after recovered panics: %q, %v", v, ok)
	}
}

// TestTypedConcurrentHandles is the explicit-handle analogue: one handle
// per goroutine, as the paper prescribes (§5.1).
func TestTypedConcurrentHandles(t *testing.T) {
	m := growt.New[uint64, uint64](growt.WithStrategy(growt.USGrow))
	defer m.Close()
	const workers, perKey = 4, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := m.Handle()
			for j := 0; j < perKey; j++ {
				h.InsertOrUpdate(uint64(j%100), 1, growt.Add)
			}
		}()
	}
	wg.Wait()
	h := m.Handle()
	var sum uint64
	for k := uint64(0); k < 100; k++ {
		v, _ := h.Find(k)
		sum += v
	}
	if sum != workers*perKey {
		t.Fatalf("sum %d want %d", sum, workers*perKey)
	}
}
