// bench_test.go provides one testing.B benchmark per table/figure of the
// paper's evaluation (§8), backed by the same scenario code as the
// growbench CLI. Run with:
//
//	go test -bench=. -benchmem
//
// Benchmarks use a reduced op count so `go test -bench` stays tractable;
// use cmd/growbench with -n for full-scale sweeps. Reported metric: the
// custom "MOps/s" unit per table (higher is better), matching the
// figures' y-axes.
package growt_test

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/bench/report"

	_ "repro/internal/baselines"
	_ "repro/internal/core"
)

// benchCfg builds a small configuration; tables can narrow the set.
func benchCfg(b *testing.B, tables ...string) *bench.Config {
	b.Helper()
	cfg := &bench.Config{
		N:       1 << 16,
		Threads: []int{4},
		Skews:   []float64{0.85, 1.25},
		WPs:     []int{30, 60},
		Repeat:  1,
		Tables:  tables,
	}
	cfg.Defaults()
	return cfg
}

// publish reports each scenario result as a benchmark metric. The
// metric is the median-of-repeats throughput (via the BENCH report
// record) so a single noisy repeat cannot drag the published number;
// with -repeat 1 the median equals the lone sample.
func publish(b *testing.B, results []bench.Result) {
	b.Helper()
	for _, rec := range report.FromResults(results) {
		name := rec.Table
		if rec.Param != 0 {
			name = fmt.Sprintf("%s_p%g", rec.Table, rec.Param)
		}
		b.ReportMetric(rec.MedianMOps(), name+"_MOps")
	}
}

func runScenario(b *testing.B, f func(*bench.Config) []bench.Result, tables ...string) {
	for i := 0; i < b.N; i++ {
		results := f(benchCfg(b, tables...))
		if i == b.N-1 {
			publish(b, results)
		}
	}
}

var headline = []string{"folklore", "uaGrow", "usGrow", "mutexmap", "syncmap", "cuckoo"}

func BenchmarkFig2aInsertPresized(b *testing.B) {
	runScenario(b, bench.Fig2aInsertPresized, headline...)
}

func BenchmarkFig2bInsertGrowing(b *testing.B) {
	runScenario(b, bench.Fig2bInsertGrowing, "uaGrow", "usGrow", "junctionlinear", "syncmap", "mutexmap")
}

func BenchmarkFig3aFindSuccess(b *testing.B) {
	runScenario(b, bench.Fig3aFindSuccess, headline...)
}

func BenchmarkFig3bFindMiss(b *testing.B) {
	runScenario(b, bench.Fig3bFindMiss, headline...)
}

func BenchmarkFig4aUpdateContention(b *testing.B) {
	runScenario(b, bench.Fig4aUpdateContention, "folklore", "uaGrow", "usGrow", "cuckoo", "mutexmap")
}

func BenchmarkFig4bFindContention(b *testing.B) {
	runScenario(b, bench.Fig4bFindContention, "folklore", "uaGrow", "usGrow", "cuckoo", "mutexmap")
}

func BenchmarkFig5aAggPresized(b *testing.B) {
	runScenario(b, bench.Fig5aAggPresized, "folklore", "uaGrow", "usGrow", "syncmap")
}

func BenchmarkFig5bAggGrowing(b *testing.B) {
	runScenario(b, bench.Fig5bAggGrowing, "uaGrow", "usGrow", "syncmap")
}

func BenchmarkFig6Delete(b *testing.B) {
	runScenario(b, bench.Fig6Delete, "uaGrow", "usGrow", "hopscotch", "cuckoo", "splitorder")
}

func BenchmarkFig7aMixPresized(b *testing.B) {
	runScenario(b, bench.Fig7aMixPresized, headline...)
}

func BenchmarkFig7bMixGrowing(b *testing.B) {
	runScenario(b, bench.Fig7bMixGrowing, "uaGrow", "usGrow", "junctionlinear", "syncmap")
}

func BenchmarkFig8aPoolInsert(b *testing.B) {
	runScenario(b, bench.Fig8aPoolInsert)
}

func BenchmarkFig8bPoolDelete(b *testing.B) {
	runScenario(b, bench.Fig8bPoolDelete)
}

func BenchmarkFig9aTSXPresized(b *testing.B) {
	runScenario(b, bench.Fig9aTSXPresized)
}

func BenchmarkFig9bTSXGrowing(b *testing.B) {
	runScenario(b, bench.Fig9bTSXGrowing)
}

func BenchmarkFig10Memory(b *testing.B) {
	runScenario(b, bench.Fig10Memory, "folklore", "uaGrow", "folly")
}

func BenchmarkFig11aManyThreads(b *testing.B) {
	runScenario(b, bench.Fig11aManyThreads, "uaGrow", "usGrow", "syncmap")
}

func BenchmarkFig11bManyThreads(b *testing.B) {
	runScenario(b, bench.Fig11bManyThreads, "folklore", "uaGrow", "syncmap")
}
